"""Tests for ordered-attribute properties and their algebra."""

from hypothesis import given
from hypothesis import strategies as st

from repro.gsql.ordering import Ordering, OrderingKind


class TestConstructors:
    def test_kinds(self):
        assert Ordering.increasing().kind == OrderingKind.INCREASING
        assert Ordering.increasing(strict=True).kind == OrderingKind.STRICT_INCREASING
        assert Ordering.decreasing().kind == OrderingKind.DECREASING
        assert Ordering.nonrepeating().kind == OrderingKind.NONREPEATING
        assert Ordering.banded(30).band == 30
        assert Ordering.in_group("a", "b").group == ("a", "b")

    def test_banded_rejects_negative(self):
        import pytest
        with pytest.raises(ValueError):
            Ordering.banded(-1)

    def test_str(self):
        assert str(Ordering.banded(30.0)) == "banded_increasing(30.0)"
        assert str(Ordering.in_group("srcIP", "destIP")) == \
            "increasing_in_group(srcIP, destIP)"
        assert str(Ordering.none()) == "none"


class TestPredicates:
    def test_is_increasing(self):
        assert Ordering.increasing().is_increasing
        assert Ordering.increasing(strict=True).is_increasing
        assert Ordering.banded(5).is_increasing
        assert not Ordering.decreasing().is_increasing
        assert not Ordering.in_group("x").is_increasing

    def test_usable_for_windows(self):
        assert Ordering.increasing().usable_for_windows
        assert Ordering.decreasing().usable_for_windows
        assert Ordering.banded(1).usable_for_windows
        assert not Ordering.nonrepeating().usable_for_windows
        assert not Ordering.in_group("x").usable_for_windows
        assert not Ordering.none().usable_for_windows

    def test_effective_band(self):
        assert Ordering.increasing().effective_band == 0
        assert Ordering.banded(7.5).effective_band == 7.5


class TestTransforms:
    def test_weaken(self):
        assert Ordering.increasing(strict=True).weaken_to_nonstrict() == \
            Ordering.increasing()
        assert Ordering.decreasing(strict=True).weaken_to_nonstrict() == \
            Ordering.decreasing()
        assert Ordering.banded(3).weaken_to_nonstrict() == Ordering.banded(3)

    def test_reversed(self):
        assert Ordering.increasing().reversed() == Ordering.decreasing()
        assert Ordering.increasing(strict=True).reversed() == \
            Ordering.decreasing(strict=True)
        assert Ordering.nonrepeating().reversed() == Ordering.nonrepeating()
        assert Ordering.banded(2).reversed() == Ordering.none()

    def test_scaled(self):
        assert Ordering.increasing().scaled(2) == Ordering.increasing()
        assert Ordering.increasing().scaled(-1) == Ordering.decreasing()
        assert Ordering.banded(10).scaled(0.5) == Ordering.banded(5)
        assert Ordering.increasing().scaled(0) == Ordering.none()

    def test_integer_division(self):
        # time/60 stays increasing but loses strictness
        strict = Ordering.increasing(strict=True)
        assert strict.after_integer_division(60) == Ordering.increasing()
        # banded(30)/60 -> banded(ceil(30/60)) = banded(1)
        assert Ordering.banded(30).after_integer_division(60) == Ordering.banded(1)
        # banded(120)/60 -> banded(2)
        assert Ordering.banded(120).after_integer_division(60) == Ordering.banded(2)
        # nonrepeating is destroyed by bucketing
        assert Ordering.nonrepeating().after_integer_division(10) == Ordering.none()
        assert Ordering.increasing().after_integer_division(0) == Ordering.none()

    def test_merge_with(self):
        inc = Ordering.increasing()
        assert inc.merge_with(inc) == inc
        assert inc.merge_with(Ordering.banded(5)) == Ordering.banded(5)
        assert Ordering.banded(2).merge_with(Ordering.banded(7)) == Ordering.banded(7)
        assert Ordering.decreasing().merge_with(Ordering.decreasing()) == \
            Ordering.decreasing()
        assert inc.merge_with(Ordering.decreasing()) == Ordering.none()
        assert inc.merge_with(Ordering.none()) == Ordering.none()
        # strictness is lost across a merge
        assert Ordering.increasing(strict=True).merge_with(
            Ordering.increasing(strict=True)) == Ordering.increasing()

    def test_widened(self):
        assert Ordering.increasing().widened(2) == Ordering.banded(2)
        assert Ordering.banded(1).widened(2) == Ordering.banded(3)
        assert Ordering.increasing().widened(0) == Ordering.increasing()
        assert Ordering.none().widened(2) == Ordering.none()


class TestSemanticFidelity:
    """The properties must describe actual sequences faithfully."""

    @given(st.lists(st.integers(0, 10_000), min_size=2, max_size=60))
    def test_integer_division_preserves_nondecreasing(self, values):
        values.sort()
        buckets = [v // 60 for v in values]
        assert all(a <= b for a, b in zip(buckets, buckets[1:]))

    @given(st.lists(st.floats(0, 1000, allow_nan=False), min_size=2,
                    max_size=60), st.floats(0.1, 50))
    def test_banded_claim(self, values, band):
        """A sequence within `band` of its high-water mark is banded."""
        values.sort()
        import random
        rng = random.Random(0)
        perturbed = [max(0.0, v - rng.random() * band) for v in values]
        high = float("-inf")
        for value in perturbed:
            high = max(high, value)
            assert value >= high - band - 1e-9
