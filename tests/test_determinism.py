"""Deterministic replay: stable hashing, the RNG registry, the verifier.

The acceptance bar for this layer: a mixed scenario (DEFINE-sample
sampling + overload shedding + LFTA aggregation over an undersized
direct-mapped table) run in two subprocesses with *different*
``PYTHONHASHSEED`` values produces byte-identical sink rows, drop
ledgers, and group-ejection counts.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.determinism import (
    ReplayReport,
    derive_seed,
    resolve_scenario,
    rng_for,
    run_scenario,
    stable_hash,
    verify_replay,
)

SRC_ROOT = str(Path(__file__).resolve().parents[1] / "src")


class TestStableHash:
    def test_known_values_pinned(self):
        # Pinned so an accidental change to the canonical encoding (which
        # would silently re-place every hash-table slot) fails loudly.
        assert stable_hash(()) == 1580606521
        assert stable_hash((1, "a", 2.5)) == 4239695168
        assert stable_hash(b"\x00\x01") == 2636177908

    def test_distinguishes_types_and_nesting(self):
        assert stable_hash(1) != stable_hash("1")
        assert stable_hash("ab") != stable_hash(b"ab")
        assert stable_hash((1, 2)) != stable_hash(((1,), 2))
        assert stable_hash(1.0) != stable_hash(1)

    def test_accepts_the_group_key_shapes(self):
        key = (12, 0x0A000001, 443)  # (tb, srcIP, srcPort)
        assert stable_hash(key) == stable_hash((12, 0x0A000001, 443))
        assert isinstance(stable_hash((None, True, "x", 2**70)), int)

    def test_rejects_unstable_objects(self):
        with pytest.raises(TypeError):
            stable_hash(object())
        with pytest.raises(TypeError):
            stable_hash({(1, 2)})

    def test_cross_process_stability(self):
        # The whole point: the value must not move with PYTHONHASHSEED.
        script = ("from repro.determinism import stable_hash; "
                  "print(stable_hash(('flows', 7, b'x', 2.5)))")
        values = set()
        for hash_seed in ("0", "1", "31337"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed,
                       PYTHONPATH=SRC_ROOT)
            out = subprocess.run([sys.executable, "-c", script], env=env,
                                 capture_output=True, text=True, check=True)
            values.add(out.stdout.strip())
        assert len(values) == 1


class TestRngRegistry:
    def test_same_name_same_stream(self):
        a = rng_for(7, "lfta.sample", "q0")
        b = rng_for(7, "lfta.sample", "q0")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_streams_are_independent(self):
        draws = {
            name: rng_for(7, *name).random()
            for name in (("lfta.sample", "q0"), ("lfta.shed", "q0"),
                         ("lfta.sample", "q1"))
        }
        assert len(set(draws.values())) == 3

    def test_seed_moves_every_stream(self):
        assert derive_seed(0, "x") != derive_seed(1, "x")
        assert rng_for(0, "x").random() != rng_for(1, "x").random()

    def test_derive_seed_is_order_sensitive(self):
        assert derive_seed(0, "a", "b") != derive_seed(0, "b", "a")


class TestScenarios:
    def test_registry_and_dotted_path(self):
        assert resolve_scenario("mixed") is not None
        fn = resolve_scenario("repro.determinism:_mixed_scenario")
        assert fn is resolve_scenario("mixed")
        with pytest.raises(KeyError):
            resolve_scenario("no_such_scenario")

    def test_mixed_scenario_exercises_all_three_rngs(self):
        snapshot = run_scenario("mixed", seed=5)
        stats = snapshot["stats"]
        lfta = stats["_fta_flows_0"]
        assert lfta["shed_packets"] > 0          # shed gate drew
        assert lfta["hash_collisions"] > 0       # table ejected groups
        assert stats["sampled"]["sampled_out"] > 0  # sample gate drew
        assert snapshot["rows"]["flows"]
        assert snapshot["rows"]["sampled"]

    def test_same_seed_same_snapshot_in_process(self):
        first = run_scenario("mixed", seed=5)
        second = run_scenario("mixed", seed=5)
        assert json.dumps(first, sort_keys=True) == \
            json.dumps(second, sort_keys=True)

    def test_different_seed_different_samples(self):
        a = run_scenario("mixed", seed=1)
        b = run_scenario("mixed", seed=2)
        assert a["rows"]["sampled"] != b["rows"]["sampled"]


class TestVerifyReplay:
    def test_mixed_scenario_replays_across_hash_seeds(self):
        # The tentpole regression: sampling + shedding + LFTA aggregation,
        # two subprocesses, different PYTHONHASHSEED, byte-identical
        # sink rows / drop ledger / ejection counts.
        report = verify_replay("mixed", seed=11, hash_seeds=("1", "101"))
        assert report.ok, report.describe()
        first, second = report.snapshots
        assert first["rows"] == second["rows"]
        assert first["drops"] == second["drops"]
        assert (first["stats"]["_fta_flows_0"]["hash_collisions"]
                == second["stats"]["_fta_flows_0"]["hash_collisions"])

    def test_diff_paths_pinpoints_divergence(self):
        report = ReplayReport("x", 0, ("1", "2"), ok=True)
        assert "OK" in report.describe()
        from repro.determinism import _diff_paths
        diffs = []
        _diff_paths({"a": [1, 2], "b": 3}, {"a": [1, 9], "b": 3},
                    "$", diffs)
        assert diffs == ["$.a[1]: 2 != 9"]


class TestModuleEntry:
    def test_run_prints_json_and_verify_passes(self):
        env = dict(os.environ, PYTHONPATH=SRC_ROOT, PYTHONHASHSEED="3")
        out = subprocess.run(
            [sys.executable, "-m", "repro.replay", "run",
             "--scenario", "e4", "--seed", "2"],
            env=env, capture_output=True, text=True, check=True)
        snapshot = json.loads(out.stdout)
        assert snapshot["rows"]["flows"]
        assert out.stderr == ""  # the shim entry avoids the runpy warning
