"""Tests for the alerting/trigger subsystem (:mod:`repro.alerts`).

Covers the spec language (parsing, field-naming errors, the
bounded-memory rejection), epoch evaluation on a bare
:class:`TriggerNode` (hysteresis, rate limiting, absence, delta,
eviction, snapshot/restore), and the wired-up path through
:meth:`Gigascope.enable_alerts` -- alert rows on the bus, the
``gs_alert*`` metrics, the engine-report section, and detection
surviving Horvitz-Thompson-weighted shedding.
"""

import pytest

from repro import Gigascope
from repro.alerts import (
    MAX_WINDOW_EPOCHS,
    AlertSpecError,
    EpochTick,
    TriggerNode,
    parse_alert_spec,
    parse_condition,
)
from repro.alerts.spec import Absent, Agg, Composite, Delta, EpochContext, Threshold
from repro.core.stream_manager import RegistryError
from repro.gsql.schema import Attribute, StreamSchema
from repro.gsql.types import IP, UINT
from repro.net.packet import ip_to_int
from repro.recovery.wire import decode_snapshot, encode_snapshot
from repro.workloads.scenarios import flash_crowd, syn_flood

FLOWS = StreamSchema("flows", [
    Attribute("tb", UINT),
    Attribute("host", IP),
    Attribute("hits", UINT),
])

HOST_A = ip_to_int("10.0.0.1")
HOST_B = ip_to_int("10.0.0.2")


def err(spec_text):
    with pytest.raises(AlertSpecError) as excinfo:
        parse_alert_spec(spec_text)
    return excinfo.value


class TestSpecParsing:
    def test_threshold_spec(self):
        spec = parse_alert_spec(
            "flood:on=q,key=host,when=sum(hits) > 400,epoch=5,"
            "raise_for=2,clear_for=3,severity=critical,min_interval=30")
        assert spec.name == "flood"
        assert spec.on == "q"
        assert spec.key == "host"
        assert isinstance(spec.condition, Threshold)
        assert spec.condition.agg == Agg("sum", "hits")
        assert spec.epoch == 5.0
        assert (spec.raise_for, spec.clear_for) == (2, 3)
        assert spec.severity == "critical"
        assert spec.min_interval == 30.0
        # max(window=0, raise_for=2, clear_for=3, min_interval/epoch=6)
        assert spec.retention_epochs == 6

    def test_defaults(self):
        spec = parse_alert_spec("t:on=q,when=count(*) > 1")
        assert spec.key is None
        assert spec.severity == "warning"
        assert spec.epoch == 1.0
        assert (spec.raise_for, spec.clear_for) == (1, 1)
        assert spec.retention_epochs == 1

    def test_bare_field_is_max_shorthand(self):
        condition = parse_condition("hits > 9")
        assert condition == Threshold(Agg("max", "hits"), ">", 9.0)

    def test_delta_and_absent(self):
        condition = parse_condition("delta(sum(hits), 3) >= 100 or absent(4)")
        assert isinstance(condition, Composite)
        assert condition.op == "or"
        delta, absent = condition.parts
        assert delta == Delta(Agg("sum", "hits"), 3, ">=", 100.0)
        assert absent == Absent(4)
        assert condition.window == 4

    def test_and_binds_tighter_than_or(self):
        condition = parse_condition(
            "count(*) > 1 or count(*) > 2 and count(*) > 3")
        assert condition.op == "or"
        assert isinstance(condition.parts[1], Composite)
        assert condition.parts[1].op == "and"

    def test_parenthesized_grouping(self):
        condition = parse_condition(
            "(count(*) > 1 or absent(2)) and sum(hits) < 5")
        assert condition.op == "and"

    def test_condition_str_round_trips(self):
        text = "delta(sum(hits),3) >= 100 or absent(4)"
        assert str(parse_condition(str(parse_condition(text)))) == \
            str(parse_condition(text))

    def test_retention_covers_delta_window(self):
        spec = parse_alert_spec("t:on=q,when=delta(count(*), 7) > 5")
        assert spec.retention_epochs == 7

    # -- every rejection names the offending field ---------------------
    def test_missing_on(self):
        assert err("t:when=count(*) > 1").field == "on"

    def test_missing_when(self):
        assert err("t:on=q").field == "when"

    def test_bad_name(self):
        assert err("9bad:on=q,when=count(*) > 1").field == "name"

    def test_unknown_option(self):
        assert err("t:on=q,when=count(*) > 1,wat=1").field == "wat"

    def test_duplicate_option(self):
        assert err("t:on=q,on=r,when=count(*) > 1").field == "on"

    def test_bad_severity(self):
        assert err("t:on=q,when=count(*) > 1,severity=panic"
                   ).field == "severity"

    def test_bad_epoch(self):
        assert err("t:on=q,when=count(*) > 1,epoch=soon").field == "epoch"

    def test_nonpositive_epoch(self):
        assert err("t:on=q,when=count(*) > 1,epoch=0").field == "epoch"

    def test_bad_raise_for(self):
        assert err("t:on=q,when=count(*) > 1,raise_for=0").field == "raise_for"

    def test_negative_min_interval(self):
        assert err("t:on=q,when=count(*) > 1,min_interval=-5"
                   ).field == "min_interval"

    def test_bad_comparison_bound(self):
        error = err("t:on=q,when=count(*) > soon")
        assert error.field == "when"

    def test_star_only_in_count(self):
        assert err("t:on=q,when=sum(*) > 1").field == "when"

    # -- the bounded-memory rejections ---------------------------------
    def test_infinite_delta_window_rejected(self):
        error = err("t:on=q,when=delta(count(*), inf) > 5")
        assert error.field == "when"
        assert "unbounded" in str(error)

    def test_oversized_delta_window_rejected(self):
        error = err(f"t:on=q,when=delta(count(*), "
                    f"{MAX_WINDOW_EPOCHS + 1}) > 5")
        assert error.field == "when"
        assert "bounded-memory" in str(error)

    def test_infinite_hysteresis_rejected(self):
        error = err("t:on=q,when=count(*) > 1,clear_for=inf")
        assert error.field == "clear_for"
        assert "unbounded" in str(error)

    def test_absent_zero_rejected(self):
        assert err("t:on=q,when=absent(0)").field == "when"

    def test_field_validation_names_key_and_when(self):
        spec = parse_alert_spec("t:on=flows,key=ghost,when=count(*) > 1")
        with pytest.raises(AlertSpecError) as excinfo:
            spec.validate_fields(FLOWS)
        assert excinfo.value.field == "key"
        spec = parse_alert_spec("t:on=flows,when=sum(ghost) > 1")
        with pytest.raises(AlertSpecError) as excinfo:
            spec.validate_fields(FLOWS)
        assert excinfo.value.field == "when"


class TestConditionEvaluation:
    def ctx(self, rows=0, fields=None, history=None, idle=0):
        return EpochContext(rows, fields or {}, history or {}, idle)

    def test_empty_epoch_aggregates(self):
        ctx = self.ctx()
        assert Agg("count", None).value(ctx) == 0.0
        assert Agg("count", "hits").value(ctx) == 0.0
        assert Agg("sum", "hits").value(ctx) == 0.0
        assert Agg("min", "hits").value(ctx) is None
        assert Agg("max", "hits").value(ctx) is None
        assert Agg("avg", "hits").value(ctx) is None

    def test_accumulator_readout(self):
        ctx = self.ctx(rows=3, fields={"hits": [3, 60, 10, 30]})
        assert Agg("count", "hits").value(ctx) == 3.0
        assert Agg("sum", "hits").value(ctx) == 60.0
        assert Agg("min", "hits").value(ctx) == 10.0
        assert Agg("max", "hits").value(ctx) == 30.0
        assert Agg("avg", "hits").value(ctx) == 20.0

    def test_none_never_satisfies_a_threshold(self):
        condition = parse_condition("min(hits) < 100")
        assert condition.evaluate(self.ctx()) is False

    def test_delta_needs_full_history(self):
        delta = Delta(Agg("sum", "hits"), 2, ">", 5.0)
        ctx = self.ctx(fields={"hits": [1, 100, 100, 100]},
                       history={delta.key: [10.0]})
        assert delta.current_minus_past(ctx) is None
        ctx = self.ctx(fields={"hits": [1, 100, 100, 100]},
                       history={delta.key: [10.0, 50.0]})
        assert delta.current_minus_past(ctx) == 90.0
        assert delta.evaluate(ctx) is True


def make_node(spec_text):
    """A TriggerNode with its emits captured (no engine around it)."""
    spec = parse_alert_spec(spec_text)
    node = TriggerNode(spec, FLOWS)
    emitted = []
    node.emit = emitted.append
    return node, emitted


def kinds(emitted):
    return [(row[3].decode(), row[5].decode()) for row in emitted]


class TestTriggerNode:
    def test_hysteresis_raise_and_clear(self):
        node, emitted = make_node(
            "t:on=flows,key=host,when=sum(hits) > 10,epoch=1,"
            "raise_for=2,clear_for=2")
        node.on_tick(0.5)                       # opens epoch 0
        node.on_tuple((0, HOST_A, 20), 0)
        node.on_tick(1.5)                       # closes epoch 0: streak 1
        assert emitted == []
        node.on_tuple((1, HOST_A, 20), 0)
        node.on_tick(2.5)                       # closes epoch 1: streak 2
        assert kinds(emitted) == [("RAISE", "10.0.0.1")]
        assert node.alerts_active == 1
        node.on_tick(3.5)                       # quiet epoch 2: false 1
        assert len(emitted) == 1
        node.on_tick(4.5)                       # quiet epoch 3: false 2
        assert kinds(emitted) == [("RAISE", "10.0.0.1"),
                                  ("CLEAR", "10.0.0.1")]
        assert node.alerts_active == 0
        assert (node.alerts_raised, node.alerts_cleared) == (1, 1)

    def test_alert_row_shape(self):
        node, emitted = make_node(
            "t:on=flows,key=host,when=sum(hits) > 10,epoch=1,"
            "severity=critical")
        node.on_tick(0.5)
        node.on_tuple((0, HOST_A, 42), 0)
        node.on_tick(1.5)
        (row,) = emitted
        time, epoch, trigger, kind, severity, key, value, context = row
        assert time == 1.0 and epoch == 0
        assert trigger == b"t" and kind == b"RAISE"
        assert severity == b"critical"
        assert key == b"10.0.0.1"               # IP key rendered dotted
        assert value == 42.0                    # the observed sum
        assert b"42" in context                 # the triggering tuple

    def test_rate_limit_suppresses_reraise(self):
        node, emitted = make_node(
            "t:on=flows,key=host,when=sum(hits) > 10,epoch=1,"
            "min_interval=10")
        node.on_tick(0.5)
        node.on_tuple((0, HOST_A, 20), 0)
        node.on_tick(1.5)                       # RAISE at t=1
        node.on_tick(2.5)                       # quiet: CLEAR at t=2
        node.on_tuple((2, HOST_A, 20), 0)
        node.on_tick(3.5)                       # hot again at t=3: 3-1 < 10
        assert kinds(emitted) == [("RAISE", "10.0.0.1"),
                                  ("CLEAR", "10.0.0.1")]
        assert node.alerts_suppressed == 1
        assert node.alerts_active == 0          # suppressed, not raised
        # Retention spans the rate-limit interval, so the idle gap here
        # must NOT forget last_raise and reset the limiter early.
        node.on_tick(11.5)
        node.on_tuple((11, HOST_A, 20), 0)
        node.on_tick(12.5)                      # t=12: 12-1 >= 10
        assert kinds(emitted)[-1] == ("RAISE", "10.0.0.1")
        assert node.alerts_suppressed == 1

    def test_clear_is_never_rate_limited(self):
        node, emitted = make_node(
            "t:on=flows,key=host,when=sum(hits) > 10,epoch=1,"
            "min_interval=100")
        node.on_tick(0.5)
        node.on_tuple((0, HOST_A, 20), 0)
        node.on_tick(1.5)
        node.on_tick(2.5)
        assert [k for k, _ in kinds(emitted)] == ["RAISE", "CLEAR"]

    def test_absence_fires_across_skipped_epochs(self):
        node, emitted = make_node("t:on=flows,when=absent(3),epoch=1")
        node.on_tick(0.5)
        node.on_tuple((0, HOST_A, 1), 0)
        # One tick far in the future closes epochs 0..4 one by one; the
        # skipped quiet epochs accumulate idleness and fire mid-jump.
        node.on_tick(5.5)
        assert [row[3] for row in emitted] == [b"RAISE"]
        assert emitted[0][0] == 4.0             # idle hit 3 at epoch 3
        assert emitted[0][6] == 3.0             # observed = idle epochs
        node.on_tuple((5, HOST_A, 1), 0)
        node.on_tick(6.5)                       # traffic returns: CLEAR
        assert [row[3] for row in emitted] == [b"RAISE", b"CLEAR"]

    def test_delta_trend_trigger(self):
        node, emitted = make_node(
            "t:on=flows,when=delta(sum(hits), 1) > 50,epoch=1")
        node.on_tick(0.5)
        node.on_tuple((0, HOST_A, 10), 0)
        node.on_tick(1.5)                       # no history yet: quiet
        assert emitted == []
        node.on_tuple((1, HOST_A, 100), 0)
        node.on_tick(2.5)                       # 100 - 10 = 90 > 50
        assert [row[3] for row in emitted] == [b"RAISE"]
        assert emitted[0][6] == 90.0

    def test_composite_and(self):
        node, emitted = make_node(
            "t:on=flows,key=host,when=count(*) > 1 and sum(hits) > 10,"
            "epoch=1")
        node.on_tick(0.5)
        node.on_tuple((0, HOST_A, 100), 0)      # sum high, count(*) == 1
        node.on_tick(1.5)
        assert emitted == []
        node.on_tuple((1, HOST_A, 6), 0)
        node.on_tuple((1, HOST_A, 6), 0)        # both arms hold
        node.on_tick(2.5)
        assert [row[3] for row in emitted] == [b"RAISE"]

    def test_keys_evaluated_deterministically_and_independently(self):
        node, emitted = make_node(
            "t:on=flows,key=host,when=sum(hits) > 10,epoch=1")
        node.on_tick(0.5)
        node.on_tuple((0, HOST_A, 20), 0)
        node.on_tuple((0, HOST_B, 5), 0)        # below threshold
        node.on_tick(1.5)
        assert kinds(emitted) == [("RAISE", "10.0.0.1")]

    def test_idle_keys_evicted_bounded_memory(self):
        node, emitted = make_node(
            "t:on=flows,key=host,when=sum(hits) > 1000000,epoch=1")
        assert node.spec.retention_epochs == 1
        node.on_tick(0.5)
        for index in range(50):
            node.on_tuple((0, ip_to_int("10.9.0.1") + index, 1), 0)
        node.on_tick(1.5)                       # epoch 0 closes: idle 0
        assert len(node._idle) == 50
        node.on_tick(2.5)                       # idle 1 >= retention: evict
        assert node._idle == {}
        assert node._history == {}
        assert node._context == {}
        assert emitted == []

    def test_raised_keys_survive_eviction(self):
        node, emitted = make_node(
            "t:on=flows,key=host,when=sum(hits) > 10,epoch=1,clear_for=99")
        node.on_tick(0.5)
        node.on_tuple((0, HOST_A, 20), 0)
        node.on_tick(1.5)                       # RAISE
        node.on_tick(10.5)                      # long quiet: no eviction
        assert node.alerts_active == 1
        assert HOST_A in node._idle

    def test_flush_closes_the_partial_epoch(self):
        node, emitted = make_node(
            "t:on=flows,key=host,when=sum(hits) > 10,epoch=5")
        node.on_tick(1.0)
        node.on_tuple((0, HOST_A, 20), 0)
        node.flush()                            # epoch 0 never saw a tick end
        assert [row[3] for row in emitted] == [b"RAISE"]

    def test_dispatch_routes_ticks_and_rows(self):
        node, emitted = make_node(
            "t:on=flows,key=host,when=sum(hits) > 10,epoch=1")
        node.dispatch(EpochTick(0.5), 1)
        node.dispatch((0, HOST_A, 20), 0)
        node.dispatch(EpochTick(1.5), 1)
        assert [row[3] for row in emitted] == [b"RAISE"]

    def test_snapshot_restore_round_trip(self):
        def drive_prefix(node):
            node.on_tick(0.5)
            node.on_tuple((0, HOST_A, 20), 0)
            node.on_tick(1.5)
            node.on_tuple((1, HOST_A, 20), 0)   # rows in the open epoch

        def drive_suffix(node):
            node.on_tick(2.5)
            node.on_tick(3.5)
            node.flush()

        original, original_rows = make_node(
            "t:on=flows,key=host,when=sum(hits) > 10,epoch=1,clear_for=2")
        drive_prefix(original)
        # The snapshot must survive the checkpoint wire format (only
        # plain scalars/containers), like the supervisor stores it.
        blob = encode_snapshot(original.snapshot_state())
        restored, restored_rows = make_node(
            "t:on=flows,key=host,when=sum(hits) > 10,epoch=1,clear_for=2")
        restored.restore_state(decode_snapshot(blob))
        assert restored.alerts_raised == original.alerts_raised
        assert restored.alerts_active == original.alerts_active
        drive_suffix(original)
        drive_suffix(restored)
        assert restored_rows == original_rows[len(original_rows)
                                              - len(restored_rows):]
        assert [row[3] for row in restored_rows] == [b"CLEAR"]


def drive(gs, scenario, triggers, pump_every=64):
    gs.add_query("""
        DEFINE query_name syn_watch;
        Select tb, destIP, count(*) as syns
        From tcp Where tcpflags & 18 = 2
        Group by time/5 as tb, destIP
    """)
    gs.enable_alerts(triggers)
    alerts = gs.subscribe("alerts")
    gs.start()
    gs.feed(scenario.packets, pump_every=pump_every)
    gs.flush()
    return alerts.poll()


SYN_TRIGGER = ("synflood:on=syn_watch,key=destIP,when=sum(syns) > 400,"
               "epoch=5,raise_for=1,clear_for=2,severity=critical")


class TestEndToEnd:
    def test_syn_flood_raises_on_the_victim(self):
        gs = Gigascope(heartbeat_interval=0.5)
        scenario = syn_flood(duration_s=50.0, background_mbps=6.0, pps=800.0)
        rows = drive(gs, scenario, [SYN_TRIGGER])
        raises = [row for row in rows if row[3] == b"RAISE"]
        assert len(raises) == 1
        assert raises[0][5] == b"192.168.77.7"
        # Detection latency: first RAISE within one epoch of the attack.
        assert scenario.window[0] <= raises[0][0] \
            <= scenario.window[0] + 5.0
        # The flood ends at t=35; two quiet epochs end the alert.
        clears = [row for row in rows if row[3] == b"CLEAR"]
        assert len(clears) == 1

        report = gs.alert_report()
        assert report["raised_total"] == 1
        assert report["cleared_total"] == 1
        assert report["triggers"]["synflood"]["on"] == "syn_watch"

        from repro.report import engine_report
        text = engine_report(gs)
        assert "alerts" in text
        assert "synflood" in text
        prom = gs.metrics.to_prometheus()
        assert 'gs_alert_raised_total{trigger="synflood"} 1' in prom
        assert "gs_alert_ticks_total" in prom

    def test_flash_crowd_negative_control(self):
        gs = Gigascope(heartbeat_interval=0.5)
        scenario = flash_crowd(duration_s=40.0, background_mbps=6.0)
        rows = drive(gs, scenario, [SYN_TRIGGER])
        assert rows == []
        assert gs.alert_report()["raised_total"] == 0

    def test_detection_survives_ht_weighted_shedding(self):
        # Half the packets are shed at the LFTA gate; kept ones carry
        # Horvitz-Thompson weight 1/0.5 so sum(syns) still crosses the
        # threshold and the alert fires on the same victim.
        gs = Gigascope(heartbeat_interval=0.5)
        gs.enable_shedding("static:0.5")
        scenario = syn_flood(duration_s=50.0, background_mbps=6.0, pps=800.0)
        rows = drive(gs, scenario, [SYN_TRIGGER])
        assert gs.overload_report()["packets_shed"] > 0
        raises = [row for row in rows if row[3] == b"RAISE"]
        assert [row[5] for row in raises] == [b"192.168.77.7"]

    def test_alert_report_none_when_disabled(self):
        gs = Gigascope()
        assert gs.alert_report() is None

    def test_unknown_query_named_in_error(self):
        gs = Gigascope()
        with pytest.raises(AlertSpecError) as excinfo:
            gs.enable_alerts(["t:on=ghost,when=count(*) > 1"])
        assert excinfo.value.field == "on"

    def test_unknown_key_field_named_in_error(self):
        gs = Gigascope()
        gs.add_query("DEFINE query_name q; Select tb, count(*) as hits "
                     "From tcp Group by time/5 as tb")
        with pytest.raises(AlertSpecError) as excinfo:
            gs.enable_alerts(["t:on=q,key=ghost,when=count(*) > 1"])
        assert excinfo.value.field == "key"

    def test_duplicate_trigger_name_rejected(self):
        gs = Gigascope()
        gs.add_query("DEFINE query_name q; Select tb, count(*) as hits "
                     "From tcp Group by time/5 as tb")
        engine = gs.enable_alerts(["t:on=q,when=count(*) > 1"])
        with pytest.raises(AlertSpecError) as excinfo:
            engine.add_trigger("t:on=q,when=count(*) > 2")
        assert excinfo.value.field == "name"

    def test_enable_alerts_twice_rejected(self):
        gs = Gigascope()
        gs.enable_alerts()
        with pytest.raises(RegistryError):
            gs.enable_alerts()


class TestShedExemption:
    """A raised trigger pins its feeder query exempt from shedding."""

    SYN_WATCH = """
        DEFINE query_name syn_watch;
        Select tb, destIP, count(*) as syns
        From tcp Where tcpflags & 18 = 2
        Group by time/5 as tb, destIP
    """
    TRAFFIC_ALL = """
        DEFINE query_name traffic_all;
        Select tb, count(*) as pkts
        From tcp Group by time/5 as tb
    """

    @staticmethod
    def _events(rows):
        """(trigger, kind, key, epoch) -- detection sans sampled values."""
        return [(row[2], row[3], row[5], row[1]) for row in rows]

    def test_detection_accuracy_unchanged_under_80pct_shed(self):
        # Clean arm: no shedding at all.
        gs_clean = Gigascope(heartbeat_interval=0.5)
        scenario = syn_flood(seed=0, duration_s=50.0, background_mbps=6.0,
                             pps=800.0)
        clean = self._events(drive(gs_clean, scenario, [SYN_TRIGGER]))
        # Shed arm: 80% of packets dropped at the LFTA gate -- except on
        # the feeder of the raised trigger, which the exemption pins at
        # keep-rate 1.0 from RAISE to CLEAR.
        gs = Gigascope(heartbeat_interval=0.5)
        gs.enable_shedding("static:0.2")
        scenario = syn_flood(seed=0, duration_s=50.0, background_mbps=6.0,
                             pps=800.0)
        shed = self._events(drive(gs, scenario, [SYN_TRIGGER]))
        assert clean and shed == clean
        report = gs.overload_report()
        assert report["exempt_cycles"] > 0
        assert report["packets_shed"] > 0
        assert report["min_shed_rate"] == 0.2

    def test_raised_trigger_pins_feeder_until_clear(self):
        gs = Gigascope(heartbeat_interval=0.5)
        gs.enable_shedding("static:0.2")
        gs.add_query(self.SYN_WATCH)
        gs.add_query(self.TRAFFIC_ALL)
        gs.enable_alerts([SYN_TRIGGER])
        alerts = gs.subscribe("alerts")
        gs.start()
        scenario = syn_flood(duration_s=50.0, background_mbps=6.0,
                             pps=800.0)
        packets = list(scenario.packets)
        mid = next(i for i, p in enumerate(packets)
                   if p.timestamp >= scenario.window[1] - 2.0)
        gs.feed(packets[:mid], pump_every=64)
        # Mid-flood, the alert is raised: the whole syn_watch chain runs
        # unsheded while every other LFTA still sheds at 0.2.
        report = gs.overload_report()
        assert report["exempt_nodes"]
        rates = {name: info["shed_rate"]
                 for name, info in report["lftas"].items()}
        pinned = [rates[name] for name in report["exempt_nodes"]
                  if name in rates]
        assert pinned and all(rate == 1.0 for rate in pinned)
        others = [rate for name, rate in rates.items()
                  if name not in report["exempt_nodes"]]
        assert others and all(rate == 0.2 for rate in others)
        gs.feed(packets[mid:], pump_every=64)
        gs.flush()
        # The flood ended and the trigger CLEARed: the pin is lifted and
        # the feeder sheds again like everyone else.
        report = gs.overload_report()
        assert report["exempt_nodes"] == []
        assert all(info["shed_rate"] == 0.2
                   for info in report["lftas"].values())
        kinds = [row[3] for row in alerts.poll()]
        assert kinds == [b"RAISE", b"CLEAR"]
