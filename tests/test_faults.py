"""Fault injection (repro.faults) and the RTS's quarantine containment."""

import math

import pytest

from repro import Gigascope
from repro.faults import (
    ChannelOverflowStorm,
    ClockSkew,
    HeartbeatSilence,
    OperatorFault,
    RingLossBurst,
    parse_fault_spec,
)
from repro.nic.nic import Nic
from repro.workloads.flows import ZipfFlowWorkload

AGG_QUERY = """
    DEFINE query_name {name};
    Select tb, srcIP, count(*)
    From tcp
    Group by time/5 as tb, srcIP
"""

SEL_QUERY = """
    DEFINE query_name {name};
    Select time, srcIP
    From tcp
"""


def build_engine(*names, query=AGG_QUERY, **kwargs):
    gs = Gigascope(**kwargs)
    for name in names:
        gs.add_query(query.format(name=name))
    subs = {name: gs.subscribe(name) for name in names}
    gs.start()
    return gs, subs


def packets(count=2000, seed=23):
    return list(ZipfFlowWorkload(num_flows=200, alpha=1.0,
                                 seed=seed).packets(count, pps=1000.0))


class TestOperatorQuarantine:
    def test_failing_hfta_quarantined_siblings_keep_running(self):
        gs, subs = build_engine("good", "bad")
        gs.inject_faults([OperatorFault("bad", at_tuple=50)])
        gs.feed(packets())
        gs.flush()

        stats = gs.stats()
        assert "quarantined" in stats["bad"]
        assert "injected fault" in stats["bad"]["quarantined"]
        assert "quarantined" not in stats["good"]
        # The sibling query kept producing and being accounted.
        good_rows = subs["good"].poll()
        assert good_rows
        assert stats["good"]["tuples_out"] == len(good_rows)
        # The failed query's subscribers saw end-of-stream, not a hang.
        subs["bad"].poll()
        assert subs["bad"].ended
        # The ledger names the quarantined node.
        report = gs.overload_report()
        assert list(report["quarantined"]) == ["bad"]
        assert gs.rts.nodes_quarantined == 1

    def test_failing_lfta_quarantined_on_packet_path(self):
        gs, subs = build_engine("good", "bad")
        lfta_name = next(n for n, _ in gs.rts.iter_nodes()
                         if n.startswith("_fta_bad"))
        gs.inject_faults([OperatorFault(lfta_name, at_tuple=10)])
        gs.feed(packets())
        gs.flush()
        assert lfta_name in gs.rts.quarantined
        assert subs["good"].poll()
        subs["bad"].poll()
        assert subs["bad"].ended  # upstream died -> FLUSH propagated

    def test_failure_during_flush_does_not_abort_teardown(self):
        gs, subs = build_engine("good", "bad")
        lfta_name = next(n for n, _ in gs.rts.iter_nodes()
                         if n.startswith("_fta_bad"))

        def broken_flush():
            raise RuntimeError("flush fault")

        gs.rts.node(lfta_name).flush = broken_flush
        gs.feed(packets(count=500))
        gs.flush()  # must not raise
        assert lfta_name in gs.rts.quarantined
        assert subs["good"].poll()

    def test_quarantine_counts_in_metrics(self):
        gs, _subs = build_engine("good", "bad")
        gs.inject_faults([OperatorFault("bad", at_tuple=1)])
        gs.feed(packets(count=500))
        gs.flush()
        exposition = gs.metrics.to_prometheus()
        assert "gs_nodes_quarantined_total 1" in exposition


class TestRingLossBurst:
    def test_card_drops_are_accounted(self):
        nic = Nic(service_us=0.1, ring_slots=4096)
        burst = RingLossBurst(at=0.5, duration=0.5)
        nic.fault = burst  # as RingLossBurst.arm does, given the card
        for packet in packets(count=2000):
            nic.receive(packet, packet.timestamp * 1e6)
        stats = nic.stats
        assert burst.dropped > 0
        assert stats.ring_dropped >= burst.dropped
        # Conservation: every arrival is delivered, filtered, or dropped.
        assert (stats.delivered_packets + stats.filtered
                + stats.ring_dropped == stats.received)

    def test_feed_level_burst_without_nic(self):
        gs, subs = build_engine("flows")
        burst = RingLossBurst(at=0.4, duration=0.2)
        gs.inject_faults([burst])
        stream = packets()
        gs.feed(stream)
        gs.flush()
        in_window = sum(1 for p in stream if 0.4 <= p.timestamp < 0.6)
        assert burst.dropped == in_window > 0
        assert gs.rts.fault_dropped == burst.dropped
        assert gs.rts.packets_fed == len(stream) - burst.dropped
        report = gs.overload_report()
        assert report["fault_dropped"] == burst.dropped
        assert report["faults"][0]["kind"] == "ring_burst"

    def test_probabilistic_burst_is_seeded(self):
        def run():
            burst = RingLossBurst(at=0.0, duration=1.0, drop_prob=0.5,
                                  seed=9)
            return [burst.drops_packet(0.5) for _ in range(200)]
        first, second = run(), run()
        assert first == second
        assert 40 < sum(first) < 160


class TestChannelOverflowStorm:
    def test_storm_squeezes_and_releases(self):
        # A selection query pushes one tuple per packet through its
        # channel, so the storm window is guaranteed live traffic.
        gs, subs = build_engine("flows", query=SEL_QUERY)
        storm = ChannelOverflowStorm(at=0.3, duration=0.4, capacity=2)
        gs.inject_faults([storm])
        gs.feed(packets(), pump_every=64)
        gs.flush()
        assert storm.cycles_active > 0
        assert storm.dropped_during > 0
        # The organic overflow accounting carries the storm's drops.
        report = gs.overload_report()
        assert report["channel_dropped"] >= storm.dropped_during
        # After the storm every channel is unbounded again.
        assert all(c.fault_capacity is None for c in gs.rts.channels())


class TestClockSkew:
    def test_skews_only_the_named_interface(self):
        skew = ClockSkew(interface="eth1", skew_s=10.0)
        gs, subs = build_engine("flows")
        gs.inject_faults([skew])
        stream = packets(count=100)
        for packet in stream[:50]:
            gs.feed_packet(packet)
        assert skew.skewed == 0  # workload arrives on eth0
        import dataclasses
        for packet in stream[50:]:
            gs.feed_packet(dataclasses.replace(packet, interface="eth1"))
        assert skew.skewed == 50
        # Stream time follows the skewed clock.
        assert gs.rts.stream_time >= 10.0


class TestHeartbeatSilence:
    def test_suppression_is_counted_and_recovers(self):
        gs, subs = build_engine("flows", heartbeat_interval=0.1)
        silence = HeartbeatSilence(at=0.5, duration=0.6)
        gs.inject_faults([silence])
        gs.feed(packets(count=2000))
        gs.flush()
        assert silence.suppressed > 0
        assert gs.rts.heartbeats_suppressed == silence.suppressed
        assert gs.rts.heartbeats_sent > 0  # beats resumed after the window
        report = gs.overload_report()
        assert report["heartbeats_suppressed"] == silence.suppressed


class TestFaultSpecs:
    def test_round_trips(self):
        burst = parse_fault_spec("ring_burst:at=0.5,duration=0.2,drop=0.5")
        assert isinstance(burst, RingLossBurst)
        assert (burst.at, burst.duration, burst.drop_prob) == (0.5, 0.2, 0.5)
        storm = parse_fault_spec("channel_storm:at=1,duration=2,capacity=8")
        assert isinstance(storm, ChannelOverflowStorm)
        assert storm.capacity == 8
        skew = parse_fault_spec("clock_skew:iface=eth1,skew=0.25")
        assert isinstance(skew, ClockSkew)
        assert skew.interface == "eth1" and skew.skew_s == 0.25
        assert math.isinf(skew.duration)
        silence = parse_fault_spec("heartbeat_silence:at=2,duration=3")
        assert isinstance(silence, HeartbeatSilence)
        op = parse_fault_spec("operator_error:node=flows,at_tuple=100")
        assert isinstance(op, OperatorFault)
        assert (op.node, op.at_tuple) == ("flows", 100)

    def test_bad_specs_raise(self):
        for spec in ("nope:at=1", "ring_burst:at=1", "ring_burst:junk",
                     "operator_error:", "channel_storm:at=1,duration=1,"
                     "capacity=0"):
            with pytest.raises(ValueError):
                parse_fault_spec(spec)

    def test_engine_accepts_spec_strings(self):
        gs, subs = build_engine("flows")
        armed = gs.inject_faults(["heartbeat_silence:at=0.1,duration=0.2"])
        assert isinstance(armed[0], HeartbeatSilence)
        assert gs.rts.faults == armed
