"""Tests for address helpers and the captured-packet container."""

import pytest

from repro.net.packet import (
    CapturedPacket,
    bytes_to_mac,
    int_to_ip,
    ip_to_int,
    mac_to_bytes,
    read_u16,
    read_u32,
    read_u8,
)


class TestIpConversion:
    def test_round_trip(self):
        for text in ("0.0.0.0", "10.0.0.1", "192.168.255.254", "255.255.255.255"):
            assert int_to_ip(ip_to_int(text)) == text

    def test_known_value(self):
        assert ip_to_int("10.0.0.1") == 0x0A000001
        assert int_to_ip(0xC0A80101) == "192.168.1.1"

    def test_rejects_bad_quad(self):
        with pytest.raises(ValueError):
            ip_to_int("10.0.0")
        with pytest.raises(ValueError):
            ip_to_int("10.0.0.256")
        with pytest.raises(ValueError):
            ip_to_int("a.b.c.d")

    def test_rejects_out_of_range_int(self):
        with pytest.raises(ValueError):
            int_to_ip(-1)
        with pytest.raises(ValueError):
            int_to_ip(1 << 32)


class TestMacConversion:
    def test_round_trip(self):
        mac = "aa:bb:cc:00:11:22"
        assert bytes_to_mac(mac_to_bytes(mac)) == mac

    def test_rejects_short(self):
        with pytest.raises(ValueError):
            mac_to_bytes("aa:bb:cc")
        with pytest.raises(ValueError):
            bytes_to_mac(b"\x00\x01")


class TestCapturedPacket:
    def test_orig_len_defaults_to_data_length(self):
        packet = CapturedPacket(timestamp=1.0, data=b"abcdef")
        assert packet.orig_len == 6
        assert packet.caplen == 6
        assert not packet.truncated

    def test_truncate_produces_shorter_capture(self):
        packet = CapturedPacket(timestamp=1.0, data=b"abcdef")
        cut = packet.truncate(4)
        assert cut.caplen == 4
        assert cut.orig_len == 6
        assert cut.truncated
        assert cut.data == b"abcd"
        assert cut.interface == packet.interface

    def test_truncate_no_op_when_longer(self):
        packet = CapturedPacket(timestamp=1.0, data=b"abc")
        assert packet.truncate(10) is packet

    def test_explicit_orig_len_kept(self):
        packet = CapturedPacket(timestamp=0.0, data=b"ab", orig_len=100)
        assert packet.truncated
        assert packet.orig_len == 100


class TestReaders:
    def test_read_integers(self):
        data = bytes([0x01, 0x02, 0x03, 0x04, 0x05])
        assert read_u8(data, 0) == 0x01
        assert read_u16(data, 1) == 0x0203
        assert read_u32(data, 1) == 0x02030405
