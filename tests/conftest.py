"""Shared fixtures and helpers for the test suite."""

import pytest

from repro.gsql.codegen import ExprCompiler
from repro.gsql.functions import builtin_functions
from repro.gsql.parser import parse_query
from repro.gsql.planner import plan_query
from repro.gsql.schema import builtin_registry
from repro.gsql.semantic import analyze
from repro.net.build import build_tcp_frame, build_udp_frame, capture


@pytest.fixture(scope="session")
def registry():
    return builtin_registry()


@pytest.fixture(scope="session")
def functions():
    return builtin_functions()


@pytest.fixture
def compile_plan(registry, functions):
    """compile_plan(text, streams=None, params=None, mode=...) ->
    (analyzed, plan, compiler)"""

    def build(text, streams=None, params=None, mode="compiled"):
        analyzed = analyze(parse_query(text), registry, functions,
                           stream_resolver=(streams or {}).get)
        plan = plan_query(analyzed, functions)
        compiler = ExprCompiler(analyzed, functions, params, mode)
        return analyzed, plan, compiler

    return build


def tcp_packet(ts=0.0, src="10.0.0.1", dst="192.168.1.1", sport=1234,
               dport=80, payload=b"", interface="eth0", **kw):
    frame = build_tcp_frame(src, dst, sport, dport, payload=payload, **kw)
    return capture(frame, ts, interface)


def udp_packet(ts=0.0, src="10.0.0.1", dst="192.168.1.1", sport=53,
               dport=5353, payload=b"", interface="eth0"):
    frame = build_udp_frame(src, dst, sport, dport, payload=payload)
    return capture(frame, ts, interface)
