"""GSQL detectors scored against labeled attack scenarios.

End-to-end validation of the intrusion-detection use case: each
detector query must flag the injected anomaly (inside its ground-truth
window, at the right subject address) and stay quiet otherwise --
including on the flash-crowd negative control.
"""

import pytest

from repro import Gigascope
from repro.workloads.scenarios import flash_crowd, ping_sweep, port_scan, syn_flood

BUCKET = 5

SYN_DETECTOR = f"""
    DEFINE query_name syn_watch;
    Select tb, destIP, count(*)
    From tcp Where tcpflags & 18 = 2
    Group by time/{BUCKET} as tb, destIP
    Having count(*) > 500
"""

SCAN_DETECTOR = f"""
    DEFINE query_name scan_watch;
    Select tb, srcIP, count(*)
    From tcp Where tcpflags & 18 = 2
    Group by time/{BUCKET} as tb, srcIP
    Having count(*) > 300
"""

SWEEP_DETECTOR = f"""
    DEFINE query_name sweep_watch;
    Select tb, srcIP, count(*)
    From icmp Where icmp_type = 8
    Group by time/{BUCKET} as tb, srcIP
    Having count(*) > 100
"""


def run_detector(query, scenario):
    gs = Gigascope()
    gs.add_query(query)
    name = query.split("query_name")[1].split(";")[0].strip()
    sub = gs.subscribe(name)
    gs.start()
    gs.feed(scenario.packets)
    gs.flush()
    return sub.poll()


def assert_hits_in_window(alerts, scenario):
    assert alerts, "detector stayed silent through the attack"
    lo = scenario.window[0] // BUCKET
    hi = scenario.window[1] // BUCKET
    for tb, subject, _count in alerts:
        assert lo <= tb <= hi, (tb, scenario.window)
        assert subject == scenario.subject_ip


class TestDetectors:
    def test_syn_flood_detected(self):
        scenario = syn_flood(duration_s=40.0, background_mbps=6.0, pps=800.0)
        alerts = run_detector(SYN_DETECTOR, scenario)
        assert_hits_in_window(alerts, scenario)

    def test_port_scan_detected(self):
        scenario = port_scan(duration_s=40.0, background_mbps=6.0)
        alerts = run_detector(SCAN_DETECTOR, scenario)
        assert_hits_in_window(alerts, scenario)

    def test_ping_sweep_detected(self):
        scenario = ping_sweep(duration_s=45.0, background_mbps=6.0)
        alerts = run_detector(SWEEP_DETECTOR, scenario)
        assert_hits_in_window(alerts, scenario)

    def test_flash_crowd_not_flagged_as_scan(self):
        """The negative control: many legitimate clients of one server
        must not trip the per-source scan detector."""
        scenario = flash_crowd(duration_s=50.0, background_mbps=6.0)
        alerts = run_detector(SCAN_DETECTOR, scenario)
        assert alerts == []

    def test_syn_detector_quiet_on_clean_traffic(self):
        scenario = syn_flood(duration_s=30.0, attack_s=0.0,
                             background_mbps=6.0)  # background only
        alerts = run_detector(SYN_DETECTOR, scenario)
        assert alerts == []


class TestScenarioGroundTruth:
    def test_scenarios_reproducible(self):
        first = syn_flood(seed=99, duration_s=25.0, background_mbps=4.0)
        second = syn_flood(seed=99, duration_s=25.0, background_mbps=4.0)
        assert len(first.packets) == len(second.packets)
        assert first.packets[0].data == second.packets[0].data

    def test_window_and_subject_consistent(self):
        scenario = port_scan(duration_s=40.0, background_mbps=6.0)
        from repro.gsql.schema import PacketView
        inside = 0
        for packet in scenario.packets:
            view = PacketView(packet)
            if view.ip is not None and view.ip.src == scenario.subject_ip:
                assert scenario.window[0] <= packet.timestamp \
                    <= scenario.window[1] + 1
                inside += 1
        assert inside == scenario.detail["ports"]
