"""GSQL detectors scored against labeled attack scenarios.

End-to-end validation of the intrusion-detection use case: each
detector query must flag the injected anomaly (inside its ground-truth
window, at the right subject address) and stay quiet otherwise --
including on the flash-crowd negative control.
"""

import os
import subprocess
import sys

import pytest

from repro import Gigascope
from repro.workloads.scenarios import (
    dns_amplification,
    flash_crowd,
    ping_sweep,
    port_scan,
    syn_flood,
)

BUCKET = 5

SYN_DETECTOR = f"""
    DEFINE query_name syn_watch;
    Select tb, destIP, count(*)
    From tcp Where tcpflags & 18 = 2
    Group by time/{BUCKET} as tb, destIP
    Having count(*) > 500
"""

SCAN_DETECTOR = f"""
    DEFINE query_name scan_watch;
    Select tb, srcIP, count(*)
    From tcp Where tcpflags & 18 = 2
    Group by time/{BUCKET} as tb, srcIP
    Having count(*) > 300
"""

SWEEP_DETECTOR = f"""
    DEFINE query_name sweep_watch;
    Select tb, srcIP, count(*)
    From icmp Where icmp_type = 8
    Group by time/{BUCKET} as tb, srcIP
    Having count(*) > 100
"""

# Reflections are large UDP answers *from* port 53: per-destination
# byte rate catches them while per-source counts stay low.
AMP_DETECTOR = f"""
    DEFINE query_name amp_watch;
    Select tb, destIP, sum(len)
    From udp Where srcPort = 53
    Group by time/{BUCKET} as tb, destIP
    Having sum(len) > 500000
"""


def run_detector(query, scenario):
    gs = Gigascope()
    gs.add_query(query)
    name = query.split("query_name")[1].split(";")[0].strip()
    sub = gs.subscribe(name)
    gs.start()
    gs.feed(scenario.packets)
    gs.flush()
    return sub.poll()


def assert_hits_in_window(alerts, scenario):
    assert alerts, "detector stayed silent through the attack"
    lo = scenario.window[0] // BUCKET
    hi = scenario.window[1] // BUCKET
    for tb, subject, _count in alerts:
        assert lo <= tb <= hi, (tb, scenario.window)
        assert subject == scenario.subject_ip


class TestDetectors:
    def test_syn_flood_detected(self):
        scenario = syn_flood(duration_s=40.0, background_mbps=6.0, pps=800.0)
        alerts = run_detector(SYN_DETECTOR, scenario)
        assert_hits_in_window(alerts, scenario)

    def test_port_scan_detected(self):
        scenario = port_scan(duration_s=40.0, background_mbps=6.0)
        alerts = run_detector(SCAN_DETECTOR, scenario)
        assert_hits_in_window(alerts, scenario)

    def test_ping_sweep_detected(self):
        scenario = ping_sweep(duration_s=45.0, background_mbps=6.0)
        alerts = run_detector(SWEEP_DETECTOR, scenario)
        assert_hits_in_window(alerts, scenario)

    def test_dns_amplification_detected(self):
        scenario = dns_amplification(duration_s=40.0, background_mbps=6.0,
                                     pps=300.0)
        alerts = run_detector(AMP_DETECTOR, scenario)
        assert_hits_in_window(alerts, scenario)

    def test_flash_crowd_not_flagged_as_scan(self):
        """The negative control: many legitimate clients of one server
        must not trip the per-source scan detector."""
        scenario = flash_crowd(duration_s=50.0, background_mbps=6.0)
        alerts = run_detector(SCAN_DETECTOR, scenario)
        assert alerts == []

    def test_syn_detector_quiet_on_clean_traffic(self):
        scenario = syn_flood(duration_s=30.0, attack_s=0.0,
                             background_mbps=6.0)  # background only
        alerts = run_detector(SYN_DETECTOR, scenario)
        assert alerts == []


class TestScenarioGroundTruth:
    def test_scenarios_reproducible(self):
        first = syn_flood(seed=99, duration_s=25.0, background_mbps=4.0)
        second = syn_flood(seed=99, duration_s=25.0, background_mbps=4.0)
        assert len(first.packets) == len(second.packets)
        assert first.packets[0].data == second.packets[0].data

    def test_window_and_subject_consistent(self):
        scenario = port_scan(duration_s=40.0, background_mbps=6.0)
        from repro.gsql.schema import PacketView
        inside = 0
        for packet in scenario.packets:
            view = PacketView(packet)
            if view.ip is not None and view.ip.src == scenario.subject_ip:
                assert scenario.window[0] <= packet.timestamp \
                    <= scenario.window[1] + 1
                inside += 1
        assert inside == scenario.detail["ports"]

    def test_dns_amplification_ground_truth(self):
        scenario = dns_amplification(duration_s=30.0, start=8.0,
                                     attack_s=8.0, pps=100.0, reflectors=12,
                                     background_mbps=2.0)
        from repro.gsql.schema import PacketView
        sources = set()
        inside = 0
        for packet in scenario.packets:
            view = PacketView(packet)
            if view.ip is not None and view.ip.dst == scenario.subject_ip:
                # Every packet aimed at the victim is attack reflection:
                # from port 53, inside the labeled window.
                assert view.udp is not None and view.udp.src_port == 53
                assert scenario.window[0] <= packet.timestamp \
                    <= scenario.window[1] + 1
                sources.add(view.ip.src)
                inside += 1
        assert inside > 0
        assert 1 < len(sources) <= scenario.detail["reflectors"]
        assert scenario.kind == "dns_amplification"

    def test_labels_sane_across_corpus(self):
        small = dict(duration_s=12.0, start=4.0, background_mbps=2.0)
        scenarios = [
            syn_flood(attack_s=4.0, pps=150.0, **small),
            port_scan(scan_s=4.0, ports=80, **small),
            ping_sweep(sweep_s=4.0, hosts=40, **small),
            dns_amplification(attack_s=4.0, pps=80.0, reflectors=8, **small),
            flash_crowd(crowd_s=4.0, clients=16, **small),
        ]
        assert len({s.kind for s in scenarios}) == len(scenarios)
        for scenario in scenarios:
            lo, hi = scenario.window
            assert 0.0 <= lo < hi <= 12.0
            assert scenario.subject_ip > 0
            assert scenario.detail
            assert scenario.packets
            times = [p.timestamp for p in scenario.packets]
            assert times == sorted(times)


class TestHashSeedStability:
    """The corpus must be byte-identical under any PYTHONHASHSEED.

    Every generator draws randomness through the seeded registry in
    :mod:`repro.determinism`; nothing may iterate a set/dict of
    hash-randomized keys while building packets.
    """

    SNIPPET = """\
import hashlib
from repro.workloads import scenarios
small = dict(duration_s=12.0, start=4.0, background_mbps=2.0)
digest = hashlib.sha256()
for scenario in [
    scenarios.syn_flood(attack_s=4.0, pps=150.0, **small),
    scenarios.port_scan(scan_s=4.0, ports=80, **small),
    scenarios.ping_sweep(sweep_s=4.0, hosts=40, **small),
    scenarios.dns_amplification(attack_s=4.0, pps=80.0, reflectors=8,
                                **small),
    scenarios.flash_crowd(crowd_s=4.0, clients=16, **small),
]:
    for packet in scenario.packets:
        digest.update(repr((packet.timestamp, packet.data)).encode())
    digest.update(repr((scenario.window, scenario.subject_ip,
                        scenario.kind,
                        sorted(scenario.detail.items()))).encode())
print(digest.hexdigest())
"""

    def _digest(self, hash_seed):
        env = dict(os.environ, PYTHONHASHSEED=hash_seed)
        result = subprocess.run(
            [sys.executable, "-c", self.SNIPPET],
            capture_output=True, text=True, env=env, timeout=300)
        assert result.returncode == 0, result.stderr
        return result.stdout.strip()

    def test_packet_sequences_survive_hash_randomization(self):
        assert self._digest("1") == self._digest("2")
