"""Tests for the operational status report."""

from repro import Gigascope
from repro.report import engine_report
from tests.conftest import tcp_packet


def build_engine():
    gs = Gigascope()
    gs.add_queries("""
        DEFINE query_name base;
        Select time, destPort, len From tcp Where destPort = 80;

        DEFINE query_name counts;
        Select tb, count(*) From base Group by time/10 as tb
    """)
    return gs


class TestEngineReport:
    def test_report_before_start(self):
        gs = build_engine()
        text = engine_report(gs)
        assert "started: False" in text
        assert "base" in text and "counts" in text

    def test_report_reflects_traffic(self):
        gs = build_engine()
        sub = gs.subscribe("counts")
        gs.start()
        for i in range(25):
            gs.feed_packet(tcp_packet(ts=float(i),
                                      dport=80 if i % 5 else 22))
        gs.flush()
        text = engine_report(gs)
        assert "packets fed: 25" in text
        assert "packets_seen=25" in text
        # the port-22 packets were discarded by the LFTA predicate
        assert "discard" in text
        lines = [l for l in text.splitlines() if l.startswith("base")]
        assert lines, text

    def test_queued_channels_shown(self):
        gs = build_engine()
        sub = gs.subscribe("base")  # never polled
        gs.start()
        gs.feed_packet(tcp_packet(ts=1.0, dport=80))
        text = engine_report(gs)
        assert "channels with queued items:" in text
        assert "base->app" in text

    def test_overload_section_without_controller(self):
        gs = build_engine()
        gs.start()
        gs.feed_packet(tcp_packet(ts=1.0, dport=80))
        text = engine_report(gs)
        assert "overload" in text
        assert "policy: disabled" in text
        assert "shed_rate=1.000" in text

    def test_overload_section_with_shedding(self):
        gs = Gigascope(channel_capacity=4, heartbeat_interval=None)
        gs.add_queries("""
            DEFINE query_name pkts;
            Select time, destPort, len From tcp;

            DEFINE query_name counts;
            Select tb, count(*) From pkts Group by time/10 as tb
        """)
        gs.enable_shedding("static:0.5")
        gs.start()
        for i in range(50):
            gs.feed_packet(tcp_packet(ts=float(i)))
        gs.pump()
        text = engine_report(gs)
        assert "policy: static(rate=0.5)" in text or "static" in text
        assert "pressured cycles:" in text
        assert "packets shed:" in text
        # the overflowing channel shows up with its drop count
        assert "channel pkts->counts: dropped=" in text

    def test_report_and_stats_share_extras(self):
        """The drift bug: stats() and the report now read one tuple."""
        gs = build_engine()
        gs.start()
        for i in range(25):
            gs.feed_packet(tcp_packet(ts=float(i), dport=80))
        gs.pump()
        stats = gs.stats()
        text = engine_report(gs)
        assert stats["counts"]["open_groups"] >= 1
        assert f"open_groups={stats['counts']['open_groups']}" in text

    def test_extras_for_operators(self):
        gs = Gigascope(heartbeat_interval=None)
        gs.add_queries("""
            DEFINE query_name a; Select time, destPort From eth0.tcp;
            DEFINE query_name b; Select time, destPort From eth1.tcp;
            DEFINE query_name m; Merge a.time : b.time From a, b
        """)
        gs.start()
        gs.feed_packet(tcp_packet(ts=1.0, interface="eth0"))
        gs.pump()
        text = engine_report(gs)
        assert "buffered=1" in text  # merge holding back for eth1
