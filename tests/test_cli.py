"""Tests for the ``gsq`` command-line tool."""

import csv
import io
import sys

import pytest

from repro.cli import main
from repro.net.pcap import write_pcap
from tests.conftest import tcp_packet


@pytest.fixture
def trace(tmp_path):
    packets = [
        tcp_packet(ts=float(i), dport=80 if i % 2 else 443,
                   payload=b"GET / HTTP/1.1\r\n" if i % 2 else b"x")
        for i in range(20)
    ]
    path = tmp_path / "trace.pcap"
    write_pcap(str(path), packets)
    return str(path)


def run_cli(args, capsys):
    code = main(args)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestBasicRuns:
    def test_inline_query_csv(self, trace, capsys):
        code, out, _ = run_cli(
            ["--pcap", trace,
             "--query", "DEFINE query_name q; Select time, destPort "
                        "From tcp Where destPort = 80"],
            capsys)
        assert code == 0
        rows = list(csv.reader(io.StringIO(out.split("# q\n")[1])))
        assert rows[0] == ["time", "destPort"]
        assert len(rows) == 11  # header + 10 port-80 packets

    def test_query_file_and_output_dir(self, trace, tmp_path, capsys):
        qfile = tmp_path / "queries.gsql"
        qfile.write_text("""
            DEFINE query_name base;
            Select time, destPort, len From tcp;

            DEFINE query_name counts;
            Select tb, count(*) From base Group by time/5 as tb
        """)
        out_dir = tmp_path / "out"
        code, out, _ = run_cli(
            ["--pcap", trace, "--query-file", str(qfile),
             "--subscribe", "counts", "--output", str(out_dir)],
            capsys)
        assert code == 0
        with open(out_dir / "counts.csv") as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["tb", "cnt"]
        assert sum(int(r[1]) for r in rows[1:]) == 20

    def test_explain(self, capsys):
        code, out, _ = run_cli(
            ["--query", "DEFINE query_name q; Select time From tcp "
                        "Where destPort = 80", "--explain"],
            capsys)
        assert code == 0
        assert "LFTA" in out

    def test_pretty_ip(self, trace, capsys):
        code, out, _ = run_cli(
            ["--pcap", trace, "--pretty-ip",
             "--query", "DEFINE query_name q; Select destIP From tcp"],
            capsys)
        assert code == 0
        assert "192.168.1.1" in out

    def test_param(self, trace, capsys):
        code, out, _ = run_cli(
            ["--pcap", trace,
             "--query", "DEFINE query_name q; Select time From tcp "
                        "Where destPort = $port",
             "--param", "q.port=443"],
            capsys)
        assert code == 0
        body = out.split("# q\n")[1].strip().splitlines()
        assert len(body) == 11  # header + 10 rows

    def test_synthetic_source(self, capsys):
        code, out, _ = run_cli(
            ["--synthetic", "60x0.2",
             "--query", "DEFINE query_name q; Select tb, count(*) "
                        "From tcp Group by time/1 as tb"],
            capsys)
        assert code == 0
        assert "# q" in out

    def test_stats_flag(self, trace, capsys):
        code, _out, err = run_cli(
            ["--pcap", trace, "--stats",
             "--query", "DEFINE query_name q; Select time From tcp"],
            capsys)
        assert code == 0
        assert "node statistics" in err

    def test_shed_flag_prints_overload_report(self, trace, capsys):
        code, out, err = run_cli(
            ["--pcap", trace, "--shed", "static:0.5",
             "--channel-capacity", "8",
             "--query", "DEFINE query_name q; Select tb, count(*) "
                        "From tcp Group by time/5 as tb"],
            capsys)
        assert code == 0
        assert "# overload report" in err
        assert "shed_rate=0.500" in err
        # COUNT stays statistically correct: each kept packet carries
        # weight 1/rate, so the estimate lands near the 20 true packets.
        body = out.split("# q\n")[1].strip().splitlines()
        estimate = sum(float(line.split(",")[1]) for line in body[1:])
        assert 0 < estimate <= 40

    def test_shed_adaptive_runs_clean_when_unpressured(self, trace, capsys):
        code, _out, err = run_cli(
            ["--pcap", trace, "--shed", "adaptive",
             "--query", "DEFINE query_name q; Select time From tcp"],
            capsys)
        assert code == 0
        assert "# overload report" in err
        assert "shed_rate=1.000" in err  # 20 packets: never pressured


class TestObservabilityFlags:
    QUERY = ("DEFINE query_name q; Select time, destPort From tcp "
             "Where destPort = 80")

    def test_metrics_out_prom(self, trace, tmp_path, capsys):
        out_path = tmp_path / "metrics.prom"
        code, _out, err = run_cli(
            ["--pcap", trace, "--query", self.QUERY,
             "--metrics-out", str(out_path)],
            capsys)
        assert code == 0
        assert "metrics snapshot (prom)" in err
        text = out_path.read_text()
        assert "# TYPE gs_packets_fed_total counter" in text
        assert "gs_packets_fed_total 20" in text
        assert 'gs_node_tuples_out_total{node="q"} 10' in text

    def test_metrics_out_json(self, trace, tmp_path, capsys):
        import json
        out_path = tmp_path / "metrics.json"
        code, _out, _err = run_cli(
            ["--pcap", trace, "--query", self.QUERY,
             "--metrics-out", str(out_path), "--metrics-format", "json"],
            capsys)
        assert code == 0
        doc = json.loads(out_path.read_text())
        by_name = {m["name"]: m for m in doc["metrics"]}
        assert by_name["gs_packets_fed_total"]["samples"][0]["value"] == 20

    def test_trace_sample_and_out(self, trace, tmp_path, capsys):
        import json
        out_path = tmp_path / "spans.json"
        code, _out, err = run_cli(
            ["--pcap", trace, "--query", self.QUERY,
             "--trace-sample", "1.0", "--trace-out", str(out_path)],
            capsys)
        assert code == 0
        assert "sampled traces" in err
        doc = json.loads(out_path.read_text())
        assert doc["sample_rate"] == 1.0
        assert len(doc["traces"]) == 20
        stages = {event["stage"] for events in doc["traces"].values()
                  for event in events}
        assert {"feed", "lfta", "emit"} <= stages

    def test_trace_out_requires_sample(self, trace, capsys):
        with pytest.raises(SystemExit):
            main(["--pcap", trace, "--query", self.QUERY,
                  "--trace-out", "x.json"])

    def test_bad_trace_sample(self, trace, capsys):
        with pytest.raises(SystemExit):
            main(["--pcap", trace, "--query", self.QUERY,
                  "--trace-sample", "2.0"])


class TestErrors:
    def test_bad_query_reports_error(self, trace, capsys):
        code, _out, err = run_cli(
            ["--pcap", trace, "--query", "Select FROM nothing"],
            capsys)
        assert code == 1
        assert "query error" in err

    def test_semantic_error_reported(self, trace, capsys):
        code, _out, err = run_cli(
            ["--pcap", trace,
             "--query", "DEFINE query_name q; Select ghost From tcp"],
            capsys)
        assert code == 1
        assert "query error" in err

    def test_no_queries(self, capsys):
        with pytest.raises(SystemExit):
            main(["--pcap", "x.pcap"])

    def test_bad_param_format(self, trace, capsys):
        with pytest.raises(SystemExit):
            main(["--pcap", trace, "--query", "Select time From tcp",
                  "--param", "nonsense"])

    def test_bad_shed_policy(self, trace, capsys):
        with pytest.raises(SystemExit, match="bad --shed"):
            main(["--pcap", trace, "--query", "Select time From tcp",
                  "--shed", "bogus"])


class TestBatchKnobs:
    QUERY = "DEFINE query_name q; Select time From tcp Where destPort = 80"

    def test_batch_size_zero_exits_2(self, trace, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--pcap", trace, "--query", self.QUERY,
                  "--batch-size", "0"])
        assert excinfo.value.code == 2

    def test_batch_size_negative_exits_2(self, trace, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--pcap", trace, "--query", self.QUERY,
                  "--batch-size", "-4"])
        assert excinfo.value.code == 2

    @pytest.mark.parametrize("raw", ["banana", "-3", "0", "2.5", ""])
    def test_malformed_env_batch_size_exits_2(self, trace, capsys,
                                              monkeypatch, raw):
        monkeypatch.setenv("GS_BATCH_SIZE", raw)
        with pytest.raises(SystemExit) as excinfo:
            main(["--pcap", trace, "--query", self.QUERY])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "GS_BATCH_SIZE" in err

    def test_explicit_batch_size_overrides_bad_env(self, trace, capsys,
                                                   monkeypatch):
        monkeypatch.setenv("GS_BATCH_SIZE", "banana")
        code, out, _ = run_cli(
            ["--pcap", trace, "--query", self.QUERY, "--batch-size", "8"],
            capsys)
        assert code == 0
        assert "# q" in out

    def test_no_columnar_matches_columnar_output(self, trace, capsys):
        code_col, out_col, _ = run_cli(
            ["--pcap", trace, "--query", self.QUERY], capsys)
        code_row, out_row, _ = run_cli(
            ["--pcap", trace, "--query", self.QUERY, "--no-columnar"],
            capsys)
        assert code_col == code_row == 0
        assert out_col == out_row


class TestMultiplePcaps:
    def test_two_traces_two_interfaces(self, tmp_path, capsys):
        east = [tcp_packet(ts=float(i), interface="x") for i in range(5)]
        west = [tcp_packet(ts=i + 0.5, interface="x") for i in range(5)]
        east_path = tmp_path / "east.pcap"
        west_path = tmp_path / "west.pcap"
        write_pcap(str(east_path), east)
        write_pcap(str(west_path), west)
        code, out, _ = run_cli(
            [
                "--pcap", f"{east_path}:eth0",
                "--pcap", f"{west_path}:eth1",
                "--query", """
                    DEFINE query_name e0; Select time, destIP From eth0.tcp;
                    DEFINE query_name e1; Select time, destIP From eth1.tcp;
                    DEFINE query_name m;
                    Merge e0.time : e1.time From e0, e1
                """,
                "--subscribe", "m",
            ],
            capsys)
        assert code == 0
        body = out.split("# m\n")[1].strip().splitlines()
        assert len(body) == 11  # header + 10 merged rows
        times = [int(line.split(",")[0]) for line in body[1:]]
        assert times == sorted(times)


class TestAlertFlags:
    QUERY = ("DEFINE query_name q; Select tb, count(*) as hits "
             "From tcp Group by time/5 as tb")

    def test_alert_raises_and_reports(self, trace, capsys):
        code, out, err = run_cli(
            ["--pcap", trace, "--query", self.QUERY,
             "--alert", "burst:on=q,when=sum(hits) > 1,epoch=5",
             "--subscribe", "alerts"],
            capsys)
        assert code == 0
        assert "# alert report" in err
        assert "trigger burst" in err
        assert "when=[sum(hits) > 1]" in err
        assert "RAISE" in out

    def test_alert_out_writes_jsonl(self, trace, tmp_path, capsys):
        import json
        path = tmp_path / "alerts.jsonl"
        code, _out, err = run_cli(
            ["--pcap", trace, "--query", self.QUERY,
             "--alert", "burst:on=q,when=sum(hits) > 1,epoch=5",
             "--alert-out", str(path)],
            capsys)
        assert code == 0
        assert "alert stream ->" in err
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        assert records
        assert records[0]["trigger"] == "burst"
        assert records[0]["kind"] == "RAISE"
        assert records[0]["severity"] == "warning"

    def test_bad_alert_condition_exits_2_naming_field(self, trace, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--pcap", trace, "--query", self.QUERY,
                  "--alert", "burst:on=q,when=delta(count(*), inf) > 1"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "bad --alert" in err
        assert "when" in err and "unbounded" in err

    def test_unknown_alert_query_exits_2_naming_field(self, trace, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--pcap", trace, "--query", self.QUERY,
                  "--alert", "burst:on=ghost,when=count(*) > 1"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "bad --alert" in err
        assert "on: unknown query" in err

    def test_bad_alert_severity_exits_2_naming_field(self, trace, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--pcap", trace, "--query", self.QUERY,
                  "--alert", "burst:on=q,when=count(*) > 1,severity=panic"])
        assert excinfo.value.code == 2
        assert "severity" in capsys.readouterr().err

    def test_alert_out_requires_alert(self, trace, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--pcap", trace, "--query", self.QUERY,
                  "--alert-out", "alerts.jsonl"])
        assert excinfo.value.code == 2
        assert "--alert-out requires --alert" in capsys.readouterr().err


class TestRecoveryFlags:
    QUERY = ("DEFINE query_name q; Select tb, count(*) "
             "From tcp Group by time/5 as tb")

    def test_recover_runs_and_prints_report(self, trace, capsys):
        code, out, err = run_cli(
            ["--pcap", trace, "--query", self.QUERY, "--recover",
             "--fault", "operator_error:node=q,at_tuple=3,times=1"],
            capsys)
        assert code == 0
        assert "# recovery report" in err
        assert "restarted q: 1 attempt(s)" in err
        # Output identical to an undisturbed run.
        clean_code, clean_out, _ = run_cli(
            ["--pcap", trace, "--query", self.QUERY], capsys)
        assert clean_code == 0
        assert out == clean_out

    def test_checkpoint_interval_implies_recover(self, trace, capsys):
        code, _out, err = run_cli(
            ["--pcap", trace, "--query", self.QUERY,
             "--checkpoint-interval", "2.5"],
            capsys)
        assert code == 0
        assert "# recovery report" in err

    def test_bad_checkpoint_interval_exits_2_naming_field(self, trace,
                                                          capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--pcap", trace, "--query", self.QUERY,
                  "--checkpoint-interval", "0"])
        assert excinfo.value.code == 2
        assert "--checkpoint-interval" in capsys.readouterr().err

    def test_bad_max_restarts_exits_2_naming_field(self, trace, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--pcap", trace, "--query", self.QUERY,
                  "--max-restarts", "-1"])
        assert excinfo.value.code == 2
        assert "--max-restarts" in capsys.readouterr().err

    def test_bad_fault_exits_2_naming_field(self, trace, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--pcap", trace, "--query", self.QUERY,
                  "--fault", "operator_error:junk"])
        assert excinfo.value.code == 2
        assert "bad --fault" in capsys.readouterr().err

    def test_unknown_fault_kind_exits_2(self, trace, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--pcap", trace, "--query", self.QUERY,
                  "--fault", "gremlins:at=1"])
        assert excinfo.value.code == 2
        assert "unknown fault kind" in capsys.readouterr().err


class TestTelemetryFlags:
    QUERY = ("DEFINE query_name q; Select tb, count(*) as hits "
             "From tcp Group by time/5 as tb")

    def test_telemetry_runs_and_prints_report(self, trace, capsys):
        code, _out, err = run_cli(
            ["--pcap", trace, "--query", self.QUERY, "--telemetry"],
            capsys)
        assert code == 0
        assert "# telemetry report" in err
        assert "_gs_channel" in err
        assert "profiler:" in err

    def test_meta_query_over_telemetry_stream(self, trace, capsys):
        code, out, _err = run_cli(
            ["--pcap", trace, "--telemetry",
             "--query", self.QUERY,
             "--query", "DEFINE query_name chan; "
                        "Select time, channel, depth From _gs_channel",
             "--subscribe", "chan"],
            capsys)
        assert code == 0
        body = out.split("# chan\n")[1]
        rows = list(csv.reader(io.StringIO(body)))
        assert rows[0] == ["time", "channel", "depth"]
        assert len(rows) > 1

    def test_telemetry_out_writes_jsonl(self, trace, tmp_path, capsys):
        import json
        path = tmp_path / "telemetry.jsonl"
        code, _out, err = run_cli(
            ["--pcap", trace, "--query", self.QUERY,
             "--telemetry", "--telemetry-out", str(path)],
            capsys)
        assert code == 0
        assert "telemetry streams ->" in err
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        assert records
        streams = {record["stream"] for record in records}
        assert {"_gs_channel", "_gs_operator", "_gs_shed",
                "_gs_recovery", "_gs_alert"} <= streams
        operator = next(r for r in records
                        if r["stream"] == "_gs_operator")
        assert {"time", "operator", "tuples_in", "cost_us"} <= set(operator)

    def test_telemetry_interval_implies_telemetry(self, trace, capsys):
        code, _out, err = run_cli(
            ["--pcap", trace, "--query", self.QUERY,
             "--telemetry-interval", "0.5"],
            capsys)
        assert code == 0
        assert "# telemetry report" in err

    def test_telemetry_out_requires_telemetry(self, trace, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--pcap", trace, "--query", self.QUERY,
                  "--telemetry-out", "t.jsonl"])
        assert excinfo.value.code == 2
        assert ("--telemetry-out requires --telemetry"
                in capsys.readouterr().err)

    def test_bad_telemetry_interval_exits_2(self, trace, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--pcap", trace, "--query", self.QUERY,
                  "--telemetry-interval", "-1"])
        assert excinfo.value.code == 2
        assert "--telemetry-interval" in capsys.readouterr().err

    def test_telemetry_and_metrics_same_path_exits_2_naming_both(
            self, trace, tmp_path, capsys):
        path = str(tmp_path / "out.txt")
        with pytest.raises(SystemExit) as excinfo:
            main(["--pcap", trace, "--query", self.QUERY,
                  "--telemetry", "--telemetry-out", path,
                  "--metrics-out", path])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--metrics-out" in err and "--telemetry-out" in err

    def test_trace_and_metrics_same_path_exits_2_naming_both(
            self, trace, tmp_path, capsys):
        path = str(tmp_path / "out.txt")
        with pytest.raises(SystemExit) as excinfo:
            main(["--pcap", trace, "--query", self.QUERY,
                  "--trace-sample", "0.5", "--trace-out", path,
                  "--metrics-out", path])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--trace-out" in err and "--metrics-out" in err

    def test_distinct_output_paths_accepted(self, trace, tmp_path, capsys):
        code, _out, err = run_cli(
            ["--pcap", trace, "--query", self.QUERY,
             "--telemetry", "--telemetry-out", str(tmp_path / "t.jsonl"),
             "--metrics-out", str(tmp_path / "m.prom")],
            capsys)
        assert code == 0
        assert (tmp_path / "t.jsonl").exists()
        assert (tmp_path / "m.prom").exists()

    def test_meta_alert_over_telemetry_stream(self, trace, capsys):
        # A PR 6 trigger reads a _gs_* stream unmodified: always-true
        # condition over _gs_shed proves the wiring end to end.
        code, out, err = run_cli(
            ["--pcap", trace, "--query", self.QUERY, "--telemetry",
             "--alert", "meta:on=_gs_shed,when=count(*) >= 1,epoch=5",
             "--subscribe", "alerts"],
            capsys)
        assert code == 0
        assert "# alert report" in err
        assert "on=_gs_shed" in err
        assert "RAISE" in out


class TestReplicationFlags:
    QUERY = ("DEFINE query_name q; Select tb, count(*) "
             "From tcp Group by time/5 as tb")

    def test_standby_run_is_invisible_and_reports(self, trace, capsys):
        code, out, err = run_cli(
            ["--pcap", trace, "--query", self.QUERY,
             "--standby", "--replicate", "2"],
            capsys)
        assert code == 0
        assert "# replication report" in err
        assert "promoted=False" in err
        clean_code, clean_out, _ = run_cli(
            ["--pcap", trace, "--query", self.QUERY], capsys)
        assert clean_code == 0
        assert out == clean_out

    def test_promotion_run_end_to_end(self, trace, tmp_path, capsys):
        log = tmp_path / "repl.log"
        code, out, err = run_cli(
            ["--pcap", trace, "--query", self.QUERY,
             "--replicate", "2", "--promote-after", "0.5",
             "--replicate-log", str(log),
             "--fault", "heartbeat_silence:at=5,duration=60"],
            capsys)
        assert code == 0
        assert "promoted=True" in err
        assert "heartbeat silence" in err
        assert "rto_wall_s=" in err
        assert f"replication log -> {log}" in err
        assert log.read_bytes()[4:8] == b"GSCK"
        clean_code, clean_out, _ = run_cli(
            ["--pcap", trace, "--query", self.QUERY], capsys)
        assert clean_code == 0
        assert out == clean_out

    def test_replicate_implies_standby(self, trace, capsys):
        code, _out, err = run_cli(
            ["--pcap", trace, "--query", self.QUERY, "--replicate", "0"],
            capsys)
        assert code == 0
        assert "# replication report" in err

    def test_standby_with_shards_exits_2(self, trace, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--pcap", trace, "--query", self.QUERY,
                  "--standby", "--shards", "2"])
        assert excinfo.value.code == 2
        assert "--standby" in capsys.readouterr().err

    @pytest.mark.parametrize("bad", ["banana", "-1", "nan"])
    def test_malformed_replicate_exits_2_naming_flag(self, trace, bad,
                                                     capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--pcap", trace, "--query", self.QUERY,
                  "--replicate", bad])
        assert excinfo.value.code == 2
        assert "--replicate" in capsys.readouterr().err

    def test_malformed_env_cadence_exits_2_naming_env(self, trace, capsys,
                                                      monkeypatch):
        monkeypatch.setenv("GS_REPLICATE", "lots")
        with pytest.raises(SystemExit) as excinfo:
            main(["--pcap", trace, "--query", self.QUERY, "--standby"])
        assert excinfo.value.code == 2
        assert "GS_REPLICATE" in capsys.readouterr().err

    def test_negative_promote_after_exits_2(self, trace, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--pcap", trace, "--query", self.QUERY,
                  "--promote-after", "-0.5"])
        assert excinfo.value.code == 2
        assert "--promote-after" in capsys.readouterr().err

    def test_replicate_log_path_collision_exits_2(self, trace, tmp_path,
                                                  capsys):
        path = str(tmp_path / "same.out")
        with pytest.raises(SystemExit) as excinfo:
            main(["--pcap", trace, "--query", self.QUERY,
                  "--replicate-log", path, "--metrics-out", path])
        assert excinfo.value.code == 2
        assert "same.out" in capsys.readouterr().err

    def test_standby_refuses_control_plane_flags(self, trace, capsys):
        for extra in (["--shed", "static:0.5"], ["--recover"],
                      ["--telemetry"], ["--alert", "a:on=q,when=count(*)>1"]):
            with pytest.raises(SystemExit) as excinfo:
                main(["--pcap", trace, "--query", self.QUERY,
                      "--standby"] + extra)
            assert excinfo.value.code == 2
            assert "--standby" in capsys.readouterr().err
