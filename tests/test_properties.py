"""Cross-cutting property-based tests of core invariants.

These exercise the central correctness claims of the system:

1. The LFTA/HFTA aggregate split (with *any* eviction pattern) equals a
   direct single-pass aggregation.
2. The merge operator's output is nondecreasing on the merge attribute
   for any interleaving of ordered inputs.
3. The windowed join equals a brute-force nested loop for any ordered
   inputs.
4. The ordered flush never closes a group that could still be updated.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.heartbeat import FLUSH


# ---------------------------------------------------------------------------
# 1. Full pipeline: LFTA partial agg + HFTA superaggregate == reference
# ---------------------------------------------------------------------------

@st.composite
def timed_events(draw):
    """(time, key, value) events with nondecreasing times."""
    count = draw(st.integers(min_value=1, max_value=120))
    times = sorted(draw(st.lists(st.integers(0, 500), min_size=count,
                                 max_size=count)))
    events = []
    for t in times:
        key = draw(st.integers(0, 5))
        value = draw(st.integers(0, 100))
        events.append((t, key, value))
    return events


class TestSplitAggregationProperty:
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(events=timed_events(), table_size=st.sampled_from([1, 2, 4, 64]))
    def test_split_equals_reference(self, events, table_size, compile_plan):
        analyzed, plan, compiler = compile_plan(
            "DEFINE query_name q; Select tb, k, count(*), sum(len) From tcp "
            "Group by time/60 as tb, destPort as k")
        from repro.operators.aggregation import AggregationNode
        from repro.operators.lfta import LftaNode

        lfta = LftaNode(plan.lftas[0], analyzed, compiler,
                        table_size=table_size)
        hfta = AggregationNode(plan.hfta, analyzed, compiler)
        channel = lfta.subscribe()
        tap = hfta.subscribe()

        # Drive the LFTA with synthetic protocol rows via its aggregation
        # internals: emulate interpretation by injecting rows directly.
        tcp = plan.lftas[0].protocol
        width = len(tcp)
        t_slot = tcp.index_of("time")
        p_slot = tcp.index_of("destPort")
        l_slot = tcp.index_of("len")
        for t, key, value in events:
            row = [0] * width
            row[t_slot] = t
            row[p_slot] = key
            row[l_slot] = value
            lfta.stats.tuples_in += 1
            lfta._aggregate(tuple(row))
        lfta.flush()
        lfta.emit_flush()
        for item in channel.drain():
            hfta.dispatch(item, 0)

        rows = [item for item in tap.drain() if type(item) is tuple]
        got = {(tb, k): (cnt, total) for tb, k, cnt, total in rows}

        reference = {}
        for t, key, value in events:
            entry = reference.setdefault((t // 60, key), [0, 0])
            entry[0] += 1
            entry[1] += value
        assert got == {k: tuple(v) for k, v in reference.items()}


# ---------------------------------------------------------------------------
# 2. Merge output ordering
# ---------------------------------------------------------------------------

class TestMergeProperty:
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(streams=st.lists(st.lists(st.integers(0, 300), min_size=0,
                                   max_size=80), min_size=2, max_size=4),
           rng=st.randoms(use_true_random=False))
    def test_output_nondecreasing_and_complete(self, streams, rng,
                                               compile_plan):
        from repro.operators.merge import MergeNode
        streams = [sorted(s) for s in streams]
        nway = len(streams)
        _, base_plan, _ = compile_plan(
            "DEFINE query_name s0; Select time, destPort From tcp")
        schema = base_plan.output_schema
        names = [f"s{i}" for i in range(nway)]
        columns = " : ".join(f"{n}.time" for n in names)
        analyzed, plan, _compiler = compile_plan(
            f"DEFINE query_name m; Merge {columns} From {', '.join(names)}",
            streams={n: schema for n in names})
        node = MergeNode(plan.hfta, analyzed)
        tap = node.subscribe()

        # Interleave deliveries randomly while preserving per-input order.
        cursors = [0] * nway
        live = [i for i in range(nway) if streams[i]]
        while live:
            side = rng.choice(live)
            node.dispatch((streams[side][cursors[side]], side), side)
            cursors[side] += 1
            if cursors[side] == len(streams[side]):
                live.remove(side)
        for side in range(nway):
            node.dispatch(FLUSH, side)

        rows = [item for item in tap.drain() if type(item) is tuple]
        times = [r[0] for r in rows]
        assert times == sorted(times)
        expected = sorted(t for s in streams for t in s)
        assert times == expected


# ---------------------------------------------------------------------------
# 3. Windowed join equals brute force
# ---------------------------------------------------------------------------

class TestJoinProperty:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(left=st.lists(st.integers(0, 120), min_size=0, max_size=50),
           right=st.lists(st.integers(0, 120), min_size=0, max_size=50),
           width=st.integers(0, 3))
    def test_band_join_equals_nested_loop(self, left, right, width,
                                          compile_plan):
        from repro.operators.join import JoinNode
        left, right = sorted(left), sorted(right)
        _, base_plan, _ = compile_plan(
            "DEFINE query_name s; Select time, destPort From tcp")
        schema = base_plan.output_schema
        text = (
            "DEFINE query_name j; Select A.time, A.destPort, B.destPort "
            "From sa A, sb B "
            f"Where A.time >= B.time - {width} and A.time <= B.time + {width}"
        )
        analyzed, plan, compiler = compile_plan(
            text, streams={"sa": schema, "sb": schema})
        node = JoinNode(plan.hfta, analyzed, compiler)
        tap = node.subscribe()

        events = [((t, i), 0) for i, t in enumerate(left)]
        events += [((t, j), 1) for j, t in enumerate(right)]
        events.sort(key=lambda e: (e[0][0], e[1]))
        for row, side in events:
            node.dispatch(row, side)
        node.dispatch(FLUSH, 0)
        node.dispatch(FLUSH, 1)

        rows = sorted(item for item in tap.drain() if type(item) is tuple)
        expected = sorted(
            (a, i, j)
            for i, a in enumerate(left)
            for j, b in enumerate(right)
            if -width <= a - b <= width
        )
        assert rows == expected


# ---------------------------------------------------------------------------
# 4. Ordered flush safety
# ---------------------------------------------------------------------------

class TestFlushSafety:
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(events=timed_events())
    def test_no_group_closed_early(self, events, compile_plan):
        """Every update must land in exactly one emitted group: if a
        group were flushed too early, a later update would open a second
        output row for the same key."""
        from repro.operators.aggregation import AggregationNode
        _, base_plan, _ = compile_plan(
            "DEFINE query_name base; Select time, len From tcp")
        analyzed, plan, compiler = compile_plan(
            "DEFINE query_name q; Select tb, count(*) From base "
            "Group by time/60 as tb",
            streams={"base": base_plan.output_schema})
        node = AggregationNode(plan.hfta, analyzed, compiler)
        tap = node.subscribe()
        for t, _key, value in events:
            node.dispatch((t, value), 0)
        node.dispatch(FLUSH, 0)
        rows = [item for item in tap.drain() if type(item) is tuple]
        buckets = [row[0] for row in rows]
        assert len(buckets) == len(set(buckets))
        assert sum(row[1] for row in rows) == len(events)
