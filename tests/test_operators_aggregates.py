"""Tests for the aggregate state machinery (sub/super-aggregate split)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gsql.ast_nodes import AggCall, Column
from repro.operators.aggregates import AggregateOps, partial_layout


def make_ops(*names):
    """AggregateOps over rows that are (value,) 1-tuples."""
    aggregates = [
        AggCall(name, None if name == "COUNT" else Column("v"))
        for name in names
    ]
    arg_fns = [None if name == "COUNT" else (lambda row: row[0])
               for name in names]
    return AggregateOps(aggregates, arg_fns)


class TestLayout:
    def test_avg_takes_two_slots(self):
        aggregates = [AggCall("COUNT", None), AggCall("AVG", Column("v")),
                      AggCall("SUM", Column("v"))]
        assert partial_layout(aggregates) == [1, 2, 1]

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValueError):
            AggregateOps([AggCall("COUNT", None)], [])


class TestDirectAccumulation:
    def test_all_aggregates(self):
        ops = make_ops("COUNT", "SUM", "MIN", "MAX", "AVG")
        state = ops.new_state()
        for value in (5, 1, 9, 3):
            ops.update(state, (value,))
        assert ops.final_values(state) == (4, 18, 1, 9, 4.5)

    def test_avg_of_nothing_is_zero(self):
        ops = make_ops("AVG")
        assert ops.final_values(ops.new_state()) == (0.0,)

    def test_min_max_single_value(self):
        ops = make_ops("MIN", "MAX")
        state = ops.new_state()
        ops.update(state, (7,))
        assert ops.final_values(state) == (7, 7)


class TestPartialCombine:
    def test_partials_round_trip(self):
        ops = make_ops("COUNT", "SUM", "MIN", "MAX", "AVG")
        state = ops.new_state()
        for value in (2, 8, 4):
            ops.update(state, (value,))
        partials = ops.partials(state)
        assert len(partials) == ops.partial_width == 6
        combined = ops.new_state()
        ops.combine(combined, partials)
        assert ops.final_values(combined) == ops.final_values(state)

    def test_combining_two_partials(self):
        ops = make_ops("COUNT", "SUM", "MIN", "MAX", "AVG")
        left, right = ops.new_state(), ops.new_state()
        for value in (1, 2, 3):
            ops.update(left, (value,))
        for value in (10, 20):
            ops.update(right, (value,))
        total = ops.new_state()
        ops.combine(total, ops.partials(left))
        ops.combine(total, ops.partials(right))
        assert ops.final_values(total) == (5, 36, 1, 20, 7.2)

    @given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=60),
           st.data())
    def test_any_split_equals_direct(self, values, data):
        """Splitting the stream at arbitrary points (LFTA evictions) and
        recombining (HFTA) must equal direct aggregation -- the core
        correctness property of the aggregate query splitting."""
        ops = make_ops("COUNT", "SUM", "MIN", "MAX", "AVG")
        direct = ops.new_state()
        for value in values:
            ops.update(direct, (value,))

        combined = ops.new_state()
        cursor = 0
        while cursor < len(values):
            size = data.draw(st.integers(1, len(values) - cursor))
            chunk = ops.new_state()
            for value in values[cursor:cursor + size]:
                ops.update(chunk, (value,))
            ops.combine(combined, ops.partials(chunk))
            cursor += size

        direct_final = ops.final_values(direct)
        combined_final = ops.final_values(combined)
        assert direct_final[:4] == combined_final[:4]
        assert direct_final[4] == pytest.approx(combined_final[4])
