"""Tests for the unified observability layer (repro.obs)."""

import json
import re

import pytest

from repro import Gigascope
from repro.nic.nic import Nic
from repro.obs import (
    NODE_EXTRA_ATTRS,
    MetricError,
    MetricsRegistry,
    Tracer,
    trace_key,
)
from tests.conftest import tcp_packet

_LABEL = r'[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
PROM_SAMPLE_RE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{%s(,%s)*\})? \S+$' % (_LABEL, _LABEL))


def parse_prometheus(text):
    """Parse exposition text into {name{labels}: float}; asserts every
    line is well-formed (the 'does it parse' half of the test)."""
    values = {}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("#"):
            assert line.startswith(("# HELP ", "# TYPE ")), line
            continue
        assert PROM_SAMPLE_RE.match(line), f"bad sample line: {line!r}"
        key, value = line.rsplit(" ", 1)
        values[key] = float("inf") if value == "+Inf" else float(value)
    return values


class TestRegistry:
    def test_counter_and_gauge(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "a counter")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(MetricError):
            counter.unlabeled.inc(-1)
        gauge = registry.gauge("g", "a gauge")
        gauge.set(2.5)
        gauge.unlabeled.dec(0.5)
        assert gauge.value == 2.0

    def test_labels(self):
        registry = MetricsRegistry()
        family = registry.counter("rows_total", "rows", labels=("node",))
        family.labels(node="a").inc(3)
        family.labels(node="b").inc(1)
        assert family.labels(node="a").value == 3
        with pytest.raises(MetricError):
            family.labels(wrong="x")
        with pytest.raises(MetricError):
            family.inc()  # labeled family has no unlabeled child

    def test_histogram_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat_us", "latency",
                                  buckets=(10.0, 100.0, 1000.0))
        for value in (5, 50, 500, 5000):
            hist.observe(value)
        child = hist.unlabeled
        assert child.count == 4
        assert child.sum == 5555
        # cumulative: <=10 -> 1, <=100 -> 2, <=1000 -> 3, +Inf -> 4
        assert child.bucket_counts() == [
            (10.0, 1), (100.0, 2), (1000.0, 3), (float("inf"), 4)]

    def test_bucket_boundary_is_inclusive(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", "", buckets=(10.0,))
        hist.observe(10.0)
        assert hist.unlabeled.bucket_counts()[0] == (10.0, 1)

    def test_reregistration_idempotent_but_kind_checked(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total", "x")
        assert registry.counter("x_total", "x") is first
        with pytest.raises(MetricError):
            registry.gauge("x_total", "x")
        with pytest.raises(MetricError):
            registry.counter("bad name", "x")

    def test_prometheus_text_parses(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "with \"quotes\"",
                         labels=("node",)).labels(node='q"0"').inc()
        registry.gauge("b", "gauge").set(1.5)
        registry.histogram("h_us", "hist", buckets=(1.0, 10.0)).observe(3)
        values = parse_prometheus(registry.to_prometheus())
        assert values['a_total{node="q\\"0\\""}'] == 1
        assert values["b"] == 1.5
        assert values['h_us_bucket{le="10"}'] == 1
        assert values['h_us_bucket{le="+Inf"}'] == 1
        assert values["h_us_count"] == 1

    def test_json_round_trips(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "a", labels=("k",)).labels(k="v").inc(7)
        registry.histogram("h_us", "h", buckets=(5.0,)).observe(2)
        doc = json.loads(registry.to_json())
        assert doc == registry.to_dict()
        by_name = {m["name"]: m for m in doc["metrics"]}
        assert by_name["a_total"]["type"] == "counter"
        assert by_name["a_total"]["samples"][0] == {
            "labels": {"k": "v"}, "value": 7}
        hist = by_name["h_us"]["samples"][0]
        assert hist["count"] == 1 and hist["buckets"][-1][0] == "+Inf"

    def test_collectors_run_lazily(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("sampled", "")
        calls = []
        registry.add_collector(lambda: (calls.append(1), gauge.set(42)))
        assert not calls
        assert registry.snapshot()["sampled"][()] == 42
        assert len(calls) == 1


def build_engine(**kw):
    gs = Gigascope(**kw)
    gs.add_queries("""
        DEFINE query_name base;
        Select time, destPort, len From tcp Where destPort = 80;

        DEFINE query_name counts;
        Select tb, count(*) From base Group by time/10 as tb
    """)
    return gs


def feed(gs, n=25):
    gs.start()
    for i in range(n):
        gs.feed_packet(tcp_packet(ts=float(i), dport=80 if i % 5 else 22))
    gs.flush()


class TestEngineMetrics:
    def test_counters_match_stats(self):
        gs = build_engine()
        sub = gs.subscribe("counts")
        feed(gs)
        stats = gs.stats()
        values = parse_prometheus(gs.metrics.to_prometheus())
        assert values["gs_packets_fed_total"] == 25
        for node in ("base", "counts"):
            for stat in ("tuples_in", "tuples_out", "discarded"):
                assert (values[f'gs_node_{stat}_total{{node="{node}"}}']
                        == stats[node][stat]), (node, stat)
        assert (values['gs_node_extra{node="base",stat="packets_seen"}']
                == stats["base"]["packets_seen"] == 25)
        # channel metrics mirror the per-channel stats() nesting
        channel = 'counts->app'
        assert (values[f'gs_channel_pushed_total{{channel="{channel}"}}']
                == stats["counts"]["channels"][channel]["pushed"])

    def test_pump_cycle_histogram_records_virtual_time(self):
        gs = build_engine()
        feed(gs)
        hist = gs.metrics.get("gs_pump_cycle_virtual_us").unlabeled
        assert hist.count >= 1
        # 20 port-80 packets crossed the LFTA->HFTA channel at
        # hfta_tuple_us each (plus punctuation dispatches)
        assert hist.sum >= 20 * gs.rts.cost_model.hfta_tuple_us

    def test_metrics_disabled(self):
        gs = build_engine(metrics=False)
        sub = gs.subscribe("counts")
        feed(gs)
        assert gs.metrics is None
        assert sub.poll()  # pipeline unaffected

    def test_stats_includes_report_extras(self):
        """The extras tuple is defined once: stats() now carries the
        operator counters the report shows (the old drift bug)."""
        assert {"reorder_peak", "open_groups", "sessions_emitted"} <= set(
            NODE_EXTRA_ATTRS)
        gs = Gigascope(heartbeat_interval=None)
        gs.add_queries("""
            DEFINE query_name pkts;
            Select time, destPort, len From tcp;

            DEFINE query_name counts;
            Select tb, count(*) From pkts Group by time/10 as tb
        """)
        gs.start()
        for i in range(5):
            gs.feed_packet(tcp_packet(ts=float(i)))
        gs.pump()
        assert gs.stats()["counts"]["open_groups"] == 1

    def test_removed_node_leaves_exposition(self):
        gs = build_engine()
        feed(gs)
        gs.remove_query("counts")
        gs.stop()  # the LFTA batch restriction: stop before removing one
        gs.remove_query("base")
        values = parse_prometheus(gs.metrics.to_prometheus())
        assert not any("node=" in key for key in values)

    def test_nic_metrics(self):
        gs = Gigascope()
        nic = Nic(ring_slots=4, service_us=100.0)
        gs.observe_nic(nic, name="card0")
        for i in range(10):
            nic.receive(tcp_packet(ts=i * 1e-6), now_us=float(i))
        values = parse_prometheus(gs.metrics.to_prometheus())
        assert values['gs_nic_received_total{nic="card0"}'] == 10
        assert values['gs_nic_ring_dropped_total{nic="card0"}'] == \
            nic.stats.ring_dropped > 0
        assert values['gs_nic_ring_occupancy{nic="card0"}'] == \
            nic.ring_occupancy


class TestControlPlaneGauges:
    def test_pressure_and_shed_gauges(self):
        gs = Gigascope(channel_capacity=4, heartbeat_interval=None)
        gs.add_queries("""
            DEFINE query_name pkts;
            Select time, destPort, len From tcp;

            DEFINE query_name counts;
            Select tb, count(*) From pkts Group by time/10 as tb
        """)
        gs.enable_shedding("static:0.5")
        gs.start()
        for i in range(25):
            gs.feed_packet(tcp_packet(ts=float(i)))
        gs.pump()
        for i in range(25, 50):
            gs.feed_packet(tcp_packet(ts=float(i)))
        gs.pump()  # second cycle: elapsed > 0, so node rates exist
        values = parse_prometheus(gs.metrics.to_prometheus())
        assert values["gs_shed_rate"] == 0.5
        assert values["gs_control_cycles_total"] >= 1
        assert "gs_pressure_utilization" in values
        assert 'gs_node_rate{node="pkts"}' in values


class TestTracer:
    def test_sampling_is_deterministic_and_rate_bounded(self):
        packets = [tcp_packet(ts=float(i), sport=1000 + i)
                   for i in range(400)]
        tracer = Tracer(0.05)
        sampled = [p for p in packets if tracer.wants(p) is not None]
        # deterministic: same packets sample the same way again
        again = Tracer(0.05)
        assert [again.wants(p) for p in packets] == \
            [tracer.wants(p) for p in packets]
        assert 0 < len(sampled) < 100  # ~20 expected; loose binomial bound
        for p in sampled:
            assert tracer.wants(p) == trace_key(p)

    def test_truncation_does_not_change_the_key(self):
        packet = tcp_packet(ts=1.5, payload=b"x" * 400)
        assert trace_key(packet) == trace_key(packet.truncate(68))

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError):
            Tracer(0.0)
        with pytest.raises(ValueError):
            Tracer(1.5)

    def test_max_traces_bounds_memory(self):
        tracer = Tracer(1.0, max_traces=3)
        for i in range(10):
            packet = tcp_packet(ts=float(i), sport=i + 1)
            tracer.begin(trace_key(packet), packet, "feed", float(i))
        assert len(tracer.traces) == 3
        assert tracer.truncated == 7

    def test_end_to_end_chain(self):
        gs = Gigascope()
        gs.add_queries("""
            DEFINE query_name base;
            Select time, destPort, len From tcp Where destPort = 80;

            DEFINE query_name watch;
            Select time, destPort From base Where destPort = 80
        """)
        tracer = gs.enable_tracing(1.0)
        sub = gs.subscribe("watch")
        gs.start()
        for i in range(10):
            gs.feed_packet(tcp_packet(ts=float(i), dport=80 if i % 2 else 22))
        gs.flush()
        sub.poll()
        assert tracer.started == 10
        chains = tracer.complete_chains(("feed", "lfta", "emit", "hfta",
                                         "app"))
        assert len(chains) == 5  # the five port-80 packets
        # a filtered-out packet still shows where it stopped
        stopped = [t for t in tracer.traces
                   if "emit" not in tracer.stage_chain(t)]
        assert len(stopped) == 5
        for trace in stopped:
            assert tracer.stage_chain(trace) == ["feed", "lfta"]

    def test_nic_span_joins_the_chain(self):
        gs = Gigascope()
        gs.add_query("DEFINE query_name q; Select time, destPort From tcp "
                     "Where destPort = 80")
        nic = Nic()
        gs.observe_nic(nic)
        tracer = gs.enable_tracing(1.0)
        gs.start()
        packet = tcp_packet(ts=1.0, dport=80)
        nic.receive(packet, now_us=1e6)
        for _ts, delivered in nic.take_deliveries():
            gs.feed_packet(delivered)
        gs.flush()
        trace = trace_key(packet)
        stages = tracer.stage_chain(trace)
        assert stages[:3] == ["nic", "feed", "lfta"]

    def test_bpf_rejection_ends_the_span(self):
        # A prefilter rejection must close its trace with a terminal
        # nic_filtered event, not leave the span dangling at "nic".
        from repro.gsql.planner import PushedPredicate
        from repro.nic.bpf import compile_pushed_predicates
        program = compile_pushed_predicates(
            [PushedPredicate("destport", "=", 80)])
        nic = Nic(service_us=1.0, ring_slots=64, bpf=program)
        nic.tracer = tracer = Tracer(1.0)
        accepted = tcp_packet(ts=1.0, dport=80)
        rejected = tcp_packet(ts=2.0, dport=443)
        nic.receive(accepted, now_us=1e6)
        nic.receive(rejected, now_us=2e6)
        assert tracer.stage_chain(trace_key(rejected)) == ["nic",
                                                          "nic_filtered"]
        assert tracer.stage_chain(trace_key(accepted)) == ["nic"]

    def test_trace_json_dump(self):
        tracer = Tracer(1.0)
        packet = tcp_packet(ts=2.0)
        trace = trace_key(packet)
        tracer.begin(trace, packet, "feed", 2.0)
        tracer.event(trace, "lfta", "q0", 2.0)
        doc = json.loads(tracer.to_json())
        assert doc["sample_rate"] == 1.0
        events = doc["traces"][str(trace)]
        assert [e["stage"] for e in events] == ["feed", "lfta"]
        assert events[0]["interface"] == "eth0"


class TestTelemetryMetrics:
    """The telemetry plane's metric families: registered once, fully
    documented in exposition, round-trippable."""

    def build(self):
        gs = Gigascope(seed=3, heartbeat_interval=0.5)
        gs.enable_telemetry(interval=0.5)
        gs.add_query("""
            DEFINE query_name flows;
            Select tb, count(*) as pkts
            From tcp Group by time/2 as tb
        """)
        gs.subscribe("flows")
        gs.start()
        for i in range(40):
            gs.feed_packet(tcp_packet(ts=0.1 * i))
            if i % 8 == 7:
                gs.rts.pump()
        gs.flush()
        return gs

    def test_telemetry_families_registered_and_set(self):
        gs = self.build()
        values = parse_prometheus(gs.metrics.to_prometheus())
        assert values["gs_telemetry_samples_total"] > 0
        assert values["gs_telemetry_last_sample_time_seconds"] > 0
        assert values['gs_telemetry_rows_total{stream="_gs_channel"}'] > 0
        assert values["gs_telemetry_profile_cycles_total"] > 0
        assert any(key.startswith("gs_telemetry_profile_wall_us_total{")
                   for key in values)
        assert any(key.startswith("gs_telemetry_profile_virtual_us_total{")
                   for key in values)

    def test_no_double_registration_with_collector_metrics(self):
        # Telemetry-stream-derived families must not collide with the
        # collector families install_engine_metrics registered: every
        # family name appears exactly once in the exposition.
        gs = self.build()
        text = gs.metrics.to_prometheus()
        help_names = re.findall(r"^# HELP (\S+)", text, re.MULTILINE)
        assert len(help_names) == len(set(help_names))
        type_names = re.findall(r"^# TYPE (\S+)", text, re.MULTILINE)
        assert sorted(type_names) == sorted(help_names)

    def test_every_family_emits_help_and_type(self):
        gs = self.build()
        text = gs.metrics.to_prometheus()
        help_names = set(re.findall(r"^# HELP (\S+)", text, re.MULTILINE))
        sample_names = {key.partition("{")[0]
                        for key in parse_prometheus(text)}
        # Histogram samples use the family name plus a suffix.
        base = {name.rsplit("_bucket", 1)[0].rsplit("_sum", 1)[0]
                    .rsplit("_count", 1)[0]
                for name in sample_names}
        assert base <= help_names

    def test_exposition_round_trips_through_parser(self):
        gs = self.build()
        first = parse_prometheus(gs.metrics.to_prometheus())
        second = parse_prometheus(gs.metrics.to_prometheus())
        # Collectors are pure reads of engine state: re-exposition after
        # the run is stable for everything but wall-clock profiling.
        stable = {key: value for key, value in first.items()
                  if "profile_wall" not in key}
        assert stable == {key: value for key, value in second.items()
                         if "profile_wall" not in key}
