"""Guard/field equivalence tests for the columnar block decoders.

DESIGN section 14's byte-identity contract at its root: for the
builtin ``ip``/``tcp``/``udp`` protocols, decoding a block of packets
into a :class:`ColumnarBlock` must keep exactly the rows the
row-at-a-time interpreter keeps, in the same order, with identical
field values -- over an adversarial corpus of truncations, IP
options, fragments, and corrupt headers.
"""

import pytest

from repro.gsql.schema import builtin_registry
from repro.net import columnar
from repro.net.build import build_tcp_frame, build_udp_frame, capture
from repro.net.columnar import decoder_for

REGISTRY = builtin_registry()
PROTOCOLS = ("ip", "tcp", "udp")


def _mutate(frame: bytes, offset: int, value: bytes) -> bytes:
    return frame[:offset] + value + frame[offset + len(value):]


def _with_ip_options(frame: bytes, words: int = 1) -> bytes:
    """The frame with ``words`` NOP option groups (IHL > 5)."""
    ihl = (frame[14] & 0x0F) + words
    out = frame[:34] + b"\x01\x01\x01\x01" * words + frame[34:]
    out = _mutate(out, 14, bytes([(frame[14] & 0xF0) | ihl]))
    total_len = int.from_bytes(frame[16:18], "big") + 4 * words
    return _mutate(out, 16, total_len.to_bytes(2, "big"))


def _corpus():
    """Packets spanning every guard edge the decoders replicate."""
    tcp = build_tcp_frame("10.0.0.1", "10.0.0.2", 1234, 80,
                          payload=b"GET / HTTP/1.1\r\n", flags=0x18,
                          seq=7, ack=9)
    tcp_empty = build_tcp_frame("10.0.0.1", "10.0.0.2", 1234, 443,
                                flags=0x02)
    udp = build_udp_frame("10.0.0.3", "10.0.0.4", 5353, 53, payload=b"q")
    udp_empty = build_udp_frame("10.0.0.3", "10.0.0.4", 5353, 123)
    frames = [
        tcp, tcp_empty, udp, udp_empty,
        _with_ip_options(tcp), _with_ip_options(udp),
        _with_ip_options(tcp, words=3),
        _mutate(tcp, 20, b"\x20\x00"),   # MF set, offset 0: L4 parses
        _mutate(tcp, 20, b"\x20\x03"),   # MF set, offset 3: fragment
        _mutate(tcp, 20, b"\x00\x40"),   # later fragment, no MF
        _mutate(tcp, 20, b"\x40\x00"),   # DF: parses normally
        _mutate(udp, 20, b"\x3f\xff"),   # every frag bit lit
        _mutate(tcp, 12, b"\x08\x06"),   # ARP ethertype
        _mutate(tcp, 12, b"\x86\xdd"),   # IPv6 ethertype
        _mutate(tcp, 14, b"\x44"),       # IHL 4: corrupt IP header
        _mutate(tcp, 14, b"\x65"),       # version nibble 6, IHL 5
        _mutate(tcp, 46, b"\x40"),       # TCP data offset 16 bytes (< 20)
        _mutate(tcp, 46, b"\xf0"),       # TCP data offset 60 > capture
        _mutate(tcp, 23, b"\x11"),       # proto says UDP on a TCP layout
        _mutate(udp, 23, b"\x06"),       # proto says TCP on a UDP layout
        b"",                             # empty capture
        b"\x00" * 10,                    # sub-ethernet garbage
        b"\xff" * 60,                    # full-size garbage
    ]
    packets = [capture(frame, 0.25 + i * 0.5, interface="eth0")
               for i, frame in enumerate(frames)]
    # Every truncation prefix of a TCP, a UDP, and an options frame:
    # the cut can land inside any header layer.
    for base, start in ((tcp, 100.0), (udp, 300.0),
                        (_with_ip_options(tcp), 500.0)):
        packets.extend(capture(base, start + cut, snaplen=cut)
                       for cut in range(1, len(base)))
    return packets


def _columnar_rows(protocol, packets):
    block = protocol.columnar_decoder(packets)
    width = len(protocol.attributes)
    cols = [block.col(i) for i in range(width)]
    return [tuple(col[j] for col in cols) for j in range(block.n)]


@pytest.mark.parametrize("name", PROTOCOLS)
class TestGuardEquivalence:
    def test_block_decode_matches_row_interpreter(self, name):
        protocol = REGISTRY.get(name)
        packets = _corpus()
        scalar = [row for p in packets for row in protocol.interpret(p)]
        assert _columnar_rows(protocol, packets) == scalar
        assert scalar  # the corpus must exercise surviving rows too

    def test_single_packet_blocks_match_one_big_block(self, name):
        protocol = REGISTRY.get(name)
        packets = _corpus()
        per_packet = [row for p in packets
                      for row in _columnar_rows(protocol, [p])]
        assert per_packet == _columnar_rows(protocol, packets)

    def test_empty_block(self, name):
        protocol = REGISTRY.get(name)
        block = protocol.columnar_decoder([])
        assert block.n == 0
        assert block.col(0) == []
        assert block.gather(0, []) == []


class TestLazyGather:
    def test_gather_matches_col_slices(self):
        protocol = REGISTRY.get("tcp")
        packets = _corpus()
        full = protocol.columnar_decoder(packets)
        rows = list(range(0, full.n, 2))
        for index in range(len(protocol.attributes)):
            # A fresh block per attribute so gather() takes the
            # lazy (uncached) path rather than slicing col()'s cache.
            fresh = protocol.columnar_decoder(packets)
            assert fresh.gather(index, rows) == \
                [full.col(index)[j] for j in rows]

    def test_gather_after_col_slices_the_cache(self):
        protocol = REGISTRY.get("udp")
        block = protocol.columnar_decoder(_corpus())
        column = block.col(13)  # destPort
        rows = [0, 2]
        assert block.gather(13, rows) == [column[j] for j in rows]


class TestDecoderRegistry:
    def test_builtin_ip_family_has_decoders(self):
        for name in PROTOCOLS:
            assert decoder_for(name) is not None
            assert REGISTRY.get(name).columnar_decoder is not None

    def test_other_protocols_stay_row_based(self):
        for name in ("ethernet", "icmp", "tcp6", "udp6", "dns",
                     "netflow", "bgp"):
            assert decoder_for(name) is None

    @pytest.mark.parametrize("name,specs", [
        ("ip", columnar._IP_SPECS),
        ("tcp", columnar._TCP_SPECS),
        ("udp", columnar._UDP_SPECS),
    ])
    def test_field_specs_cover_every_attribute(self, name, specs):
        protocol = REGISTRY.get(name)
        assert sorted(specs) == list(range(len(protocol.attributes)))
