"""Tests for the ICMP protocol, the sessionize operator, and sinks."""

import io
import json

import pytest

from repro import Gigascope
from repro.net.build import build_icmp_frame, capture
from repro.net.icmp import ICMPHeader, TYPE_ECHO_REPLY, TYPE_ECHO_REQUEST
from repro.operators.sessionize import SessionizeNode
from repro.sinks import CsvSink, JsonlSink, attach_sink
from repro.net.checksum import internet_checksum
from tests.conftest import tcp_packet, udp_packet


def icmp_packet(ts=0.0, src="10.0.0.1", dst="10.0.0.2", icmp_type=8,
                seq=0, interface="eth0"):
    frame = build_icmp_frame(src, dst, icmp_type=icmp_type, sequence=seq,
                             identifier=7)
    return capture(frame, ts, interface)


class TestIcmpHeader:
    def test_round_trip(self):
        header = ICMPHeader(icmp_type=TYPE_ECHO_REQUEST, code=0,
                            identifier=99, sequence=3)
        parsed = ICMPHeader.parse(header.pack(b"ping"))
        assert parsed.icmp_type == TYPE_ECHO_REQUEST
        assert parsed.identifier == 99
        assert parsed.sequence == 3
        assert parsed.is_echo

    def test_checksum_covers_payload(self):
        payload = b"abcdefg"
        wire = ICMPHeader(icmp_type=8).pack(payload)
        assert internet_checksum(wire + payload) == 0

    def test_truncated(self):
        with pytest.raises(ValueError):
            ICMPHeader.parse(b"\x08\x00\x00")


class TestIcmpProtocol:
    def test_query_over_icmp(self):
        gs = Gigascope()
        gs.add_query("""
            DEFINE query_name pings;
            Select tb, srcIP, count(*)
            From icmp Where icmp_type = 8
            Group by time/5 as tb, srcIP
        """)
        sub = gs.subscribe("pings")
        gs.start()
        for i in range(30):
            gs.feed_packet(icmp_packet(ts=i * 0.2, icmp_type=8, seq=i))
        gs.feed_packet(icmp_packet(ts=7.0, icmp_type=TYPE_ECHO_REPLY))
        gs.flush()
        rows = sub.poll()
        assert sum(count for _tb, _src, count in rows) == 30  # replies excluded

    def test_icmp_protocol_rejects_tcp(self):
        from repro.gsql.schema import builtin_registry
        icmp = builtin_registry().get("icmp")
        assert icmp.interpret(tcp_packet()) == []
        assert len(icmp.interpret(icmp_packet())) == 1


class TestSessionize:
    def rows(self, tap):
        return [item for item in tap.drain() if type(item) is tuple]

    def test_fin_closes_tcp_session(self):
        from repro.net.tcp import FLAG_ACK, FLAG_FIN
        node = SessionizeNode("sess")
        tap = node.subscribe()
        node.accept_packet(tcp_packet(ts=1.0, payload=b"a"))
        node.accept_packet(tcp_packet(ts=2.0, payload=b"bb"))
        node.accept_packet(tcp_packet(ts=3.0, flags=FLAG_ACK | FLAG_FIN))
        (row,) = self.rows(tap)
        end, start, _src, _dst, _sp, _dp, proto, packets, octets, flags = row
        assert (start, end) == (1.0, 3.0)
        assert packets == 3
        assert proto == 6
        assert flags & FLAG_FIN

    def test_idle_timeout_closes(self):
        node = SessionizeNode("sess", idle_timeout=5.0)
        tap = node.subscribe()
        node.accept_packet(udp_packet(ts=1.0))
        node.accept_packet(udp_packet(ts=2.0))
        # unrelated traffic advances time past the idle horizon
        node.accept_packet(udp_packet(ts=10.0, sport=9, dport=9))
        rows = self.rows(tap)
        assert len(rows) == 1
        assert rows[0][0] == 2.0  # ended at its last packet

    def test_active_timeout_splits_long_flows(self):
        node = SessionizeNode("sess", idle_timeout=60.0, active_timeout=10.0)
        tap = node.subscribe()
        for i in range(25):
            node.accept_packet(udp_packet(ts=float(i)))
        node.flush()
        rows = self.rows(tap)
        assert len(rows) >= 2  # split at least once
        assert sum(r[7] for r in rows) == 25  # no packet lost

    def test_flush_emits_open_sessions(self):
        node = SessionizeNode("sess")
        tap = node.subscribe()
        node.accept_packet(udp_packet(ts=1.0))
        assert node.open_sessions == 1
        node.flush()
        assert len(self.rows(tap)) == 1
        assert node.open_sessions == 0

    def test_heartbeat_sweeps_and_punctuates(self):
        from repro.core.heartbeat import Punctuation
        node = SessionizeNode("sess", idle_timeout=5.0)
        tap = node.subscribe()
        node.accept_packet(udp_packet(ts=1.0))
        node.on_heartbeat(20.0)
        items = tap.drain()
        assert len([i for i in items if type(i) is tuple]) == 1
        puncts = [i for i in items if isinstance(i, Punctuation)]
        assert puncts and puncts[-1].bound_for(0) == 15.0

    def test_feeds_gsql_query(self):
        gs = Gigascope()
        node = SessionizeNode("sessions", idle_timeout=5.0)
        gs.add_node(node, interface="eth0")
        gs.add_query("""
            DEFINE query_name heavy;
            Select srcIP, octets From sessions Where octets > 100
        """)
        sub = gs.subscribe("heavy")
        gs.start()
        for i in range(10):
            gs.feed_packet(tcp_packet(ts=i * 0.1, payload=b"z" * 100))
        gs.flush()
        rows = sub.poll()
        assert len(rows) == 1
        assert rows[0][1] > 1000


class TestSinks:
    def _engine(self):
        gs = Gigascope()
        gs.add_query("DEFINE query_name q; Select time, destIP, destPort "
                     "From tcp Where destPort = 80")
        return gs

    def test_csv_sink(self):
        gs = self._engine()
        buffer = io.StringIO()
        sink = attach_sink(gs, "q", CsvSink, buffer, pretty_ip=True)
        gs.start()
        gs.feed_packet(tcp_packet(ts=1.0, dport=80))
        gs.feed_packet(tcp_packet(ts=2.0, dport=443))
        gs.flush()
        lines = buffer.getvalue().strip().splitlines()
        assert lines[0] == "time,destIP,destPort"
        assert len(lines) == 2
        assert "192.168.1.1" in lines[1]
        assert sink.rows_written == 1

    def test_jsonl_sink(self):
        gs = self._engine()
        buffer = io.StringIO()
        attach_sink(gs, "q", JsonlSink, buffer)
        gs.start()
        gs.feed_packet(tcp_packet(ts=3.0, dport=80))
        gs.flush()
        (line,) = buffer.getvalue().strip().splitlines()
        record = json.loads(line)
        assert record["time"] == 3
        assert record["destPort"] == 80

    def test_sink_attachable_after_start(self):
        gs = self._engine()
        gs.start()
        buffer = io.StringIO()
        attach_sink(gs, "q", CsvSink, buffer)  # sinks are HFTA-like nodes
        gs.feed_packet(tcp_packet(ts=0.0, dport=80))
        gs.flush()
        assert len(buffer.getvalue().strip().splitlines()) == 2
