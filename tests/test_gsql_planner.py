"""Tests for the LFTA/HFTA split planner."""

import pytest

from repro.gsql.functions import builtin_functions
from repro.gsql.parser import parse_query
from repro.gsql.planner import (
    PlanError,
    SNAPLEN_FULL,
    SNAPLEN_HEADERS,
    plan_query,
)
from repro.gsql.schema import builtin_registry
from repro.gsql.semantic import analyze


@pytest.fixture(scope="module")
def registry():
    return builtin_registry()


@pytest.fixture(scope="module")
def functions():
    return builtin_functions()


def plan(text, registry, functions, streams=None):
    analyzed = analyze(parse_query(text), registry, functions,
                       stream_resolver=(streams or {}).get)
    return plan_query(analyzed, functions)


class TestSelectionPlans:
    def test_simple_selection_is_lfta_only(self, registry, functions):
        result = plan(
            "DEFINE query_name q; Select destIP, time From tcp "
            "Where destPort = 80", registry, functions)
        assert result.is_lfta_only
        assert len(result.lftas) == 1
        assert result.lftas[0].name == "q"
        assert result.lftas[0].mode == "projection"

    def test_expensive_predicate_splits(self, registry, functions):
        result = plan(
            "DEFINE query_name q; Select time, srcIP From tcp "
            "Where destPort = 80 and str_match_regex(data, 'HTTP/1')",
            registry, functions)
        assert not result.is_lfta_only
        lfta = result.lftas[0]
        # "Regular expression finding is too expensive for an LFTA, so the
        # filter query was split into an LFTA which filters TCP packets on
        # port 80, and an HFTA part which performs the regular expression
        # matching."
        assert len(lfta.predicates) == 1
        assert result.hfta.kind == "selection"
        assert len(result.hfta.predicates) == 1
        # LFTA has a mangled name, both streams visible
        assert lfta.name.startswith("_fta_q")

    def test_lfta_safe_function_stays_down(self, registry, functions):
        result = plan(
            "DEFINE query_name q; Select time From tcp "
            "Where getlpmid(destIP, $t) > 0", registry, functions)
        assert result.is_lfta_only

    def test_stream_source_is_hfta_only(self, registry, functions):
        base = plan("DEFINE query_name b; Select time, destIP From tcp",
                    registry, functions)
        streams = {"b": base.output_schema}
        result = plan("DEFINE query_name q; Select time From b",
                      registry, functions, streams)
        assert not result.lftas
        assert result.hfta.kind == "selection"
        assert result.hfta.inputs == ["b"]


class TestCaptureHints:
    def test_pushdown_of_simple_comparisons(self, registry, functions):
        result = plan(
            "DEFINE query_name q; Select time From tcp "
            "Where destPort = 80 and protocol = 6 and len > 100",
            registry, functions)
        pushed = result.lftas[0].hints.pushed
        fields = {p.field_name for p in pushed}
        # len is not a BPF-testable field; the others are
        assert fields == {"destport", "protocol"}

    def test_reversed_literal_comparison(self, registry, functions):
        result = plan(
            "DEFINE query_name q; Select time From tcp Where 80 = destPort",
            registry, functions)
        (pushed,) = result.lftas[0].hints.pushed
        assert pushed.field_name == "destport" and pushed.op == "="

    def test_snaplen_headers_when_no_payload(self, registry, functions):
        result = plan("DEFINE query_name q; Select time, destIP From tcp",
                      registry, functions)
        assert result.lftas[0].hints.snaplen == SNAPLEN_HEADERS

    def test_snaplen_full_when_payload_touched(self, registry, functions):
        result = plan(
            "DEFINE query_name q; Select time From tcp "
            "Where str_find_substr(data, 'x')", registry, functions)
        assert result.lftas[0].hints.snaplen == SNAPLEN_FULL


class TestAggregationPlans:
    def test_two_level_split(self, registry, functions):
        result = plan(
            "DEFINE query_name q; Select tb, count(*), sum(len) From tcp "
            "Where destPort = 80 Group by time/60 as tb",
            registry, functions)
        lfta = result.lftas[0]
        assert lfta.mode == "partial_aggregation"
        assert lfta.window_key_index == 0
        # LFTA output: key + one partial slot per aggregate
        assert lfta.output_schema.names == ("tb", "p_count0", "p_sum1")
        hfta = result.hfta
        assert hfta.kind == "aggregation"
        assert hfta.final_from_partials

    def test_avg_needs_two_partial_slots(self, registry, functions):
        result = plan(
            "DEFINE query_name q; Select tb, avg(len) From tcp "
            "Group by time/60 as tb", registry, functions)
        schema = result.lftas[0].output_schema
        assert len(schema) == 3  # tb, avg_sum, avg_cnt

    def test_expensive_group_expr_forces_full_hfta_agg(self, registry, functions):
        result = plan(
            "DEFINE query_name q; Select k, count(*) From tcp "
            "Group by str_find_substr(data, 'HTTP') as k, time/60 as tb",
            registry, functions)
        lfta = result.lftas[0]
        assert lfta.mode == "projection"
        hfta = result.hfta
        assert hfta.kind == "aggregation"
        assert not hfta.final_from_partials
        assert hfta.slot_maps[0] is not None

    def test_expensive_where_stays_up(self, registry, functions):
        result = plan(
            "DEFINE query_name q; Select tb, count(*) From tcp "
            "Where destPort = 80 and str_match_regex(data, 'HTTP') "
            "Group by time/60 as tb", registry, functions)
        assert result.lftas[0].mode == "projection"
        assert len(result.lftas[0].predicates) == 1  # the port filter
        assert len(result.hfta.predicates) == 1  # the regex

    def test_aggregation_over_stream(self, registry, functions):
        base = plan("DEFINE query_name b; Select time, len From tcp",
                    registry, functions)
        streams = {"b": base.output_schema}
        result = plan(
            "DEFINE query_name q; Select tb, count(*) From b "
            "Group by time/60 as tb", registry, functions, streams)
        assert not result.lftas
        assert result.hfta.kind == "aggregation"
        assert not result.hfta.final_from_partials


class TestJoinPlans:
    def test_join_of_two_protocols(self, registry, functions):
        result = plan(
            "DEFINE query_name q; Select B.time, B.srcIP, C.srcIP "
            "From eth0.tcp B, eth1.tcp C "
            "Where B.time = C.time and B.destPort = 80",
            registry, functions)
        assert len(result.lftas) == 2
        assert result.lftas[0].interface == "eth0"
        assert result.lftas[1].interface == "eth1"
        # the single-source port filter went down to B's LFTA
        assert len(result.lftas[0].predicates) == 1
        assert len(result.lftas[1].predicates) == 0
        hfta = result.hfta
        assert hfta.kind == "join"
        assert hfta.join_slots is not None
        (left_input, left_slot), (right_input, right_slot) = hfta.join_slots
        assert left_input == 0 and right_input == 1
        # window columns flow through the LFTA projections
        assert hfta.input_schemas[0].attributes[left_slot].name == "time"

    def test_join_protocol_with_stream(self, registry, functions):
        base = plan("DEFINE query_name b; Select time, destIP From tcp",
                    registry, functions)
        streams = {"b": base.output_schema}
        result = plan(
            "DEFINE query_name q; Select B.time From eth1.tcp B, b S "
            "Where B.time = S.time", registry, functions, streams)
        assert len(result.lftas) == 1
        assert result.hfta.inputs[1] == "b"
        assert result.hfta.slot_maps[1] is None


class TestMergePlans:
    def test_merge_of_streams(self, registry, functions):
        base = plan("DEFINE query_name s0; Select time, destIP From tcp",
                    registry, functions)
        streams = {"s0": base.output_schema, "s1": base.output_schema}
        result = plan("DEFINE query_name m; Merge s0.time : s1.time From s0, s1",
                      registry, functions, streams)
        assert result.hfta.kind == "merge"
        assert result.hfta.merge_slots == [(0, 0), (1, 0)]

    def test_merge_of_protocols_rejected(self, registry, functions):
        with pytest.raises(PlanError):
            plan("Merge B.time : C.time From eth0.tcp B, eth1.tcp C",
                 registry, functions)


class TestDescribe:
    def test_describe_mentions_structure(self, registry, functions):
        result = plan(
            "DEFINE query_name q; Select tb, count(*) From tcp "
            "Group by time/60 as tb", registry, functions)
        text = result.describe()
        assert "LFTA" in text and "HFTA" in text
        assert "partial_aggregation" in text
