"""Tests for the virtual-time performance substrate."""

import pytest

from repro.sim.capture import (
    CaptureConfig,
    CaptureSimulation,
    find_loss_knee,
    sweep,
)
from repro.sim.cost_model import CostModel
from repro.sim.disk import DiskModel
from repro.sim.host import HostModel
from tests.conftest import tcp_packet


class TestHostModel:
    def test_no_loss_under_light_load(self):
        host = HostModel(interrupt_us=5.0, ring_slots=64)
        for i in range(1000):
            assert host.arrival(i * 100.0, service_us=10.0)  # 8.7% load
        assert host.loss_rate == 0.0

    def test_livelock_under_interrupt_saturation(self):
        """Arrivals faster than 1/interrupt_us leave no CPU to drain."""
        host = HostModel(interrupt_us=5.0, ring_slots=64)
        for i in range(10_000):
            host.arrival(i * 2.0, service_us=1.0)  # interrupts want 2.5x CPU
        assert host.loss_rate > 0.9

    def test_interrupt_cost_paid_even_for_drops(self):
        host = HostModel(interrupt_us=5.0, ring_slots=1)
        for i in range(100):
            host.arrival(i * 1.0, service_us=100.0)
        # interrupt backlog accounts for all arrivals, not just accepted
        assert host.stats.arrivals == 100
        assert host.stats.dropped > 0

    def test_processing_uses_leftover_cpu(self):
        host = HostModel(interrupt_us=2.0, ring_slots=1000)
        for i in range(100):
            host.arrival(i * 10.0, service_us=4.0)  # 60% total load
        host.drain(100 * 10.0 + 10_000.0)
        assert host.stats.processing_us == pytest.approx(400.0, rel=0.05)

    def test_loss_monotone_in_rate(self):
        losses = []
        for gap in (10.0, 5.0, 2.5, 1.25):
            host = HostModel(interrupt_us=3.0, ring_slots=128)
            for i in range(5000):
                host.arrival(i * gap, service_us=1.0)
            losses.append(host.loss_rate)
        assert losses == sorted(losses)
        assert losses[0] == 0.0 and losses[-1] > 0.5


class TestDiskModel:
    def test_costs_accumulate(self):
        disk = DiskModel(packet_us=2.0, per_byte_us=0.01, stall_us=1000.0,
                         stall_every_bytes=10_000)
        cost = disk.write_cost_us(500)
        assert cost == pytest.approx(2.0 + 5.0)
        assert disk.stats.bytes_written == 500

    def test_periodic_stall(self):
        disk = DiskModel(packet_us=0.0, per_byte_us=0.0, stall_us=999.0,
                         stall_every_bytes=1000)
        costs = [disk.write_cost_us(300) for _ in range(10)]
        stalls = [c for c in costs if c >= 999.0]
        assert len(stalls) == disk.stats.stalls == 3


def _stream(rate_pps, count, size=550):
    gap = 1.0 / rate_pps
    packet = tcp_packet(payload=b"z" * (size - 54))
    from repro.net.packet import CapturedPacket
    return [
        CapturedPacket(timestamp=i * gap, data=packet.data)
        for i in range(count)
    ]


def _qualifier(packet):
    return 100  # every packet qualifies with 100 payload bytes


class TestCaptureSimulation:
    def test_disk_is_the_worst_path(self):
        """Section 4 ordering: disk < libpcap ~ host < NIC."""
        rate = 70_000  # pps, ~300 Mbit/s at 550B
        losses = {}
        for config in CaptureConfig:
            sim = CaptureSimulation(config, qualifier=_qualifier)
            losses[config] = sim.run(_stream(rate, 40_000)).loss_rate
        assert losses[CaptureConfig.DISK_DUMP] > 0.1
        assert losses[CaptureConfig.LIBPCAP_DISCARD] < 0.02
        assert losses[CaptureConfig.GIGASCOPE_NIC] < 0.02

    def test_nic_beats_host_at_high_rate(self):
        rate = 160_000  # past the host livelock point
        host = CaptureSimulation(CaptureConfig.GIGASCOPE_HOST,
                                 qualifier=_qualifier)
        nic = CaptureSimulation(CaptureConfig.GIGASCOPE_NIC,
                                qualifier=_qualifier)
        host_loss = host.run(_stream(rate, 60_000)).loss_rate
        nic_loss = nic.run(_stream(rate, 60_000)).loss_rate
        assert host_loss > 0.3
        assert nic_loss < 0.02

    def test_interrupt_share_grows_with_rate(self):
        shares = []
        for rate in (40_000, 90_000, 140_000):
            sim = CaptureSimulation(CaptureConfig.LIBPCAP_DISCARD)
            shares.append(sim.run(_stream(rate, 30_000)).host_interrupt_share)
        assert shares == sorted(shares)

    def test_result_accounting(self):
        sim = CaptureSimulation(CaptureConfig.GIGASCOPE_HOST,
                                qualifier=_qualifier)
        result = sim.run(_stream(10_000, 5_000))
        assert result.offered_packets == 5_000
        assert result.qualifying_packets == 5_000
        assert result.offered_mbps == pytest.approx(
            550 * 8 * 10_000 / 1e6, rel=0.01)


class TestKneeFinder:
    def test_bisection_on_synthetic_curve(self):
        knee = find_loss_knee(
            lambda rate: 0.0 if rate <= 480 else 0.5,
            low=100, high=1000, threshold=0.02, tolerance=2.0)
        assert abs(knee - 480) <= 2.0

    def test_all_good_returns_high(self):
        assert find_loss_knee(lambda rate: 0.0, 10, 99) == 99

    def test_all_bad_returns_low(self):
        assert find_loss_knee(lambda rate: 1.0, 10, 99) == 10

    def test_sweep_returns_series(self):
        series = sweep(lambda rate: rate / 1000.0, [100, 200])
        assert series == [(100, 0.1), (200, 0.2)]
