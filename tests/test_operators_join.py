"""Tests for the two-stream window join."""

import random

import pytest

from repro.core.heartbeat import FLUSH, Punctuation
from repro.operators.join import JoinNode


def make_join(compile_plan, text, streams):
    analyzed, plan, compiler = compile_plan(text, streams=streams)
    node = JoinNode(plan.hfta, analyzed, compiler)
    tap = node.subscribe()
    return node, tap


def rows_of(tap):
    return [item for item in tap.drain() if type(item) is tuple]


def two_streams(compile_plan):
    _, plan_a, _ = compile_plan("DEFINE query_name sa; "
                                "Select time, destPort From tcp")
    _, plan_b, _ = compile_plan("DEFINE query_name sb; "
                                "Select time, destPort From tcp")
    return {"sa": plan_a.output_schema, "sb": plan_b.output_schema}


EQ = ("DEFINE query_name j; Select A.time, A.destPort, B.destPort "
      "From sa A, sb B Where A.time = B.time")
BAND = ("DEFINE query_name j; Select A.time, A.destPort, B.destPort "
        "From sa A, sb B "
        "Where A.time >= B.time - 1 and A.time <= B.time + 1")


class TestEqualityJoin:
    def test_matching_pairs(self, compile_plan):
        node, tap = make_join(compile_plan, EQ, two_streams(compile_plan))
        node.dispatch((1, 80), 0)
        node.dispatch((1, 443), 1)
        node.dispatch((2, 80), 1)
        node.dispatch((2, 25), 0)
        rows = rows_of(tap)
        assert sorted(rows) == [(1, 80, 443), (2, 25, 80)]
        assert node.pairs_emitted == 2

    def test_no_cross_window_pairs(self, compile_plan):
        node, tap = make_join(compile_plan, EQ, two_streams(compile_plan))
        node.dispatch((1, 80), 0)
        node.dispatch((5, 443), 1)
        assert rows_of(tap) == []

    def test_buffers_purged_as_time_advances(self, compile_plan):
        node, tap = make_join(compile_plan, EQ, two_streams(compile_plan))
        for t in range(100):
            node.dispatch((t, 80), 0)
            node.dispatch((t, 90), 1)
        # window is [0,0]: only current-timestamp tuples stay buffered
        assert node.buffered <= 4

    def test_residual_predicate(self, compile_plan):
        streams = two_streams(compile_plan)
        node, tap = make_join(
            compile_plan,
            "DEFINE query_name j; Select A.time From sa A, sb B "
            "Where A.time = B.time and A.destPort = B.destPort",
            streams)
        node.dispatch((1, 80), 0)
        node.dispatch((1, 81), 1)  # same time, different port
        node.dispatch((2, 80), 0)
        node.dispatch((2, 80), 1)
        assert rows_of(tap) == [(2,)]


class TestBandJoin:
    def test_band_matching(self, compile_plan):
        node, tap = make_join(compile_plan, BAND, two_streams(compile_plan))
        node.dispatch((5, 1), 0)
        node.dispatch((4, 2), 1)  # A - B = 1 -> in window
        node.dispatch((6, 3), 1)  # A - B = -1 -> in window
        node.dispatch((7, 4), 1)  # A - B = -2 -> out
        rows = rows_of(tap)
        assert sorted(rows) == [(5, 1, 2), (5, 1, 3)]

    def test_against_brute_force(self, compile_plan):
        rng = random.Random(9)
        left = sorted(rng.randrange(100) for _ in range(60))
        right = sorted(rng.randrange(100) for _ in range(60))
        expected = sorted(
            (a, i, j)
            for i, a in enumerate(left)
            for j, b in enumerate(right)
            if -1 <= a - b <= 1
        )
        node, tap = make_join(compile_plan, BAND, two_streams(compile_plan))
        # interleave by timestamp, tagging each side with its index
        events = [((a, i), 0) for i, a in enumerate(left)] + \
                 [((b, j), 1) for j, b in enumerate(right)]
        events.sort(key=lambda e: e[0][0])
        for row, side in events:
            node.dispatch(row, side)
        node.dispatch(FLUSH, 0)
        node.dispatch(FLUSH, 1)
        got = sorted(rows_of(tap))
        assert got == expected


class TestPunctuationAndFlush:
    def test_punctuation_purges(self, compile_plan):
        node, tap = make_join(compile_plan, BAND, two_streams(compile_plan))
        for t in range(10):
            node.dispatch((t, 0), 0)
        assert len(node._buffers[0]) == 10
        # Right side promises time >= 50: left tuples below 49 can't join.
        node.dispatch(Punctuation({0: 50}), 1)
        assert len(node._buffers[0]) == 0

    def test_output_punctuation_emitted(self, compile_plan):
        node, tap = make_join(compile_plan, EQ, two_streams(compile_plan))
        node.dispatch((10, 1), 0)
        node.dispatch(Punctuation({0: 10}), 1)
        puncts = [i for i in tap.drain() if isinstance(i, Punctuation)]
        assert puncts
        assert puncts[-1].bound_for(0) == 10

    def test_flush_both_sides_forwards_flush(self, compile_plan):
        node, tap = make_join(compile_plan, EQ, two_streams(compile_plan))
        node.dispatch((1, 80), 0)
        node.dispatch(FLUSH, 0)
        # One side done: remaining side can still probe its buffer.
        node.dispatch((1, 443), 1)
        rows = rows_of(tap)
        assert rows == [(1, 80, 443)]
        node.dispatch(FLUSH, 1)
        assert any(item is FLUSH for item in tap.drain())
        assert node.buffered == 0
