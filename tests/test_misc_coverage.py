"""Coverage for smaller API surfaces: unparse sources, params objects,
sink flushing, schema helpers, CLI interpreted mode, runtime edges."""

import io

import pytest

from repro import Gigascope
from repro.gsql.parser import parse_query
from repro.gsql.unparse import query_to_gsql
from tests.conftest import tcp_packet


class TestUnparseSources:
    def test_subquery_rendering(self):
        query = parse_query(
            "Select time From ( Select time, destPort From tcp "
            "Where destPort = 80 ) web")
        rendered = query_to_gsql(query)
        assert "( SELECT time, destPort" in rendered
        assert rendered.rstrip().endswith("web")
        # and the rendering parses back
        again = parse_query(rendered)
        assert again.sources[0].subquery is not None

    def test_interface_and_alias_rendering(self):
        query = parse_query("Select B.time From eth3.tcp B")
        rendered = query_to_gsql(query)
        assert "eth3.tcp B" in rendered

    def test_merge_with_defines(self):
        query = parse_query("DEFINE query_name m; "
                            "Merge a.ts : b.ts From a, b")
        rendered = query_to_gsql(query)
        assert rendered.startswith("DEFINE { query_name m; }")
        assert "MERGE a.ts : b.ts" in rendered


class TestQueryInstance:
    def test_params_property_is_live(self):
        gs = Gigascope()
        name = gs.add_query("Select time From tcp Where destPort = $p",
                            params={"p": 80}, name="q")
        instance = gs._instances[name]
        assert instance.params["p"] == 80
        gs.set_param("q", "p", 443)
        assert instance.params["p"] == 443
        assert gs.get_param("q", "p") == 443


class TestSchemaHelpers:
    def test_ordered_attributes(self, registry):
        tcp = registry.get("tcp")
        names = [a.name for a in tcp.ordered_attributes()]
        assert "time" in names and "destPort" not in names

    def test_names_tuple(self, registry):
        assert registry.get("udp").names[0] == "time"

    def test_registry_contains(self, registry):
        assert "TCP" in registry
        assert "smtp" not in registry


class TestSinkFlushing:
    def test_flush_every_batches_writes(self):
        from repro.gsql.schema import Attribute, StreamSchema
        from repro.gsql.types import UINT
        from repro.sinks import CsvSink

        class CountingIO(io.StringIO):
            def __init__(self):
                super().__init__()
                self.flushes = 0

            def flush(self):
                self.flushes += 1
                super().flush()

        buffer = CountingIO()
        schema = StreamSchema("s", [Attribute("x", UINT)])
        sink = CsvSink("sink", schema, buffer, flush_every=10)
        for i in range(25):
            sink.on_tuple((i,), 0)
        assert buffer.flushes == 2  # at rows 10 and 20


class TestCliInterpretedMode:
    def test_interpreted_mode_runs(self, tmp_path, capsys):
        from repro.cli import main
        from repro.net.pcap import write_pcap
        path = tmp_path / "t.pcap"
        write_pcap(str(path), [tcp_packet(ts=1.0, dport=80)])
        code = main(["--pcap", str(path), "--mode", "interpreted",
                     "--query", "DEFINE query_name q; Select time From tcp"])
        assert code == 0
        assert "# q" in capsys.readouterr().out


class TestRuntimeEdges:
    def test_advance_time_flushes_aggregation(self):
        gs = Gigascope(heartbeat_interval=1.0)
        gs.add_query("DEFINE query_name q; Select tb, count(*) From tcp "
                     "Group by time/10 as tb")
        sub = gs.subscribe("q")
        gs.start()
        gs.feed_packet(tcp_packet(ts=1.0))
        gs.pump()
        assert sub.poll() == []
        gs.advance_time(50.0)  # quiet period passes; the window closes
        assert sub.poll() == [(0, 1)]

    def test_subscription_len_and_ended(self):
        gs = Gigascope(heartbeat_interval=None)
        gs.add_query("DEFINE query_name q; Select time From tcp")
        sub = gs.subscribe("q")
        gs.start()
        gs.feed_packet(tcp_packet(ts=1.0))
        assert len(sub) == 1
        assert not sub.ended
        gs.flush()
        sub.poll()
        assert sub.ended

    def test_pump_returns_items_processed(self):
        gs = Gigascope(heartbeat_interval=None)
        gs.add_queries("""
            DEFINE query_name base; Select time, len From tcp;
            DEFINE query_name agg;
            Select tb, count(*) From base Group by time/10 as tb
        """)
        gs.start()
        gs.feed_packet(tcp_packet(ts=1.0))
        assert gs.pump() >= 1
        assert gs.pump() == 0  # quiescent

    def test_stats_stable_names(self):
        gs = Gigascope()
        gs.add_query("DEFINE query_name q; Select time From tcp")
        gs.start()
        stats = gs.stats()
        assert set(stats["q"]) >= {"tuples_in", "tuples_out", "discarded",
                                   "punctuations_in", "punctuations_out"}


class TestStringLiteralCoercion:
    """GSQL STRING values are bytes at run time; str literals must
    compare equal to them (regression: qname = 'x' silently never
    matched)."""

    @pytest.mark.parametrize("mode", ["compiled", "interpreted"])
    def test_equality_on_payload_fields(self, mode):
        from repro.net.build import build_udp_frame, capture
        from repro.net.dns import build_query as dns_query
        gs = Gigascope(mode=mode)
        gs.add_query("DEFINE query_name q; Select time From dns "
                     "Where qname = 'www.example.com'")
        sub = gs.subscribe("q")
        gs.start()
        for i, name in enumerate(("www.example.com", "other.net")):
            frame = build_udp_frame("10.0.0.1", "10.0.0.53", 5353, 53,
                                    payload=dns_query(i, name))
            gs.feed_packet(capture(frame, float(i)))
        gs.flush()
        assert sub.poll() == [(0,)]

    def test_in_list_over_ports_end_to_end(self):
        gs = Gigascope()
        gs.add_query("DEFINE query_name q; Select destPort From tcp "
                     "Where destPort IN (80, 443)")
        sub = gs.subscribe("q")
        gs.start()
        for port in (80, 22, 443, 8080):
            gs.feed_packet(tcp_packet(ts=1.0, dport=port))
        gs.pump()
        assert sorted(sub.poll()) == [(80,), (443,)]


class TestSharedPacketView:
    """Several LFTAs on one interface share one header parse per packet;
    the results must be identical to per-LFTA parsing."""

    QUERIES = """
        DEFINE query_name a; Select time, destIP From eth0.tcp;
        DEFINE query_name b; Select time, srcIP From eth0.tcp
        Where destPort = 80;
        DEFINE query_name c; Select tb, count(*) From eth0.tcp
        Group by time/10 as tb
    """

    def _run(self):
        gs = Gigascope(heartbeat_interval=None)
        gs.add_queries(self.QUERIES)
        subs = {n: gs.subscribe(n) for n in ("a", "b", "c")}
        gs.start()
        for i in range(60):
            gs.feed_packet(tcp_packet(ts=float(i),
                                      dport=80 if i % 2 else 443))
        gs.flush()
        return {n: s.poll() for n, s in subs.items()}

    def test_shared_equals_unshared(self, monkeypatch):
        from repro.operators.lfta import LftaNode
        shared = self._run()
        monkeypatch.setattr(LftaNode, "accepts_view", False)
        unshared = self._run()
        assert shared == unshared

    def test_single_consumer_skips_view_construction(self):
        gs = Gigascope(heartbeat_interval=None)
        gs.add_query("DEFINE query_name only; Select time From tcp")
        sub = gs.subscribe("only")
        gs.start()
        gs.feed_packet(tcp_packet(ts=1.0))
        gs.pump()
        assert sub.poll() == [(1,)]
