"""Docs must not rot: every ```sql block in the documentation parses,
analyzes, and plans against the real front end."""

import re
from pathlib import Path

import pytest

from repro import Gigascope
from repro.gsql.parser import parse_queries

ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = [ROOT / "README.md", ROOT / "docs" / "gsql_reference.md"]

_FENCE = re.compile(r"```sql\n(.*?)```", re.DOTALL)


def sql_blocks():
    blocks = []
    for path in DOC_FILES:
        if not path.exists():
            continue
        for match in _FENCE.finditer(path.read_text()):
            blocks.append((path.name, match.group(1)))
    return blocks


@pytest.mark.parametrize("source,block", sql_blocks(),
                         ids=[f"{name}:{i}" for i, (name, _)
                              in enumerate(sql_blocks())])
def test_sql_block_compiles(source, block):
    queries = parse_queries(block)
    assert queries, f"empty sql block in {source}"
    gs = Gigascope()
    params = {
        name: {"peers": "10.0.0.0/8 1", "minlen": 40, "port": 80}
        for name in re.findall(r"query_name\s+(\w+)", block)
    }
    gs.add_queries(block, params=params)


def test_docs_mention_every_experiment():
    """EXPERIMENTS.md covers every benchmark module."""
    experiments = (ROOT / "EXPERIMENTS.md").read_text()
    for path in sorted((ROOT / "benchmarks").glob("test_e*.py")):
        assert path.name in experiments or path.stem.split("_")[1] in \
            experiments.lower(), f"{path.name} undocumented"
