"""Docs must not rot: every ```sql block in the documentation parses,
analyzes, and plans against the real front end."""

import re
from pathlib import Path

import pytest

from repro import Gigascope
from repro.gsql.parser import parse_queries

ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = [ROOT / "README.md", ROOT / "docs" / "gsql_reference.md"]

_FENCE = re.compile(r"```sql\n(.*?)```", re.DOTALL)


def sql_blocks():
    blocks = []
    for path in DOC_FILES:
        if not path.exists():
            continue
        for match in _FENCE.finditer(path.read_text()):
            blocks.append((path.name, match.group(1)))
    return blocks


@pytest.mark.parametrize("source,block", sql_blocks(),
                         ids=[f"{name}:{i}" for i, (name, _)
                              in enumerate(sql_blocks())])
def test_sql_block_compiles(source, block):
    queries = parse_queries(block)
    assert queries, f"empty sql block in {source}"
    gs = Gigascope()
    if "_gs_" in block:
        # Meta-queries read the self-telemetry streams; enabling
        # telemetry registers their schemas, just as a user must.
        gs.enable_telemetry()
    params = {
        name: {"peers": "10.0.0.0/8 1", "minlen": 40, "port": 80}
        for name in re.findall(r"query_name\s+(\w+)", block)
    }
    gs.add_queries(block, params=params)


def test_docs_mention_every_experiment():
    """EXPERIMENTS.md covers every benchmark module."""
    experiments = (ROOT / "EXPERIMENTS.md").read_text()
    for path in sorted((ROOT / "benchmarks").glob("test_e*.py")):
        assert path.name in experiments or path.stem.split("_")[1] in \
            experiments.lower(), f"{path.name} undocumented"


def test_readme_documents_every_metric_family():
    """The README metrics-family table covers every family the engine
    can register, across every plane (engine, NIC, shedding, batching,
    recovery, alerts, telemetry)."""
    from repro.faults.injectors import OperatorFault
    from repro.nic.nic import Nic

    gs = Gigascope(seed=3, heartbeat_interval=0.5, batch_size=4)
    gs.observe_nic(Nic())
    gs.enable_shedding("adaptive")
    gs.enable_telemetry(interval=0.5)
    gs.add_query("""
        DEFINE query_name flows;
        Select tb, count(*) as pkts
        From tcp Group by time/2 as tb
    """)
    gs.enable_recovery(checkpoint_interval=1.0)
    gs.enable_alerts(["t:on=flows,when=sum(pkts) > 1,epoch=2"])
    gs.subscribe("flows")
    gs.start()
    gs.inject_faults([OperatorFault("flows", at_tuple=1, times=1)])
    from tests.conftest import tcp_packet
    for i in range(64):
        gs.feed_packet(tcp_packet(ts=0.1 * i))
        if i % 8 == 7:
            gs.rts.pump()
    gs.flush()
    families = [family.name for family in gs.metrics.families()]
    assert families, "no metric families registered"

    # The sharded runtime registers its own plane of families.
    from repro.shard import ShardedGigascope
    sharded = ShardedGigascope(2, seed=3)
    sharded.add_query("""
        DEFINE query_name flows;
        Select tb, count(*) as pkts
        From tcp Group by time/2 as tb
    """)
    sharded.subscribe("flows")
    families += [family.name for family in sharded.metrics.families()]

    # The warm-standby pair registers the gs_repl_* plane on both
    # engines' registries.
    from repro.replication import ReplicatedGigascope
    pair = ReplicatedGigascope(cadence=0.5, seed=3)
    pair.add_query("""
        DEFINE query_name flows;
        Select tb, count(*) as pkts
        From tcp Group by time/2 as tb
    """)
    families += [family.name for family in pair.metrics.families()]

    readme = (ROOT / "README.md").read_text()
    undocumented = [name for name in sorted(set(families))
                    if f"`{name}`" not in readme]
    assert not undocumented, (
        f"metric families missing from the README table: {undocumented}")
