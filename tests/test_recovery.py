"""Checkpoint/restore, the recovery supervisor, and verified gap repair."""

import hashlib
import io
import math
import os
import struct

import pytest

from repro import Gigascope
from repro.faults import OperatorFault
from repro.recovery import (
    MAGIC,
    SNAPSHOT_VERSION,
    SnapshotCorruptError,
    SnapshotError,
    SnapshotVersionError,
    decode_snapshot,
    encode_snapshot,
)
from repro.workloads.flows import ZipfFlowWorkload
from tests.conftest import tcp_packet


# ---------------------------------------------------------------------------
# Wire format
# ---------------------------------------------------------------------------

class TestWireFormat:
    def test_round_trip_every_primitive(self):
        state = {
            "none": None,
            "bools": (True, False),
            "ints": [0, -1, 2**80, -(2**80)],
            "floats": (0.0, -0.0, 1.5, float("inf"), -math.inf),
            "text": "héllo\x00world",
            "blob": bytes(range(256)),
            ("tuple", "key"): {"nested": [(1, 2.5, b"x"), []]},
        }
        assert decode_snapshot(encode_snapshot(state)) == state

    def test_nan_round_trips_bit_identical(self):
        blob = encode_snapshot(float("nan"))
        assert math.isnan(decode_snapshot(blob))

    def test_tuple_list_distinction_preserved(self):
        # RNG getstate() trees mix tuples and lists; restore must hand
        # random.setstate a tuple, not a list.
        decoded = decode_snapshot(encode_snapshot((3, (1, 2, 3), [4, 5])))
        assert type(decoded) is tuple
        assert type(decoded[1]) is tuple
        assert type(decoded[2]) is list

    def test_rng_state_round_trips(self):
        import random
        rng = random.Random(99)
        rng.random()
        restored = random.Random()
        restored.setstate(decode_snapshot(encode_snapshot(rng.getstate())))
        assert restored.random() == rng.random()

    def test_insertion_order_preserved(self):
        state = {"b": 1, "a": 2}
        assert list(decode_snapshot(encode_snapshot(state))) == ["b", "a"]

    def test_corrupt_payload_rejected(self):
        blob = bytearray(encode_snapshot({"k": 12345}))
        blob[10] ^= 0xFF
        with pytest.raises(SnapshotCorruptError, match="checksum"):
            decode_snapshot(bytes(blob))

    def test_bad_magic_rejected(self):
        blob = b"XXXX" + encode_snapshot(1)[4:]
        with pytest.raises(SnapshotCorruptError, match="magic"):
            decode_snapshot(blob)

    def test_truncated_blob_rejected(self):
        blob = encode_snapshot({"k": "value"})
        with pytest.raises(SnapshotCorruptError):
            decode_snapshot(blob[: len(blob) // 2])

    def test_unencodable_type_rejected(self):
        with pytest.raises(SnapshotError, match="set"):
            encode_snapshot({"bad": {1, 2}})

    def test_old_version_rejected_with_clear_error(self):
        # The version field sits outside the checksummed payload, so a
        # stale version N-1 blob is otherwise intact -- it must still
        # be refused, by version, with both versions named.
        blob = bytearray(encode_snapshot({"k": 1}))
        struct.pack_into(">H", blob, len(MAGIC), SNAPSHOT_VERSION - 1)
        with pytest.raises(SnapshotVersionError) as excinfo:
            decode_snapshot(bytes(blob))
        message = str(excinfo.value)
        assert str(SNAPSHOT_VERSION - 1) in message
        assert str(SNAPSHOT_VERSION) in message

    def test_future_version_rejected(self):
        blob = bytearray(encode_snapshot({"k": 1}))
        struct.pack_into(">H", blob, len(MAGIC), SNAPSHOT_VERSION + 1)
        with pytest.raises(SnapshotVersionError):
            decode_snapshot(bytes(blob))


# ---------------------------------------------------------------------------
# Operator snapshot format stability (golden bytes)
# ---------------------------------------------------------------------------
#
# Each builder constructs one stateful operator, drives a fixed input
# sequence, and returns the node.  The test encodes snapshot_state()
# and compares the digest of the bytes against a recorded golden: any
# change to an operator's state layout or to the wire encoding fails
# here, which is the signal to bump SNAPSHOT_VERSION (old checkpoints
# must be rejected, not misread into new-layout state).

def _compile(text, streams=None):
    from repro.gsql.codegen import ExprCompiler
    from repro.gsql.functions import builtin_functions
    from repro.gsql.parser import parse_query
    from repro.gsql.planner import plan_query
    from repro.gsql.schema import builtin_registry
    from repro.gsql.semantic import analyze

    functions = builtin_functions()
    analyzed = analyze(parse_query(text), builtin_registry(), functions,
                       stream_resolver=(streams or {}).get)
    plan = plan_query(analyzed, functions)
    compiler = ExprCompiler(analyzed, functions, None, "compiled")
    return analyzed, plan, compiler


def _fixed_packets(count=40):
    return [tcp_packet(ts=i * 0.25, sport=1000 + i % 7, dport=80,
                       payload=b"x" * (1 + i % 5))
            for i in range(count)]


def _build_table():
    from repro.operators.lfta_table import DirectMappedTable
    table = DirectMappedTable(8)
    for i in range(12):
        table.insert(("10.0.0.%d" % i, 80), (i, float(i)))
    return table


def _build_lfta():
    from repro.operators.lfta import LftaNode
    analyzed, plan, compiler = _compile(
        "DEFINE { query_name q; sample 0.5; } "
        "Select tb, srcPort, count(*) From tcp "
        "Group by time/5 as tb, srcPort")
    lfta = LftaNode(plan.lftas[0], analyzed, compiler, table_size=4, seed=7)
    lfta.subscribe()
    for packet in _fixed_packets():
        lfta.accept_packet(packet)
    return lfta


def _build_aggregation():
    from repro.operators.aggregation import AggregationNode
    analyzed, plan, compiler = _compile(
        "DEFINE query_name a; Select tb, srcPort, count(*), sum(len) "
        "From tcp Group by time/5 as tb, srcPort")
    node = AggregationNode(plan.hfta, analyzed, compiler, seed=7)
    node.subscribe()
    for i in range(30):
        node.dispatch((i // 10, 1000 + i % 3, 1, 40 + i), 0)
    return node


def _two_streams():
    _, plan_a, _ = _compile("DEFINE query_name sa; "
                            "Select time, destPort From tcp")
    _, plan_b, _ = _compile("DEFINE query_name sb; "
                            "Select time, destPort From tcp")
    return {"sa": plan_a.output_schema, "sb": plan_b.output_schema}


def _build_join():
    from repro.operators.join import JoinNode
    streams = _two_streams()
    analyzed, plan, compiler = _compile(
        "DEFINE query_name j; Select A.time, A.destPort, B.destPort "
        "From sa A, sb B Where A.time = B.time", streams=streams)
    node = JoinNode(plan.hfta, analyzed, compiler)
    node.subscribe()
    for t in range(10):
        node.dispatch((t, 80 + t % 2), 0)
        if t % 3 == 0:
            node.dispatch((t, 80), 1)
    return node


def _build_merge():
    from repro.operators.merge import MergeNode
    streams = _two_streams()
    analyzed, plan, _ = _compile(
        "DEFINE query_name m; Merge sa.time : sb.time From sa, sb",
        streams=streams)
    node = MergeNode(plan.hfta, analyzed, buffer_capacity=16)
    node.subscribe()
    for t in range(8):
        node.dispatch((t, 80), 0)
    node.dispatch((2, 443), 1)
    return node


def _build_sessionize():
    from repro.operators.sessionize import SessionizeNode
    node = SessionizeNode("sess", idle_timeout=5.0)
    node.subscribe()
    for packet in _fixed_packets():
        node.accept_packet(packet)
    return node


def _build_tcp_reassembly():
    from repro.net.tcp import FLAG_ACK, FLAG_SYN
    from repro.operators.tcp_reassembly import TcpReassemblyNode
    node = TcpReassemblyNode("tcpre")
    node.subscribe()
    node.accept_packet(tcp_packet(ts=0.0, seq=100, flags=FLAG_SYN))
    node.accept_packet(tcp_packet(ts=0.1, seq=101, payload=b"hello ",
                                  flags=FLAG_ACK))
    # A gap: this segment waits in the out-of-order buffer.
    node.accept_packet(tcp_packet(ts=0.2, seq=117, payload=b"stream",
                                  flags=FLAG_ACK))
    return node


def _build_defrag():
    from repro.gsql.schema import builtin_registry
    from repro.operators.defrag import DefragNode
    from tests.test_operators_defrag import fragmented_udp
    node = DefragNode("defrag0", builtin_registry().get("udp"))
    node.subscribe()
    fragments, _ = fragmented_udp(payload_len=2000, mtu=600)
    # Hold back the last fragment so reassembly state stays pending.
    for fragment in fragments[:-1]:
        node.accept_packet(fragment)
    return node


def _build_csv_sink():
    from repro.sinks import CsvSink
    _, plan, _ = _compile("DEFINE query_name s; "
                          "Select time, destPort From tcp")
    sink = CsvSink("s_sink", plan.output_schema, io.StringIO())
    for t in range(5):
        sink.dispatch((t, 80), 0)
    return sink


_GOLDEN_BUILDERS = {
    "table": _build_table,
    "lfta": _build_lfta,
    "aggregation": _build_aggregation,
    "join": _build_join,
    "merge": _build_merge,
    "sessionize": _build_sessionize,
    "tcp_reassembly": _build_tcp_reassembly,
    "defrag": _build_defrag,
    "csv_sink": _build_csv_sink,
}

# sha256 of each operator's encoded snapshot under the fixed inputs
# above, for wire format version 2 (sparse LFTA table slots, elided
# untouched shed-RNG state).  A mismatch means the snapshot layout
# changed: bump SNAPSHOT_VERSION and regenerate these.
_GOLDEN_SHA256 = {
    "table": "d97041644e71c28b5720626c2c603200832e84fa4247b95b6c59d76a0673a047",
    "lfta": "0709919f71ffb0d510d1d30da358fd680b48a43747fa6405634375caa2e9b4f2",
    "aggregation":
        "3f6969efd5fdc97b18f0b557d92b2c0d9b0d66ff8af9c58971ddc19ba378f717",
    "join": "3571311041dc0cac529c977422d7f197afda11bafec35c390ec3e424913caa77",
    "merge": "05ebfa7bcc7ff0eedf315b6e8d0503f952c933745b85d73ca01d0bae176a03b5",
    "sessionize":
        "f679288b3375974021b6216244326c28d92756bb9a95dc7ac9d5b26475740074",
    "tcp_reassembly":
        "bf8679f5c711c4b60d458408b01d79c035eeaa6b8c89e9871a742b37e602f1ca",
    "defrag": "4280f27cc58c22753a9184350a5e765b76bd057d3671ac05af0a124f5460b2d1",
    "csv_sink":
        "7cc9ca2db4bfa9a0214f95e722e76e431eadad9e6f27e3a09fb89f682022d833",
}


class TestSnapshotGoldens:
    @pytest.mark.parametrize("name", sorted(_GOLDEN_BUILDERS))
    def test_snapshot_bytes_are_stable(self, name):
        blob = encode_snapshot(_GOLDEN_BUILDERS[name]().snapshot_state())
        assert hashlib.sha256(blob).hexdigest() == _GOLDEN_SHA256[name], (
            f"{name} snapshot bytes changed; if the state layout changed, "
            f"bump repro.recovery.wire.SNAPSHOT_VERSION and regenerate "
            f"the goldens"
        )

    @pytest.mark.parametrize("name", sorted(_GOLDEN_BUILDERS))
    def test_snapshot_restore_round_trip(self, name):
        node = _GOLDEN_BUILDERS[name]()
        blob = encode_snapshot(node.snapshot_state())
        node.restore_state(decode_snapshot(blob))
        assert encode_snapshot(node.snapshot_state()) == blob

    def test_table_size_mismatch_rejected(self):
        from repro.operators.lfta_table import DirectMappedTable
        blob = encode_snapshot(_build_table().snapshot_state())
        other = DirectMappedTable(16)
        with pytest.raises(ValueError, match="size"):
            other.restore_state(decode_snapshot(blob))


# ---------------------------------------------------------------------------
# Supervisor: inline recovery, backoff, retry budget
# ---------------------------------------------------------------------------

AGG_QUERY = """
    DEFINE query_name flows;
    Select tb, srcIP, count(*), sum(len)
    From tcp
    Group by time/1 as tb, srcIP
"""


def _run(crash=None, times=1, max_restarts=3, checkpoint_interval=0.4,
         count=1500, seed=11):
    """One engine run; ``crash`` arms a transient OperatorFault."""
    gs = Gigascope(seed=seed, lfta_table_size=32, channel_capacity=256,
                   heartbeat_interval=0.25, batch_size=1)
    gs.add_query(AGG_QUERY)
    sub = gs.subscribe("flows")
    supervisor = gs.enable_recovery(checkpoint_interval=checkpoint_interval,
                                    max_restarts=max_restarts)
    gs.start()
    if crash is not None:
        node, at_tuple = crash
        gs.inject_faults([OperatorFault(node, at_tuple=at_tuple,
                                        times=times)])
    workload = ZipfFlowWorkload(num_flows=150, alpha=1.0, seed=seed)
    gs.feed(workload.packets(count, pps=1000.0), pump_every=64)
    gs.flush()
    return gs, sub, supervisor


class TestInlineRecovery:
    def test_crash_run_matches_clean_run(self):
        clean_gs, clean_sub, _ = _run()
        crash_gs, crash_sub, supervisor = _run(crash=("flows", 80))
        assert supervisor.restarts_total == 1
        assert supervisor.replayed_items > 0
        # Byte-identical repair: same rows, same statistics, no
        # quarantine, nothing lost and nothing duplicated.
        assert crash_sub.poll() == clean_sub.poll()
        assert crash_gs.stats() == clean_gs.stats()
        assert crash_gs.rts.quarantined == {}
        assert crash_gs.rts.nodes_quarantined == 0

    def test_lfta_crash_recovers_from_packet_journal(self):
        clean_gs, clean_sub, _ = _run()
        lfta_gs = Gigascope(seed=11, lfta_table_size=32,
                            channel_capacity=256, heartbeat_interval=0.25,
                            batch_size=1)
        lfta_gs.add_query(AGG_QUERY)
        sub = lfta_gs.subscribe("flows")
        supervisor = lfta_gs.enable_recovery(checkpoint_interval=0.4)
        lfta_gs.start()
        lfta_name = next(n for n, _ in lfta_gs.rts.iter_nodes()
                         if n.startswith("_fta_"))
        lfta_gs.inject_faults([OperatorFault(lfta_name, at_tuple=500,
                                             times=1)])
        workload = ZipfFlowWorkload(num_flows=150, alpha=1.0, seed=11)
        lfta_gs.feed(workload.packets(1500, pps=1000.0), pump_every=64)
        lfta_gs.flush()
        assert supervisor.restarts_total == 1
        assert sub.poll() == clean_sub.poll()
        assert lfta_gs.stats() == clean_gs.stats()

    def test_recovery_report_and_metrics(self):
        gs, _sub, supervisor = _run(crash=("flows", 80))
        report = gs.recovery_report()
        assert report["restarts"] == {"flows": 1}
        assert report["checkpoints_taken"] >= 2
        assert report["checkpoint_bytes"] > 0
        assert report["suspended"] == []
        exposition = gs.metrics.to_prometheus()
        assert "gs_recovery_restarts_total 1" in exposition
        assert "gs_recovery_checkpoints_total" in exposition

    def test_no_supervisor_means_quarantine_unchanged(self):
        gs = Gigascope(seed=11, batch_size=1)
        gs.add_query(AGG_QUERY)
        sub = gs.subscribe("flows")
        gs.start()
        gs.inject_faults([OperatorFault("flows", at_tuple=10)])
        workload = ZipfFlowWorkload(num_flows=150, alpha=1.0, seed=11)
        gs.feed(workload.packets(800, pps=1000.0))
        gs.flush()
        assert "flows" in gs.rts.quarantined
        assert gs.recovery_report() is None
        sub.poll()
        assert sub.ended


class TestBackoffAndBudget:
    def test_repeated_crash_suspends_then_recovers(self):
        # times=2: the replay of attempt 1 re-crashes (the injector
        # fires again), forcing a suspension and a backoff retry that
        # then succeeds.
        gs, sub, supervisor = _run(crash=("flows", 80), times=2)
        assert supervisor.restarts_total == 2
        assert supervisor.suspended == []
        assert gs.rts.quarantined == {}
        assert sub.poll()  # the query finished the stream

    def test_exhausted_budget_degrades_to_quarantine(self):
        # A permanent fault: every restart's replay crashes again until
        # the budget is spent, then containment is exactly PR 3's.
        gs, sub, supervisor = _run(crash=("flows", 80), times=None,
                                   max_restarts=2)
        assert supervisor.restarts_total == 2
        assert supervisor.retries_exhausted >= 1
        assert list(gs.rts.quarantined) == ["flows"]
        assert gs.rts.nodes_quarantined == 1
        report = gs.overload_report()
        assert list(report["quarantined"]) == ["flows"]
        assert "injected fault" in report["quarantined"]["flows"]
        sub.poll()
        assert sub.ended  # FLUSH propagated, no hang

    def test_zero_budget_is_immediate_quarantine(self):
        gs, _sub, supervisor = _run(crash=("flows", 80), max_restarts=0)
        assert supervisor.restarts_total == 0
        assert supervisor.retries_exhausted == 1
        assert list(gs.rts.quarantined) == ["flows"]

    def test_bad_supervisor_parameters_rejected(self):
        gs = Gigascope(batch_size=1)
        for kwargs in ({"checkpoint_interval": 0},
                       {"max_restarts": -1},
                       {"backoff_base": 0.0},
                       {"backoff_factor": 0.5}):
            with pytest.raises(ValueError):
                gs.enable_recovery(**kwargs)


class TestSinkExactlyOnce:
    def test_sink_rows_written_once_across_recovery(self):
        from repro.sinks import CsvSink, attach_sink

        def run(crash):
            gs = Gigascope(seed=11, lfta_table_size=32,
                           channel_capacity=256, heartbeat_interval=0.25,
                           batch_size=1)
            gs.add_query(AGG_QUERY)
            buffer = io.StringIO()
            sink = attach_sink(gs, "flows", CsvSink, buffer)
            gs.enable_recovery(checkpoint_interval=0.4)
            gs.start()
            if crash:
                gs.inject_faults([OperatorFault(sink.name, at_tuple=20,
                                                times=1)])
            workload = ZipfFlowWorkload(num_flows=150, alpha=1.0, seed=11)
            gs.feed(workload.packets(1500, pps=1000.0), pump_every=64)
            gs.flush()
            return buffer.getvalue(), sink

        clean_text, _ = run(crash=False)
        crash_text, sink = run(crash=True)
        assert sink.rows_written > 20
        assert crash_text == clean_text  # no missing and no doubled lines


# ---------------------------------------------------------------------------
# In-process crash/clean differential over the registered scenarios
# ---------------------------------------------------------------------------

class TestVerifyRecoveryScenarios:
    @pytest.mark.parametrize("name", ["recovery_agg", "recovery_join",
                                      "recovery_tcp"])
    def test_crash_arm_is_byte_identical(self, name, monkeypatch):
        from repro.determinism import (
            SCENARIOS,
            _diff_paths,
            strip_recovery_artifacts,
        )
        monkeypatch.setenv("GS_RECOVERY_CRASH", "0")
        clean = strip_recovery_artifacts(SCENARIOS[name](7))
        monkeypatch.setenv("GS_RECOVERY_CRASH", "1")
        crashed = SCENARIOS[name](7)
        # The crash must actually have happened for the diff to prove
        # anything about recovery.
        assert crashed["drops"]["faults"][0]["triggered"] == 1
        diffs = []
        _diff_paths(clean, strip_recovery_artifacts(crashed), "$", diffs)
        assert diffs == []


# ---------------------------------------------------------------------------
# Batch dispatch containment (sibling block integrity)
# ---------------------------------------------------------------------------

class TestBatchQuarantineIntegrity:
    def _engine_with_recorders(self, crash_at):
        from repro.core.query_node import QueryNode
        from repro.gsql.schema import builtin_registry

        schema = builtin_registry().get("tcp")

        class Recorder(QueryNode):
            def __init__(self, name):
                super().__init__(name, schema)
                self.seen = []

            def accept_packet(self, packet):
                self.seen.append(packet.timestamp)

            def snapshot_state(self):
                state = super().snapshot_state()
                state["seen"] = list(self.seen)
                return state

            def restore_state(self, state):
                super().restore_state(state)
                self.seen = list(state["seen"])

        class CrashingBatch(Recorder):
            def accept_batch(self, packets, views):
                for packet in packets:
                    if len(self.seen) == crash_at:
                        raise RuntimeError("mid-batch crash")
                    self.seen.append(packet.timestamp)

        gs = Gigascope(batch_size=16, heartbeat_interval=None)
        good = Recorder("good")
        bad = CrashingBatch("bad")
        gs.add_node(bad, interface="eth0")
        gs.add_node(good, interface="eth0")
        return gs, good, bad

    def test_mid_batch_crash_leaves_sibling_block_intact(self):
        gs, good, bad = self._engine_with_recorders(crash_at=5)
        gs.start()
        stream = [tcp_packet(ts=float(i)) for i in range(32)]
        gs.feed(stream, pump_every=64)
        gs.flush()
        # The crashing consumer was quarantined mid-block...
        assert "bad" in gs.rts.quarantined
        assert bad.seen == [float(i) for i in range(5)]
        # ...and its sibling still saw every packet of every block.
        assert good.seen == [float(i) for i in range(32)]
        assert gs.rts.batches_fed >= 2

    def test_mid_batch_crash_recovers_with_supervisor(self):
        gs, good, bad = self._engine_with_recorders(crash_at=5)
        gs.enable_recovery(checkpoint_interval=1000.0)
        gs.start()
        stream = [tcp_packet(ts=float(i)) for i in range(32)]
        gs.feed(stream, pump_every=64)
        gs.flush()
        assert gs.rts.quarantined == {}
        # Replay from the packet journal re-delivered the whole stream:
        # the crash consumed none of it durably, recovery all of it.
        assert bad.seen == [float(i) for i in range(32)]
        assert good.seen == [float(i) for i in range(32)]
