"""Tests for Protocols, Streams, the DDL, and packet interpretation."""

import pytest

from repro.gsql.ordering import Ordering, OrderingKind
from repro.gsql.schema import (
    Attribute,
    PacketView,
    ProtocolSchema,
    SchemaError,
    SchemaRegistry,
    StreamSchema,
    builtin_registry,
    parse_ddl,
)
from repro.gsql.types import IP, STRING, UINT
from repro.net.build import build_tcp_frame, build_udp_frame, capture
from repro.net.netflow import NetflowRecord, pack_netflow_v5
from repro.net.packet import CapturedPacket, ip_to_int


@pytest.fixture
def registry():
    return builtin_registry()


def _tcp_packet(ts=100.0, dport=80, payload=b"GET / HTTP/1.1\r\n\r\n"):
    frame = build_tcp_frame("10.0.0.1", "192.168.1.1", 1234, dport,
                            payload=payload, ttl=63)
    return capture(frame, ts)


class TestPacketView:
    def test_tcp_fields(self):
        view = PacketView(_tcp_packet())
        assert view.ip.src == ip_to_int("10.0.0.1")
        assert view.tcp.dst_port == 80
        assert view.payload == b"GET / HTTP/1.1\r\n\r\n"
        assert view.udp is None

    def test_udp_fields(self):
        frame = build_udp_frame("1.1.1.1", "2.2.2.2", 53, 5353, payload=b"dns")
        view = PacketView(capture(frame, 0.0))
        assert view.udp.src_port == 53
        assert view.tcp is None
        assert view.payload == b"dns"

    def test_non_ip_frame(self):
        view = PacketView(CapturedPacket(timestamp=0.0, data=b"\x00" * 20))
        assert view.ip is None
        assert view.payload is None

    def test_truncated_capture(self):
        packet = _tcp_packet().truncate(20)  # cuts into the IP header
        view = PacketView(packet)
        assert view.eth is not None
        assert view.ip is None


class TestBuiltinProtocols:
    def test_tcp_interpret(self, registry):
        tcp = registry.get("tcp")
        rows = tcp.interpret(_tcp_packet(ts=42.7))
        assert len(rows) == 1
        row = rows[0]
        assert row[tcp.index_of("time")] == 42
        assert abs(row[tcp.index_of("timestamp")] - 42.7) < 1e-9
        assert row[tcp.index_of("destPort")] == 80
        assert row[tcp.index_of("srcIP")] == ip_to_int("10.0.0.1")
        assert row[tcp.index_of("data")] == b"GET / HTTP/1.1\r\n\r\n"
        assert row[tcp.index_of("ttl")] == 63
        assert row[tcp.index_of("protocol")] == 6

    def test_tcp_rejects_udp_packet(self, registry):
        frame = build_udp_frame("1.1.1.1", "2.2.2.2", 53, 5353)
        assert registry.get("tcp").interpret(capture(frame, 0.0)) == []

    def test_udp_rejects_tcp_packet(self, registry):
        assert registry.get("udp").interpret(_tcp_packet()) == []

    def test_ip_accepts_both(self, registry):
        ip = registry.get("ip")
        assert len(ip.interpret(_tcp_packet())) == 1
        frame = build_udp_frame("1.1.1.1", "2.2.2.2", 53, 5353)
        assert len(ip.interpret(capture(frame, 0.0))) == 1

    def test_time_ordering_declared(self, registry):
        tcp = registry.get("tcp")
        assert tcp.attribute("time").ordering.is_increasing
        assert tcp.attribute("destPort").ordering.kind == OrderingKind.NONE

    def test_netflow_expander(self, registry):
        records = [
            NetflowRecord(src_ip=1, dst_ip=2, src_port=3, dst_port=80,
                          protocol=6, packets=9, octets=900,
                          start_time=10.0, end_time=20.0)
            for _ in range(3)
        ]
        payload = pack_netflow_v5(records, unix_secs=0)
        frame = build_udp_frame("10.255.0.1", "10.255.0.2", 4000, 2055,
                                payload=payload)
        netflow = registry.get("netflow")
        rows = netflow.interpret(capture(frame, 50.0))
        assert len(rows) == 3
        assert rows[0][netflow.index_of("packets")] == 9
        assert abs(rows[0][netflow.index_of("time_start")] - 10.0) < 0.01

    def test_netflow_clock_bounds(self, registry):
        netflow = registry.get("netflow")
        bounds = netflow.clock_bounds(100.0)
        assert bounds[netflow.index_of("time_end")] == 100.0
        assert bounds[netflow.index_of("time_start")] == 70.0

    def test_bgp_expander(self, registry):
        from repro.net.bgp import BGPUpdate
        update = BGPUpdate(announced=[(ip_to_int("10.0.0.0"), 8)],
                           as_path=[7018, 3356])
        frame = build_udp_frame("10.0.0.9", "10.0.0.10", 179, 179,
                                payload=update.pack())
        bgp = registry.get("bgp")
        rows = bgp.interpret(capture(frame, 9.0))
        assert len(rows) == 1
        assert rows[0][bgp.index_of("origin_as")] == 3356
        assert rows[0][bgp.index_of("announced")] == 1


class TestSparseInterpreter:
    def test_only_requested_fields_computed(self, registry):
        tcp = registry.get("tcp")
        wanted = [tcp.index_of("time"), tcp.index_of("destPort")]
        interpret = tcp.sparse_interpreter(wanted)
        (row,) = interpret(_tcp_packet(ts=5.0))
        assert row[tcp.index_of("time")] == 5
        assert row[tcp.index_of("destPort")] == 80
        assert row[tcp.index_of("srcIP")] is None  # not computed

    def test_discards_when_field_unavailable(self, registry):
        tcp = registry.get("tcp")
        interpret = tcp.sparse_interpreter([tcp.index_of("destPort")])
        frame = build_udp_frame("1.1.1.1", "2.2.2.2", 53, 5353)
        assert interpret(capture(frame, 0.0)) == []


class TestSchemas:
    def test_duplicate_attribute_rejected(self):
        with pytest.raises(SchemaError):
            StreamSchema("s", [Attribute("x", UINT), Attribute("X", UINT)])

    def test_index_lookup_case_insensitive(self):
        schema = StreamSchema("s", [Attribute("destIP", IP)])
        assert schema.index_of("destip") == 0
        assert "DESTIP" in schema

    def test_missing_attribute_raises(self):
        schema = StreamSchema("s", [Attribute("x", UINT)])
        with pytest.raises(SchemaError):
            schema.index_of("y")

    def test_registry_duplicate(self, registry):
        with pytest.raises(SchemaError):
            registry.add(registry.get("tcp"))

    def test_protocol_requires_all_field_functions(self):
        with pytest.raises(SchemaError):
            ProtocolSchema("p", [Attribute("mystery", UINT)], {})


class TestDDL:
    def test_define_custom_protocol(self):
        (schema,) = parse_ddl("""
            PROTOCOL web (
                time UINT (increasing),
                destIP IP,
                destPort UINT,
                data STRING
            )
        """)
        assert schema.name == "web"
        assert schema.attribute("time").ordering.is_increasing
        rows = schema.interpret(_tcp_packet(ts=3.0))
        assert rows[0][schema.index_of("destPort")] == 80

    def test_ordering_variants(self):
        (schema,) = parse_ddl("""
            PROTOCOL p (
                time UINT (strictly increasing),
                timestamp FLOAT (banded_increasing(30)),
                seqno UINT (nonrepeating),
                srcIP IP (increasing_in_group(destIP, destPort)),
                destIP IP,
                destPort UINT
            )
        """)
        assert schema.attribute("time").ordering == Ordering.increasing(strict=True)
        assert schema.attribute("timestamp").ordering == Ordering.banded(30)
        assert schema.attribute("seqno").ordering == Ordering.nonrepeating()
        assert schema.attribute("srcIP").ordering.group == ("destIP", "destPort")

    def test_unknown_field_rejected(self):
        with pytest.raises(SchemaError):
            parse_ddl("PROTOCOL p ( nosuchfield UINT )")

    def test_multiple_protocols(self):
        schemas = parse_ddl("""
            PROTOCOL a ( time UINT );
            PROTOCOL b ( destPort UINT )
        """)
        assert [s.name for s in schemas] == ["a", "b"]


class TestEthernetProtocol:
    def test_counts_every_frame(self, registry):
        from tests.conftest import tcp_packet, udp_packet
        from repro.net.build import build_tcp6_frame, capture
        ethernet = registry.get("ethernet")
        for packet in (tcp_packet(ts=1.0), udp_packet(ts=2.0),
                       capture(build_tcp6_frame("::1", "::2", 1, 2), 3.0)):
            (row,) = ethernet.interpret(packet)
            assert row[ethernet.index_of("len")] == packet.orig_len

    def test_mac_fields(self, registry):
        from tests.conftest import tcp_packet
        ethernet = registry.get("ethernet")
        (row,) = ethernet.interpret(tcp_packet())
        assert row[ethernet.index_of("eth_src")] == b"02:00:00:00:00:01"

    def test_query_over_ethernet(self):
        from repro import Gigascope
        from tests.conftest import tcp_packet, udp_packet
        gs = Gigascope()
        gs.add_query("DEFINE query_name frames; "
                     "Select tb, count(*), sum(len) From ethernet "
                     "Group by time/10 as tb")
        sub = gs.subscribe("frames")
        gs.start()
        gs.feed_packet(tcp_packet(ts=1.0))
        gs.feed_packet(udp_packet(ts=2.0))
        gs.flush()
        rows = sub.poll()
        assert rows[0][1] == 2
