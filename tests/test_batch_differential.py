"""Differential tests: the batched data path vs the scalar one.

DESIGN section 10's contract is that vectorized execution is purely a
mechanical optimization -- for every query and every fault scenario,
sink rows, the drop ledger, and per-node statistics must be
byte-identical to scalar execution.  These tests run the full GSQL
corpus and the E13-style fault injectors through both paths in-process
and diff the canonical snapshots (the ``gs_batch*`` metric families
differ by construction and are stripped first).
"""

import pytest

from repro import Gigascope
from repro.determinism import (
    _diff_paths,
    derive_seed,
    snapshot_engine,
    strip_batch_metrics,
)
from repro.faults import (
    ChannelOverflowStorm,
    ClockSkew,
    HeartbeatSilence,
    OperatorFault,
    RingLossBurst,
)
from repro.workloads.flows import ZipfFlowWorkload
from tests.conftest import udp_packet
from tests.test_gsql_corpus import CORPUS, PARAMS

SEED = 11

RUNNABLE = [(text,) for text, lftas, _, _ in CORPUS if lftas is not None]


def make_packets(seed=SEED, count=1200):
    """A deterministic two-interface TCP workload plus a UDP trickle."""
    eth0 = ZipfFlowWorkload(num_flows=120, alpha=1.0,
                            seed=derive_seed(seed, "diff.eth0"))
    eth1 = ZipfFlowWorkload(num_flows=120, alpha=1.0,
                            seed=derive_seed(seed, "diff.eth1"))
    packets = list(eth0.packets(count // 2, pps=900.0, interface="eth0"))
    packets += eth1.packets(count // 2, pps=1100.0, start=0.0004,
                            interface="eth1")
    packets += [udp_packet(ts=0.05 + i * 0.11, sport=5353, dport=53)
                for i in range(10)]
    packets.sort(key=lambda p: p.timestamp)
    return packets


def run_differential(build, feed=None, *, batch_size=64, pump_every=96,
                     columnar=None):
    """Run ``build`` scalar and batched; return (diffs, batched engine).

    ``build(gs)`` registers queries/faults and returns the subscription
    dict; ``feed(gs)`` (default: :func:`make_packets`) drives the
    engine.  Both runs share seeds, so any diff is a batching bug.
    ``columnar`` pins the batched arm's block representation (None:
    engine default, i.e. columnar for builtin ip/tcp/udp LFTAs).
    """
    snapshots = []
    engines = []
    for size in (1, batch_size):
        gs = Gigascope(seed=SEED, batch_size=size, lfta_table_size=64,
                       channel_capacity=256, heartbeat_interval=0.5,
                       columnar=columnar)
        subs = build(gs)
        gs.start()
        if feed is not None:
            feed(gs)
        else:
            gs.feed(make_packets(), pump_every=pump_every)
        gs.flush()
        snapshots.append(strip_batch_metrics(snapshot_engine(gs, subs)))
        engines.append(gs)
    diffs = []
    _diff_paths(snapshots[0], snapshots[1], "$", diffs)
    return diffs, engines[1]


class TestCorpusDifferential:
    """Every runnable corpus query, scalar vs batched."""

    @pytest.mark.parametrize("text", [q[0] for q in RUNNABLE],
                             ids=[f"q{i:02d}" for i in range(len(RUNNABLE))])
    def test_query_is_byte_identical(self, text):
        def build(gs):
            name = gs.add_query(text, params=PARAMS, name="q")
            return {name: gs.subscribe(name)}

        diffs, batched = run_differential(build)
        assert not diffs, "\n".join(diffs)
        # The batched run must actually have taken the vectorized path.
        assert batched.rts.batches_fed > 0

    def test_composition_chain_is_byte_identical(self):
        def build(gs):
            gs.add_queries("""
                DEFINE query_name raw0; Select time, destIP, len From eth0.tcp;
                DEFINE query_name raw1; Select time, destIP, len From eth1.tcp;
                DEFINE query_name link;
                Merge raw0.time : raw1.time From raw0, raw1;
                DEFINE query_name volume;
                Select tb, sum(len) as bytes From link Group by time/2 as tb;
            """)
            return {name: gs.subscribe(name) for name in ("link", "volume")}

        diffs, batched = run_differential(build)
        assert not diffs, "\n".join(diffs)
        assert batched.rts.batches_fed > 0

    def test_shedding_and_sampling_are_byte_identical(self):
        """Both RNG consumers (shed gate, DEFINE sample) draw in the
        same order on both paths."""
        def build(gs):
            gs.add_query("""
                DEFINE { query_name sampled; sample 0.25; }
                Select srcIP, destPort, time From tcp Where protocol = 6
            """)
            gs.add_query("""
                DEFINE query_name flows;
                Select tb, srcIP, count(*) From tcp Group by time/5 as tb, srcIP
            """)
            gs.enable_shedding("static:0.6")
            return {name: gs.subscribe(name) for name in ("sampled", "flows")}

        diffs, batched = run_differential(build)
        assert not diffs, "\n".join(diffs)
        assert batched.rts.batches_fed > 0

    @pytest.mark.parametrize("batch_size", [2, 7, 64, 4096])
    def test_batch_size_does_not_matter(self, batch_size):
        def build(gs):
            name = gs.add_query(
                "Select tb, srcIP, count(*), sum(len) From tcp "
                "Group by time/5 as tb, srcIP", name="q")
            return {name: gs.subscribe(name)}

        diffs, _ = run_differential(build, batch_size=batch_size)
        assert not diffs, "\n".join(diffs)


def _lftas(gs):
    return [node for _, node in gs.rts.iter_nodes()
            if hasattr(node, "columnar_blocks")]


class TestColumnarDifferential:
    """DESIGN section 14: the columnar block path is byte-identical to
    scalar, and the row-based batched path (columnar off) stays so."""

    BUILD_TEXT = ("Select tb, srcIP, count(*), sum(len) From tcp "
                  "Group by time/5 as tb, srcIP")

    def _build(self, gs):
        name = gs.add_query(self.BUILD_TEXT, name="q")
        return {name: gs.subscribe(name)}

    def test_columnar_path_is_byte_identical_and_engaged(self):
        diffs, batched = run_differential(self._build, columnar=True)
        assert not diffs, "\n".join(diffs)
        assert batched.rts.batches_fed > 0
        assert sum(node.columnar_blocks for node in _lftas(batched)) > 0

    def test_row_based_batch_path_is_byte_identical(self):
        """columnar=False keeps the pre-columnar per-row batch loop."""
        diffs, batched = run_differential(self._build, columnar=False)
        assert not diffs, "\n".join(diffs)
        assert batched.rts.batches_fed > 0
        assert all(node.columnar_blocks == 0 for node in _lftas(batched))

    def test_projection_query_columnar_engaged(self):
        def build(gs):
            name = gs.add_query(
                "Select time, srcIP, destPort From tcp "
                "Where destPort = 80", name="q")
            return {name: gs.subscribe(name)}

        diffs, batched = run_differential(build, columnar=True)
        assert not diffs, "\n".join(diffs)
        assert sum(node.columnar_blocks for node in _lftas(batched)) > 0

    def test_gs_columnar_env_disables(self, monkeypatch):
        monkeypatch.setenv("GS_COLUMNAR", "0")
        gs = Gigascope(seed=SEED, batch_size=64)
        assert gs.columnar is False
        monkeypatch.setenv("GS_COLUMNAR", "1")
        assert Gigascope(seed=SEED).columnar is True
        monkeypatch.delenv("GS_COLUMNAR")
        assert Gigascope(seed=SEED).columnar is True


class TestFaultDifferential:
    """E13-style fault scenarios through both paths.

    Armed faults force the scalar fallback, so these assert that the
    fallback really is byte-identical *and* that batching never leaks
    around an injected failure.
    """

    @pytest.mark.parametrize("make_faults", [
        pytest.param(lambda: [OperatorFault("q", at_tuple=40)],
                     id="operator_fault"),
        pytest.param(lambda: [RingLossBurst(at=0.1, duration=0.25,
                                            drop_prob=0.5, seed=5)],
                     id="ring_burst"),
        pytest.param(lambda: [ChannelOverflowStorm(at=0.1, duration=0.3,
                                                   capacity=4)],
                     id="overflow_storm"),
        pytest.param(lambda: [ClockSkew("eth1", 0.2, at=0.0)],
                     id="clock_skew"),
        pytest.param(lambda: [HeartbeatSilence(at=0.1, duration=0.3)],
                     id="heartbeat_silence"),
    ])
    def test_faulted_run_is_byte_identical(self, make_faults):
        def build(gs):
            name = gs.add_query(
                "Select tb, srcIP, count(*) From tcp "
                "Group by time/5 as tb, srcIP", name="q")
            gs.inject_faults(make_faults())
            return {name: gs.subscribe(name)}

        diffs, batched = run_differential(build)
        assert not diffs, "\n".join(diffs)
        # Armed faults disable the vectorized path entirely.
        assert batched.rts.batches_fed == 0

    def test_tracing_run_is_byte_identical(self):
        """An active tracer forces sampled packets down the scalar path;
        rows and statistics still match the fully scalar run."""
        def build(gs):
            name = gs.add_query(
                "Select tb, srcIP, count(*) From tcp "
                "Group by time/5 as tb, srcIP", name="q")
            gs.enable_tracing(0.05)
            return {name: gs.subscribe(name)}

        diffs, _ = run_differential(build)
        assert not diffs, "\n".join(diffs)
