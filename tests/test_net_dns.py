"""Tests for the DNS parser and the dns Protocol."""

import pytest

from repro import Gigascope
from repro.gsql.schema import builtin_registry
from repro.net.build import build_udp_frame, capture
from repro.net.dns import (
    DNSMessage,
    QTYPE_A,
    QTYPE_AAAA,
    RCODE_NXDOMAIN,
    build_query,
    build_response,
    decode_name,
    encode_name,
)


class TestNames:
    def test_encode_decode_round_trip(self):
        for name in ("www.example.com", "a.b.c.d.e", "example"):
            wire = encode_name(name)
            decoded, offset = decode_name(wire, 0)
            assert decoded == name
            assert offset == len(wire)

    def test_root_name(self):
        assert decode_name(b"\x00", 0) == ("", 1)

    def test_compression_pointer(self):
        # "example.com" at 0; a pointered "www.<ptr0>" after it
        base = encode_name("example.com")
        pointered = b"\x03www" + bytes([0xC0, 0x00])
        blob = base + pointered
        name, offset = decode_name(blob, len(base))
        assert name == "www.example.com"
        assert offset == len(blob)

    def test_pointer_loop_detected(self):
        blob = bytes([0xC0, 0x00])
        with pytest.raises(ValueError):
            decode_name(blob, 0)

    def test_label_too_long(self):
        with pytest.raises(ValueError):
            encode_name("x" * 64 + ".com")

    def test_truncated(self):
        with pytest.raises(ValueError):
            decode_name(b"\x05ab", 0)


class TestMessages:
    def test_query_round_trip(self):
        wire = build_query(0x1234, "portal.example.net", QTYPE_AAAA)
        message = DNSMessage.parse(wire)
        assert message.txid == 0x1234
        assert not message.is_response
        assert message.recursion_desired
        assert message.qname == "portal.example.net"
        assert message.qtype == QTYPE_AAAA

    def test_response_with_rcode(self):
        wire = build_response(7, "missing.example.com",
                              rcode=RCODE_NXDOMAIN)
        message = DNSMessage.parse(wire)
        assert message.is_response
        assert message.rcode == RCODE_NXDOMAIN
        assert message.answers == 0

    def test_truncated_header(self):
        with pytest.raises(ValueError):
            DNSMessage.parse(b"\x00" * 5)


def dns_packet(ts, payload, sport=5353, dport=53, src="10.0.0.1",
               dst="10.0.0.53"):
    return capture(build_udp_frame(src, dst, sport, dport, payload=payload), ts)


class TestDnsProtocol:
    def test_interprets_queries(self):
        dns = builtin_registry().get("dns")
        packet = dns_packet(5.0, build_query(1, "www.example.com"))
        (row,) = dns.interpret(packet)
        assert row[dns.index_of("qname")] == b"www.example.com"
        assert row[dns.index_of("is_response")] == 0
        assert row[dns.index_of("time")] == 5

    def test_ignores_non_port53(self):
        dns = builtin_registry().get("dns")
        packet = dns_packet(0.0, build_query(1, "x.com"), sport=1000,
                            dport=2000)
        assert dns.interpret(packet) == []

    def test_nxdomain_storm_query(self):
        """The catalog-style NXDOMAIN detector, end to end."""
        gs = Gigascope()
        gs.add_query("""
            DEFINE query_name nx_storm;
            Select tb, srcIP, count(*)
            From dns Where is_response = 1 and rcode = 3
            Group by time/5 as tb, srcIP
            Having count(*) > 20
        """)
        sub = gs.subscribe("nx_storm")
        gs.start()
        # normal resolution chatter
        for i in range(30):
            gs.feed_packet(dns_packet(i * 0.1, build_query(i, "ok.com")))
            gs.feed_packet(dns_packet(i * 0.1 + 0.01,
                                      build_response(i, "ok.com"),
                                      sport=53, dport=5353,
                                      src="10.0.0.53", dst="10.0.0.1"))
        # a burst of NXDOMAINs from one resolver (random-subdomain attack)
        for i in range(40):
            gs.feed_packet(dns_packet(10.0 + i * 0.05,
                                      build_response(500 + i, "bad.evil",
                                                     rcode=3),
                                      sport=53, dport=5353,
                                      src="10.0.0.53", dst="10.9.9.9"))
        gs.flush()
        alerts = sub.poll()
        assert alerts
        from repro.net.packet import ip_to_int
        assert all(src == ip_to_int("10.0.0.53") for _tb, src, _c in alerts)
