"""Tests for the LFTA's direct-mapped aggregation table."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.operators.lfta_table import DirectMappedTable


class TestBasics:
    def test_insert_and_find(self):
        table = DirectMappedTable(16)
        assert table.insert("a", 1) is None
        assert table.find("a") == 1
        assert table.find("b") is None
        assert len(table) == 1

    def test_update_in_place(self):
        table = DirectMappedTable(16)
        table.insert("a", 1)
        assert table.insert("a", 2) is None
        assert table.find("a") == 2
        assert len(table) == 1

    def test_collision_ejects_resident(self):
        table = DirectMappedTable(1)  # everything collides
        table.insert("a", 1)
        ejected = table.insert("b", 2)
        assert ejected == ("a", 1)
        assert table.find("b") == 2
        assert table.find("a") is None
        assert table.collisions == 1

    def test_upsert_creates_then_reuses(self):
        table = DirectMappedTable(8)
        state, ejected = table.upsert("k", list)
        assert state == [] and ejected is None
        state.append(1)
        again, ejected = table.upsert("k", list)
        assert again == [1] and ejected is None

    def test_upsert_reports_ejection(self):
        table = DirectMappedTable(1)
        table.upsert("a", lambda: "A")
        state, ejected = table.upsert("b", lambda: "B")
        assert state == "B"
        assert ejected == ("a", "A")

    def test_evict_all(self):
        table = DirectMappedTable(64)
        for i in range(10):
            table.insert(i, i * i)
        groups = dict(table.evict_all())
        assert len(groups) == 10
        assert len(table) == 0
        assert groups[3] == 9

    def test_evict_if(self):
        table = DirectMappedTable(64)
        for i in range(10):
            table.insert((i,), i)
        old = table.evict_if(lambda key: key[0] < 5)
        assert sorted(state for _, state in old) == [0, 1, 2, 3, 4]
        assert len(table) == 5

    def test_size_validation(self):
        with pytest.raises(ValueError):
            DirectMappedTable(0)

    def test_collision_rate(self):
        table = DirectMappedTable(1)
        table.upsert("a", list)
        table.upsert("b", list)
        assert table.collision_rate == 0.5

    def test_insert_counts_lookups_like_upsert(self):
        # collision_rate = collisions / lookups must not depend on
        # which entry point filled the table.
        table = DirectMappedTable(1)
        table.insert("a", 1)
        table.insert("b", 2)
        assert table.lookups == 2
        assert table.collision_rate == 0.5

    def test_slot_placement_is_stable_hash(self):
        from repro.determinism import stable_hash
        table = DirectMappedTable(8)
        key = (12, 0x0A000001)
        table.insert(key, "state")
        assert table._slots[stable_hash(key) % 8] == (key, "state")


class TestConservation:
    @given(st.lists(st.integers(0, 50), min_size=1, max_size=300),
           st.sampled_from([1, 2, 8, 64]))
    def test_no_update_lost(self, keys, size):
        """Counts across residents + ejections equal total updates --
        the LFTA never loses data, it just emits partials early."""
        table = DirectMappedTable(size)
        ejected_counts = {}
        for key in keys:
            state, ejected = table.upsert(key, lambda: [0])
            if ejected is not None:
                k, s = ejected
                ejected_counts[k] = ejected_counts.get(k, 0) + s[0]
            state[0] += 1
        for key, state in table.evict_all():
            ejected_counts[key] = ejected_counts.get(key, 0) + state[0]
        from collections import Counter
        assert ejected_counts == dict(Counter(keys))
