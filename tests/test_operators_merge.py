"""Tests for the order-preserving merge operator."""

import random

import pytest

from repro.core.heartbeat import FLUSH, Punctuation
from repro.gsql.planner import HftaPlan
from repro.operators.merge import MergeNode


def make_merge(compile_plan, streams=None, capacity=None, nway=2):
    _, base_plan, _ = compile_plan("DEFINE query_name s0; "
                                   "Select time, destPort From tcp")
    schema = base_plan.output_schema
    names = [f"s{i}" for i in range(nway)]
    stream_map = {name: schema for name in names}
    columns = " : ".join(f"{name}.time" for name in names)
    text = (f"DEFINE query_name m; Merge {columns} "
            f"From {', '.join(names)}")
    analyzed, plan, compiler = compile_plan(text, streams=stream_map)
    node = MergeNode(plan.hfta, analyzed, buffer_capacity=capacity)
    tap = node.subscribe()
    return node, tap


def rows_of(tap):
    return [item for item in tap.drain() if type(item) is tuple]


class TestOrderPreservation:
    def test_interleaves_in_time_order(self, compile_plan):
        node, tap = make_merge(compile_plan)
        node.dispatch((1, 80), 0)
        node.dispatch((2, 81), 1)
        node.dispatch((3, 82), 0)
        node.dispatch((4, 83), 1)
        # Nothing can be emitted beyond what both inputs have covered:
        # after these arrivals input 0 has seen up to 3, input 1 up to 4.
        rows = rows_of(tap)
        times = [r[0] for r in rows]
        assert times == sorted(times)

    def test_random_streams_fully_ordered(self, compile_plan):
        rng = random.Random(4)
        node, tap = make_merge(compile_plan)
        streams = [sorted(rng.randrange(1000) for _ in range(100)),
                   sorted(rng.randrange(1000) for _ in range(100))]
        events = [(t, 0) for t in streams[0]] + [(t, 1) for t in streams[1]]
        rng.shuffle(events)
        # deliver each input's tuples in its own order
        cursors = [0, 0]
        for t, side in sorted(events, key=lambda e: (e[1], e[0])):
            pass
        for side, values in enumerate(streams):
            for t in values:
                node.dispatch((t, side), side)
        node.dispatch(FLUSH, 0)
        node.dispatch(FLUSH, 1)
        rows = rows_of(tap)
        assert len(rows) == 200
        times = [r[0] for r in rows]
        assert times == sorted(times)

    def test_blocks_on_silent_input(self, compile_plan):
        """Without tokens, a quiet input holds everything back (Section 3)."""
        node, tap = make_merge(compile_plan)
        for t in range(20):
            node.dispatch((t, 80), 0)
        assert rows_of(tap) == []  # input 1 is silent: merge must wait
        assert node.buffered == 20

    def test_punctuation_unblocks(self, compile_plan):
        node, tap = make_merge(compile_plan)
        for t in range(20):
            node.dispatch((t, 80), 0)
        node.dispatch(Punctuation({0: 15}), 1)  # input 1 promises >= 15
        rows = rows_of(tap)
        # values up to and including 15 are safe: future input-1 tuples
        # are >= 15, so output stays nondecreasing
        assert [r[0] for r in rows] == list(range(16))
        assert node.buffered == 4

    def test_flush_of_one_input_unblocks(self, compile_plan):
        node, tap = make_merge(compile_plan)
        for t in range(5):
            node.dispatch((t, 80), 0)
        node.dispatch(FLUSH, 1)
        assert len(rows_of(tap)) == 5

    def test_three_way_merge(self, compile_plan):
        node, tap = make_merge(compile_plan, nway=3)
        node.dispatch((3, 0), 0)
        node.dispatch((1, 1), 1)
        node.dispatch((2, 2), 2)
        for side in range(3):
            node.dispatch(FLUSH, side)
        assert [r[0] for r in rows_of(tap)] == [1, 2, 3]


class TestOverflow:
    def test_bounded_buffers_drop(self, compile_plan):
        """The Section 3 failure: bursty input vs quiet input overflows."""
        node, tap = make_merge(compile_plan, capacity=100)
        for t in range(500):
            node.dispatch((t, 80), 0)
        assert node.dropped == 400
        assert node.buffered == 100

    def test_no_drops_with_punctuation(self, compile_plan):
        node, tap = make_merge(compile_plan, capacity=100)
        for t in range(500):
            node.dispatch((t, 80), 0)
            if t % 50 == 0:
                node.dispatch(Punctuation({0: t}), 1)
        node.dispatch(Punctuation({0: 500}), 1)
        assert node.dropped == 0
        assert len(rows_of(tap)) == 500


class TestFinalFlush:
    def test_all_inputs_flushed_forwards_flush(self, compile_plan):
        node, tap = make_merge(compile_plan)
        node.dispatch((1, 80), 0)
        node.dispatch(FLUSH, 0)
        node.dispatch(FLUSH, 1)
        items = tap.drain()
        assert any(item is FLUSH for item in items)
        assert [i for i in items if type(i) is tuple] == [(1, 80)]

    def test_emits_floor_punctuation(self, compile_plan):
        node, tap = make_merge(compile_plan)
        node.dispatch(Punctuation({0: 10}), 0)
        node.dispatch(Punctuation({0: 7}), 1)
        puncts = [i for i in tap.drain() if isinstance(i, Punctuation)]
        assert puncts and puncts[-1].bound_for(0) == 7
