"""Tests for TCP stream reassembly."""

import pytest

from repro.net.tcp import FLAG_ACK, FLAG_FIN, FLAG_SYN
from repro.operators.tcp_reassembly import TcpReassemblyNode
from tests.conftest import tcp_packet


@pytest.fixture
def node():
    return TcpReassemblyNode("tcpre0")


def rows_of(tap):
    return [item for item in tap.drain() if type(item) is tuple]


def segment(ts, seq, payload, flags=FLAG_ACK, sport=1000, dport=80):
    return tcp_packet(ts=ts, sport=sport, dport=dport, payload=payload,
                      seq=seq, flags=flags)


DATA_SLOT = 6
OFFSET_SLOT = 5


class TestInOrder:
    def test_contiguous_stream(self, node):
        tap = node.subscribe()
        node.accept_packet(segment(0.0, 100, b"", flags=FLAG_SYN))
        node.accept_packet(segment(0.1, 101, b"hello "))
        node.accept_packet(segment(0.2, 107, b"world"))
        rows = rows_of(tap)
        assert [r[DATA_SLOT] for r in rows] == [b"hello ", b"world"]
        assert [r[OFFSET_SLOT] for r in rows] == [0, 6]

    def test_flow_key_in_output(self, node):
        tap = node.subscribe()
        node.accept_packet(segment(0.0, 100, b"", flags=FLAG_SYN))
        node.accept_packet(segment(0.1, 101, b"x"))
        (row,) = rows_of(tap)
        assert row[3] == 1000 and row[4] == 80  # ports


class TestOutOfOrder:
    def test_gap_then_fill(self, node):
        tap = node.subscribe()
        node.accept_packet(segment(0.0, 100, b"", flags=FLAG_SYN))
        node.accept_packet(segment(0.1, 107, b"world"))  # future segment
        assert rows_of(tap) == []
        node.accept_packet(segment(0.2, 101, b"hello "))
        rows = rows_of(tap)
        # the fill stitches the buffered continuation into one chunk
        assert [r[DATA_SLOT] for r in rows] == [b"hello world"]

    def test_retransmission_dropped(self, node):
        tap = node.subscribe()
        node.accept_packet(segment(0.0, 100, b"", flags=FLAG_SYN))
        node.accept_packet(segment(0.1, 101, b"abc"))
        node.accept_packet(segment(0.2, 101, b"abc"))  # retransmit
        rows = rows_of(tap)
        assert len(rows) == 1
        assert node.segments_dropped == 1

    def test_out_of_order_buffer_bounded(self):
        node = TcpReassemblyNode("t", max_out_of_order=2)
        tap = node.subscribe()
        node.accept_packet(segment(0.0, 100, b"", flags=FLAG_SYN))
        for i in range(5):
            node.accept_packet(segment(0.1, 200 + 10 * i, b"x"))
        assert node.segments_dropped == 3


class TestLifecycle:
    def test_fin_closes_flow(self, node):
        tap = node.subscribe()
        node.accept_packet(segment(0.0, 100, b"", flags=FLAG_SYN))
        node.accept_packet(segment(0.1, 101, b"bye", flags=FLAG_ACK | FLAG_FIN))
        rows = rows_of(tap)
        assert [r[DATA_SLOT] for r in rows] == [b"bye"]
        # A new SYN with the same 4-tuple starts at offset 0 again.
        node.accept_packet(segment(1.0, 500, b"", flags=FLAG_SYN))
        node.accept_packet(segment(1.1, 501, b"again"))
        (row,) = rows_of(tap)
        assert row[OFFSET_SLOT] == 0

    def test_midstream_pickup(self, node):
        tap = node.subscribe()
        # No SYN seen: adopt the first data segment as the stream start.
        node.accept_packet(segment(0.0, 7777, b"mid"))
        (row,) = rows_of(tap)
        assert row[DATA_SLOT] == b"mid"
        assert row[OFFSET_SLOT] == 0

    def test_two_flows_independent(self, node):
        tap = node.subscribe()
        node.accept_packet(segment(0.0, 100, b"", flags=FLAG_SYN, sport=1))
        node.accept_packet(segment(0.0, 900, b"", flags=FLAG_SYN, sport=2))
        node.accept_packet(segment(0.1, 101, b"one", sport=1))
        node.accept_packet(segment(0.1, 901, b"two", sport=2))
        rows = rows_of(tap)
        assert {r[DATA_SLOT] for r in rows} == {b"one", b"two"}

    def test_rejects_tuple_input(self, node):
        with pytest.raises(TypeError):
            node.on_tuple((1,), 0)
