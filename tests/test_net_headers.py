"""Tests for Ethernet/IPv4/TCP/UDP header parse + build."""

import pytest

from repro.net.checksum import internet_checksum, pseudo_header, verify_checksum
from repro.net.ethernet import ETHERTYPE_IPV4, EthernetHeader
from repro.net.ip import (
    FLAG_DF,
    FLAG_MF,
    IPv4Header,
    PROTO_TCP,
    PROTO_UDP,
    build_ipv4_packet,
    fragment_ipv4,
)
from repro.net.packet import ip_to_int
from repro.net.tcp import FLAG_ACK, FLAG_SYN, TCPHeader
from repro.net.udp import UDPHeader


class TestEthernet:
    def test_round_trip(self):
        header = EthernetHeader(dst="aa:bb:cc:dd:ee:ff", src="01:02:03:04:05:06",
                                ethertype=ETHERTYPE_IPV4)
        parsed = EthernetHeader.parse(header.pack())
        assert parsed == header

    def test_truncated_raises(self):
        with pytest.raises(ValueError):
            EthernetHeader.parse(b"\x00" * 10)

    def test_parse_at_offset(self):
        frame = b"\xff" * 4 + EthernetHeader().pack()
        parsed = EthernetHeader.parse(frame, 4)
        assert parsed.ethertype == ETHERTYPE_IPV4


class TestIPv4:
    def _header(self, **kw):
        defaults = dict(src=ip_to_int("10.0.0.1"), dst=ip_to_int("10.0.0.2"),
                        protocol=PROTO_TCP, ttl=61, identification=777)
        defaults.update(kw)
        return IPv4Header(**defaults)

    def test_round_trip(self):
        header = self._header()
        wire = header.pack(payload_len=100)
        parsed = IPv4Header.parse(wire)
        assert parsed.src == header.src
        assert parsed.dst == header.dst
        assert parsed.ttl == 61
        assert parsed.identification == 777
        assert parsed.total_length == 120

    def test_checksum_is_valid(self):
        wire = self._header().pack(payload_len=0)
        assert verify_checksum(wire)

    def test_options_padded_and_parsed(self):
        header = self._header(options=b"\x94\x04\x00")  # 3 bytes -> padded to 4
        wire = header.pack(payload_len=0)
        parsed = IPv4Header.parse(wire)
        assert parsed.header_len == 24
        assert parsed.options[:3] == b"\x94\x04\x00"

    def test_truncated_raises(self):
        with pytest.raises(ValueError):
            IPv4Header.parse(b"\x45\x00" * 5)

    def test_bad_ihl_raises(self):
        wire = bytearray(self._header().pack(payload_len=0))
        wire[0] = 0x41  # IHL=1 (4 bytes) is illegal
        with pytest.raises(ValueError):
            IPv4Header.parse(bytes(wire))

    def test_fragment_flags(self):
        header = self._header(flags=FLAG_MF, fragment_offset=8)
        assert header.is_fragment
        assert header.more_fragments
        plain = self._header()
        assert not plain.is_fragment

    def test_pack_requires_length(self):
        with pytest.raises(ValueError):
            self._header().pack()

    def test_fragmentation_covers_payload(self):
        payload = bytes(range(256)) * 10  # 2560 bytes
        header = self._header()
        fragments = fragment_ipv4(header, payload, mtu=576)
        assert len(fragments) > 1
        reassembled = {}
        for wire in fragments:
            parsed = IPv4Header.parse(wire)
            data = wire[parsed.header_len:]
            reassembled[parsed.fragment_offset * 8] = data
            # data length is a multiple of 8 except possibly the last
            if parsed.more_fragments:
                assert len(data) % 8 == 0
        body = b"".join(reassembled[k] for k in sorted(reassembled))
        assert body == payload
        last = IPv4Header.parse(fragments[-1])
        assert not last.more_fragments
        first = IPv4Header.parse(fragments[0])
        assert first.more_fragments
        assert first.fragment_offset == 0

    def test_fragmentation_respects_df(self):
        header = self._header(flags=FLAG_DF)
        with pytest.raises(ValueError):
            fragment_ipv4(header, bytes(5000), mtu=1500)

    def test_no_fragmentation_when_fits(self):
        header = self._header()
        fragments = fragment_ipv4(header, b"x" * 100, mtu=1500)
        assert len(fragments) == 1
        assert not IPv4Header.parse(fragments[0]).is_fragment


class TestTCP:
    def test_round_trip(self):
        header = TCPHeader(src_port=1234, dst_port=80, seq=42, ack=99,
                           flags=FLAG_SYN | FLAG_ACK, window=1024)
        src, dst = ip_to_int("1.2.3.4"), ip_to_int("5.6.7.8")
        wire = header.pack(src, dst, b"hello")
        parsed = TCPHeader.parse(wire)
        assert parsed.src_port == 1234
        assert parsed.dst_port == 80
        assert parsed.seq == 42
        assert parsed.ack == 99
        assert parsed.syn and parsed.ack_flag and not parsed.fin

    def test_checksum_covers_pseudo_header(self):
        src, dst = ip_to_int("1.2.3.4"), ip_to_int("5.6.7.8")
        payload = b"payload"
        wire = TCPHeader(src_port=1, dst_port=2).pack(src, dst, payload)
        segment = wire + payload
        pseudo = pseudo_header(src, dst, PROTO_TCP, len(segment))
        assert internet_checksum(pseudo + segment) == 0

    def test_options_round_trip(self):
        header = TCPHeader(src_port=1, dst_port=2, options=b"\x02\x04\x05\xb4")
        parsed = TCPHeader.parse(header.pack())
        assert parsed.options == b"\x02\x04\x05\xb4"
        assert parsed.header_len == 24

    def test_truncated_raises(self):
        with pytest.raises(ValueError):
            TCPHeader.parse(b"\x00" * 10)


class TestUDP:
    def test_round_trip(self):
        src, dst = ip_to_int("9.9.9.9"), ip_to_int("8.8.8.8")
        header = UDPHeader(src_port=53, dst_port=4000)
        wire = header.pack(src, dst, b"dns!")
        parsed = UDPHeader.parse(wire)
        assert parsed.src_port == 53
        assert parsed.dst_port == 4000
        assert parsed.length == 12

    def test_checksum_covers_pseudo_header(self):
        src, dst = ip_to_int("9.9.9.9"), ip_to_int("8.8.8.8")
        payload = b"x" * 13
        wire = UDPHeader(src_port=1, dst_port=2).pack(src, dst, payload)
        datagram = wire + payload
        pseudo = pseudo_header(src, dst, PROTO_UDP, len(datagram))
        assert internet_checksum(pseudo + datagram) == 0

    def test_truncated_raises(self):
        with pytest.raises(ValueError):
            UDPHeader.parse(b"\x00" * 7)


class TestBuildIPv4Packet:
    def test_total_length_fixed_up(self):
        header = IPv4Header(src=1, dst=2, protocol=PROTO_UDP)
        wire = build_ipv4_packet(header, b"abcde")
        parsed = IPv4Header.parse(wire)
        assert parsed.total_length == 25
        assert wire[parsed.header_len:] == b"abcde"
