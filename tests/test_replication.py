"""Continuous replication and warm-standby failover (DESIGN section 16).

Four contracts under test:

* the frame codec and applier refuse damage **typed and total**: a
  corruption corpus -- truncation at every byte boundary, bit flips in
  the payload vs the header, stale versions (both the GSCK wire
  version and the inner frame-layout version), out-of-order sequence
  numbers -- each raising a :class:`FrameError` subclass that names
  the offending frame, with the standby's operator state byte-for-byte
  untouched afterwards (never applied partially);
* steady-state replication is invisible: a replicated run's output is
  byte-identical to a plain engine's;
* promotion is exact: after a hard crash (mid delta-interval, at a
  frame boundary, or mid-frame-write), the promoted standby's output
  is byte-identical to an uninterrupted run -- exactly-once across the
  promotion, measured RPO/RTO in the report;
* the knobs parse strictly (crash specs, cadence resolution).
"""

import math
import os
import struct

import pytest

from repro.core.engine import Gigascope
from repro.determinism import derive_seed
from repro.recovery.wire import MAGIC, encode_snapshot
from repro.replication import (
    DEFAULT_CADENCE,
    FrameCorruptError,
    FrameError,
    FrameSequenceError,
    FrameVersionError,
    REPLICATION_VERSION,
    ReplicatedGigascope,
    ReplicationError,
    StandbyReplica,
    decode_frame,
    encode_frame,
    parse_crash_spec,
    resolve_replicate_cadence,
)
from repro.workloads.flows import ZipfFlowWorkload

FLOWS_QUERY = """
    DEFINE query_name flows;
    Select tb, srcIP, count(*), sum(len)
    From tcp
    Group by time/5 as tb, srcIP
"""


def zipf_packets(count=1500, seed=3):
    workload = ZipfFlowWorkload(num_flows=200, alpha=1.1,
                                seed=derive_seed(seed, "workload.zipf"))
    return list(workload.packets(count, pps=400.0))


def run_plain(packets):
    gs = Gigascope(seed=7, heartbeat_interval=0.5, metrics=False)
    gs.add_query(FLOWS_QUERY)
    sub = gs.subscribe("flows")
    gs.start()
    gs.feed(packets, pump_every=128)
    gs.flush()
    return sub.poll()


def run_replicated(packets, cadence=0.5, crash=None, promote_after=None,
                   faults=None, log_path=None):
    gs = ReplicatedGigascope(cadence=cadence, crash=crash,
                             promote_after=promote_after,
                             log_path=log_path, seed=7,
                             heartbeat_interval=0.5, metrics=False)
    gs.add_query(FLOWS_QUERY)
    sub = gs.subscribe("flows")
    if faults:
        gs.inject_faults(faults)
    gs.start()
    gs.feed(packets, pump_every=128)
    gs.flush()
    return sub.poll(), gs


def fresh_standby():
    engine = Gigascope(seed=7, heartbeat_interval=0.5, metrics=False)
    engine.add_query(FLOWS_QUERY)
    engine.start()
    return StandbyReplica(engine)


def engine_states(engine):
    """Every node's state, independently encoded: the tamper canary."""
    return {name: encode_snapshot(node.snapshot_state())
            for name, node in engine.rts.iter_nodes()}


@pytest.fixture(scope="module")
def shipped_frames():
    """The frame log of one clean replicated run (full + deltas)."""
    _, gs = run_replicated(zipf_packets(), cadence=0.5)
    frames = gs.log_frames
    assert len(frames) >= 4, "corpus needs a full epoch and several deltas"
    return frames


def primed_replica(shipped_frames, upto):
    replica = fresh_standby()
    for frame in shipped_frames[:upto]:
        replica.apply(frame)
    return replica


# ---------------------------------------------------------------------------
# Knob parsing
# ---------------------------------------------------------------------------

class TestKnobs:
    def test_crash_spec_grammar(self):
        assert parse_crash_spec("packet:700") == {
            "kind": "packet", "at": 700, "torn": False}
        assert parse_crash_spec("frame:0") == {
            "kind": "frame", "at": 0, "torn": False}
        assert parse_crash_spec("frame:2:torn") == {
            "kind": "frame", "at": 2, "torn": True}

    @pytest.mark.parametrize("bad", [
        "banana", "packet", "packet:x", "packet:-1", "packet:1:torn",
        "frame:1:shredded", "frame:1:torn:extra", "epoch:3",
    ])
    def test_bad_crash_spec_raises(self, bad):
        with pytest.raises(ValueError):
            parse_crash_spec(bad)

    def test_cadence_arg_beats_env(self, monkeypatch):
        monkeypatch.setenv("GS_REPLICATE", "2.5")
        assert resolve_replicate_cadence("0.25") == 0.25
        assert resolve_replicate_cadence() == 2.5
        monkeypatch.delenv("GS_REPLICATE")
        assert resolve_replicate_cadence() is None

    @pytest.mark.parametrize("bad", ["banana", "-1", "nan", "inf"])
    def test_bad_cadence_raises_naming_the_knob(self, bad, monkeypatch):
        with pytest.raises(ValueError, match="--replicate"):
            resolve_replicate_cadence(bad)
        monkeypatch.setenv("GS_REPLICATE", bad)
        with pytest.raises(ValueError, match="GS_REPLICATE"):
            resolve_replicate_cadence()

    def test_negative_promote_after_refused(self):
        with pytest.raises(ValueError, match="promote_after"):
            ReplicatedGigascope(promote_after=-1.0, metrics=False)


# ---------------------------------------------------------------------------
# Frame codec
# ---------------------------------------------------------------------------

class TestFrameCodec:
    def test_round_trip(self):
        blob = encode_frame("delta", 3, 1.5, 700, {"packets_fed": 700},
                            {"flows": encode_snapshot({"k": 1})})
        frame = decode_frame(blob)
        assert frame["v"] == REPLICATION_VERSION
        assert frame["kind"] == "delta"
        assert frame["seq"] == 3
        assert frame["cursor"] == 700

    def test_unknown_kind_refused_at_encode(self):
        with pytest.raises(ReplicationError, match="unknown frame kind"):
            encode_frame("diff", 0, 0.0, 0, {}, {})

    def test_missing_fields_refused(self):
        blob = encode_snapshot({"v": REPLICATION_VERSION, "kind": "delta",
                                "seq": 4})
        with pytest.raises(FrameCorruptError, match="missing field"):
            decode_frame(blob)

    def test_non_dict_payload_refused(self):
        with pytest.raises(FrameCorruptError, match="not a frame dict"):
            decode_frame(encode_snapshot([1, 2, 3]))

    def test_negative_seq_refused(self):
        blob = encode_frame("delta", 3, 0.0, 0, {}, {})
        rebuilt = decode_frame(blob)
        rebuilt["seq"] = -3
        with pytest.raises(FrameCorruptError, match="bad seq"):
            decode_frame(encode_snapshot(rebuilt))

    def test_non_blob_node_state_refused(self):
        blob = encode_frame("delta", 3, 0.0, 0, {}, {})
        rebuilt = decode_frame(blob)
        rebuilt["nodes"] = {"flows": {"raw": "dict"}}
        with pytest.raises(FrameCorruptError, match="not an encoded blob"):
            decode_frame(encode_snapshot(rebuilt))


# ---------------------------------------------------------------------------
# The corruption corpus (all-or-nothing apply)
# ---------------------------------------------------------------------------

class TestCorruptionCorpus:
    def _attack(self, shipped_frames, mutate, expect_error):
        """Prime a standby past two frames, hit it with a damaged third
        frame, and prove the refusal is typed, names the frame, and
        left every node's state byte-for-byte untouched."""
        replica = primed_replica(shipped_frames, upto=2)
        before = engine_states(replica.engine)
        report_before = replica.report()
        frame = shipped_frames[2]
        errors = 0
        for damaged in mutate(frame):
            with pytest.raises(expect_error) as excinfo:
                replica.apply(damaged)
            assert "replication frame" in str(excinfo.value)
            errors += 1
        assert errors > 0
        assert engine_states(replica.engine) == before, \
            "a refused frame must never be applied partially"
        after = replica.report()
        assert after["applied_seq"] == report_before["applied_seq"]
        assert after["apply_errors"] == report_before["apply_errors"] + errors
        # ...and the standby still accepts the undamaged frame.
        applied = replica.apply(frame)
        assert applied["seq"] == 2

    def test_truncation_at_every_byte_boundary(self, shipped_frames):
        frame = shipped_frames[2]
        self._attack(shipped_frames,
                     lambda f: (f[:cut] for cut in range(len(f))),
                     FrameError)
        assert len(frame) > 16  # the corpus actually swept a real frame

    def test_bit_flip_in_payload(self, shipped_frames):
        # Flip one bit somewhere in the checksummed payload region:
        # the GSCK checksum catches it before any decode is trusted.
        def flips(frame):
            for offset in (6, len(frame) // 2, len(frame) - 5):
                yield (frame[:offset]
                       + bytes([frame[offset] ^ 0x10])
                       + frame[offset + 1:])
        self._attack(shipped_frames, flips, FrameCorruptError)

    def test_bit_flip_in_header_magic(self, shipped_frames):
        def flips(frame):
            yield b"H" + frame[1:]
        self._attack(shipped_frames, flips, FrameCorruptError)

    def test_stale_wire_version(self, shipped_frames):
        # The GSCK header claims a future snapshot-format version.
        def stale(frame):
            yield frame[:4] + struct.pack(">H", 99) + frame[6:]
        self._attack(shipped_frames, stale, FrameVersionError)

    def test_stale_frame_layout_version(self, shipped_frames):
        # Valid GSCK bytes, but the inner frame says layout v+1.
        def stale(frame):
            rebuilt = decode_frame(frame)
            rebuilt["v"] = REPLICATION_VERSION + 1
            yield encode_snapshot(rebuilt)
        self._attack(shipped_frames, stale, FrameVersionError)

    def test_corrupt_node_blob_names_the_node(self, shipped_frames):
        def poison(frame):
            rebuilt = decode_frame(frame)
            name, blob = next(iter(rebuilt["nodes"].items()))
            rebuilt["nodes"] = dict(rebuilt["nodes"], **{name: blob[:-1]})
            yield encode_snapshot(rebuilt)
        replica = primed_replica(shipped_frames, upto=2)
        before = engine_states(replica.engine)
        name = next(iter(decode_frame(shipped_frames[2])["nodes"]))
        with pytest.raises(FrameCorruptError, match=repr(name)):
            replica.apply(next(poison(shipped_frames[2])))
        assert engine_states(replica.engine) == before

    def test_unknown_node_refused(self, shipped_frames):
        def rename(frame):
            rebuilt = decode_frame(frame)
            blob = next(iter(rebuilt["nodes"].values()))
            rebuilt["nodes"] = {"not_a_query": blob}
            yield encode_snapshot(rebuilt)
        self._attack(shipped_frames, rename, FrameCorruptError)

    def test_duplicate_seq_refused(self, shipped_frames):
        self._attack(shipped_frames,
                     lambda _: iter([shipped_frames[1]]),
                     FrameSequenceError)

    def test_seq_gap_refused(self, shipped_frames):
        self._attack(shipped_frames,
                     lambda _: iter([shipped_frames[3]]),
                     FrameSequenceError)

    def test_full_epoch_rewind_refused(self, shipped_frames):
        self._attack(shipped_frames,
                     lambda _: iter([shipped_frames[0]]),
                     FrameSequenceError)

    def test_delta_before_full_refused(self, shipped_frames):
        replica = fresh_standby()
        before = engine_states(replica.engine)
        with pytest.raises(FrameSequenceError):
            # Reseq the delta to 0 so only kind-ordering can refuse it.
            rebuilt = decode_frame(shipped_frames[1])
            rebuilt["seq"] = 0
            replica.apply(encode_snapshot(rebuilt))
        assert engine_states(replica.engine) == before

    def test_clean_log_applies_end_to_end(self, shipped_frames):
        replica = fresh_standby()
        for frame in shipped_frames:
            replica.apply(frame)
        report = replica.report()
        assert report["applied_seq"] == len(shipped_frames) - 1
        assert report["apply_errors"] == 0


# ---------------------------------------------------------------------------
# Identity and failover
# ---------------------------------------------------------------------------

class TestReplicationIdentity:
    def test_steady_state_is_invisible(self):
        packets = zipf_packets()
        rows, gs = run_replicated(packets, cadence=0.5)
        assert rows == run_plain(packets)
        report = gs.replication_report()
        assert report["promoted"] is False
        assert report["frames_full"] == 1
        assert report["frames_delta"] >= 2
        assert report["apply_errors"] == 0
        assert report["applied_seq"] >= 2
        assert report["suppressed_rows"] == 0

    @pytest.mark.parametrize("crash", ["packet:700", "packet:0",
                                       "frame:0", "frame:2"])
    def test_promoted_output_is_byte_identical(self, crash):
        packets = zipf_packets()
        rows, gs = run_replicated(packets, cadence=0.5, crash=crash)
        assert rows == run_plain(packets)
        report = gs.replication_report()
        assert report["promoted"] is True
        assert report["promotions"] == 1
        assert report["rpo_packets"] == report["replayed_packets"]
        assert report["promote_wall_s"] >= 0.0

    def test_torn_frame_falls_back_one_frame(self):
        packets = zipf_packets()
        rows, gs = run_replicated(packets, cadence=0.5, crash="frame:2:torn")
        assert rows == run_plain(packets)
        report = gs.replication_report()
        assert report["promoted"] is True
        # The torn write was refused typed...
        assert report["apply_errors"] == 1
        assert any("replication frame 2" in line
                   for line in report["apply_error_log"])
        # ...so promotion resumed from frame 1's cursor.
        assert report["applied_seq"] == 1

    def test_heartbeat_silence_promotes(self):
        packets = zipf_packets()
        rows, gs = run_replicated(
            packets, cadence=0.5, promote_after=0.2,
            faults=["heartbeat_silence:at=1.5,duration=30"])
        assert rows == run_plain(packets)
        report = gs.replication_report()
        assert report["promoted"] is True
        assert "heartbeat silence" in report["failure_reason"]
        assert report["rpo_virtual_s"] >= 0.0
        assert not math.isinf(report["rpo_virtual_s"])

    def test_replication_log_file_round_trips(self, tmp_path):
        path = tmp_path / "repl.log"
        packets = zipf_packets(count=800)
        _, gs = run_replicated(packets, cadence=0.5, log_path=str(path))
        blob = path.read_bytes()
        frames, offset = [], 0
        while offset < len(blob):
            (length,) = struct.unpack_from(">I", blob, offset)
            offset += 4
            frames.append(blob[offset:offset + length])
            offset += length
        assert frames == gs.log_frames
        replica = fresh_standby()
        for frame in frames:
            replica.apply(frame)
        assert replica.applied_seq == len(frames) - 1
        assert frames[0][:4] == MAGIC

    def test_default_cadence_is_exported(self):
        assert DEFAULT_CADENCE == 1.0
        assert resolve_replicate_cadence(DEFAULT_CADENCE) == 1.0
