"""End-to-end tests of the Gigascope engine over real packets."""

import random

import pytest

from repro import Gigascope
from repro.core.stream_manager import RegistryError
from repro.gsql.schema import PacketView
from repro.net.build import build_tcp_frame, capture
from repro.operators.defrag import DefragNode
from tests.conftest import tcp_packet, udp_packet


def make_traffic(count=600, seed=3, interface="eth0"):
    """TCP traffic: mixed ports, half the port-80 payloads are HTTP."""
    rng = random.Random(seed)
    packets = []
    for i in range(count):
        ts = i * 0.1
        dport = 80 if rng.random() < 0.6 else rng.choice((22, 443, 8080))
        if dport == 80 and rng.random() < 0.5:
            payload = b"GET /x HTTP/1.1\r\nHost: h\r\n\r\n"
        else:
            payload = bytes([1, 2, 3]) * rng.randrange(1, 30)
        packets.append(tcp_packet(
            ts=ts, src=f"10.0.{rng.randrange(8)}.{rng.randrange(1, 250)}",
            dst="192.168.1.1", sport=rng.randrange(1024, 60000),
            dport=dport, payload=payload, interface=interface))
    return packets


class TestSelection:
    def test_lfta_only_query(self):
        gs = Gigascope()
        gs.add_query("DEFINE query_name q; Select destPort, time From tcp "
                     "Where destPort = 80")
        sub = gs.subscribe("q")
        gs.start()
        packets = make_traffic(200)
        gs.feed(packets)
        gs.flush()
        rows = sub.poll()
        expected = sum(1 for p in packets
                       if PacketView(p).tcp and PacketView(p).tcp.dst_port == 80)
        assert len(rows) == expected
        assert all(port == 80 for port, _time in rows)

    def test_split_regex_query(self):
        """The paper's flagship: LFTA filters port 80, HFTA runs the regex."""
        gs = Gigascope()
        gs.add_query(r"""
            DEFINE query_name http80;
            Select time, srcIP From tcp
            Where destPort = 80 and str_match_regex(data, '^[^\n]*HTTP/1.')
        """)
        sub = gs.subscribe("http80")
        gs.start()
        packets = make_traffic(400)
        gs.feed(packets)
        gs.flush()
        rows = sub.poll()
        expected = 0
        for packet in packets:
            view = PacketView(packet)
            if view.tcp and view.tcp.dst_port == 80 and \
                    view.payload.startswith(b"GET /x HTTP/1.1"):
                expected += 1
        assert len(rows) == expected > 0

    def test_lfta_stream_also_subscribable(self):
        """Both the mangled LFTA stream and the HFTA stream are visible."""
        gs = Gigascope()
        name = gs.add_query(
            "DEFINE query_name q; Select time From tcp "
            "Where destPort = 80 and str_find_substr(data, 'HTTP')")
        plan = gs.plan_of(name)
        lfta_name = plan.lftas[0].name
        assert lfta_name.startswith("_fta_")
        lfta_sub = gs.subscribe(lfta_name)
        gs.start()
        gs.feed(make_traffic(100))
        gs.flush()
        assert len(lfta_sub.poll()) > 0


class TestAggregation:
    def test_two_level_equals_reference(self):
        gs = Gigascope(lfta_table_size=4)  # force evictions
        gs.add_query("""
            DEFINE query_name counts;
            Select tb, srcIP, count(*), sum(len)
            From tcp Where destPort = 80
            Group by time/10 as tb, srcIP
        """)
        sub = gs.subscribe("counts")
        gs.start()
        packets = make_traffic(500)
        gs.feed(packets)
        gs.flush()
        rows = sub.poll()
        # reference aggregation
        reference = {}
        for packet in packets:
            view = PacketView(packet)
            if not view.tcp or view.tcp.dst_port != 80:
                continue
            key = (int(packet.timestamp) // 10, view.ip.src)
            entry = reference.setdefault(key, [0, 0])
            entry[0] += 1
            entry[1] += packet.orig_len
        got = {(tb, src): (cnt, ln) for tb, src, cnt, ln in rows}
        assert got == {key: tuple(value) for key, value in reference.items()}

    def test_no_duplicate_groups_in_output(self):
        gs = Gigascope(lfta_table_size=2)
        gs.add_query("DEFINE query_name q; Select tb, count(*) From tcp "
                     "Group by time/10 as tb")
        sub = gs.subscribe("q")
        gs.start()
        gs.feed(make_traffic(300))
        gs.flush()
        rows = sub.poll()
        buckets = [row[0] for row in rows]
        assert len(buckets) == len(set(buckets))
        assert buckets == sorted(buckets)

    def test_having(self):
        gs = Gigascope()
        gs.add_query("DEFINE query_name q; Select tb, count(*) From tcp "
                     "Group by time/10 as tb Having count(*) > 1000")
        sub = gs.subscribe("q")
        gs.start()
        gs.feed(make_traffic(100))
        gs.flush()
        assert sub.poll() == []

    def test_getlpmid_grouping(self):
        """The paper's Section 2.2 example, end to end."""
        gs = Gigascope()
        table = "10.0.0.0/15 7018\\n10.2.0.0/15 7019"
        gs.add_query(f"""
            DEFINE query_name peers;
            Select peerid, tb, count(*)
            From tcp
            Group by time/20 as tb, getlpmid(srcIP, '{table}') as peerid
        """)
        sub = gs.subscribe("peers")
        gs.start()
        gs.feed(make_traffic(400))
        gs.flush()
        rows = sub.poll()
        assert rows
        peer_ids = {row[0] for row in rows}
        assert peer_ids <= {7018, 7019}


class TestComposition:
    def test_query_over_query(self):
        gs = Gigascope()
        gs.add_queries("""
            DEFINE query_name base;
            Select time, destPort, len From tcp Where destPort = 80;

            DEFINE query_name tot;
            Select tb, sum(len) From base Group by time/10 as tb
        """)
        sub = gs.subscribe("tot")
        gs.start()
        gs.feed(make_traffic(200))
        gs.flush()
        assert len(sub.poll()) > 0

    def test_merge_of_two_interfaces(self):
        """The paper's simplex-optical-link scenario."""
        gs = Gigascope()
        gs.add_queries("""
            DEFINE query_name tcpdest0;
            Select destIP, destPort, time From eth0.tcp;

            DEFINE query_name tcpdest1;
            Select destIP, destPort, time From eth1.tcp;

            DEFINE query_name tcpdest;
            Merge tcpdest0.time : tcpdest1.time From tcpdest0, tcpdest1
        """)
        sub = gs.subscribe("tcpdest")
        gs.start()
        east = make_traffic(150, seed=1, interface="eth0")
        west = make_traffic(150, seed=2, interface="eth1")
        merged = sorted(east + west, key=lambda p: p.timestamp)
        gs.feed(merged)
        gs.flush()
        rows = sub.poll()
        assert len(rows) == 300
        times = [row[2] for row in rows]
        assert times == sorted(times)

    def test_join_two_interfaces(self):
        gs = Gigascope()
        gs.add_query("""
            DEFINE query_name j;
            Select B.time, B.destPort From eth0.tcp B, eth1.tcp C
            Where B.time = C.time and B.destPort = C.destPort
        """)
        sub = gs.subscribe("j")
        gs.start()
        packets = []
        for t in range(50):
            packets.append(tcp_packet(ts=float(t), dport=80, interface="eth0"))
            packets.append(tcp_packet(ts=float(t), dport=80 if t % 2 else 443,
                                      interface="eth1"))
        gs.feed(packets)
        gs.flush()
        rows = sub.poll()
        assert len(rows) == 25  # odd seconds only
        assert all(port == 80 for _t, port in rows)


class TestParameters:
    def test_on_the_fly_change(self):
        gs = Gigascope()
        gs.add_query("DEFINE query_name q; Select time From tcp "
                     "Where destPort = $port", params={"port": 80})
        sub = gs.subscribe("q")
        gs.start()
        gs.feed_packet(tcp_packet(ts=1.0, dport=80))
        gs.feed_packet(tcp_packet(ts=2.0, dport=443))
        gs.pump()
        assert len(sub.poll()) == 1
        gs.set_param("q", "port", 443)
        gs.feed_packet(tcp_packet(ts=3.0, dport=443))
        gs.pump()
        assert len(sub.poll()) == 1

    def test_multiple_instances_different_params(self):
        """"The RTS can execute multiple instances of the same LFTA,
        each with different parameters."""
        gs = Gigascope()
        text = ("Select time From tcp Where destPort = $port")
        gs.add_query(text, params={"port": 80}, name="inst80")
        gs.add_query(text, params={"port": 443}, name="inst443")
        s80, s443 = gs.subscribe("inst80"), gs.subscribe("inst443")
        gs.start()
        gs.feed_packet(tcp_packet(ts=1.0, dport=80))
        gs.feed_packet(tcp_packet(ts=2.0, dport=443))
        gs.feed_packet(tcp_packet(ts=3.0, dport=80))
        gs.pump()
        assert len(s80.poll()) == 2
        assert len(s443.poll()) == 1

    def test_unknown_param_rejected(self):
        gs = Gigascope()
        gs.add_query("DEFINE query_name q; Select time From tcp")
        with pytest.raises(RegistryError):
            gs.set_param("q", "nope", 1)


class TestLifecycle:
    def test_lfta_after_start_rejected(self):
        gs = Gigascope()
        gs.add_query("DEFINE query_name q0; Select time From tcp")
        gs.start()
        with pytest.raises(RegistryError):
            gs.add_query("DEFINE query_name q1; Select len From tcp")

    def test_hfta_only_query_after_start_ok(self):
        gs = Gigascope()
        gs.add_query("DEFINE query_name base; Select time, len From tcp")
        gs.start()
        gs.feed_packet(tcp_packet(ts=0.0))
        # reading an existing stream needs no RTS change
        gs.add_query("DEFINE query_name late; Select time From base")
        sub = gs.subscribe("late")
        gs.feed_packet(tcp_packet(ts=1.0))
        gs.pump()
        assert len(sub.poll()) == 1

    def test_stop_then_add_lfta(self):
        gs = Gigascope()
        gs.add_query("DEFINE query_name q0; Select time From tcp")
        gs.start()
        gs.stop()
        gs.add_query("DEFINE query_name q1; Select len From tcp")
        gs.start()
        sub = gs.subscribe("q1")
        gs.feed_packet(tcp_packet(ts=0.0))
        gs.pump()
        assert len(sub.poll()) == 1

    def test_duplicate_query_name_rejected(self):
        gs = Gigascope()
        gs.add_query("DEFINE query_name q; Select time From tcp")
        with pytest.raises(RegistryError):
            gs.add_query("DEFINE query_name q; Select len From tcp")


class TestModes:
    def test_interpreted_matches_compiled(self):
        results = {}
        for mode in ("compiled", "interpreted"):
            gs = Gigascope(mode=mode)
            gs.add_query("""
                DEFINE query_name q;
                Select tb, count(*), sum(len) From tcp
                Where destPort = 80 Group by time/10 as tb
            """)
            sub = gs.subscribe("q")
            gs.start()
            gs.feed(make_traffic(300))
            gs.flush()
            results[mode] = sub.poll()
        assert results["compiled"] == results["interpreted"]

    def test_generated_code_inspectable(self):
        gs = Gigascope()
        gs.add_query("DEFINE query_name q; Select time From tcp "
                     "Where destPort = 80")
        source = gs.generated_code("q")
        assert "def _g" in source


class TestUserNodes:
    def test_defrag_feeds_gsql_query(self):
        """The paper's query-tree-over-a-user-operator scenario."""
        from tests.test_operators_defrag import fragmented_udp
        gs = Gigascope()
        defrag = DefragNode("defrag0", gs.schema_registry.get("udp"))
        gs.add_node(defrag, interface="eth0")
        gs.add_query("DEFINE query_name big; Select time, len From defrag0")
        sub = gs.subscribe("big")
        gs.start()
        fragments, payload = fragmented_udp()
        gs.feed(fragments)
        gs.flush()
        rows = sub.poll()
        assert len(rows) == 1

    def test_custom_protocol_via_ddl(self):
        gs = Gigascope()
        gs.define_protocols("""
            PROTOCOL web (
                time UINT (increasing),
                destPort UINT,
                data STRING
            )
        """)
        gs.add_query("DEFINE query_name q; Select time From web "
                     "Where destPort = 80")
        sub = gs.subscribe("q")
        gs.start()
        gs.feed_packet(tcp_packet(ts=1.0, dport=80))
        gs.pump()
        assert len(sub.poll()) == 1

    def test_custom_function(self):
        from repro.gsql.functions import FunctionSpec
        from repro.gsql.types import UINT
        gs = Gigascope()
        gs.register_function(FunctionSpec(
            name="double", implementation=lambda x: 2 * x,
            arg_types=(UINT,), return_type=UINT))
        gs.add_query("DEFINE query_name q; Select double(destPort) From tcp")
        sub = gs.subscribe("q")
        gs.start()
        gs.feed_packet(tcp_packet(ts=0.0, dport=80))
        gs.pump()
        assert sub.poll() == [(160,)]


class TestNetflowQueries:
    def test_netflow_aggregation(self):
        from repro.workloads.netflow_source import netflow_export_stream
        gs = Gigascope(default_interface="nf0")
        gs.add_query("""
            DEFINE query_name volume;
            Select tb, sum(octets), count(*)
            From netflow Group by time_end/30 as tb
        """)
        sub = gs.subscribe("volume")
        gs.start()
        gs.feed(netflow_export_stream(duration_s=100.0, flows_per_second=80))
        gs.flush()
        rows = sub.poll()
        assert rows
        assert all(octets > 0 for _tb, octets, _cnt in rows)
