"""A corpus of realistic GSQL queries: every one must parse, analyze,
plan, and instantiate, with the expected plan shape.

Broad front-to-back coverage of the language surface, in the spirit of
the paper's observation that analysts "soon start writing queries which
make aggressive use of language features".
"""

import pytest

from repro import Gigascope

# (query text, expected plan shape: lfta count, has hfta, hfta kind)
CORPUS = [
    # -- plain selections -------------------------------------------------
    ("Select time From tcp", 1, False, None),
    ("Select * From udp Where destPort = 53", 1, False, None),
    ("Select time, len * 8 as bits From ip Where ttl < 5", 1, False, None),
    ("Select destIP, destPort, time From eth0.tcp "
     "Where ipversion = 4 and protocol = 6", 1, False, None),
    ("Select time From tcp Where destPort = 80 or destPort = 8080",
     1, False, None),
    ("Select getsubnet(srcIP, 24), time From tcp", 1, False, None),
    ("Select time From tcp Where tcpflags & 2 = 2 and not (len > 1000)",
     1, False, None),
    ("Select time From icmp Where icmp_type = 8", 1, False, None),
    ("Select time From tcp6 Where destPort = 443", 1, False, None),
    ("Select time_end, octets From netflow Where octets > 10000",
     1, False, None),
    ("Select time, origin_as From bgp Where withdrawn > 0", 1, False, None),
    # -- selections that split --------------------------------------------
    ("Select time, srcIP From tcp "
     "Where destPort = 80 and str_match_regex(data, 'HTTP')",
     1, True, "selection"),
    ("Select time From udp Where str_find_substr(data, 'admin')",
     1, True, "selection"),
    # -- aggregations -------------------------------------------------------
    ("Select tb, count(*) From tcp Group by time/60 as tb",
     1, True, "aggregation"),
    ("Select tb, srcIP, count(*), sum(len), min(len), max(len), avg(len) "
     "From tcp Group by time/10 as tb, srcIP", 1, True, "aggregation"),
    ("Select tb, count(*) From tcp Group by time/60 as tb "
     "Having count(*) > 100", 1, True, "aggregation"),
    ("Select d, tb, sum(len) / count(*) as avg_size From tcp "
     "Group by destPort as d, time/30 as tb", 1, True, "aggregation"),
    ("Select tb, count(*) From netflow "
     "Group by floor(time_start)/60 as tb", 1, True, "aggregation"),
    ("Select peer, tb, count(*) From ip "
     "Group by getlpmid(destIP, $peers) as peer, time/60 as tb",
     1, True, "aggregation"),
    ("Select tb, count(*) From tcp "
     "Where destPort = 80 and str_match_regex(data, 'HTTP') "
     "Group by time/60 as tb", 1, True, "aggregation"),
    ("Select cnt From tcp Group by time/60 as tb, count(*) as cnt",
     None, None, None),  # aggregate in group-by: rejected
    # -- joins ----------------------------------------------------------------
    ("Select B.time, B.srcIP, C.destIP From eth0.tcp B, eth1.tcp C "
     "Where B.time = C.time", 2, True, "join"),
    ("Select B.time From eth0.tcp B, eth1.tcp C "
     "Where B.time >= C.time - 5 and B.time <= C.time + 5 "
     "and B.destPort = C.destPort", 2, True, "join"),
    ("DEFINE { join_output sorted; } "
     "Select B.time From eth0.udp B, eth1.udp C "
     "Where B.time >= C.time - 1 and B.time <= C.time + 1",
     2, True, "join"),
    # -- parameters & sampling ---------------------------------------------
    ("Select time From tcp Where destPort = $port and len > $minlen",
     1, False, None),
    ("DEFINE { sample 0.5; } Select time From tcp", 1, False, None),
    ("DEFINE { sample 0.1; } Select tb, count(*) From tcp "
     "Group by time/60 as tb", 1, True, "aggregation"),
    # -- wildcard interface -------------------------------------------------
    ("Select time, destPort From any.tcp", 1, False, None),
]

PARAMS = {"port": 80, "minlen": 40, "peers": "10.0.0.0/8 1"}


@pytest.mark.parametrize("text,lftas,has_hfta,kind", CORPUS,
                         ids=[f"q{i:02d}" for i in range(len(CORPUS))])
def test_corpus_query(text, lftas, has_hfta, kind):
    gs = Gigascope()
    if lftas is None:
        with pytest.raises(Exception):
            gs.add_query(text, params=PARAMS, name="q")
        return
    name = gs.add_query(text, params=PARAMS, name="q")
    plan = gs.plan_of(name)
    assert len(plan.lftas) == lftas
    assert (plan.hfta is not None) == has_hfta
    if kind:
        assert plan.hfta.kind == kind
    # Every corpus query must also survive codegen inspection.
    assert isinstance(gs.generated_code(name), str)


def test_corpus_composition_chain():
    """A deep chain exercising most operators at once."""
    gs = Gigascope()
    gs.add_queries("""
        DEFINE query_name raw0; Select time, destIP, len From eth0.tcp;
        DEFINE query_name raw1; Select time, destIP, len From eth1.tcp;
        DEFINE query_name link; Merge raw0.time : raw1.time From raw0, raw1;
        DEFINE query_name volume;
        Select tb, sum(len) as bytes From link Group by time/10 as tb;
        DEFINE query_name alarms;
        Select tb, bytes From volume Where bytes > 1000000
    """)
    from tests.conftest import tcp_packet
    sub = gs.subscribe("alarms")
    gs.start()
    for i in range(50):
        gs.feed_packet(tcp_packet(ts=i * 0.1,
                                  interface="eth0" if i % 2 else "eth1",
                                  payload=b"z" * 100))
    gs.flush()
    assert sub.poll() == []  # tiny volume: no alarms, but the chain ran
    stats = gs.stats()
    assert stats["link"]["tuples_out"] == 50
    assert stats["volume"]["tuples_out"] >= 1
