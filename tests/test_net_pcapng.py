"""Tests for the pcapng capture-file format."""

import io
import struct

import pytest

from repro.net.packet import CapturedPacket
from repro.net.pcapng import (
    BYTE_ORDER_MAGIC,
    CaptureTruncated,
    EPB_TYPE,
    IDB_TYPE,
    PcapngError,
    PcapngReader,
    PcapngWriter,
    SHB_TYPE,
    read_pcapng,
    write_pcapng,
)


def _packets():
    return [
        CapturedPacket(timestamp=1_000.5 + i, data=bytes([i]) * (30 + i),
                       interface="eth0" if i % 2 else "eth1")
        for i in range(6)
    ]


class TestRoundTrip:
    def test_memory_round_trip(self):
        buffer = io.BytesIO()
        writer = PcapngWriter(buffer)
        packets = _packets()
        for packet in packets:
            writer.write(packet)
        buffer.seek(0)
        loaded = list(PcapngReader(buffer))
        assert len(loaded) == len(packets)
        for original, back in zip(packets, loaded):
            assert back.data == original.data
            assert back.interface == original.interface
            assert abs(back.timestamp - original.timestamp) < 1e-5

    def test_file_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.pcapng")
        packets = _packets()
        assert write_pcapng(path, packets) == len(packets)
        loaded = read_pcapng(path)
        assert [p.data for p in loaded] == [p.data for p in packets]

    def test_interfaces_preserved(self):
        buffer = io.BytesIO()
        writer = PcapngWriter(buffer)
        for packet in _packets():
            writer.write(packet)
        buffer.seek(0)
        names = {p.interface for p in PcapngReader(buffer)}
        assert names == {"eth0", "eth1"}

    def test_snaplen(self):
        buffer = io.BytesIO()
        writer = PcapngWriter(buffer, snaplen=16)
        writer.write(CapturedPacket(timestamp=0.0, data=b"z" * 100))
        buffer.seek(0)
        (packet,) = list(PcapngReader(buffer))
        assert packet.caplen == 16
        assert packet.orig_len == 100


class TestBigEndianAndSkipping:
    def _big_endian_file(self):
        out = io.BytesIO()

        def block(block_type, body, endian=">"):
            total = 12 + len(body)
            out.write(struct.pack(endian + "II", block_type, total))
            out.write(body)
            out.write(struct.pack(endian + "I", total))

        block(SHB_TYPE, struct.pack(">IHHq", BYTE_ORDER_MAGIC, 1, 0, -1))
        block(IDB_TYPE, struct.pack(">HHI", 1, 0, 65535))
        # an unknown block type that must be skipped
        block(0x0BAD, b"\x00" * 8)
        data = b"abcd"
        ticks = 5_250_000  # 5.25 s at microsecond resolution
        block(EPB_TYPE, struct.pack(">IIIII", 0, 0, ticks, 4, 4) + data)
        out.seek(0)
        return out

    def test_reads_big_endian_and_skips_unknown(self):
        (packet,) = list(PcapngReader(self._big_endian_file()))
        assert packet.data == b"abcd"
        assert abs(packet.timestamp - 5.25) < 1e-9


class TestErrors:
    def test_not_starting_with_shb(self):
        out = io.BytesIO(struct.pack("<II", EPB_TYPE, 32) + b"\x00" * 24)
        with pytest.raises(PcapngError):
            list(PcapngReader(out))

    def test_bad_byte_order_magic(self):
        out = io.BytesIO(struct.pack("<III", SHB_TYPE, 28, 0xDEADBEEF)
                         + b"\x00" * 16)
        with pytest.raises(PcapngError):
            list(PcapngReader(out))

    def test_truncated_block(self):
        buffer = io.BytesIO()
        writer = PcapngWriter(buffer)
        writer.write(CapturedPacket(timestamp=0.0, data=b"abcdef"))
        blob = buffer.getvalue()[:-6]
        with pytest.raises(PcapngError):
            list(PcapngReader(io.BytesIO(blob)))

    def test_epb_for_unknown_interface(self):
        out = io.BytesIO()
        body = struct.pack("<IHHq", BYTE_ORDER_MAGIC, 1, 0, -1)
        out.write(struct.pack("<II", SHB_TYPE, 12 + len(body)))
        out.write(body)
        out.write(struct.pack("<I", 12 + len(body)))
        epb = struct.pack("<IIIII", 3, 0, 0, 0, 0)
        out.write(struct.pack("<II", EPB_TYPE, 12 + len(epb)))
        out.write(epb)
        out.write(struct.pack("<I", 12 + len(epb)))
        out.seek(0)
        with pytest.raises(PcapngError):
            list(PcapngReader(out))


class TestCliIntegration:
    def test_engine_reads_pcapng_stream(self, tmp_path):
        """Feeding a pcapng trace through the engine end to end."""
        from repro import Gigascope
        from tests.conftest import tcp_packet
        packets = [tcp_packet(ts=float(i), dport=80) for i in range(10)]
        path = str(tmp_path / "t.pcapng")
        write_pcapng(path, packets)
        gs = Gigascope()
        gs.add_query("DEFINE query_name q; Select time From tcp "
                     "Where destPort = 80")
        sub = gs.subscribe("q")
        gs.start()
        gs.feed(read_pcapng(path))
        gs.flush()
        assert len(sub.poll()) == 10


class TestCaptureTruncated:
    """Cut-off traces raise the typed CaptureTruncated, never a bare
    struct.error, and the type is shared with the pcap reader."""

    def _blob(self):
        buffer = io.BytesIO()
        writer = PcapngWriter(buffer)
        for packet in _packets():
            writer.write(packet)
        return buffer.getvalue()

    def test_short_section_header(self):
        with pytest.raises(CaptureTruncated):
            list(PcapngReader(io.BytesIO(self._blob()[:10])))

    def test_cut_in_block_body(self):
        with pytest.raises(CaptureTruncated):
            list(PcapngReader(io.BytesIO(self._blob()[:-9])))

    def test_shared_with_pcap_reader(self):
        from repro.net import CaptureTruncated as shared
        from repro.net.pcap import CaptureTruncated as pcap_truncated
        assert issubclass(CaptureTruncated, pcap_truncated)
        assert issubclass(CaptureTruncated, shared)
        assert issubclass(CaptureTruncated, PcapngError)

    def test_every_cut_point_raises_typed_error(self):
        blob = self._blob()
        for cut in range(0, len(blob), 3):
            try:
                list(PcapngReader(io.BytesIO(blob[:cut])))
            except (CaptureTruncated, PcapngError):
                pass
            # struct.error or IndexError here fails the test.

    @staticmethod
    def _le_file(*blocks):
        out = io.BytesIO()
        for block_type, body in blocks:
            total = 12 + len(body)
            out.write(struct.pack("<II", block_type, total))
            out.write(body)
            out.write(struct.pack("<I", total))
        out.seek(0)
        return out

    _SHB_BODY = struct.pack("<IHHq", BYTE_ORDER_MAGIC, 1, 0, -1)

    def test_option_overrunning_block_length(self):
        # An if_name option claiming 64 bytes in an IDB whose option
        # area holds only 4: the declared length overruns the block.
        options = struct.pack("<HH", 2, 64) + b"eth0"
        out = self._le_file(
            (SHB_TYPE, self._SHB_BODY),
            (IDB_TYPE, struct.pack("<HHI", 1, 0, 65535) + options),
        )
        with pytest.raises(CaptureTruncated):
            list(PcapngReader(out))

    def test_zero_length_epb_payload(self):
        out = self._le_file(
            (SHB_TYPE, self._SHB_BODY),
            (IDB_TYPE, struct.pack("<HHI", 1, 0, 65535)),
            (EPB_TYPE, struct.pack("<IIIII", 0, 0, 0, 0, 0)),
        )
        with pytest.raises(CaptureTruncated):
            list(PcapngReader(out))
