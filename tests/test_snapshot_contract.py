"""The snapshot/restore contract, enforced over EVERY stateful operator.

Replication (DESIGN section 16) and recovery (section 11) both lean on
one promise: for any operator, ``restore_state(decode(encode(
snapshot_state())))`` into a fresh instance yields a node that is
*behaviorally identical* to the original -- same rows out for the same
further input, same next snapshot, byte for byte.  A golden-bytes test
(test_recovery) pins the wire layout of a fixed set; this file pins the
*property*, and -- via subclass discovery -- fails by name when a new
operator class ships without a round-trip case, so the contract cannot
silently rot as the operator zoo grows.
"""

from __future__ import annotations

import importlib
import io
import pkgutil

import pytest

from repro.recovery.wire import decode_snapshot, encode_snapshot
from tests.conftest import tcp_packet


def _all_node_classes():
    """Every QueryNode subclass the package defines, fully imported."""
    import repro
    for info in pkgutil.walk_packages(repro.__path__, "repro."):
        importlib.import_module(info.name)
    from repro.core.query_node import QueryNode

    found = []
    stack = [QueryNode]
    while stack:
        cls = stack.pop()
        for sub in cls.__subclasses__():
            # Other test modules define throwaway QueryNode subclasses;
            # the contract covers only classes the library itself ships.
            if sub.__module__.startswith("repro."):
                found.append(sub)
            stack.append(sub)
    return found


def _exempt_classes():
    """Bases with no state of their own; their subclasses are covered."""
    from repro.core.query_node import UserNode
    from repro.sinks import _RecoverableSink
    return {UserNode, _RecoverableSink}


def _compile(text, streams=None):
    from repro.gsql.codegen import ExprCompiler
    from repro.gsql.functions import builtin_functions
    from repro.gsql.parser import parse_query
    from repro.gsql.planner import plan_query
    from repro.gsql.schema import builtin_registry
    from repro.gsql.semantic import analyze

    functions = builtin_functions()
    analyzed = analyze(parse_query(text), builtin_registry(), functions,
                       stream_resolver=(streams or {}).get)
    plan = plan_query(analyzed, functions)
    compiler = ExprCompiler(analyzed, functions, None, "compiled")
    return analyzed, plan, compiler


def _derived_streams():
    _, plan_a, _ = _compile("DEFINE query_name sa; "
                            "Select time, destPort From tcp")
    _, plan_b, _ = _compile("DEFINE query_name sb; "
                            "Select time, destPort From tcp")
    return {"sa": plan_a.output_schema, "sb": plan_b.output_schema}


def _packets(start, count):
    return [tcp_packet(ts=i * 0.25, sport=1000 + i % 7, dport=80,
                       payload=b"x" * (1 + i % 5))
            for i in range(start, start + count)]


# ---------------------------------------------------------------------------
# One case per operator class: make / prefix / suffix
# ---------------------------------------------------------------------------
#
# ``make()`` builds a fresh, deterministic instance; ``prefix`` drives
# it into interesting mid-stream state (open windows, buffered
# segments, raised alerts); ``suffix`` continues the stream past the
# snapshot point, where any state the snapshot failed to carry shows up
# as diverging output or a diverging next snapshot.

def _make_lfta():
    from repro.operators.lfta import LftaNode
    analyzed, plan, compiler = _compile(
        "DEFINE { query_name q; sample 0.5; } "
        "Select tb, srcPort, count(*) From tcp "
        "Group by time/5 as tb, srcPort")
    return LftaNode(plan.lftas[0], analyzed, compiler, table_size=4, seed=7)


def _make_selection():
    from repro.operators.selection import SelectionNode
    analyzed, plan, compiler = _compile(
        "DEFINE query_name sel; Select time, destPort From sa "
        "Where destPort = 80", streams=_derived_streams())
    return SelectionNode(plan.hfta, analyzed, compiler)


def _make_aggregation():
    from repro.operators.aggregation import AggregationNode
    analyzed, plan, compiler = _compile(
        "DEFINE query_name a; Select tb, srcPort, count(*), sum(len) "
        "From tcp Group by time/5 as tb, srcPort")
    return AggregationNode(plan.hfta, analyzed, compiler, seed=7)


def _make_join():
    from repro.operators.join import JoinNode
    analyzed, plan, compiler = _compile(
        "DEFINE query_name j; Select A.time, A.destPort, B.destPort "
        "From sa A, sb B Where A.time = B.time",
        streams=_derived_streams())
    return JoinNode(plan.hfta, analyzed, compiler)


def _make_merge():
    from repro.operators.merge import MergeNode
    analyzed, plan, _ = _compile(
        "DEFINE query_name m; Merge sa.time : sb.time From sa, sb",
        streams=_derived_streams())
    return MergeNode(plan.hfta, analyzed, buffer_capacity=16)


def _make_sessionize():
    from repro.operators.sessionize import SessionizeNode
    return SessionizeNode("sess", idle_timeout=5.0)


def _make_tcp_reassembly():
    from repro.operators.tcp_reassembly import TcpReassemblyNode
    return TcpReassemblyNode("tcpre")


def _make_defrag():
    from repro.gsql.schema import builtin_registry
    from repro.operators.defrag import DefragNode
    return DefragNode("defrag0", builtin_registry().get("udp"))


def _make_trigger():
    from repro.alerts.engine import TriggerNode
    from repro.alerts.spec import parse_alert_spec
    from repro.gsql.ordering import Ordering
    from repro.gsql.schema import Attribute, StreamSchema
    from repro.gsql.types import FLOAT, IP, UINT
    schema = StreamSchema("flows", [
        Attribute("tb", FLOAT, Ordering.increasing()),
        Attribute("host", IP),
        Attribute("hits", UINT),
    ])
    spec = parse_alert_spec(
        "t:on=flows,key=host,when=sum(hits) > 10,epoch=1,clear_for=2")
    return TriggerNode(spec, schema)


def _make_bus():
    from repro.alerts.engine import AlertBusNode
    from repro.core.channels import Channel
    bus = AlertBusNode("alerts")
    bus.attach_input(Channel(name="t0->alerts"))
    bus.attach_input(Channel(name="t1->alerts"))
    return bus


def _make_telemetry_stream():
    from repro.obs.telemetry import TelemetryStreamNode
    return TelemetryStreamNode("_gs_channel")


def _trigger_prefix(node):
    node.on_tick(0.5)
    node.dispatch((0.0, 0x0A000001, 20), 0)
    node.on_tick(1.5)          # closes epoch 0: RAISE, key stays raised


def _trigger_suffix(node):
    node.on_tick(2.5)          # quiet epoch: false streak 1
    node.on_tick(3.5)          # false streak 2: CLEAR
    node.dispatch((4.0, 0x0A000002, 30), 0)
    node.flush()


def _bus_row(time):
    return (time, 0, b"t", b"RAISE", b"warning", b"k", 1.0, b"ctx")


def _tcp_segments():
    from repro.net.tcp import FLAG_ACK, FLAG_SYN
    return [
        tcp_packet(ts=0.0, seq=100, flags=FLAG_SYN),
        tcp_packet(ts=0.1, seq=101, payload=b"hello ", flags=FLAG_ACK),
        # A gap: this one waits in the out-of-order buffer.
        tcp_packet(ts=0.2, seq=117, payload=b"stream", flags=FLAG_ACK),
        # The missing middle: releases the buffered segment on arrival.
        tcp_packet(ts=0.3, seq=107, payload=b"fills the ", flags=FLAG_ACK),
        tcp_packet(ts=0.4, seq=123, payload=b"!", flags=FLAG_ACK),
    ]


def _defrag_fragments():
    from tests.test_operators_defrag import fragmented_udp
    fragments, _ = fragmented_udp(payload_len=2000, mtu=600)
    return fragments


def _cases():
    from repro.alerts.engine import AlertBusNode, TriggerNode
    from repro.obs.telemetry import TelemetryStreamNode
    from repro.operators.aggregation import AggregationNode
    from repro.operators.defrag import DefragNode
    from repro.operators.join import JoinNode
    from repro.operators.lfta import LftaNode
    from repro.operators.merge import MergeNode
    from repro.operators.selection import SelectionNode
    from repro.operators.sessionize import SessionizeNode
    from repro.operators.tcp_reassembly import TcpReassemblyNode

    def feed_packets(start, count):
        return lambda node: [node.accept_packet(p)
                             for p in _packets(start, count)]

    return {
        LftaNode: {
            "make": _make_lfta,
            "prefix": feed_packets(0, 25),
            "suffix": lambda node: (feed_packets(25, 15)(node),
                                    node.flush()),
        },
        SelectionNode: {
            "make": _make_selection,
            "prefix": lambda node: [node.dispatch((float(t), 80 + t % 2), 0)
                                    for t in range(10)],
            "suffix": lambda node: [node.dispatch((float(t), 80), 0)
                                    for t in range(10, 20)],
        },
        AggregationNode: {
            "make": _make_aggregation,
            "prefix": lambda node: [
                node.dispatch((i // 10, 1000 + i % 3, 1, 40 + i), 0)
                for i in range(30)],
            "suffix": lambda node: ([
                node.dispatch((3 + i // 10, 1000 + i % 3, 1, 40 + i), 0)
                for i in range(30)], node.flush()),
        },
        JoinNode: {
            "make": _make_join,
            "prefix": lambda node: [
                (node.dispatch((t, 80 + t % 2), 0),
                 node.dispatch((t, 80), 1) if t % 3 == 0 else None)
                for t in range(10)],
            "suffix": lambda node: ([
                (node.dispatch((t, 80), 0), node.dispatch((t, 80), 1))
                for t in range(10, 16)], node.flush()),
        },
        MergeNode: {
            "make": _make_merge,
            "prefix": lambda node: ([node.dispatch((t, 80), 0)
                                     for t in range(8)],
                                    node.dispatch((2, 443), 1)),
            "suffix": lambda node: ([node.dispatch((t, 443), 1)
                                     for t in range(3, 9)], node.flush()),
        },
        SessionizeNode: {
            "make": _make_sessionize,
            "prefix": feed_packets(0, 25),
            "suffix": lambda node: (feed_packets(25, 60)(node),
                                    node.flush()),
        },
        TcpReassemblyNode: {
            "make": _make_tcp_reassembly,
            "prefix": lambda node: [node.accept_packet(p)
                                    for p in _tcp_segments()[:3]],
            "suffix": lambda node: ([node.accept_packet(p)
                                     for p in _tcp_segments()[3:]],
                                    node.flush()),
        },
        DefragNode: {
            "make": _make_defrag,
            "prefix": lambda node: [node.accept_packet(f)
                                    for f in _defrag_fragments()[:-1]],
            "suffix": lambda node: (node.accept_packet(
                _defrag_fragments()[-1]), node.flush()),
        },
        TriggerNode: {
            "make": _make_trigger,
            "prefix": _trigger_prefix,
            "suffix": _trigger_suffix,
        },
        AlertBusNode: {
            "make": _make_bus,
            "prefix": lambda bus: (bus.dispatch(_bus_row(1.0), 0),
                                   bus.on_flush(0)),
            "suffix": lambda bus: (bus.dispatch(_bus_row(2.0), 1),
                                   bus.on_flush(1)),
        },
        TelemetryStreamNode: {
            "make": _make_telemetry_stream,
            "prefix": lambda node: node.publish(
                [(0.5, b"c0", 1, 1, 0, 0, 0.0, 0.0)], 0.5),
            "suffix": lambda node: node.publish(
                [(1.5, b"c0", 2, 2, 0, 0, 0.0, 0.0)], 1.5),
        },
    }


def _sink_round_trip(sink_cls):
    """Sinks have no subscribers; their observable output is the file."""
    _, plan, _ = _compile("DEFINE query_name s; "
                          "Select time, destPort From tcp")

    def make():
        handle = io.StringIO()
        return sink_cls("s_sink", plan.output_schema, handle), handle

    original, handle_a = make()
    for t in range(5):
        original.dispatch((float(t), 80), 0)
    prefix_len = len(handle_a.getvalue())
    blob = encode_snapshot(original.snapshot_state())
    restored, handle_b = make()
    header_len = len(handle_b.getvalue())  # CsvSink emits its header at init
    restored.restore_state(decode_snapshot(blob))
    assert encode_snapshot(restored.snapshot_state()) == blob
    assert restored.rows_written == original.rows_written
    for node in (original, restored):
        for t in range(5, 9):
            node.dispatch((float(t), 80), 0)
        node.flush()
    assert handle_b.getvalue()[header_len:] == handle_a.getvalue()[prefix_len:]
    assert (encode_snapshot(restored.snapshot_state())
            == encode_snapshot(original.snapshot_state()))


def _case_ids():
    return sorted(_cases(), key=lambda cls: cls.__name__)


class TestSnapshotContract:
    def test_every_operator_class_has_a_case(self):
        cases = _cases()
        from repro.sinks import CsvSink, JsonlSink
        covered = set(cases) | {CsvSink, JsonlSink}
        exempt = _exempt_classes()
        missing = sorted(
            cls.__module__ + "." + cls.__qualname__
            for cls in _all_node_classes()
            if cls not in covered and cls not in exempt)
        assert not missing, (
            f"operator class(es) without a snapshot/restore round-trip "
            f"case: {missing}; add a case to tests/test_snapshot_contract"
            f".py (or an explicit exemption with a reason)")

    @pytest.mark.parametrize("node_cls", _case_ids(),
                             ids=lambda cls: cls.__name__)
    def test_round_trip_preserves_behavior(self, node_cls):
        case = _cases()[node_cls]
        original = case["make"]()
        out_a = original.subscribe()
        case["prefix"](original)
        out_a.drain()
        blob = encode_snapshot(original.snapshot_state())

        restored = case["make"]()
        out_b = restored.subscribe()
        restored.restore_state(decode_snapshot(blob))
        # The restored state must re-encode to the same bytes at once...
        assert encode_snapshot(restored.snapshot_state()) == blob, \
            f"{node_cls.__name__}: snapshot does not re-encode stably"

        # ...and behave identically from here on.
        case["suffix"](original)
        case["suffix"](restored)
        rows_a = [repr(item) for item in out_a.drain()]
        rows_b = [repr(item) for item in out_b.drain()]
        assert rows_b == rows_a, \
            f"{node_cls.__name__}: restored node diverged after restore"
        assert (encode_snapshot(restored.snapshot_state())
                == encode_snapshot(original.snapshot_state())), \
            f"{node_cls.__name__}: snapshots diverged after more input"

    def test_csv_sink_round_trip(self):
        from repro.sinks import CsvSink
        _sink_round_trip(CsvSink)

    def test_jsonl_sink_round_trip(self):
        from repro.sinks import JsonlSink
        _sink_round_trip(JsonlSink)
