"""Tests for the paper's extension points implemented here:

* ``SELECT *`` expansion
* subqueries in the FROM clause (Section 2.2: "requires only an update
  of the parser")
* ``DEFINE sample p`` Bernoulli sampling (the research-directions
  requirement that sampling be "under the control of the analyst")
* the ``any`` interface wildcard (the research-directions stream-source
  scaling problem)
* the GSQL unparser round trip
"""

import pytest

from repro import Gigascope
from repro.gsql.parser import parse_query
from repro.gsql.semantic import SemanticError, analyze
from repro.gsql.unparse import query_to_gsql
from tests.conftest import tcp_packet


class TestSelectStar:
    def test_expands_to_all_columns(self, registry, functions):
        analyzed = analyze(parse_query("Select * From tcp Where destPort = 80"),
                           registry, functions)
        assert [c.name for c in analyzed.output_columns] == \
            list(registry.get("tcp").names)

    def test_star_runs_end_to_end(self):
        gs = Gigascope()
        gs.add_query("DEFINE query_name q; Select * From tcp")
        sub = gs.subscribe("q")
        gs.start()
        gs.feed_packet(tcp_packet(ts=3.0, dport=80))
        gs.pump()
        (row,) = sub.poll()
        schema = gs.schema_of("q")
        assert row[schema.index_of("destPort")] == 80
        assert row[schema.index_of("time")] == 3

    def test_star_over_join_qualifies(self, registry, functions):
        analyzed = analyze(
            parse_query("Select * From eth0.tcp B, eth1.tcp C "
                        "Where B.time = C.time"),
            registry, functions)
        # every column from both sides, deduped names
        assert len(analyzed.output_columns) == 2 * len(registry.get("tcp"))


class TestFromSubqueries:
    def test_subquery_lifted_and_runs(self):
        gs = Gigascope()
        gs.add_query("""
            DEFINE query_name agg;
            Select tb, count(*)
            From ( Select time, destPort From tcp Where destPort = 80 ) web
            Group by time/10 as tb
        """)
        sub = gs.subscribe("agg")
        gs.start()
        for i in range(20):
            gs.feed_packet(tcp_packet(ts=float(i), dport=80 if i % 2 else 443))
        gs.flush()
        rows = sub.poll()
        assert sum(count for _tb, count in rows) == 10
        # the inner query is registered as its own (subscribable) stream
        assert any(name.startswith("_sub_agg") for name in gs.rts.names())

    def test_named_subquery_keeps_its_name(self):
        gs = Gigascope()
        gs.add_query("""
            DEFINE query_name outer_q;
            Select time From ( DEFINE query_name inner_q;
                               Select time, destPort From tcp ) i
        """)
        assert "inner_q" in gs.rts.names()

    def test_nested_subqueries(self):
        gs = Gigascope()
        gs.add_query("""
            DEFINE query_name top;
            Select tb, count(*)
            From ( Select time From
                   ( Select time, destPort From tcp Where destPort = 80 ) a
                 ) b
            Group by time/10 as tb
        """)
        sub = gs.subscribe("top")
        gs.start()
        gs.feed_packet(tcp_packet(ts=1.0, dport=80))
        gs.flush()
        assert sub.poll() == [(0, 1)]

    def test_analyze_rejects_unlifted_subquery(self, registry, functions):
        query = parse_query("Select time From ( Select time From tcp ) s")
        with pytest.raises(SemanticError):
            analyze(query, registry, functions)


class TestSampling:
    def _run(self, sample_clause, count=4000):
        gs = Gigascope()
        gs.add_query(f"""
            DEFINE {{ query_name q; {sample_clause} }}
            Select time, destPort From tcp
        """)
        sub = gs.subscribe("q")
        gs.start()
        for i in range(count):
            gs.feed_packet(tcp_packet(ts=i * 0.001))
        gs.flush()
        return len(sub.poll())

    def test_sample_rate_roughly_respected(self):
        kept = self._run("sample 0.25;")
        assert 0.18 * 4000 < kept < 0.32 * 4000

    def test_no_sampling_keeps_everything(self):
        assert self._run("") == 4000

    def test_sample_one_keeps_everything(self):
        assert self._run("sample 1.0;") == 4000

    def test_sampling_in_aggregation(self):
        gs = Gigascope()
        gs.add_query("""
            DEFINE { query_name q; sample 0.5; }
            Select tb, count(*) From tcp Group by time/10 as tb
        """)
        sub = gs.subscribe("q")
        gs.start()
        for i in range(2000):
            gs.feed_packet(tcp_packet(ts=i * 0.001))
        gs.flush()
        total = sum(count for _tb, count in sub.poll())
        assert 800 < total < 1200

    def test_invalid_rate_rejected(self, registry, functions):
        with pytest.raises(SemanticError):
            analyze(parse_query("DEFINE { query_name q; sample 1.5; } "
                                "Select time From tcp"),
                    registry, functions)
        with pytest.raises(SemanticError):
            analyze(parse_query("DEFINE { query_name q; sample banana; } "
                                "Select time From tcp"),
                    registry, functions)

    def test_sampling_merge_rejected(self, registry, functions, compile_plan):
        _, base_plan, _ = compile_plan("DEFINE query_name s0; "
                                       "Select time, destIP From tcp")
        schema = base_plan.output_schema
        with pytest.raises(SemanticError):
            analyze(parse_query("DEFINE { query_name m; sample 0.5; } "
                                "Merge s0.time : s1.time From s0, s1"),
                    registry, functions,
                    stream_resolver={"s0": schema, "s1": schema}.get)

    def test_sampling_on_stream_source(self, compile_plan):
        """Sampling works for HFTA-only queries too."""
        gs = Gigascope()
        gs.add_queries("""
            DEFINE query_name base;
            Select time, destPort From tcp;

            DEFINE { query_name sampled; sample 0.5; }
            Select time From base
        """)
        sub = gs.subscribe("sampled")
        gs.start()
        for i in range(2000):
            gs.feed_packet(tcp_packet(ts=i * 0.001))
        gs.flush()
        kept = len(sub.poll())
        assert 800 < kept < 1200


class TestAnyInterface:
    def test_wildcard_sees_all_interfaces(self):
        gs = Gigascope()
        gs.add_queries("""
            DEFINE query_name everywhere;
            Select time, destPort From any.tcp;

            DEFINE query_name only0;
            Select time, destPort From eth0.tcp
        """)
        all_sub = gs.subscribe("everywhere")
        one_sub = gs.subscribe("only0")
        gs.start()
        gs.feed_packet(tcp_packet(ts=1.0, interface="eth0"))
        gs.feed_packet(tcp_packet(ts=2.0, interface="eth1"))
        gs.feed_packet(tcp_packet(ts=3.0, interface="eth7"))
        gs.pump()
        assert len(all_sub.poll()) == 3
        assert len(one_sub.poll()) == 1


class TestUnparser:
    CASES = [
        "Select destIP, destPort, time From eth0.tcp "
        "Where ipversion = 4 and protocol = 6",
        "DEFINE query_name q; Select tb, count(*) as cnt From tcp "
        "Where destPort = 80 or destPort = 8080 "
        "Group by time/60 as tb Having count(*) > 5",
        "Select B.time From eth0.tcp B, eth1.tcp C "
        "Where B.time >= C.time - 1 and B.time <= C.time + 1",
        "Merge a.time : b.time From a, b",
        "Select -len, not_a_keyword From s",
        "Select getlpmid(destIP, 'x.tbl'), $p + 1 From tcp",
        "Select (a + b) * c, a + b * c From s",
        "Select * From tcp",
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_round_trip(self, text):
        first = parse_query(text)
        rendered = query_to_gsql(first)
        second = parse_query(rendered)
        assert query_to_gsql(second) == rendered
        # structural equality of the interesting parts
        assert type(first) is type(second)
        assert first.defines == second.defines

    def test_precedence_preserved(self):
        query = parse_query("Select (a + b) * c From s")
        rendered = query_to_gsql(query)
        assert "(a + b) * c" in rendered
        again = parse_query(rendered)
        assert query.select_items[0].expr == again.select_items[0].expr
