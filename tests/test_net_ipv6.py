"""Tests for the IPv6 substrate and the tcp6/udp6 protocols."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import Gigascope
from repro.gsql.schema import PacketView, builtin_registry
from repro.net.build import build_tcp6_frame, build_udp6_frame, capture
from repro.net.checksum import internet_checksum
from repro.net.ipv6 import (
    IPv6Header,
    int_to_ip6,
    ip6_to_int,
    pseudo_header_v6,
    skip_extension_headers,
)


class TestAddressText:
    def test_known_values(self):
        assert ip6_to_int("::1") == 1
        assert ip6_to_int("::") == 0
        assert ip6_to_int("2001:db8::1") == 0x20010DB8000000000000000000000001
        assert ip6_to_int("fe80:0:0:0:0:0:0:9") == (0xFE80 << 112) | 9

    def test_render(self):
        assert int_to_ip6(1) == "::1"
        assert int_to_ip6(0) == "::"
        assert int_to_ip6(0x20010DB8000000000000000000000001) == "2001:db8::1"

    def test_round_trip_samples(self):
        for text in ("2001:db8::8:800:200c:417a", "ff01::101", "::ffff:0:0"):
            assert ip6_to_int(int_to_ip6(ip6_to_int(text))) == ip6_to_int(text)

    @given(st.integers(0, (1 << 128) - 1))
    def test_round_trip_property(self, value):
        assert ip6_to_int(int_to_ip6(value)) == value

    def test_rejects_bad_text(self):
        for bad in ("1::2::3", "1:2:3", "::10000", "2001:db8::1::"):
            with pytest.raises(ValueError):
                ip6_to_int(bad)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            int_to_ip6(1 << 128)


class TestHeader:
    def test_round_trip(self):
        header = IPv6Header(src=ip6_to_int("2001:db8::1"),
                            dst=ip6_to_int("2001:db8::2"),
                            next_header=6, hop_limit=61, flow_label=0x12345)
        parsed = IPv6Header.parse(header.pack(payload_len=20))
        assert parsed.src == header.src
        assert parsed.dst == header.dst
        assert parsed.hop_limit == 61
        assert parsed.flow_label == 0x12345
        assert parsed.payload_length == 20
        assert parsed.version == 6

    def test_truncated(self):
        with pytest.raises(ValueError):
            IPv6Header.parse(b"\x60" + b"\x00" * 20)

    def test_extension_header_skipping(self):
        # hop-by-hop (0) of 8 bytes, then TCP (6)
        ext = bytes([6, 0]) + b"\x00" * 6
        protocol, offset = skip_extension_headers(ext, 0, 0)
        assert protocol == 6
        assert offset == 8


class TestFrames:
    def test_tcp6_checksum_valid(self):
        src = ip6_to_int("2001:db8::1")
        dst = ip6_to_int("2001:db8::2")
        frame = build_tcp6_frame(src, dst, 1234, 80, payload=b"hello")
        segment = frame[14 + 40:]
        pseudo = pseudo_header_v6(src, dst, 6, len(segment))
        assert internet_checksum(pseudo + segment) == 0

    def test_udp6_checksum_valid(self):
        src = ip6_to_int("fe80::1")
        dst = ip6_to_int("fe80::2")
        frame = build_udp6_frame(src, dst, 53, 5353, payload=b"q")
        datagram = frame[14 + 40:]
        pseudo = pseudo_header_v6(src, dst, 17, len(datagram))
        assert internet_checksum(pseudo + datagram) == 0

    def test_packet_view(self):
        frame = build_tcp6_frame("2001:db8::9", "2001:db8::a", 5, 443,
                                 payload=b"tls")
        view = PacketView(capture(frame, 1.0))
        assert view.ip is None
        assert view.ip6 is not None
        assert view.ip6.src == ip6_to_int("2001:db8::9")
        assert view.tcp.dst_port == 443
        assert view.payload == b"tls"


class TestProtocols:
    def test_tcp6_interpret(self):
        registry = builtin_registry()
        tcp6 = registry.get("tcp6")
        frame = build_tcp6_frame("2001:db8::1", "2001:db8::2", 9999, 80,
                                 payload=b"GET /")
        (row,) = tcp6.interpret(capture(frame, 7.0))
        assert row[tcp6.index_of("time")] == 7
        assert row[tcp6.index_of("destPort")] == 80
        assert row[tcp6.index_of("srcIP6")] == ip6_to_int("2001:db8::1")

    def test_tcp6_rejects_v4(self):
        from tests.conftest import tcp_packet
        registry = builtin_registry()
        assert registry.get("tcp6").interpret(tcp_packet()) == []

    def test_tcp_rejects_v6(self):
        registry = builtin_registry()
        frame = build_tcp6_frame("::1", "::2", 1, 80)
        assert registry.get("tcp").interpret(capture(frame, 0.0)) == []

    def test_end_to_end_query(self):
        gs = Gigascope()
        gs.add_query("""
            DEFINE query_name v6web;
            Select tb, count(*) From tcp6 Where destPort = 80
            Group by time/10 as tb
        """)
        sub = gs.subscribe("v6web")
        gs.start()
        for i in range(10):
            frame = build_tcp6_frame("2001:db8::5", "2001:db8::6",
                                     40000 + i, 80 if i % 2 else 443)
            gs.feed_packet(capture(frame, float(i)))
        gs.flush()
        rows = sub.poll()
        assert sum(count for _tb, count in rows) == 5

    def test_mixed_v4_v6_interfaces(self):
        """One wire carrying both families: each protocol sees its own."""
        from tests.conftest import tcp_packet
        gs = Gigascope()
        gs.add_queries("""
            DEFINE query_name v4; Select time From tcp;
            DEFINE query_name v6; Select time From tcp6
        """)
        s4, s6 = gs.subscribe("v4"), gs.subscribe("v6")
        gs.start()
        gs.feed_packet(tcp_packet(ts=1.0))
        gs.feed_packet(capture(build_tcp6_frame("::1", "::2", 1, 2), 2.0))
        gs.pump()
        assert len(s4.poll()) == 1
        assert len(s6.poll()) == 1
