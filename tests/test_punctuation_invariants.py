"""System-level punctuation soundness.

A punctuation token is a *promise*: every later tuple on that stream
has ``t[slot] >= bound``.  If any operator ever emits a token too
eagerly, some downstream window will close early and drop data -- so we
assert the promise end-to-end: subscribe to every stage of realistic
pipelines, record the interleaving of tuples and tokens, and check that
no tuple ever violates a previously seen bound.
"""

import random

import pytest

from repro import Gigascope
from repro.core.heartbeat import Punctuation
from tests.conftest import tcp_packet


def violations(items):
    """Tuples that arrived after a punctuation promised they couldn't."""
    bounds = {}
    bad = []
    for item in items:
        if isinstance(item, Punctuation):
            for slot, value in item.bounds.items():
                if value > bounds.get(slot, float("-inf")):
                    bounds[slot] = value
        elif type(item) is tuple:
            for slot, bound in bounds.items():
                if item[slot] < bound:
                    bad.append((item, slot, bound))
    return bad


def drive(gs, subs, packets):
    gs.start()
    gs.feed(packets, pump_every=32)
    gs.flush()
    return {name: sub.poll_raw() for name, sub in subs.items()}


def traffic(count=400, seed=1):
    rng = random.Random(seed)
    packets = []
    ts = 0.0
    for i in range(count):
        ts += rng.random() * 0.1
        packets.append(tcp_packet(
            ts=ts, sport=rng.randrange(1024, 2048),
            dport=rng.choice((80, 80, 443, 22)),
            payload=b"GET / HTTP/1.1" if rng.random() < 0.4 else b"\x00data",
            interface=rng.choice(("eth0", "eth1"))))
    return packets


class TestPromisesHeld:
    def test_selection_and_aggregation_chain(self):
        gs = Gigascope(heartbeat_interval=0.5)
        gs.add_queries(r"""
            DEFINE query_name web;
            Select time, srcIP From eth0.tcp
            Where destPort = 80 and str_match_regex(data, 'HTTP');

            DEFINE query_name rate;
            Select tb, count(*) From web Group by time/2 as tb
        """)
        subs = {name: gs.subscribe(name) for name in ("web", "rate")}
        streams = drive(gs, subs, traffic())
        for name, items in streams.items():
            assert violations(items) == [], name
        assert any(isinstance(i, Punctuation) for i in streams["web"])

    def test_merge_pipeline(self):
        gs = Gigascope(heartbeat_interval=0.5)
        gs.add_queries("""
            DEFINE query_name a; Select time, len From eth0.tcp;
            DEFINE query_name b; Select time, len From eth1.tcp;
            DEFINE query_name m; Merge a.time : b.time From a, b
        """)
        subs = {name: gs.subscribe(name) for name in ("a", "b", "m")}
        streams = drive(gs, subs, traffic(seed=2))
        for name, items in streams.items():
            assert violations(items) == [], name

    def test_join_pipeline_banded_and_sorted(self):
        for define in ("", "join_output sorted;"):
            gs = Gigascope(heartbeat_interval=0.5)
            gs.add_query(f"""
                DEFINE {{ query_name j; {define} }}
                Select B.time, C.time as ctime
                From eth0.tcp B, eth1.tcp C
                Where B.time >= C.time - 1 and B.time <= C.time + 1
            """)
            subs = {"j": gs.subscribe("j")}
            streams = drive(gs, subs, traffic(seed=3))
            assert violations(streams["j"]) == [], define or "banded"

    def test_two_level_aggregation_partials(self):
        """The mangled LFTA stream's promises must hold too."""
        gs = Gigascope(heartbeat_interval=0.5, lfta_table_size=2)
        name = gs.add_query("""
            DEFINE query_name g;
            Select tb, srcIP, count(*) From eth0.tcp
            Group by time/2 as tb, srcIP
        """)
        lfta_name = gs.plan_of(name).lftas[0].name
        subs = {lfta_name: gs.subscribe(lfta_name), "g": gs.subscribe("g")}
        streams = drive(gs, subs, traffic(seed=4))
        for stream_name, items in streams.items():
            assert violations(items) == [], stream_name

    @pytest.mark.parametrize("seed", [11, 12, 13])
    def test_randomized_deep_chain(self, seed):
        gs = Gigascope(heartbeat_interval=0.25)
        gs.add_queries("""
            DEFINE query_name s0; Select time, destPort, len From eth0.tcp;
            DEFINE query_name s1; Select time, destPort, len From eth1.tcp;
            DEFINE query_name mm; Merge s0.time : s1.time From s0, s1;
            DEFINE query_name agg;
            Select tb, count(*), sum(len) From mm Group by time/1 as tb;
            DEFINE query_name big; Select tb, cnt From
            ( Select tb, count(*) as cnt From mm Group by time/4 as tb ) x
            Where cnt > 0
        """)
        subs = {name: gs.subscribe(name)
                for name in ("mm", "agg", "big")}
        streams = drive(gs, subs, traffic(count=300, seed=seed))
        for name, items in streams.items():
            assert violations(items) == [], (name, seed)
        # aggregation output must also be exactly ordered on the bucket
        rows = [i for i in streams["agg"] if type(i) is tuple]
        buckets = [r[0] for r in rows]
        assert buckets == sorted(buckets)
        assert len(buckets) == len(set(buckets))
