"""Tests for order-preserving functions (floor) in ordering imputation."""

import pytest

from repro import Gigascope
from repro.gsql.functions import FunctionSpec, builtin_functions
from repro.gsql.ordering import Ordering, OrderingKind
from repro.gsql.parser import parse_query
from repro.gsql.schema import builtin_registry
from repro.gsql.semantic import analyze
from repro.gsql.types import FLOAT, UINT


@pytest.fixture(scope="module")
def registry():
    return builtin_registry()


@pytest.fixture(scope="module")
def functions():
    return builtin_functions()


class TestImputation:
    def test_floor_preserves_increasing(self, registry, functions):
        analyzed = analyze(parse_query("Select floor(timestamp) From tcp"),
                           registry, functions)
        assert analyzed.output_columns[0].ordering == Ordering.increasing()

    def test_floor_of_banded_widens_band(self, registry, functions):
        analyzed = analyze(
            parse_query("Select floor(time_start) From netflow"),
            registry, functions)
        # banded(30) through a monotone step function: banded(31)
        assert analyzed.output_columns[0].ordering == Ordering.banded(31)

    def test_floor_then_bucket_is_window_key(self, registry, functions):
        analyzed = analyze(
            parse_query("Select tb, count(*) From netflow "
                        "Group by floor(time_start)/60 as tb"),
            registry, functions)
        assert analyzed.window_key_index == 0
        assert analyzed.group_orderings[0] == Ordering.banded(1)

    def test_non_order_preserving_function_gives_none(self, registry,
                                                      functions):
        analyzed = analyze(parse_query("Select str_len(data) From tcp"),
                           registry, functions)
        assert analyzed.output_columns[0].ordering.kind == OrderingKind.NONE

    def test_floor_of_unordered_gives_none(self, registry, functions):
        analyzed = analyze(parse_query("Select floor(timestamp * 0) From tcp"),
                           registry, functions)
        assert analyzed.output_columns[0].ordering.kind == OrderingKind.NONE

    def test_custom_order_preserving_function(self, registry):
        functions = builtin_functions()
        functions.register(FunctionSpec(
            name="halve", implementation=lambda x: x // 2,
            arg_types=(UINT,), return_type=UINT, order_preserving=True))
        analyzed = analyze(parse_query("Select halve(time) From tcp"),
                           registry, functions)
        assert analyzed.output_columns[0].ordering == Ordering.increasing()


class TestRuntime:
    def test_floor_bucketing_flushes_incrementally(self):
        """A floor()-keyed aggregation must emit groups as time passes,
        not only at flush -- proving the punctuation/window machinery
        sees through the function."""
        from tests.conftest import tcp_packet
        gs = Gigascope(heartbeat_interval=None)
        gs.add_query("""
            DEFINE query_name q;
            Select tb, count(*) From tcp
            Group by floor(timestamp)/10 as tb
        """)
        sub = gs.subscribe("q")
        gs.start()
        for i in range(100):
            gs.feed_packet(tcp_packet(ts=i * 0.5))
        gs.pump()
        live_rows = sub.poll()
        assert len(live_rows) >= 3  # buckets 0..3 closed before the end
        gs.flush()
        total = live_rows + sub.poll()
        assert sum(count for _tb, count in total) == 100
        buckets = [tb for tb, _count in total]
        assert buckets == sorted(buckets)
        assert len(buckets) == len(set(buckets))

    def test_floor_heartbeat_punctuation(self, compile_plan):
        """Heartbeats translate through floor() into key bounds."""
        from repro.operators.lfta import LftaNode
        from repro.core.heartbeat import Punctuation
        analyzed, plan, compiler = compile_plan(
            "DEFINE query_name q; Select tb, count(*) From tcp "
            "Group by floor(timestamp)/10 as tb")
        lfta = LftaNode(plan.lftas[0], analyzed, compiler)
        tap = lfta.subscribe()
        from tests.conftest import tcp_packet
        lfta.accept_packet(tcp_packet(ts=1.0))
        lfta.on_heartbeat(55.0)
        items = tap.drain()
        rows = [i for i in items if type(i) is tuple]
        puncts = [i for i in items if isinstance(i, Punctuation)]
        assert rows == [(0, 1)]
        assert puncts and puncts[-1].bound_for(0) == 5

    def test_floor_value_semantics(self):
        from tests.conftest import tcp_packet
        gs = Gigascope()
        gs.add_query("DEFINE query_name q; Select floor(timestamp) From tcp")
        sub = gs.subscribe("q")
        gs.start()
        gs.feed_packet(tcp_packet(ts=7.9))
        gs.pump()
        assert sub.poll() == [(7,)]
