"""Tests for the join algorithm choice (banded vs sorted output).

Section 2.1: "B.ts might be monotonically increasing or
banded-increasing(2) depending on the choice of join algorithm
(monotonically increasing requires more buffer space)."
"""

import pytest

from repro import Gigascope
from repro.gsql.ordering import Ordering
from repro.gsql.parser import parse_query
from repro.gsql.semantic import SemanticError, analyze
from tests.conftest import tcp_packet

BAND_WHERE = "B.time >= C.time - 2 and B.time <= C.time + 2"


def run_join(define=""):
    gs = Gigascope(heartbeat_interval=1.0)
    gs.add_query(f"""
        DEFINE {{ query_name j; {define} }}
        Select B.time, B.srcIP, C.srcIP
        From eth0.tcp B, eth1.tcp C
        Where {BAND_WHERE}
    """)
    sub = gs.subscribe("j")
    gs.start()
    for i in range(120):
        ts = i * 0.5
        interface = "eth0" if i % 2 else "eth1"
        gs.feed_packet(tcp_packet(ts=ts, sport=i, interface=interface))
    gs.flush()
    return gs, [r[0] for r in sub.poll()]


class TestImputation:
    def test_banded_default(self, registry, functions):
        analyzed = analyze(parse_query(
            f"Select B.time From eth0.tcp B, eth1.tcp C Where {BAND_WHERE}"),
            registry, functions)
        assert analyzed.output_columns[0].ordering == Ordering.banded(4)
        assert not analyzed.join_sorted_output

    def test_sorted_imputes_monotone(self, registry, functions):
        analyzed = analyze(parse_query(
            "DEFINE { query_name j; join_output sorted; } "
            f"Select B.time From eth0.tcp B, eth1.tcp C Where {BAND_WHERE}"),
            registry, functions)
        assert analyzed.output_columns[0].ordering == Ordering.increasing()
        assert analyzed.join_sorted_output

    def test_sorted_requires_window_column(self, registry, functions):
        with pytest.raises(SemanticError):
            analyze(parse_query(
                "DEFINE { query_name j; join_output sorted; } "
                f"Select B.srcIP From eth0.tcp B, eth1.tcp C Where {BAND_WHERE}"),
                registry, functions)

    def test_bad_algorithm_rejected(self, registry, functions):
        with pytest.raises(SemanticError):
            analyze(parse_query(
                "DEFINE { query_name j; join_output quantum; } "
                f"Select B.time From eth0.tcp B, eth1.tcp C Where {BAND_WHERE}"),
                registry, functions)

    def test_equality_join_ignores_choice(self, registry, functions):
        analyzed = analyze(parse_query(
            "DEFINE { query_name j; join_output sorted; } "
            "Select B.time From eth0.tcp B, eth1.tcp C "
            "Where B.time = C.time"),
            registry, functions)
        # equality is already monotone; no reorder machinery needed
        assert not analyzed.join_sorted_output


class TestRuntime:
    def test_banded_output_not_sorted_but_banded(self):
        _, times = run_join()
        assert times != sorted(times)
        high = float("-inf")
        for value in times:
            high = max(high, value)
            assert value >= high - 4

    def test_sorted_output_fully_sorted(self):
        gs, times = run_join("join_output sorted;")
        assert times == sorted(times)
        node = gs.rts.node("j")
        # the monotone guarantee cost buffer space
        assert node.reorder_peak > 0

    def test_same_multiset_of_results(self):
        _, banded = run_join()
        _, sorted_out = run_join("join_output sorted;")
        assert sorted(banded) == sorted(sorted_out)

    def test_downstream_merge_accepts_sorted_join(self):
        """The point of the choice: a sorted join output can feed an
        operator that requires monotone input (merge)."""
        gs = Gigascope(heartbeat_interval=1.0)
        gs.add_queries(f"""
            DEFINE query_name other;
            Select time From eth2.tcp;

            DEFINE {{ query_name j; join_output sorted; }}
            Select B.time From eth0.tcp B, eth1.tcp C
            Where {BAND_WHERE};

            DEFINE query_name m;
            Merge j.time : other.time From j, other
        """)
        sub = gs.subscribe("m")
        gs.start()
        for i in range(60):
            ts = i * 0.5
            gs.feed_packet(tcp_packet(ts=ts, interface=f"eth{i % 3}"))
        gs.flush()
        times = [r[0] for r in sub.poll()]
        assert times == sorted(times)
        assert times  # produced output

    def test_banded_join_rejected_by_merge(self):
        """Without the sorted algorithm the same composition fails at
        analysis time: a banded(4) column is usable for windows, but
        arbitrary (non-window-usable) outputs are not."""
        gs = Gigascope()
        with pytest.raises(SemanticError):
            gs.add_queries("""
                DEFINE query_name other; Select srcIP, time From eth2.tcp;

                DEFINE query_name bad;
                Select B.srcIP, B.time From eth0.tcp B, eth1.tcp C
                Where B.time = C.time;

                DEFINE query_name m2;
                Merge bad.srcIP : other.srcIP From bad, other
            """)
