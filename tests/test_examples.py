"""Smoke tests: the example scripts run and print what they promise."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"
SLOW = os.environ.get("RUN_SLOW_EXAMPLES") != "1"


def run_example(name, timeout=180):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestFastExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "LFTA" in out
        assert "received" in out
        assert "NIC prefilter" in out

    def test_bgp_monitor(self):
        out = run_example("bgp_monitor.py")
        assert "withdrawal storms" in out
        assert "7018" in out

    def test_syn_flood_detector(self):
        out = run_example("syn_flood_detector.py")
        assert "ALERTS" in out
        # The trigger layer must both raise on the scenario's victim
        # and clear once the flood's quiet epochs accumulate.
        assert "RAISE" in out
        assert "CLEAR" in out
        assert "192.168.77.7" in out


@pytest.mark.skipif(SLOW, reason="set RUN_SLOW_EXAMPLES=1 to run")
class TestSlowExamples:
    def test_http_port80_analysis(self):
        out = run_example("http_port80_analysis.py", timeout=600)
        assert "HTTP fraction" in out

    def test_link_merge_monitor(self):
        out = run_example("link_merge_monitor.py", timeout=600)
        assert "peer-AS" in out

    def test_netflow_peering(self):
        out = run_example("netflow_peering.py", timeout=600)
        assert "banded_increasing" in out

    def test_capture_path_study(self):
        out = run_example("capture_path_study.py", timeout=600)
        assert "2%-loss knees" in out
