"""Tests for query removal and deeper engine integration paths."""

import pytest

from repro import Gigascope
from repro.core.heartbeat import Punctuation
from repro.core.stream_manager import RegistryError
from tests.conftest import tcp_packet


class TestRemoveQuery:
    def _engine(self):
        gs = Gigascope()
        gs.add_queries("""
            DEFINE query_name base;
            Select time, destPort, len From tcp;

            DEFINE query_name derived;
            Select tb, count(*) From base Group by time/10 as tb
        """)
        return gs

    def test_remove_hfta_only_query(self):
        gs = self._engine()
        gs.start()
        gs.remove_query("derived")
        assert "derived" not in gs.rts.names()
        # the producer keeps flowing with no dangling channels
        sub = gs.subscribe("base")
        gs.feed_packet(tcp_packet(ts=1.0))
        gs.pump()
        assert len(sub.poll()) == 1
        base_node = gs.rts.node("base")
        assert all(len(ch.name) for ch in base_node.subscribers)

    def test_dependent_blocks_removal(self):
        gs = self._engine()
        with pytest.raises(RegistryError):
            gs.remove_query("base")
        gs.remove_query("derived")
        gs.remove_query("base")  # now fine (RTS not started)
        assert gs.rts.names() == []

    def test_lfta_removal_requires_stop(self):
        gs = self._engine()
        gs.start()
        gs.remove_query("derived")
        with pytest.raises(RegistryError):
            gs.remove_query("base")
        gs.stop()
        gs.remove_query("base")

    def test_removed_name_reusable(self):
        gs = self._engine()
        gs.remove_query("derived")
        gs.add_query("DEFINE query_name derived; Select time From base")
        assert "derived" in gs.rts.names()

    def test_unknown_query(self):
        gs = self._engine()
        with pytest.raises(RegistryError):
            gs.remove_query("ghost")

    def test_remove_query_ends_app_subscriptions(self):
        """Removal emits a flush token: Subscription.ended flips True
        instead of the handle dangling forever."""
        gs = self._engine()
        sub = gs.subscribe("derived")
        gs.remove_query("derived")
        assert sub.poll() == []
        assert sub.ended

    def test_remove_query_flush_arrives_after_final_rows(self):
        gs = self._engine()
        base_sub = gs.subscribe("base")
        gs.start()
        gs.feed_packet(tcp_packet(ts=1.0))
        gs.pump()
        gs.stop()
        gs.remove_query("derived")
        gs.remove_query("base")
        rows = base_sub.poll()
        assert len(rows) == 1  # the pre-removal tuple was not lost
        assert base_sub.ended

    def test_remove_node_detaches_manager(self):
        """A removed node's on-demand heartbeat requests must no longer
        mutate the RTS it used to belong to."""
        gs = self._engine()
        node = gs.rts.node("derived")
        assert node.manager is gs.rts
        gs.remove_query("derived")
        assert node.manager is None
        node.request_heartbeat()  # must be a harmless no-op now
        assert gs.rts._heartbeat_wanted is False

    def test_subscription_of_removed_query_goes_quiet(self):
        gs = self._engine()
        sub = gs.subscribe("derived")
        gs.start()
        gs.feed_packet(tcp_packet(ts=1.0))
        gs.pump()
        gs.remove_query("derived")
        gs.feed_packet(tcp_packet(ts=2.0))
        gs.pump()
        gs.rts.flush_all()
        assert sub.poll() == []  # nothing ever reached the removed node


class TestPunctuationThroughSplitQueries:
    def test_split_selection_forwards_time_bounds(self):
        """Heartbeats survive the LFTA -> HFTA selection hop."""
        gs = Gigascope(heartbeat_interval=1.0)
        gs.add_query("DEFINE query_name q; Select time, srcIP From tcp "
                     "Where destPort = 80 and str_find_substr(data, 'x')")
        sub = gs.subscribe("q")
        gs.start()
        gs.feed_packet(tcp_packet(ts=0.0, dport=80, payload=b"x"))
        gs.feed_packet(tcp_packet(ts=5.0, dport=80, payload=b"x"))
        gs.pump()
        items = sub.poll_raw()
        bounds = [item.bound_for(0) for item in items
                  if isinstance(item, Punctuation)]
        assert bounds and max(b for b in bounds if b is not None) >= 4

    def test_agg_over_merge_flushes_via_punctuation(self):
        """A 3-stage chain: two LFTAs -> merge -> aggregation; heartbeats
        keep the final aggregation flushing even when one interface is
        quiet."""
        gs = Gigascope(heartbeat_interval=0.5)
        gs.add_queries("""
            DEFINE query_name a; Select time, len From eth0.tcp;
            DEFINE query_name b; Select time, len From eth1.tcp;
            DEFINE query_name ab; Merge a.time : b.time From a, b;
            DEFINE query_name vol;
            Select tb, count(*) From ab Group by time/2 as tb
        """)
        sub = gs.subscribe("vol")
        gs.start()
        # only eth0 traffic; eth1 stays silent throughout
        for i in range(100):
            gs.feed_packet(tcp_packet(ts=i * 0.1, interface="eth0"))
        gs.pump()
        live = sub.poll()
        assert len(live) >= 3  # buckets closed while running
        gs.flush()
        total = live + sub.poll()
        assert sum(count for _tb, count in total) == 100


class TestInterpretedModeFullPipelines:
    def test_interpreted_merge_and_join(self):
        results = {}
        for mode in ("compiled", "interpreted"):
            gs = Gigascope(mode=mode)
            gs.add_queries("""
                DEFINE query_name a; Select time, destPort From eth0.tcp;
                DEFINE query_name b; Select time, destPort From eth1.tcp;
                DEFINE query_name m; Merge a.time : b.time From a, b;
                DEFINE query_name j;
                Select A.time, B.destPort From eth0.tcp A, eth1.tcp B
                Where A.time = B.time
            """)
            m_sub = gs.subscribe("m")
            j_sub = gs.subscribe("j")
            gs.start()
            for i in range(40):
                gs.feed_packet(tcp_packet(ts=float(i), dport=1000 + i,
                                          interface="eth0"))
                gs.feed_packet(tcp_packet(ts=float(i), dport=2000 + i,
                                          interface="eth1"))
            gs.flush()
            results[mode] = (m_sub.poll(), j_sub.poll())
        assert results["compiled"] == results["interpreted"]

    def test_interpreted_partial_functions(self):
        gs = Gigascope(mode="interpreted")
        gs.add_query("DEFINE query_name q; "
                     "Select getlpmid(srcIP, '10.0.0.0/8 1') From tcp")
        sub = gs.subscribe("q")
        gs.start()
        gs.feed_packet(tcp_packet(ts=0.0, src="10.1.1.1"))
        gs.feed_packet(tcp_packet(ts=1.0, src="11.1.1.1"))  # discarded
        gs.flush()
        assert sub.poll() == [(1,)]


class TestStatsSurface:
    def test_stats_include_operator_extras(self):
        gs = Gigascope()
        gs.add_queries("""
            DEFINE query_name a; Select time, destPort From eth0.tcp;
            DEFINE query_name b; Select time, destPort From eth1.tcp;
            DEFINE query_name m; Merge a.time : b.time From a, b;
            DEFINE query_name g;
            Select tb, count(*) From a Group by time/10 as tb
        """)
        gs.start()
        gs.feed_packet(tcp_packet(ts=1.0, interface="eth0"))
        gs.feed_packet(tcp_packet(ts=1.0, interface="eth1"))
        gs.flush()
        stats = gs.stats()
        assert "dropped" in stats["m"]
        assert "groups_emitted" in stats["g"]
        assert stats["a"]["packets_seen"] == 1
