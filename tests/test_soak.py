"""Soak test: a large stream through a deep pipeline, with conservation
checks (no tuple created or lost anywhere but where the plan says so).

Runs ~300k packets; skipped unless RUN_SOAK=1 (it takes ~20 s).
"""

import os

import pytest

from repro import Gigascope
from repro.gsql.schema import PacketView
from repro.workloads.generators import http_port80_pool, merge_streams, packet_stream

pytestmark = pytest.mark.skipif(os.environ.get("RUN_SOAK") != "1",
                                reason="set RUN_SOAK=1 to run the soak test")


def test_soak_deep_pipeline_conservation():
    gs = Gigascope(heartbeat_interval=1.0, lfta_table_size=64)
    gs.add_queries(r"""
        DEFINE query_name east; Select time, destIP, len From eth0.tcp;
        DEFINE query_name west; Select time, destIP, len From eth1.tcp;
        DEFINE query_name link; Merge east.time : west.time From east, west;

        DEFINE query_name volume;
        Select tb, count(*) as packets, sum(len) as bytes
        From link Group by time/5 as tb;

        DEFINE query_name http;
        Select tb, count(*) From eth0.tcp
        Where str_match_regex(data, '^[^\n]*HTTP/1.')
        Group by time/5 as tb
    """)
    volume_sub = gs.subscribe("volume")
    http_sub = gs.subscribe("http")
    gs.start()

    pool_a = http_port80_pool(seed=61)
    pool_b = http_port80_pool(seed=62)
    east = packet_stream(pool_a, rate_mbps=12.0, duration_s=30.0,
                         interface="eth0", seed=1)
    west = packet_stream(pool_b, rate_mbps=12.0, duration_s=30.0,
                         interface="eth1", seed=2)
    packets = list(merge_streams(east, west))
    gs.feed(packets, pump_every=512)
    gs.flush()

    # conservation through the merge
    stats = gs.stats()
    total = len(packets)
    assert stats["east"]["tuples_out"] + stats["west"]["tuples_out"] == total
    assert stats["link"]["tuples_in"] == total
    assert stats["link"]["tuples_out"] == total
    assert stats["link"]["dropped"] == 0

    # conservation through the aggregation
    volume_rows = volume_sub.poll()
    assert sum(r[1] for r in volume_rows) == total
    assert sum(r[2] for r in volume_rows) == sum(p.orig_len for p in packets)
    buckets = [r[0] for r in volume_rows]
    assert buckets == sorted(buckets)
    assert len(buckets) == len(set(buckets))

    # the regex branch agrees with a reference count
    import re
    pattern = re.compile(rb"^[^\n]*HTTP/1.")
    expected = sum(
        1 for p in packets
        if p.interface == "eth0"
        and pattern.search(PacketView(p).payload or b""))
    assert sum(r[1] for r in http_sub.poll()) == expected
