"""Tests for the synthetic traffic generators."""

import pytest

from repro.gsql.schema import PacketView, builtin_registry
from repro.workloads.flows import ZipfFlowWorkload
from repro.workloads.generators import (
    background_pool,
    http_port80_pool,
    merge_streams,
    packet_stream,
    section4_stream,
)
from repro.workloads.netflow_source import netflow_export_stream


class TestPools:
    def test_port80_pool_is_port80_tcp(self):
        pool = http_port80_pool(seed=1, pool_size=64)
        from repro.net.packet import CapturedPacket
        for frame in pool.frames:
            view = PacketView(CapturedPacket(timestamp=0, data=frame))
            assert view.tcp is not None
            assert view.tcp.dst_port == 80

    def test_http_fraction_roughly_respected(self):
        pool = http_port80_pool(seed=2, pool_size=400, http_fraction=0.7)
        from repro.net.packet import CapturedPacket
        import re
        pattern = re.compile(rb"^[^\n]*HTTP/1.")
        hits = 0
        for frame in pool.frames:
            view = PacketView(CapturedPacket(timestamp=0, data=frame))
            if pattern.search(view.payload or b""):
                hits += 1
        assert 0.6 < hits / len(pool.frames) < 0.8

    def test_background_pool_avoids_port80(self):
        pool = background_pool(seed=3, pool_size=64)
        from repro.net.packet import CapturedPacket
        for frame in pool.frames:
            view = PacketView(CapturedPacket(timestamp=0, data=frame))
            l4 = view.tcp or view.udp
            assert l4 is not None
            assert l4.dst_port != 80

    def test_pool_reproducible(self):
        assert http_port80_pool(seed=9).frames == http_port80_pool(seed=9).frames


class TestStreams:
    def test_rate_approximately_met(self):
        pool = background_pool(seed=1, pool_size=64)
        packets = list(packet_stream(pool, rate_mbps=100.0, duration_s=1.0))
        nbytes = sum(p.orig_len for p in packets)
        assert 100e6 * 0.8 < nbytes * 8 < 100e6 * 1.2

    def test_bursty_rate_approximately_met(self):
        pool = background_pool(seed=1, pool_size=64)
        packets = list(packet_stream(pool, rate_mbps=100.0, duration_s=2.0,
                                     bursty=True))
        nbytes = sum(p.orig_len for p in packets)
        rate = nbytes * 8 / 2.0
        assert 100e6 * 0.6 < rate < 100e6 * 1.4

    def test_timestamps_nondecreasing(self):
        pool = http_port80_pool(seed=1, pool_size=64)
        packets = list(packet_stream(pool, 50.0, 0.5))
        times = [p.timestamp for p in packets]
        assert times == sorted(times)

    def test_zero_rate_is_empty(self):
        pool = background_pool()
        assert list(packet_stream(pool, 0.0, 1.0)) == []

    def test_merge_streams_ordered(self):
        pool = background_pool(seed=1, pool_size=16)
        a = packet_stream(pool, 20.0, 0.5, seed=1)
        b = packet_stream(pool, 20.0, 0.5, seed=2)
        merged = list(merge_streams(a, b))
        times = [p.timestamp for p in merged]
        assert times == sorted(times)

    def test_section4_mix(self):
        packets = list(section4_stream(background_mbps=100.0, duration_s=0.3))
        port80_bytes = 0
        other_bytes = 0
        for packet in packets:
            view = PacketView(packet)
            l4 = view.tcp or view.udp
            if view.tcp is not None and view.tcp.dst_port == 80:
                port80_bytes += packet.orig_len
            else:
                other_bytes += packet.orig_len
        # 60 Mbit/s port 80 + ~100 Mbit/s background over 0.3 s
        assert port80_bytes * 8 / 0.3 == pytest.approx(60e6, rel=0.3)
        assert other_bytes * 8 / 0.3 == pytest.approx(100e6, rel=0.4)


class TestZipfFlows:
    def test_popularity_concentration(self):
        workload = ZipfFlowWorkload(num_flows=1000, alpha=1.2, seed=1)
        from collections import Counter
        counts = Counter()
        for packet in workload.packets(20_000):
            view = PacketView(packet)
            counts[(view.ip.src, view.tcp.src_port)] += 1
        top10 = sum(count for _, count in counts.most_common(10))
        assert top10 / 20_000 > 0.3  # heavy hitters dominate

    def test_lower_alpha_less_concentrated(self):
        def top_share(alpha):
            workload = ZipfFlowWorkload(num_flows=1000, alpha=alpha, seed=1)
            from collections import Counter
            counts = Counter()
            for packet in workload.packets(10_000):
                view = PacketView(packet)
                counts[(view.ip.src, view.tcp.src_port)] += 1
            return sum(c for _, c in counts.most_common(10)) / 10_000

        assert top_share(1.3) > top_share(0.5)

    def test_packet_timestamps_spaced_by_pps(self):
        workload = ZipfFlowWorkload(num_flows=10, seed=2)
        packets = list(workload.packets(100, pps=1000.0))
        assert packets[-1].timestamp == pytest.approx(0.099, rel=0.01)

    def test_invalid_flow_count(self):
        with pytest.raises(ValueError):
            ZipfFlowWorkload(num_flows=0)


class TestNetflowSource:
    def test_stream_interpretable_by_protocol(self):
        registry = builtin_registry()
        netflow = registry.get("netflow")
        rows = []
        for packet in netflow_export_stream(duration_s=90.0,
                                            flows_per_second=60):
            rows.extend(netflow.interpret(packet))
        assert len(rows) > 30
        # banded start times (Section 2.1)
        start_slot = netflow.index_of("time_start")
        end_slot = netflow.index_of("time_end")
        ends = [row[end_slot] for row in rows]
        assert all(row[start_slot] <= row[end_slot] for row in rows)
