"""Tests for the gsq-trace filter/convert utility."""

import pytest

from repro.net.pcap import read_pcap, write_pcap
from repro.net.pcapng import read_pcapng, write_pcapng
from repro.trace import build_packet_filter, main
from tests.conftest import tcp_packet, udp_packet


@pytest.fixture
def trace(tmp_path):
    packets = []
    for i in range(30):
        if i % 3 == 2:
            packets.append(udp_packet(ts=float(i), dport=53))
        else:
            packets.append(tcp_packet(ts=float(i), dport=80 if i % 2 else 443,
                                      payload=b"GET / HTTP/1.1" if i % 2 else b"x"))
    path = tmp_path / "in.pcap"
    write_pcap(str(path), packets)
    return str(path), packets


class TestPacketFilter:
    def test_protocol_only(self):
        keep = build_packet_filter("udp", None)
        assert keep(udp_packet())
        assert not keep(tcp_packet())

    def test_where_predicate(self):
        keep = build_packet_filter("tcp", "destPort = 80 and len > 0")
        assert keep(tcp_packet(dport=80))
        assert not keep(tcp_packet(dport=443))

    def test_user_function_in_predicate(self):
        keep = build_packet_filter(
            "tcp", "getlpmid(srcIP, '10.0.0.0/8 1') = 1")
        assert keep(tcp_packet(src="10.5.5.5"))
        assert not keep(tcp_packet(src="11.5.5.5"))

    def test_unknown_protocol(self):
        with pytest.raises(SystemExit):
            build_packet_filter("smtp", None)


class TestCliRuns:
    def test_filter_pcap_to_pcap(self, trace, tmp_path, capsys):
        in_path, packets = trace
        out = tmp_path / "out.pcap"
        code = main(["--in", in_path, "--out", str(out),
                     "--protocol", "tcp", "--where", "destPort = 80"])
        assert code == 0
        kept = read_pcap(str(out))
        expected = sum(1 for i in range(30) if i % 3 != 2 and i % 2)
        assert len(kept) == expected
        assert "packets ->" in capsys.readouterr().err

    def test_convert_to_pcapng(self, trace, tmp_path):
        in_path, packets = trace
        out = tmp_path / "out.pcapng"
        code = main(["--in", in_path, "--out", str(out)])
        assert code == 0
        kept = read_pcapng(str(out))
        assert len(kept) == 30  # default protocol 'ip' keeps all IP

    def test_time_range_and_limit(self, trace, tmp_path):
        in_path, _ = trace
        out = tmp_path / "out.pcap"
        code = main(["--in", in_path, "--out", str(out),
                     "--time-range", "5:20", "--limit", "4"])
        assert code == 0
        kept = read_pcap(str(out))
        assert len(kept) == 4
        assert all(5 <= p.timestamp < 20 for p in kept)

    def test_invert(self, trace, tmp_path):
        in_path, _ = trace
        out = tmp_path / "out.pcap"
        code = main(["--in", in_path, "--out", str(out),
                     "--protocol", "udp", "--invert"])
        assert code == 0
        kept = read_pcap(str(out))
        assert len(kept) == 20  # everything that is NOT udp

    def test_snaplen(self, trace, tmp_path):
        in_path, _ = trace
        out = tmp_path / "out.pcap"
        main(["--in", in_path, "--out", str(out), "--snaplen", "60"])
        kept = read_pcap(str(out))
        assert all(p.caplen <= 60 for p in kept)

    def test_regex_payload_filter(self, trace, tmp_path):
        in_path, _ = trace
        out = tmp_path / "out.pcap"
        code = main(["--in", in_path, "--out", str(out),
                     "--protocol", "tcp",
                     "--where", "str_match_regex(data, 'HTTP/1')"])
        assert code == 0
        kept = read_pcap(str(out))
        assert len(kept) == 10

    def test_bad_predicate(self, trace, tmp_path, capsys):
        in_path, _ = trace
        out = tmp_path / "out.pcap"
        code = main(["--in", in_path, "--out", str(out),
                     "--protocol", "tcp", "--where", "nosuchfield = 1"])
        assert code == 1
        assert "predicate error" in capsys.readouterr().err

    def test_pcapng_input_sniffed(self, tmp_path):
        packets = [tcp_packet(ts=float(i), dport=80) for i in range(5)]
        in_path = tmp_path / "in.pcapng"
        write_pcapng(str(in_path), packets)
        out = tmp_path / "out.pcap"
        code = main(["--in", str(in_path), "--out", str(out)])
        assert code == 0
        assert len(read_pcap(str(out))) == 5
