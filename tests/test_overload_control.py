"""Tests for the overload control plane (:mod:`repro.control`).

Covers the signals bus, the shedding policies, the controller wiring
through the engine, NIC and utilization pressure sources, and the
ISSUE's deterministic acceptance scenario: a synthetic burst with
adaptive shedding keeps bounded channels within their watermarks,
reports a nonzero shed fraction, and 1/rate-corrected COUNT/SUM land
within 10% of the unshedded ground truth -- while the "none" policy
reports the raw drops instead.
"""

import pytest

from repro import Gigascope
from repro.control import (
    AimdShedding,
    NoShedding,
    PressureSample,
    SignalsBus,
    StaticShedding,
    make_policy,
    overload_snapshot,
)
from repro.core.stream_manager import RuntimeSystem
from repro.gsql.ast_nodes import AggCall, Column
from repro.nic.nic import Nic
from repro.operators.aggregates import AggregateOps
from repro.sim.cost_model import CostModel
from tests.conftest import tcp_packet

BURST_QUERIES = """
    DEFINE query_name heavy;
    Select time, len From tcp Where str_match_regex(data, '.*');

    DEFINE query_name totals;
    Select tb, count(*), sum(len) From tcp Group by time/1 as tb
"""


def burst_packets(count=8000, gap_s=0.001):
    """A deterministic packet burst: ~1k pps for count/1000 seconds."""
    return [tcp_packet(ts=i * gap_s, payload=b"x" * 100) for i in range(count)]


def sample(**kw):
    kw.setdefault("stream_time", 0.0)
    kw.setdefault("cycle", 1)
    return PressureSample(**kw)


class TestPolicies:
    def test_none_never_sheds(self):
        policy = NoShedding()
        assert policy.update(sample(max_fill=1.0, channel_drops_delta=99)) == 1.0

    def test_static_rate(self):
        policy = StaticShedding(0.25)
        assert policy.update(sample()) == 0.25
        assert policy.update(sample(max_fill=1.0)) == 0.25

    def test_static_validates_rate(self):
        with pytest.raises(ValueError):
            StaticShedding(0.0)
        with pytest.raises(ValueError):
            StaticShedding(1.5)

    def test_aimd_decreases_under_sustained_pressure(self):
        policy = AimdShedding(trigger_cycles=2)
        pressured = sample(max_fill=1.0, channel_drops_delta=10)
        assert policy.update(pressured) == 1.0  # one cycle is not sustained
        assert policy.update(pressured) == 0.5  # two is
        policy.update(pressured)
        assert policy.update(pressured) == 0.25

    def test_aimd_floors_at_min_rate(self):
        policy = AimdShedding(trigger_cycles=1, min_rate=0.1)
        pressured = sample(channel_drops_delta=1)
        for _ in range(20):
            policy.update(pressured)
        assert policy.rate == pytest.approx(0.1)

    def test_aimd_recovers_additively_when_calm(self):
        policy = AimdShedding(trigger_cycles=1, relief_cycles=2, increase=0.1)
        policy.update(sample(channel_drops_delta=1))
        assert policy.rate == 0.5
        calm = sample(max_fill=0.0)
        policy.update(calm)
        assert policy.update(calm) == pytest.approx(0.6)

    def test_aimd_holds_in_hysteresis_band(self):
        policy = AimdShedding(trigger_cycles=1, high_fill=0.8, low_fill=0.3)
        policy.update(sample(channel_drops_delta=1))
        rate = policy.rate
        between = sample(max_fill=0.5)
        for _ in range(10):
            assert policy.update(between) == rate

    def test_aimd_pressured_by_utilization(self):
        policy = AimdShedding(trigger_cycles=1)
        assert policy.update(sample(utilization=1.5)) == 0.5

    def test_aimd_pressured_by_nic_drops(self):
        policy = AimdShedding(trigger_cycles=1)
        assert policy.update(sample(nic_drops_delta=3)) == 0.5

    def test_make_policy_specs(self):
        assert isinstance(make_policy("none"), NoShedding)
        assert isinstance(make_policy("adaptive"), AimdShedding)
        static = make_policy("static:0.3")
        assert isinstance(static, StaticShedding)
        assert static.rate == 0.3
        existing = AimdShedding()
        assert make_policy(existing) is existing
        with pytest.raises(ValueError):
            make_policy("bogus")
        with pytest.raises(ValueError):
            make_policy("static:banana")


class TestWeightedAggregates:
    def _ops(self):
        aggs = [
            AggCall(name="COUNT", arg=None),
            AggCall(name="SUM", arg=Column(name="v")),
            AggCall(name="AVG", arg=Column(name="v")),
            AggCall(name="MIN", arg=Column(name="v")),
            AggCall(name="MAX", arg=Column(name="v")),
        ]
        value = lambda row: row[0]
        return AggregateOps(aggs, [None, value, value, value, value])

    def test_weight_one_matches_plain_update(self):
        ops = self._ops()
        plain, weighted = ops.new_state(), ops.new_state()
        for row in [(4,), (6,)]:
            ops.update(plain, row)
            ops.update_weighted(weighted, row, 1.0)
        assert ops.final_values(plain) == ops.final_values(weighted)

    def test_horvitz_thompson_scaling(self):
        ops = self._ops()
        state = ops.new_state()
        # Two tuples kept at rate 0.5: each stands for 2.
        ops.update_weighted(state, (4,), 2.0)
        ops.update_weighted(state, (6,), 2.0)
        count, total, avg, lo, hi = ops.final_values(state)
        assert count == 4.0
        assert total == 20.0
        assert avg == pytest.approx(5.0)  # weighted mean, not inflated
        assert (lo, hi) == (4, 6)  # order statistics stay unweighted


class _Source:
    """A minimal packet consumer emitting one tuple per packet."""

    def __init__(self, name):
        from repro.core.query_node import QueryNode
        from repro.gsql.schema import StreamSchema

        self.node = QueryNode(name, StreamSchema(name, []))
        self.node.accept_packet = self._accept
        self.node.flush = lambda: None
        self.node.emit_flush = lambda: None

    def _accept(self, packet, view=None):
        self.node.emit((packet.timestamp,))


class TestSignalsBus:
    def _rts(self, capacity=4):
        rts = RuntimeSystem(heartbeat_interval=None)
        source = _Source("src")
        rts.register_node(source.node, packet_interface="eth0")
        subscription = rts.subscribe("src", capacity=capacity)
        return rts, subscription

    def test_channel_depth_and_drop_deltas(self):
        rts, _sub = self._rts(capacity=4)
        bus = SignalsBus(rts)
        rts.start()
        for i in range(10):
            rts.feed_packet(tcp_packet(ts=i * 0.1))
        first = bus.collect(rts.stream_time)
        assert first.max_fill == 1.0
        assert first.channel_drops_delta == 6
        assert first.channel_drops_total == 6
        # No new drops between cycles: the delta resets, the total holds.
        second = bus.collect(rts.stream_time)
        assert second.channel_drops_delta == 0
        assert second.channel_drops_total == 6

    def test_packet_and_node_rates(self):
        rts, _sub = self._rts(capacity=None)
        bus = SignalsBus(rts)
        rts.start()
        rts.feed_packet(tcp_packet(ts=0.0))
        bus.collect(rts.stream_time)
        for i in range(1, 11):
            rts.feed_packet(tcp_packet(ts=i * 0.1))
        s = bus.collect(rts.stream_time)
        assert s.packet_rate == pytest.approx(10.0, rel=0.01)
        assert s.node_rates["src"] == pytest.approx(10.0, rel=0.01)

    def test_utilization_from_cost_model(self):
        rts, _sub = self._rts(capacity=None)
        bus = SignalsBus(rts, cost_model=CostModel())
        rts.start()
        rts.feed_packet(tcp_packet(ts=0.0))
        bus.collect(rts.stream_time)
        # 100k packets/s of small packets: far beyond the ~150k/s the
        # 6.2us interrupt cost alone allows.  (Feed a handful only.)
        for i in range(1, 50):
            rts.feed_packet(tcp_packet(ts=i * 1e-5))
        s = bus.collect(rts.stream_time)
        assert s.utilization > 0.5
        assert bus.peak_utilization == s.utilization


class TestControllerThroughEngine:
    def test_static_gate_sheds_and_accounts(self):
        gs = Gigascope()
        gs.add_query("DEFINE query_name q; "
                     "Select tb, count(*) From tcp Group by time/1 as tb")
        gs.enable_shedding("static:0.25")
        sub = gs.subscribe("q")
        gs.start()
        gs.feed(burst_packets(4000))
        gs.flush()
        report = gs.overload_report()
        assert report["policy"] == "static"
        assert 0.6 < report["shed_fraction"] < 0.9  # ~75% shed
        # The corrected COUNT still estimates the full stream.
        total = sum(r[1] for r in sub.poll())
        assert total == pytest.approx(4000, rel=0.10)
        # Per-LFTA accounting flows into RuntimeSystem.stats() too.
        lfta_stats = next(s for s in gs.stats().values()
                          if "shed_packets" in s)
        assert lfta_stats["shed_packets"] == report["packets_shed"] > 0

    def test_none_policy_observes_without_shedding(self):
        gs = Gigascope(channel_capacity=32)
        gs.add_queries(BURST_QUERIES)
        gs.enable_shedding("none")
        gs.start()
        gs.feed(burst_packets(2000))
        gs.flush()
        report = gs.overload_report()
        assert report["policy"] == "none"
        assert report["shed_rate"] == 1.0
        assert report["packets_shed"] == 0
        assert report["shed_fraction"] == 0.0
        # ... but the raw losses are fully accounted.
        assert report["channel_dropped"] > 0
        assert report["cycles"] > 0
        heavy = report["channels"]["_fta_heavy_0->heavy"]
        assert heavy["dropped"] > 0
        assert heavy["capacity"] == 32

    def test_snapshot_without_controller(self):
        gs = Gigascope(channel_capacity=16)
        gs.add_queries(BURST_QUERIES)
        gs.start()
        gs.feed(burst_packets(1000))
        gs.flush()
        report = gs.overload_report()
        assert report["policy"] == "disabled"
        assert report["channel_dropped"] > 0
        assert report["packets_shed"] == 0
        assert overload_snapshot(gs.rts)["policy"] == "disabled"

    def test_utilization_pressure_sheds_without_bounded_channels(self):
        gs = Gigascope()
        gs.add_query("DEFINE query_name q; "
                     "Select tb, count(*) From tcp Group by time/1 as tb")
        controller = gs.enable_shedding(AimdShedding(trigger_cycles=1))
        gs.start()
        # ~1M packets/s in stream time: utilization far above 1.0.
        gs.feed(burst_packets(2000, gap_s=1e-6))
        gs.flush()
        assert controller.shed_rate < 1.0
        assert controller.report()["pressured_cycles"] > 0


class TestBoundedChannelsEndToEnd:
    def test_flush_traverses_full_channels_and_stats_expose_drops(self):
        gs = Gigascope(channel_capacity=8)
        gs.add_queries(BURST_QUERIES)
        heavy = gs.subscribe("heavy")
        gs.start()
        # One giant pump window: the bounded channel overflows hard.
        gs.feed(burst_packets(500), pump_every=10 ** 9)
        gs.flush()
        heavy.poll()
        # The flush token was never dropped: the subscription ended.
        assert heavy.ended
        # And the overflow losses are visible per channel in stats().
        stats = gs.stats()
        lfta = stats["_fta_heavy_0"]
        channel = lfta["channels"]["_fta_heavy_0->heavy"]
        assert channel["dropped"] > 0
        assert channel["capacity"] == 8
        assert channel["max_depth"] >= 8
        assert channel["pushed"] + channel["dropped"] >= 500


class TestNicSignal:
    def test_ring_drops_feed_the_policy(self):
        rts = RuntimeSystem(heartbeat_interval=None)
        source = _Source("src")
        rts.register_node(source.node, packet_interface="eth0")
        bus = SignalsBus(rts)
        # A deliberately slow card: 1000us per packet, 2-slot ring.
        nic = Nic(service_us=1000.0, ring_slots=2)
        bus.watch_nic(nic)
        rts.start()
        for i in range(50):
            nic.receive(tcp_packet(ts=i * 1e-6), now_us=i)
        assert nic.stats.ring_dropped > 0
        s = bus.collect(0.0)
        assert s.nic_drops_delta == nic.stats.ring_dropped
        assert s.drops_delta >= s.nic_drops_delta
        signal = nic.pressure_signal()
        assert signal["ring_dropped"] == nic.stats.ring_dropped
        assert 0.0 < signal["loss_rate"] <= 1.0


class TestAcceptanceBurst:
    """The ISSUE's deterministic overload scenario, end to end."""

    CAPACITY = 64

    def _run(self, policy, channel_capacity=CAPACITY):
        gs = Gigascope(channel_capacity=channel_capacity)
        gs.add_queries(BURST_QUERIES)
        if policy is not None:
            gs.enable_shedding(policy)
        totals = gs.subscribe("totals")
        gs.start()
        gs.feed(burst_packets(8000))
        gs.flush()
        rows = totals.poll()
        count = sum(r[1] for r in rows)
        total = sum(r[2] for r in rows)
        return gs.overload_report(), count, total

    def test_adaptive_sheds_and_corrects(self):
        # Ground truth: same burst, no shedding, unbounded channels.
        _, true_count, true_total = self._run(None, channel_capacity=None)
        assert true_count == 8000

        report, count, total = self._run("adaptive")
        # The controller engaged: nonzero shed fraction, reduced rate.
        assert report["shed_fraction"] > 0.1
        assert report["min_shed_rate"] < 1.0
        assert report["packets_shed"] > 0
        # Bounded channels stayed within their capacity watermark:
        # data-tuple occupancy never exceeds capacity (control tokens
        # may ride on top; they are never dropped, and are counted).
        for _name, info in report["channels"].items():
            if info["capacity"] is not None:
                assert info["max_depth"] <= info["capacity"] + 8
        # 1/rate-corrected COUNT/SUM land within 10% of ground truth.
        assert count == pytest.approx(true_count, rel=0.10)
        assert total == pytest.approx(true_total, rel=0.10)

    def test_none_policy_reports_raw_drops(self):
        report, count, _total = self._run("none")
        assert report["shed_fraction"] == 0.0
        assert report["channel_dropped"] > 0
        # The aggregate path is undamaged (few groups, no overflow
        # there), so the raw count is exact -- the losses are the heavy
        # query's tuples, and they are reported, not corrected.
        assert count == 8000
        heavy = report["channels"]["_fta_heavy_0->heavy"]
        assert heavy["dropped"] > 0

    def test_adaptive_loses_less_than_none(self):
        none_report, _, _ = self._run("none")
        adaptive_report, _, _ = self._run("adaptive")
        assert (adaptive_report["channel_dropped"]
                < none_report["channel_dropped"])
