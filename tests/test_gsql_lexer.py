"""Tests for the GSQL lexer."""

import pytest

from repro.gsql.lexer import (
    EOF,
    GSQLSyntaxError,
    IDENT,
    KEYWORD,
    NUMBER,
    OP,
    PARAMREF,
    STRING,
    TokenStream,
    tokenize,
)


def kinds(text):
    return [t.kind for t in tokenize(text)[:-1]]


def texts(text):
    return [t.text for t in tokenize(text)[:-1]]


class TestBasics:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("Select FROM where GROUP by")
        assert all(t.kind == KEYWORD for t in tokens[:-1])

    def test_identifiers(self):
        tokens = tokenize("destIP tcp_dest0 _x")
        assert all(t.kind == IDENT for t in tokens[:-1])

    def test_numbers(self):
        tokens = tokenize("42 3.14 0x1F 1e3 2E-2")
        values = [t.value for t in tokens[:-1]]
        assert values == [42, 3.14, 31, 1000.0, 0.02]
        assert [t.kind for t in tokens[:-1]] == [NUMBER] * 5

    def test_integer_then_dot_not_float(self):
        # "eth0.tcp" style: number only greedy when digits follow the dot
        tokens = tokenize("x.y")
        assert [t.kind for t in tokens[:-1]] == [IDENT, OP, IDENT]

    def test_strings_single_and_double(self):
        tokens = tokenize("'abc' \"def\"")
        assert [t.value for t in tokens[:-1]] == ["abc", "def"]

    def test_string_escapes(self):
        (token, _eof) = tokenize(r"'a\n\t\'b'")
        assert token.value == "a\n\t'b"

    def test_regex_backslash_preserved(self):
        # '^[^\n]*HTTP/1.*' -- the paper's pattern must survive lexing
        (token, _eof) = tokenize(r"'^[^\n]*HTTP/1.*'")
        assert token.value == "^[^\n]*HTTP/1.*"

    def test_params(self):
        tokens = tokenize("$port $min_len")
        assert [t.kind for t in tokens[:-1]] == [PARAMREF] * 2
        assert [t.value for t in tokens[:-1]] == ["port", "min_len"]

    def test_operators(self):
        assert texts("<= >= <> != << >> = < >") == [
            "<=", ">=", "<>", "!=", "<<", ">>", "=", "<", ">"]

    def test_eof_token(self):
        tokens = tokenize("x")
        assert tokens[-1].kind == EOF


class TestComments:
    def test_line_comments(self):
        assert texts("a -- comment\nb // other\nc") == ["a", "b", "c"]

    def test_block_comments(self):
        assert texts("a /* multi\nline */ b") == ["a", "b"]

    def test_unterminated_block(self):
        with pytest.raises(GSQLSyntaxError):
            tokenize("a /* never closed")


class TestErrors:
    def test_unterminated_string(self):
        with pytest.raises(GSQLSyntaxError):
            tokenize("'oops")

    def test_bad_character(self):
        with pytest.raises(GSQLSyntaxError):
            tokenize("a ? b")

    def test_bare_dollar(self):
        with pytest.raises(GSQLSyntaxError):
            tokenize("$ x")

    def test_error_carries_position(self):
        try:
            tokenize("ok\n  'bad")
        except GSQLSyntaxError as error:
            assert error.line == 2
        else:
            pytest.fail("expected GSQLSyntaxError")


class TestTokenStream:
    def test_accept_and_expect(self):
        stream = TokenStream.from_text("select x")
        assert stream.accept(KEYWORD, "SELECT")
        assert stream.accept(KEYWORD, "FROM") is None
        token = stream.expect(IDENT)
        assert token.text == "x"
        assert stream.at_end

    def test_expect_raises_with_context(self):
        stream = TokenStream.from_text("select")
        stream.next()
        with pytest.raises(GSQLSyntaxError):
            stream.expect(IDENT)

    def test_peek_ahead(self):
        stream = TokenStream.from_text("a b c")
        assert stream.peek(2).text == "c"
        assert stream.peek(99).kind == EOF
