"""Tests for the canned-query catalog: every entry compiles and runs."""

import pytest

from repro import Gigascope
from repro.queries import (
    flow_volume_from_netflow,
    fragment_monitor,
    heavy_hitters,
    http_fraction,
    packet_counts,
    peer_traffic,
    ping_sweep_detector,
    port_mix,
    syn_fin_ratio,
)
from tests.conftest import tcp_packet, udp_packet


def add(gs, entry):
    """Add a catalog entry (text, or (text, params))."""
    if isinstance(entry, tuple):
        text, params = entry
        return gs.add_queries(text, params={name_of(text): params})
    return gs.add_queries(entry)


def name_of(text):
    import re
    return re.search(r"query_name\s+(\w+)", text).group(1)


class TestCatalogCompiles:
    @pytest.mark.parametrize("entry_fn", [
        packet_counts,
        port_mix,
        syn_fin_ratio,
        http_fraction,
        fragment_monitor,
        flow_volume_from_netflow,
    ])
    def test_plain_entries(self, entry_fn):
        gs = Gigascope()
        names = add(gs, entry_fn())
        assert names

    def test_param_entries(self):
        gs = Gigascope()
        add(gs, heavy_hitters(top_threshold=10))
        add(gs, peer_traffic("10.0.0.0/8 1"))
        add(gs, ping_sweep_detector())
        assert len(gs.rts.names()) >= 3


class TestCatalogRuns:
    def test_packet_counts(self):
        gs = Gigascope()
        (name,) = add(gs, packet_counts(bucket_seconds=10))
        sub = gs.subscribe(name)
        gs.start()
        for i in range(20):
            gs.feed_packet(tcp_packet(ts=float(i)))
        gs.flush()
        rows = sub.poll()
        assert sum(r[1] for r in rows) == 20

    def test_heavy_hitters_threshold_runtime_change(self):
        gs = Gigascope()
        (name,) = add(gs, heavy_hitters(bucket_seconds=10, top_threshold=100))
        sub = gs.subscribe(name)
        gs.start()
        for i in range(50):
            gs.feed_packet(tcp_packet(ts=i * 0.1))
        gs.flush()
        assert sub.poll() == []  # 50 < 100
        # lower the alarm threshold on the fly and re-run
        gs.stop()
        gs2 = Gigascope()
        (name,) = add(gs2, heavy_hitters(bucket_seconds=10, top_threshold=100))
        gs2.set_param(name, "threshold", 10)
        sub2 = gs2.subscribe(name)
        gs2.start()
        for i in range(50):
            gs2.feed_packet(tcp_packet(ts=i * 0.1))
        gs2.flush()
        assert len(sub2.poll()) == 1

    def test_syn_fin_pair(self):
        from repro.net.tcp import FLAG_ACK, FLAG_FIN, FLAG_SYN
        gs = Gigascope()
        names = add(gs, syn_fin_ratio(bucket_seconds=10))
        syn_sub = gs.subscribe(names[0])
        fin_sub = gs.subscribe(names[1])
        gs.start()
        for i in range(6):
            gs.feed_packet(tcp_packet(ts=float(i), flags=FLAG_SYN))
        for i in range(2):
            gs.feed_packet(tcp_packet(ts=6.0 + i, flags=FLAG_ACK | FLAG_FIN))
        gs.flush()
        assert sum(r[1] for r in syn_sub.poll()) == 6
        assert sum(r[1] for r in fin_sub.poll()) == 2

    def test_fragment_monitor(self):
        from tests.test_operators_defrag import fragmented_udp
        gs = Gigascope()
        (name,) = add(gs, fragment_monitor(bucket_seconds=10))
        sub = gs.subscribe(name)
        gs.start()
        fragments, _ = fragmented_udp()
        gs.feed(fragments)
        gs.feed_packet(udp_packet(ts=5.0))  # unfragmented: excluded
        gs.flush()
        rows = sub.poll()
        assert sum(r[1] for r in rows) == len(fragments)

    def test_flow_volume_from_netflow(self):
        from repro.workloads.netflow_source import netflow_export_stream
        gs = Gigascope(default_interface="nf0")
        (name,) = add(gs, flow_volume_from_netflow(bucket_seconds=30))
        sub = gs.subscribe(name)
        gs.start()
        gs.feed(netflow_export_stream(duration_s=120.0, flows_per_second=50))
        gs.flush()
        rows = sub.poll()
        assert len(rows) >= 3
        buckets = [r[0] for r in rows]
        assert buckets == sorted(buckets)
        assert len(buckets) == len(set(buckets))

    def test_dns_catalog_entries(self):
        from repro.queries import dns_query_mix, nxdomain_storm
        gs = Gigascope()
        add(gs, dns_query_mix())
        add(gs, nxdomain_storm(threshold=5))
        assert "dns_mix" in gs.rts.names() or any(
            n for n in gs.rts.names() if "dns" in n)
