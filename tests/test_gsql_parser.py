"""Tests for the GSQL parser."""

import pytest

from repro.gsql.ast_nodes import (
    AggCall,
    BinaryOp,
    Column,
    FuncCall,
    Literal,
    MergeQuery,
    Param,
    SelectQuery,
    UnaryOp,
)
from repro.gsql.lexer import GSQLSyntaxError
from repro.gsql.parser import parse_queries, parse_query


class TestDefines:
    def test_simple_define(self):
        query = parse_query("DEFINE query_name q1; Select x From s")
        assert query.defines["query_name"] == "q1"
        assert query.name == "q1"

    def test_paper_style_query_name(self):
        # The paper writes "DEFINE query name tcpdest0;"
        query = parse_query("DEFINE query name tcpdest0; Select x From s")
        assert query.name == "tcpdest0"

    def test_braced_define_block(self):
        query = parse_query(
            "DEFINE { query_name q2; visibility external; } Select x From s"
        )
        assert query.defines == {"query_name": "q2", "visibility": "external"}

    def test_no_define(self):
        query = parse_query("Select x From s")
        assert query.name is None


class TestSelect:
    def test_full_clause_set(self):
        query = parse_query("""
            Select tb, peerid, count(*) as cnt
            From eth0.tcp
            Where protocol = 6 and destPort = 80
            Group by time/60 as tb, getlpmid(destIP, 'p.tbl') as peerid
            Having count(*) > 10
        """)
        assert isinstance(query, SelectQuery)
        assert len(query.select_items) == 3
        assert query.select_items[2].alias == "cnt"
        assert query.sources[0].interface == "eth0"
        assert query.sources[0].name == "tcp"
        assert len(query.group_by) == 2
        assert query.group_by[0].alias == "tb"
        assert query.having is not None

    def test_source_alias(self):
        query = parse_query("Select B.x From eth0.tcp B")
        assert query.sources[0].alias == "B"
        assert query.sources[0].binding == "B"

    def test_bare_protocol_source(self):
        query = parse_query("Select x From tcp")
        assert query.sources[0].interface is None

    def test_two_sources(self):
        query = parse_query("Select B.ts From s1 B, s2 C Where B.ts = C.ts")
        assert len(query.sources) == 2

    def test_expression_precedence(self):
        query = parse_query("Select a + b * c From s")
        expr = query.select_items[0].expr
        assert isinstance(expr, BinaryOp) and expr.op == "+"
        assert isinstance(expr.right, BinaryOp) and expr.right.op == "*"

    def test_and_or_precedence(self):
        query = parse_query("Select x From s Where a = 1 or b = 2 and c = 3")
        where = query.where
        assert where.op == "OR"
        assert where.right.op == "AND"

    def test_not(self):
        query = parse_query("Select x From s Where not a = 1")
        assert isinstance(query.where, UnaryOp)
        assert query.where.op == "NOT"

    def test_unary_minus(self):
        query = parse_query("Select -x From s")
        expr = query.select_items[0].expr
        assert isinstance(expr, UnaryOp) and expr.op == "-"

    def test_count_star(self):
        query = parse_query("Select count(*) From s Group by x")
        expr = query.select_items[0].expr
        assert isinstance(expr, AggCall) and expr.is_count_star

    def test_aggregates_with_args(self):
        query = parse_query("Select sum(len), min(ts), max(ts), avg(len) From s Group by x")
        names = [item.expr.name for item in query.select_items]
        assert names == ["SUM", "MIN", "MAX", "AVG"]

    def test_function_call(self):
        query = parse_query("Select getlpmid(destIP, 'x.tbl') From s")
        expr = query.select_items[0].expr
        assert isinstance(expr, FuncCall)
        assert expr.name == "getlpmid"
        assert isinstance(expr.args[1], Literal)

    def test_zero_arg_function(self):
        query = parse_query("Select now() From s")
        assert query.select_items[0].expr == FuncCall("now", ())

    def test_params(self):
        query = parse_query("Select x From s Where port = $port")
        assert query.where.right == Param("port")

    def test_qualified_columns(self):
        query = parse_query("Select B.destIP From tcp B")
        assert query.select_items[0].expr == Column("destIP", table="B")

    def test_comparison_aliases(self):
        q1 = parse_query("Select x From s Where a != 1")
        q2 = parse_query("Select x From s Where a <> 1")
        assert q1.where.op == q2.where.op == "<>"

    def test_parenthesized(self):
        query = parse_query("Select (a + b) / 2 From s")
        expr = query.select_items[0].expr
        assert expr.op == "/"


class TestMerge:
    def test_paper_example(self):
        query = parse_query("""
            DEFINE query_name tcpdest;
            Merge tcpdest0.time : tcpdest1.time
            From tcpdest0, tcpdest1
        """)
        assert isinstance(query, MergeQuery)
        assert query.name == "tcpdest"
        assert [c.table for c in query.columns] == ["tcpdest0", "tcpdest1"]
        assert [s.name for s in query.sources] == ["tcpdest0", "tcpdest1"]

    def test_three_way_merge(self):
        query = parse_query("Merge a.ts : b.ts : c.ts From a, b, c")
        assert len(query.sources) == 3

    def test_arity_mismatch(self):
        with pytest.raises(GSQLSyntaxError):
            parse_query("Merge a.ts : b.ts From a, b, c")


class TestErrors:
    def test_trailing_garbage(self):
        with pytest.raises(GSQLSyntaxError):
            parse_query("Select x From s extra stuff ; ;")

    def test_missing_from(self):
        with pytest.raises(GSQLSyntaxError):
            parse_query("Select x Where a = 1")

    def test_empty_input(self):
        with pytest.raises(GSQLSyntaxError):
            parse_query("")

    def test_group_without_by(self):
        with pytest.raises(GSQLSyntaxError):
            parse_query("Select x From s Group x")


class TestBatch:
    def test_parse_queries(self):
        batch = parse_queries("""
            DEFINE query_name a; Select x From s;
            DEFINE query_name b; Select y From a
        """)
        assert [q.name for q in batch] == ["a", "b"]


class TestInLists:
    def test_in_desugars_to_or_chain(self):
        query = parse_query("Select x From s Where p IN (80, 443, 8080)")
        where = query.where
        assert where.op == "OR"
        assert where.right == BinaryOp("=", Column("p"), Literal(8080))

    def test_single_element_in(self):
        query = parse_query("Select x From s Where p IN (80)")
        assert query.where == BinaryOp("=", Column("p"), Literal(80))

    def test_not_in(self):
        query = parse_query("Select x From s Where p NOT IN (1, 2)")
        assert isinstance(query.where, UnaryOp)
        assert query.where.op == "NOT"

    def test_in_combines_with_and(self):
        query = parse_query("Select x From s Where a = 1 and p IN (2, 3)")
        assert query.where.op == "AND"

    def test_in_requires_parenthesized_list(self):
        with pytest.raises(GSQLSyntaxError):
            parse_query("Select x From s Where p IN 80")
