"""Tests for static plan cost estimation."""

import pytest

from repro.gsql.costing import (
    CostEstimate,
    estimate_plan_cost,
    expr_operations,
)
from repro.gsql.parser import parse_query


class TestExprOperations:
    def test_comparison_cheaper_than_regex(self, registry, functions,
                                           compile_plan):
        analyzed, _, _ = compile_plan(
            "DEFINE query_name q; Select time From tcp "
            "Where destPort = 80 and str_match_regex(data, 'HTTP')")
        cheap, expensive = analyzed.where_conjuncts
        assert expr_operations(cheap, functions) < \
            expr_operations(expensive, functions) / 5

    def test_aggregates_counted(self, functions, compile_plan):
        analyzed, _, _ = compile_plan(
            "DEFINE query_name q; Select tb, count(*) From tcp "
            "Group by time/60 as tb")
        post = analyzed.output_columns[1].expr  # AggRef
        assert expr_operations(analyzed.group_exprs[0], functions) > 0


class TestPlanEstimates:
    def test_lfta_only_plan(self, functions, compile_plan):
        _, plan, _ = compile_plan(
            "DEFINE query_name q; Select destIP, time From tcp "
            "Where destPort = 80")
        estimate = estimate_plan_cost(plan, functions)
        assert len(estimate.lfta_stages) == 1
        assert estimate.hfta_stage is None
        assert estimate.lfta_us_per_packet > 0
        assert estimate.hfta_us_per_tuple == 0

    def test_split_plan_puts_regex_cost_up(self, functions, compile_plan):
        _, plan, _ = compile_plan(
            "DEFINE query_name q; Select time From tcp "
            "Where destPort = 80 and str_match_regex(data, 'HTTP')")
        estimate = estimate_plan_cost(plan, functions)
        # the regex dominates, and it lives in the HFTA stage
        assert estimate.hfta_us_per_tuple > estimate.lfta_us_per_packet

    def test_two_level_aggregation(self, functions, compile_plan):
        _, plan, _ = compile_plan(
            "DEFINE query_name q; Select tb, count(*), sum(len) From tcp "
            "Group by time/60 as tb")
        estimate = estimate_plan_cost(plan, functions)
        (lfta,) = estimate.lfta_stages
        assert "hash_update" in lfta.detail
        assert "combine" in estimate.hfta_stage.detail

    def test_describe_readable(self, functions, compile_plan):
        _, plan, _ = compile_plan(
            "DEFINE query_name q; Select tb, count(*) From tcp "
            "Group by time/60 as tb")
        text = estimate_plan_cost(plan, functions).describe()
        assert "ops/packet" in text
        assert "ops/tuple" in text

    def test_cheap_filter_is_sub_microsecond(self, functions, compile_plan):
        """Sanity against the Section 4 cost model: an LFTA port filter
        is a fraction of a microsecond on the modeled host, far below
        the 6.2 us interrupt cost."""
        _, plan, _ = compile_plan(
            "DEFINE query_name q; Select time From tcp Where destPort = 80")
        estimate = estimate_plan_cost(plan, functions)
        assert estimate.lfta_us_per_packet < 1.0
