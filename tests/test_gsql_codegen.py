"""Tests for GSQL code generation (compiled and interpreted modes)."""

import pytest

from repro.gsql.codegen import CodegenError, DiscardTuple, ExprCompiler
from repro.gsql.functions import builtin_functions
from repro.gsql.parser import parse_query
from repro.gsql.schema import builtin_registry
from repro.gsql.semantic import analyze


@pytest.fixture(scope="module")
def registry():
    return builtin_registry()


@pytest.fixture(scope="module")
def functions():
    return builtin_functions()


def compile_query(text, registry, functions, params=None, mode="compiled"):
    analyzed = analyze(parse_query(text), registry, functions)
    return analyzed, ExprCompiler(analyzed, functions, params, mode)


def tcp_row(registry, **overrides):
    """A full-width tcp-protocol row with given field values."""
    tcp = registry.get("tcp")
    row = [0] * len(tcp)
    row[tcp.index_of("data")] = b""
    for name, value in overrides.items():
        row[tcp.index_of(name)] = value
    return tuple(row)


@pytest.fixture(params=["compiled", "interpreted"])
def mode(request):
    return request.param


class TestPredicates:
    def test_simple_conjunction(self, registry, functions, mode):
        analyzed, compiler = compile_query(
            "Select time From tcp Where destPort = 80 and len > 100",
            registry, functions, mode=mode)
        predicate = compiler.predicate_fn(analyzed.where_conjuncts)
        assert predicate(tcp_row(registry, destPort=80, len=200))
        assert not predicate(tcp_row(registry, destPort=81, len=200))
        assert not predicate(tcp_row(registry, destPort=80, len=50))

    def test_empty_predicate_always_true(self, registry, functions, mode):
        analyzed, compiler = compile_query("Select time From tcp",
                                           registry, functions, mode=mode)
        assert compiler.predicate_fn([])(tcp_row(registry))

    def test_or_and_not(self, registry, functions, mode):
        analyzed, compiler = compile_query(
            "Select time From tcp Where destPort = 80 or not (len > 10)",
            registry, functions, mode=mode)
        predicate = compiler.predicate_fn(analyzed.where_conjuncts)
        assert predicate(tcp_row(registry, destPort=80, len=100))
        assert predicate(tcp_row(registry, destPort=5, len=5))
        assert not predicate(tcp_row(registry, destPort=5, len=100))


class TestProjection:
    def test_tuple_builder(self, registry, functions, mode):
        analyzed, compiler = compile_query(
            "Select destIP, time/60, len * 8 From tcp",
            registry, functions, mode=mode)
        build = compiler.tuple_fn([c.expr for c in analyzed.output_columns])
        row = tcp_row(registry, destIP=42, time=125, len=10)
        assert build(row) == (42, 2, 80)

    def test_integer_vs_float_division(self, registry, functions, mode):
        analyzed, compiler = compile_query(
            "Select time/60, timestamp/60 From tcp",
            registry, functions, mode=mode)
        build = compiler.tuple_fn([c.expr for c in analyzed.output_columns])
        row = tcp_row(registry, time=90, timestamp=90.0)
        time_bucket, timestamp_bucket = build(row)
        assert time_bucket == 1  # integer division
        assert timestamp_bucket == pytest.approx(1.5)  # float division


class TestFunctions:
    def test_scalar_function(self, registry, functions, mode):
        analyzed, compiler = compile_query(
            "Select getsubnet(destIP, 8) From tcp",
            registry, functions, mode=mode)
        build = compiler.tuple_fn([c.expr for c in analyzed.output_columns])
        (subnet,) = build(tcp_row(registry, destIP=0x0A0B0C0D))
        assert subnet == 0x0A000000

    def test_partial_function_discards(self, registry, functions, mode):
        table = "10.0.0.0/8 7018"
        analyzed, compiler = compile_query(
            f"Select getlpmid(destIP, '{table}') From tcp",
            registry, functions, mode=mode)
        build = compiler.tuple_fn([c.expr for c in analyzed.output_columns])
        assert build(tcp_row(registry, destIP=0x0A000001)) == (7018,)
        # no matching prefix -> "the tuple being processed is discarded"
        assert build(tcp_row(registry, destIP=0x0B000001)) is None

    def test_partial_function_in_predicate_is_false(self, registry, functions, mode):
        analyzed, compiler = compile_query(
            "Select time From tcp Where getlpmid(destIP, '10.0.0.0/8 1') = 1",
            registry, functions, mode=mode)
        predicate = compiler.predicate_fn(analyzed.where_conjuncts)
        assert predicate(tcp_row(registry, destIP=0x0A000001))
        assert not predicate(tcp_row(registry, destIP=0x0B000001))

    def test_regex_handle_precompiled(self, registry, functions, mode):
        analyzed, compiler = compile_query(
            r"Select time From tcp Where str_match_regex(data, '^[^\n]*HTTP/1.')",
            registry, functions, mode=mode)
        predicate = compiler.predicate_fn(analyzed.where_conjuncts)
        assert predicate(tcp_row(registry, data=b"GET / HTTP/1.1\r\n"))
        assert not predicate(tcp_row(registry, data=b"\x00\x01binary"))
        assert not predicate(tcp_row(registry, data=b"junk\nGET HTTP/1.1"))


class TestParams:
    def test_param_lookup(self, registry, functions, mode):
        analyzed, compiler = compile_query(
            "Select time From tcp Where destPort = $port",
            registry, functions, params={"port": 80}, mode=mode)
        predicate = compiler.predicate_fn(analyzed.where_conjuncts)
        assert predicate(tcp_row(registry, destPort=80))
        assert not predicate(tcp_row(registry, destPort=443))

    def test_param_change_on_the_fly(self, registry, functions, mode):
        analyzed, compiler = compile_query(
            "Select time From tcp Where destPort = $port",
            registry, functions, params={"port": 80}, mode=mode)
        predicate = compiler.predicate_fn(analyzed.where_conjuncts)
        assert predicate(tcp_row(registry, destPort=80))
        compiler.params["port"] = 443
        assert predicate(tcp_row(registry, destPort=443))
        assert not predicate(tcp_row(registry, destPort=80))

    def test_missing_param_rejected(self, registry, functions):
        with pytest.raises(CodegenError):
            compile_query("Select time From tcp Where destPort = $port",
                          registry, functions, params={})

    def test_handle_via_param(self, registry, functions, mode):
        analyzed, compiler = compile_query(
            "Select getlpmid(destIP, $tbl) From tcp",
            registry, functions,
            params={"tbl": "10.0.0.0/8 7018"}, mode=mode)
        build = compiler.tuple_fn([c.expr for c in analyzed.output_columns])
        assert build(tcp_row(registry, destIP=0x0A000001)) == (7018,)


class TestPostAggregation:
    def test_post_select_and_having(self, registry, functions, mode):
        analyzed, compiler = compile_query(
            "Select tb, count(*), sum(len) / count(*) From tcp "
            "Group by time/60 as tb Having count(*) > 2",
            registry, functions, mode=mode)
        build = compiler.post_tuple_fn(
            [c.expr for c in analyzed.output_columns])
        having = compiler.post_predicate_fn(analyzed.having)
        key, aggs = (7,), (10, 500)
        assert build(key, aggs) == (7, 10, 50)
        assert having(key, aggs)
        assert not having((7,), (1, 500))

    def test_no_having_always_true(self, registry, functions, mode):
        analyzed, compiler = compile_query(
            "Select tb, count(*) From tcp Group by time/60 as tb",
            registry, functions, mode=mode)
        assert compiler.post_predicate_fn(None)((1,), (2,))


class TestCompiledSpecifics:
    def test_generated_source_retained(self, registry, functions):
        analyzed, compiler = compile_query(
            "Select time From tcp Where destPort = 80",
            registry, functions)
        compiler.predicate_fn(analyzed.where_conjuncts)
        assert any("def _g" in source for source in compiler.generated_sources)
        assert any("== 80" in source for source in compiler.generated_sources)

    def test_modes_agree(self, registry, functions):
        """Compiled and interpreted evaluation are observationally equal."""
        text = ("Select destIP, time/60, getsubnet(srcIP, 16) From tcp "
                "Where destPort = 80 and len >= 40")
        rows = [
            tcp_row(registry, destIP=i * 7, srcIP=i * 131071, time=i * 30,
                    destPort=80 if i % 2 else 443, len=30 + i)
            for i in range(50)
        ]
        outputs = {}
        for mode in ("compiled", "interpreted"):
            analyzed, compiler = compile_query(text, registry, functions,
                                               mode=mode)
            predicate = compiler.predicate_fn(analyzed.where_conjuncts)
            build = compiler.tuple_fn([c.expr for c in analyzed.output_columns])
            outputs[mode] = [build(r) for r in rows if predicate(r)]
        assert outputs["compiled"] == outputs["interpreted"]

    def test_unknown_mode_rejected(self, registry, functions):
        with pytest.raises(CodegenError):
            compile_query("Select time From tcp", registry, functions,
                          mode="jit")
