"""Tests for the longest-prefix-match trie behind getlpmid."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.lpm import PrefixTable, parse_prefix
from repro.net.packet import int_to_ip, ip_to_int


class TestParsePrefix:
    def test_masks_host_bits(self):
        network, length = parse_prefix("10.1.2.3/16")
        assert length == 16
        assert network == ip_to_int("10.1.0.0")

    def test_bare_address_is_slash_32(self):
        network, length = parse_prefix("1.2.3.4")
        assert (network, length) == (ip_to_int("1.2.3.4"), 32)

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            parse_prefix("10.0.0.0/33")


class TestLookup:
    def test_longest_match_wins(self):
        table = PrefixTable()
        table.add("10.0.0.0/8", "big")
        table.add("10.1.0.0/16", "medium")
        table.add("10.1.2.0/24", "small")
        assert table.lookup("10.1.2.3") == "small"
        assert table.lookup("10.1.9.9") == "medium"
        assert table.lookup("10.9.9.9") == "big"
        assert table.lookup("11.0.0.1") is None

    def test_default_route(self):
        table = PrefixTable()
        table.add("0.0.0.0/0", "default")
        table.add("192.168.0.0/16", "private")
        assert table.lookup("8.8.8.8") == "default"
        assert table.lookup("192.168.3.4") == "private"

    def test_exact_host_route(self):
        table = PrefixTable()
        table.add("1.2.3.4/32", 42)
        assert table.lookup("1.2.3.4") == 42
        assert table.lookup("1.2.3.5") is None

    def test_replacement(self):
        table = PrefixTable()
        table.add("10.0.0.0/8", 1)
        table.add("10.0.0.0/8", 2)
        assert len(table) == 1
        assert table.lookup("10.5.5.5") == 2

    def test_contains(self):
        table = PrefixTable()
        table.add("10.0.0.0/8", 1)
        assert "10.1.1.1" in table
        assert "11.1.1.1" not in table

    def test_integer_addresses_accepted(self):
        table = PrefixTable()
        table.add("10.0.0.0/8", 7)
        assert table.lookup(ip_to_int("10.200.1.1")) == 7


class TestFromLines:
    def test_parses_comments_and_values(self):
        table = PrefixTable.from_lines([
            "# AT&T peers",
            "10.0.0.0/8   7018",
            "12.0.0.0/8   7019  # another",
            "",
            "192.168.0.0/16 lab",
        ])
        assert table.lookup("10.1.1.1") == 7018
        assert table.lookup("12.0.0.1") == 7019
        assert table.lookup("192.168.1.1") == "lab"

    def test_rejects_bad_lines(self):
        with pytest.raises(ValueError):
            PrefixTable.from_lines(["10.0.0.0/8"])

    def test_from_file(self, tmp_path):
        path = tmp_path / "peers.tbl"
        path.write_text("10.0.0.0/8 1\n12.0.0.0/8 2\n")
        table = PrefixTable.from_file(str(path))
        assert table.lookup("12.1.2.3") == 2


def _brute_force(prefixes, address):
    """Reference LPM: scan all prefixes, keep the longest match."""
    best = None
    best_len = -1
    for (network, length), value in prefixes:
        if length == 0:
            mask = 0
        else:
            mask = ~((1 << (32 - length)) - 1) & 0xFFFFFFFF
        if (address & mask) == network and length > best_len:
            best, best_len = value, length
    return best


@st.composite
def _prefix_sets(draw):
    count = draw(st.integers(min_value=1, max_value=30))
    prefixes = []
    for index in range(count):
        length = draw(st.integers(min_value=0, max_value=32))
        raw = draw(st.integers(min_value=0, max_value=0xFFFFFFFF))
        if length == 0:
            network = 0
        else:
            network = raw & (~((1 << (32 - length)) - 1) & 0xFFFFFFFF)
        prefixes.append(((network, length), index))
    return prefixes


class TestPropertyVsBruteForce:
    @given(_prefix_sets(), st.lists(st.integers(0, 0xFFFFFFFF), min_size=1,
                                    max_size=20))
    def test_matches_reference(self, prefixes, addresses):
        table = PrefixTable()
        deduped = {}
        for prefix, value in prefixes:
            deduped[prefix] = value  # replacement semantics
        for prefix, value in deduped.items():
            table.add(prefix, value)
        reference_set = list(deduped.items())
        for address in addresses:
            assert table.lookup(address) == _brute_force(reference_set, address)
