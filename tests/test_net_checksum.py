"""Tests for the Internet checksum (RFC 1071)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.net.checksum import internet_checksum, pseudo_header, verify_checksum


class TestInternetChecksum:
    def test_known_vector(self):
        # Classic RFC 1071 example: 0x0001 0xf203 0xf4f5 0xf6f7 -> ~0xddf2
        data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
        assert internet_checksum(data) == (~0xDDF2) & 0xFFFF

    def test_zero_data(self):
        assert internet_checksum(b"\x00\x00") == 0xFFFF

    def test_odd_length_padded(self):
        assert internet_checksum(b"\x01") == internet_checksum(b"\x01\x00")

    def test_verify_with_embedded_checksum(self):
        data = bytearray(b"\x45\x00\x00\x28\xab\xcd\x00\x00\x40\x06\x00\x00"
                         b"\x0a\x00\x00\x01\x0a\x00\x00\x02")
        checksum = internet_checksum(bytes(data))
        data[10] = checksum >> 8
        data[11] = checksum & 0xFF
        assert verify_checksum(bytes(data))

    @given(st.binary(min_size=0, max_size=200))
    def test_checksum_fits_sixteen_bits(self, data):
        assert 0 <= internet_checksum(data) <= 0xFFFF

    @given(st.binary(min_size=2, max_size=128).filter(lambda b: len(b) % 2 == 0))
    def test_inserting_checksum_verifies(self, data):
        checksum = internet_checksum(data)
        patched = data + bytes([checksum >> 8, checksum & 0xFF])
        assert verify_checksum(patched)


class TestPseudoHeader:
    def test_layout(self):
        pseudo = pseudo_header(0x0A000001, 0x0A000002, 6, 20)
        assert len(pseudo) == 12
        assert pseudo[:4] == bytes([10, 0, 0, 1])
        assert pseudo[4:8] == bytes([10, 0, 0, 2])
        assert pseudo[8] == 0
        assert pseudo[9] == 6
        assert int.from_bytes(pseudo[10:12], "big") == 20
