"""Tests for channels and control tokens."""

import pytest

from repro.core.channels import Channel
from repro.core.heartbeat import FLUSH, FlushToken, Punctuation


class TestChannel:
    def test_fifo_order(self):
        channel = Channel()
        for i in range(5):
            channel.push((i,))
        assert [channel.pop() for _ in range(5)] == [(i,) for i in range(5)]

    def test_capacity_drops_newest_tuples(self):
        channel = Channel(capacity=2)
        assert channel.push((1,))
        assert channel.push((2,))
        assert not channel.push((3,))
        assert channel.stats.dropped == 1
        assert len(channel) == 2

    def test_control_tokens_never_dropped(self):
        channel = Channel(capacity=1)
        channel.push((1,))
        assert channel.push(Punctuation({0: 5}))
        assert channel.push(FLUSH)
        assert len(channel) == 3

    def test_stats(self):
        channel = Channel()
        channel.push((1,))
        channel.push((2,))
        channel.pop()
        assert channel.stats.pushed == 2
        assert channel.stats.popped == 1
        assert channel.stats.max_depth == 2

    def test_drain(self):
        channel = Channel()
        channel.push((1,))
        channel.push((2,))
        assert channel.drain() == [(1,), (2,)]
        assert len(channel) == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Channel(capacity=0)

    def test_bool_and_iter(self):
        channel = Channel()
        assert not channel
        channel.push((1,))
        assert channel
        assert list(channel) == [(1,)]


class TestOverflowAccounting:
    """Bounded buffers under bursty input: drop data, never control."""

    def test_burst_drops_data_but_keeps_all_control_tokens(self):
        channel = Channel(capacity=4)
        survivors = []
        # A bursty interleaving: tuples overflow, tokens always land.
        for i in range(10):
            if channel.push((i,)):
                survivors.append(i)
            if i % 3 == 2:
                assert channel.push(Punctuation({0: float(i)}))
        assert channel.push(FLUSH)
        assert channel.stats.dropped == 10 - len(survivors)
        assert channel.stats.control_pushed == 4  # 3 punctuation + flush
        # Every control token is still in the queue, in order.
        items = channel.drain()
        controls = [x for x in items if not isinstance(x, tuple)]
        assert len(controls) == 4
        assert isinstance(controls[-1], FlushToken)
        assert [x[0] for x in items if isinstance(x, tuple)] == survivors

    def test_max_depth_bounded_by_capacity_plus_control(self):
        channel = Channel(capacity=2)
        for i in range(20):
            channel.push((i,))
        channel.push(Punctuation({0: 1.0}))
        channel.push(FLUSH)
        assert channel.stats.max_depth <= 2 + channel.stats.control_pushed
        assert channel.stats.dropped == 18

    def test_drops_counted_but_not_pushed(self):
        channel = Channel(capacity=1)
        channel.push((1,))
        channel.push((2,))
        channel.push((3,))
        assert channel.stats.pushed == 1
        assert channel.stats.dropped == 2
        assert channel.stats.control_pushed == 0


class TestBatchTransport:
    """push_many/pop_many must match a per-item push/pop sequence."""

    def test_push_many_unbounded_counts_like_push(self):
        batched, scalar = Channel(), Channel()
        items = [(0,), Punctuation({0: 1.0}), (1,), (2,), FLUSH]
        assert batched.push_many(items) == 5
        for item in items:
            scalar.push(item)
        assert batched.stats == scalar.stats
        assert batched.drain() == scalar.drain()

    def test_push_many_bounded_drops_per_item(self):
        batched, scalar = Channel(capacity=3), Channel(capacity=3)
        items = [(i,) for i in range(6)]
        accepted = batched.push_many(items)
        scalar_accepted = sum(scalar.push(item) for item in items)
        assert accepted == scalar_accepted == 3
        assert batched.stats == scalar.stats
        assert batched.stats.dropped == 3

    def test_push_many_straddling_block_keeps_control_tokens(self):
        channel = Channel(capacity=2)
        items = [(0,), (1,), (2,), Punctuation({0: 1.0}), (3,), FLUSH]
        assert channel.push_many(items) == 4  # 2 tuples + 2 control
        assert channel.stats.dropped == 2
        assert channel.stats.control_pushed == 2
        drained = channel.drain()
        assert [x for x in drained if isinstance(x, tuple)] == [(0,), (1,)]
        assert isinstance(drained[-1], FlushToken)

    def test_push_many_respects_fault_capacity(self):
        channel = Channel(capacity=10)
        channel.fault_capacity = 2
        assert channel.push_many([(i,) for i in range(5)]) == 2
        assert channel.stats.dropped == 3

    def test_push_many_max_depth_matches_scalar_high_water(self):
        batched, scalar = Channel(), Channel()
        for block in ([(0,), (1,)], [(2,)], [(3,), (4,), (5,)]):
            batched.push_many(block)
            for item in block:
                scalar.push(item)
        batched.pop_many()
        for _ in range(6):
            scalar.pop()
        assert batched.stats == scalar.stats

    def test_push_many_accepts_a_generator(self):
        channel = Channel()
        assert channel.push_many((i,) for i in range(4)) == 4
        assert channel.stats.pushed == 4
        assert channel.stats.max_depth == 4

    def test_pop_many_all_and_limited(self):
        channel = Channel()
        channel.push_many([(i,) for i in range(5)])
        assert channel.pop_many(2) == [(0,), (1,)]
        assert channel.stats.popped == 2
        assert channel.pop_many() == [(2,), (3,), (4,)]
        assert channel.stats.popped == 5
        assert not channel

    def test_pop_many_limit_beyond_depth(self):
        channel = Channel()
        channel.push((1,))
        assert channel.pop_many(10) == [(1,)]
        assert channel.pop_many() == []
        assert channel.stats.popped == 1

    def test_pop_many_preserves_token_positions(self):
        channel = Channel()
        channel.push_many([(0,), Punctuation({0: 1.0}), (1,), FLUSH])
        items = channel.pop_many()
        assert isinstance(items[1], Punctuation)
        assert isinstance(items[3], FlushToken)
        assert [x for x in items if isinstance(x, tuple)] == [(0,), (1,)]


class TestPunctuation:
    def test_bound_lookup(self):
        punct = Punctuation({0: 5.0, 3: 9.0})
        assert punct.bound_for(0) == 5.0
        assert punct.bound_for(1) is None

    def test_merged_with_takes_max(self):
        a = Punctuation({0: 5.0, 1: 2.0})
        b = Punctuation({0: 3.0, 2: 7.0})
        merged = a.merged_with(b)
        assert merged.bounds == {0: 5.0, 1: 2.0, 2: 7.0}

    def test_truthiness(self):
        assert not Punctuation({})
        assert Punctuation({0: 1})


class TestFlushToken:
    def test_singleton(self):
        assert FlushToken() is FLUSH
        assert repr(FLUSH) == "FLUSH"
