"""Tests for channels and control tokens."""

import pytest

from repro.core.channels import Channel
from repro.core.heartbeat import FLUSH, FlushToken, Punctuation


class TestChannel:
    def test_fifo_order(self):
        channel = Channel()
        for i in range(5):
            channel.push((i,))
        assert [channel.pop() for _ in range(5)] == [(i,) for i in range(5)]

    def test_capacity_drops_newest_tuples(self):
        channel = Channel(capacity=2)
        assert channel.push((1,))
        assert channel.push((2,))
        assert not channel.push((3,))
        assert channel.stats.dropped == 1
        assert len(channel) == 2

    def test_control_tokens_never_dropped(self):
        channel = Channel(capacity=1)
        channel.push((1,))
        assert channel.push(Punctuation({0: 5}))
        assert channel.push(FLUSH)
        assert len(channel) == 3

    def test_stats(self):
        channel = Channel()
        channel.push((1,))
        channel.push((2,))
        channel.pop()
        assert channel.stats.pushed == 2
        assert channel.stats.popped == 1
        assert channel.stats.max_depth == 2

    def test_drain(self):
        channel = Channel()
        channel.push((1,))
        channel.push((2,))
        assert channel.drain() == [(1,), (2,)]
        assert len(channel) == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Channel(capacity=0)

    def test_bool_and_iter(self):
        channel = Channel()
        assert not channel
        channel.push((1,))
        assert channel
        assert list(channel) == [(1,)]


class TestPunctuation:
    def test_bound_lookup(self):
        punct = Punctuation({0: 5.0, 3: 9.0})
        assert punct.bound_for(0) == 5.0
        assert punct.bound_for(1) is None

    def test_merged_with_takes_max(self):
        a = Punctuation({0: 5.0, 1: 2.0})
        b = Punctuation({0: 3.0, 2: 7.0})
        merged = a.merged_with(b)
        assert merged.bounds == {0: 5.0, 1: 2.0, 2: 7.0}

    def test_truthiness(self):
        assert not Punctuation({})
        assert Punctuation({0: 1})


class TestFlushToken:
    def test_singleton(self):
        assert FlushToken() is FLUSH
        assert repr(FLUSH) == "FLUSH"
