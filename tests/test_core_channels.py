"""Tests for channels and control tokens."""

import pytest

from repro.core.channels import Channel
from repro.core.heartbeat import FLUSH, FlushToken, Punctuation


class TestChannel:
    def test_fifo_order(self):
        channel = Channel()
        for i in range(5):
            channel.push((i,))
        assert [channel.pop() for _ in range(5)] == [(i,) for i in range(5)]

    def test_capacity_drops_newest_tuples(self):
        channel = Channel(capacity=2)
        assert channel.push((1,))
        assert channel.push((2,))
        assert not channel.push((3,))
        assert channel.stats.dropped == 1
        assert len(channel) == 2

    def test_control_tokens_never_dropped(self):
        channel = Channel(capacity=1)
        channel.push((1,))
        assert channel.push(Punctuation({0: 5}))
        assert channel.push(FLUSH)
        assert len(channel) == 3

    def test_stats(self):
        channel = Channel()
        channel.push((1,))
        channel.push((2,))
        channel.pop()
        assert channel.stats.pushed == 2
        assert channel.stats.popped == 1
        assert channel.stats.max_depth == 2

    def test_drain(self):
        channel = Channel()
        channel.push((1,))
        channel.push((2,))
        assert channel.drain() == [(1,), (2,)]
        assert len(channel) == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Channel(capacity=0)

    def test_bool_and_iter(self):
        channel = Channel()
        assert not channel
        channel.push((1,))
        assert channel
        assert list(channel) == [(1,)]


class TestOverflowAccounting:
    """Bounded buffers under bursty input: drop data, never control."""

    def test_burst_drops_data_but_keeps_all_control_tokens(self):
        channel = Channel(capacity=4)
        survivors = []
        # A bursty interleaving: tuples overflow, tokens always land.
        for i in range(10):
            if channel.push((i,)):
                survivors.append(i)
            if i % 3 == 2:
                assert channel.push(Punctuation({0: float(i)}))
        assert channel.push(FLUSH)
        assert channel.stats.dropped == 10 - len(survivors)
        assert channel.stats.control_pushed == 4  # 3 punctuation + flush
        # Every control token is still in the queue, in order.
        items = channel.drain()
        controls = [x for x in items if not isinstance(x, tuple)]
        assert len(controls) == 4
        assert isinstance(controls[-1], FlushToken)
        assert [x[0] for x in items if isinstance(x, tuple)] == survivors

    def test_max_depth_bounded_by_capacity_plus_control(self):
        channel = Channel(capacity=2)
        for i in range(20):
            channel.push((i,))
        channel.push(Punctuation({0: 1.0}))
        channel.push(FLUSH)
        assert channel.stats.max_depth <= 2 + channel.stats.control_pushed
        assert channel.stats.dropped == 18

    def test_drops_counted_but_not_pushed(self):
        channel = Channel(capacity=1)
        channel.push((1,))
        channel.push((2,))
        channel.push((3,))
        assert channel.stats.pushed == 1
        assert channel.stats.dropped == 2
        assert channel.stats.control_pushed == 0


class TestBatchTransport:
    """push_many/pop_many must match a per-item push/pop sequence."""

    def test_push_many_unbounded_counts_like_push(self):
        batched, scalar = Channel(), Channel()
        items = [(0,), Punctuation({0: 1.0}), (1,), (2,), FLUSH]
        assert batched.push_many(items) == 5
        for item in items:
            scalar.push(item)
        assert batched.stats == scalar.stats
        assert batched.drain() == scalar.drain()

    def test_push_many_bounded_drops_per_item(self):
        batched, scalar = Channel(capacity=3), Channel(capacity=3)
        items = [(i,) for i in range(6)]
        accepted = batched.push_many(items)
        scalar_accepted = sum(scalar.push(item) for item in items)
        assert accepted == scalar_accepted == 3
        assert batched.stats == scalar.stats
        assert batched.stats.dropped == 3

    def test_push_many_straddling_block_keeps_control_tokens(self):
        channel = Channel(capacity=2)
        items = [(0,), (1,), (2,), Punctuation({0: 1.0}), (3,), FLUSH]
        assert channel.push_many(items) == 4  # 2 tuples + 2 control
        assert channel.stats.dropped == 2
        assert channel.stats.control_pushed == 2
        drained = channel.drain()
        assert [x for x in drained if isinstance(x, tuple)] == [(0,), (1,)]
        assert isinstance(drained[-1], FlushToken)

    def test_push_many_respects_fault_capacity(self):
        channel = Channel(capacity=10)
        channel.fault_capacity = 2
        assert channel.push_many([(i,) for i in range(5)]) == 2
        assert channel.stats.dropped == 3

    def test_push_many_max_depth_matches_scalar_high_water(self):
        batched, scalar = Channel(), Channel()
        for block in ([(0,), (1,)], [(2,)], [(3,), (4,), (5,)]):
            batched.push_many(block)
            for item in block:
                scalar.push(item)
        batched.pop_many()
        for _ in range(6):
            scalar.pop()
        assert batched.stats == scalar.stats

    def test_push_many_accepts_a_generator(self):
        channel = Channel()
        assert channel.push_many((i,) for i in range(4)) == 4
        assert channel.stats.pushed == 4
        assert channel.stats.max_depth == 4

    def test_pop_many_all_and_limited(self):
        channel = Channel()
        channel.push_many([(i,) for i in range(5)])
        assert channel.pop_many(2) == [(0,), (1,)]
        assert channel.stats.popped == 2
        assert channel.pop_many() == [(2,), (3,), (4,)]
        assert channel.stats.popped == 5
        assert not channel

    def test_pop_many_limit_beyond_depth(self):
        channel = Channel()
        channel.push((1,))
        assert channel.pop_many(10) == [(1,)]
        assert channel.pop_many() == []
        assert channel.stats.popped == 1

    def test_pop_many_preserves_token_positions(self):
        channel = Channel()
        channel.push_many([(0,), Punctuation({0: 1.0}), (1,), FLUSH])
        items = channel.pop_many()
        assert isinstance(items[1], Punctuation)
        assert isinstance(items[3], FlushToken)
        assert [x for x in items if isinstance(x, tuple)] == [(0,), (1,)]


class TestPushManyCapacityReread:
    """push_many must observe capacity changes mid-block, like push.

    Pin for the bug where push_many read ``_effective_capacity()``
    once per block: a fault injector installing ``fault_capacity``
    from a generator's body (i.e. between items of the same block)
    was ignored for the rest of the block, so the batched path kept
    items a per-push sequence would have dropped.
    """

    @staticmethod
    def _faulting_items(channel, items, trip_at, bound):
        for position, item in enumerate(items):
            if position == trip_at:
                channel.fault_capacity = bound
            yield item

    def test_fault_capacity_installed_mid_block_drops_like_push(self):
        items = [(i,) for i in range(8)]
        batched = Channel()
        batched.push_many(self._faulting_items(batched, items, 4, 2))
        scalar = Channel()
        for position, item in enumerate(items):
            if position == 4:
                scalar.fault_capacity = 2
            scalar.push(item)
        assert batched.stats == scalar.stats
        assert batched.drain() == scalar.drain()
        assert batched.stats.dropped == 4  # items 4..7 hit the new bound

    def test_fault_capacity_lifted_mid_block_accepts_like_push(self):
        items = [(i,) for i in range(8)]
        batched = Channel(capacity=100)
        batched.fault_capacity = 2
        batched.push_many(self._faulting_items(batched, items, 5, None))
        scalar = Channel(capacity=100)
        scalar.fault_capacity = 2
        for position, item in enumerate(items):
            if position == 5:
                scalar.fault_capacity = None
            scalar.push(item)
        assert batched.stats == scalar.stats
        assert batched.drain() == scalar.drain()

    def test_control_tokens_still_pass_a_mid_block_bound(self):
        items = [(0,), (1,), Punctuation({0: 1.0}), (2,), FLUSH]
        batched = Channel()
        batched.push_many(self._faulting_items(batched, items, 1, 1))
        scalar = Channel()
        for position, item in enumerate(items):
            if position == 1:
                scalar.fault_capacity = 1
            scalar.push(item)
        assert batched.stats == scalar.stats
        assert [type(x) for x in batched.drain()] == [type(x) for x in scalar.drain()]


class TestBatchScalarEquivalence:
    """Property-style sweep: push_many/pop_many == push/pop replay.

    Randomized (seeded) mixed blocks of data tuples and control
    tokens, cut into blocks of varying size, pushed through bounded
    and unbounded channels as lists and as generators; the batched
    channel must end with identical contents and identical stats
    (pushed/popped/dropped/max_depth/control_pushed) to a per-item
    replay of the same sequence.
    """

    @staticmethod
    def _mixed_sequence(rng, length):
        sequence = []
        for i in range(length):
            roll = rng.random()
            if roll < 0.70:
                sequence.append((i, rng.randrange(100)))
            elif roll < 0.90:
                sequence.append(Punctuation({0: float(i)}))
            else:
                sequence.append(FLUSH)
        return sequence

    @staticmethod
    def _blocks(rng, sequence):
        blocks = []
        position = 0
        while position < len(sequence):
            size = rng.randrange(1, 7)
            blocks.append(sequence[position:position + size])
            position += size
        return blocks

    @pytest.mark.parametrize("capacity", [None, 1, 3, 5, 8])
    @pytest.mark.parametrize("as_generator", [False, True])
    def test_push_pop_many_matches_scalar_replay(self, capacity, as_generator):
        import random

        rng = random.Random(1337 + (capacity or 0))
        for trial in range(20):
            sequence = self._mixed_sequence(rng, rng.randrange(0, 30))
            blocks = self._blocks(rng, sequence)
            pops = [rng.choice([None, 1, 2, 4]) for _ in blocks]

            batched = Channel(capacity=capacity)
            scalar = Channel(capacity=capacity)
            batched_out = []
            scalar_out = []
            for block, limit in zip(blocks, pops):
                source = iter(block) if as_generator else block
                batched.push_many(source)
                for item in block:
                    scalar.push(item)
                batched_out.extend(batched.pop_many(limit))
                budget = limit if limit is not None else len(scalar)
                while budget and scalar:
                    scalar_out.append(scalar.pop())
                    budget -= 1
            batched_out.extend(batched.pop_many())
            while scalar:
                scalar_out.append(scalar.pop())

            assert batched.stats == scalar.stats
            assert batched_out == scalar_out

    def test_capacity_boundary_exact(self):
        """Blocks that land exactly on the bound drop the same suffix."""
        for capacity in (1, 2, 3, 4):
            for block_len in range(0, 9):
                batched = Channel(capacity=capacity)
                scalar = Channel(capacity=capacity)
                block = [(i,) for i in range(block_len)]
                accepted = batched.push_many(block)
                scalar_accepted = sum(scalar.push(item) for item in block)
                assert accepted == scalar_accepted
                assert batched.stats == scalar.stats
                assert batched.drain() == scalar.drain()


class TestPunctuation:
    def test_bound_lookup(self):
        punct = Punctuation({0: 5.0, 3: 9.0})
        assert punct.bound_for(0) == 5.0
        assert punct.bound_for(1) is None

    def test_merged_with_takes_max(self):
        a = Punctuation({0: 5.0, 1: 2.0})
        b = Punctuation({0: 3.0, 2: 7.0})
        merged = a.merged_with(b)
        assert merged.bounds == {0: 5.0, 1: 2.0, 2: 7.0}

    def test_truthiness(self):
        assert not Punctuation({})
        assert Punctuation({0: 1})


class TestFlushToken:
    def test_singleton(self):
        assert FlushToken() is FLUSH
        assert repr(FLUSH) == "FLUSH"
