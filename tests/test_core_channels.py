"""Tests for channels and control tokens."""

import pytest

from repro.core.channels import Channel
from repro.core.heartbeat import FLUSH, FlushToken, Punctuation


class TestChannel:
    def test_fifo_order(self):
        channel = Channel()
        for i in range(5):
            channel.push((i,))
        assert [channel.pop() for _ in range(5)] == [(i,) for i in range(5)]

    def test_capacity_drops_newest_tuples(self):
        channel = Channel(capacity=2)
        assert channel.push((1,))
        assert channel.push((2,))
        assert not channel.push((3,))
        assert channel.stats.dropped == 1
        assert len(channel) == 2

    def test_control_tokens_never_dropped(self):
        channel = Channel(capacity=1)
        channel.push((1,))
        assert channel.push(Punctuation({0: 5}))
        assert channel.push(FLUSH)
        assert len(channel) == 3

    def test_stats(self):
        channel = Channel()
        channel.push((1,))
        channel.push((2,))
        channel.pop()
        assert channel.stats.pushed == 2
        assert channel.stats.popped == 1
        assert channel.stats.max_depth == 2

    def test_drain(self):
        channel = Channel()
        channel.push((1,))
        channel.push((2,))
        assert channel.drain() == [(1,), (2,)]
        assert len(channel) == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Channel(capacity=0)

    def test_bool_and_iter(self):
        channel = Channel()
        assert not channel
        channel.push((1,))
        assert channel
        assert list(channel) == [(1,)]


class TestOverflowAccounting:
    """Bounded buffers under bursty input: drop data, never control."""

    def test_burst_drops_data_but_keeps_all_control_tokens(self):
        channel = Channel(capacity=4)
        survivors = []
        # A bursty interleaving: tuples overflow, tokens always land.
        for i in range(10):
            if channel.push((i,)):
                survivors.append(i)
            if i % 3 == 2:
                assert channel.push(Punctuation({0: float(i)}))
        assert channel.push(FLUSH)
        assert channel.stats.dropped == 10 - len(survivors)
        assert channel.stats.control_pushed == 4  # 3 punctuation + flush
        # Every control token is still in the queue, in order.
        items = channel.drain()
        controls = [x for x in items if not isinstance(x, tuple)]
        assert len(controls) == 4
        assert isinstance(controls[-1], FlushToken)
        assert [x[0] for x in items if isinstance(x, tuple)] == survivors

    def test_max_depth_bounded_by_capacity_plus_control(self):
        channel = Channel(capacity=2)
        for i in range(20):
            channel.push((i,))
        channel.push(Punctuation({0: 1.0}))
        channel.push(FLUSH)
        assert channel.stats.max_depth <= 2 + channel.stats.control_pushed
        assert channel.stats.dropped == 18

    def test_drops_counted_but_not_pushed(self):
        channel = Channel(capacity=1)
        channel.push((1,))
        channel.push((2,))
        channel.push((3,))
        assert channel.stats.pushed == 1
        assert channel.stats.dropped == 2
        assert channel.stats.control_pushed == 0


class TestPunctuation:
    def test_bound_lookup(self):
        punct = Punctuation({0: 5.0, 3: 9.0})
        assert punct.bound_for(0) == 5.0
        assert punct.bound_for(1) is None

    def test_merged_with_takes_max(self):
        a = Punctuation({0: 5.0, 1: 2.0})
        b = Punctuation({0: 3.0, 2: 7.0})
        merged = a.merged_with(b)
        assert merged.bounds == {0: 5.0, 1: 2.0, 2: 7.0}

    def test_truthiness(self):
        assert not Punctuation({})
        assert Punctuation({0: 1})


class TestFlushToken:
    def test_singleton(self):
        assert FlushToken() is FLUSH
        assert repr(FLUSH) == "FLUSH"
