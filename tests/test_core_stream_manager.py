"""Tests for the stream manager: registry, scheduling, heartbeats."""

import pytest

from repro.core.heartbeat import FLUSH, Punctuation
from repro.core.query_node import QueryNode
from repro.core.stream_manager import RegistryError, RuntimeSystem
from repro.gsql.ordering import Ordering
from repro.gsql.schema import Attribute, StreamSchema
from repro.gsql.types import UINT
from repro.net.packet import CapturedPacket


def schema(name="s"):
    return StreamSchema(name, [Attribute("time", UINT, Ordering.increasing())])


class Producer(QueryNode):
    """A packet consumer that emits (int(ts),) per packet."""

    def __init__(self, name):
        super().__init__(name, schema(name))
        self.heartbeats = []

    def accept_packet(self, packet):
        self.emit((int(packet.timestamp),))

    def on_heartbeat(self, stream_time):
        self.heartbeats.append(stream_time)
        self.emit_punctuation(Punctuation({0: int(stream_time)}))

    def on_tuple(self, row, input_index):
        raise TypeError


class Doubler(QueryNode):
    """An HFTA-style node: forwards 2*time."""

    def __init__(self, name):
        super().__init__(name, schema(name))

    def on_tuple(self, row, input_index):
        self.emit((row[0] * 2,))


def packet(ts, interface="eth0"):
    return CapturedPacket(timestamp=ts, data=b"x" * 60, interface=interface)


class TestRegistry:
    def test_duplicate_names_rejected(self):
        rts = RuntimeSystem()
        rts.register_node(Doubler("a"))
        with pytest.raises(RegistryError):
            rts.register_node(Doubler("a"))

    def test_unknown_node_lookup(self):
        rts = RuntimeSystem()
        with pytest.raises(RegistryError):
            rts.node("ghost")

    def test_lfta_batch_restriction(self):
        """LFTAs must be submitted before start(); HFTAs any time."""
        rts = RuntimeSystem()
        rts.register_node(Producer("p0"), packet_interface="eth0")
        rts.start()
        with pytest.raises(RegistryError):
            rts.register_node(Producer("p1"), packet_interface="eth0")
        rts.register_node(Doubler("h"))  # HFTA-only: fine
        rts.stop()
        rts.register_node(Producer("p2"), packet_interface="eth0")

    def test_feed_requires_start(self):
        rts = RuntimeSystem()
        rts.register_node(Producer("p"), packet_interface="eth0")
        with pytest.raises(RegistryError):
            rts.feed_packet(packet(0.0))


class TestDataflow:
    def test_packets_flow_through_chain(self):
        rts = RuntimeSystem(heartbeat_interval=None)
        producer = Producer("p")
        doubler = Doubler("d")
        rts.register_node(producer, packet_interface="eth0")
        rts.register_node(doubler)
        rts.connect(doubler, ["p"])
        subscription = rts.subscribe("d")
        rts.start()
        for ts in range(3):
            rts.feed_packet(packet(float(ts)))
        rts.pump()
        assert subscription.poll() == [(0,), (2,), (4,)]

    def test_interface_isolation(self):
        rts = RuntimeSystem(heartbeat_interval=None)
        p0 = Producer("p0")
        p1 = Producer("p1")
        rts.register_node(p0, packet_interface="eth0")
        rts.register_node(p1, packet_interface="eth1")
        s0 = rts.subscribe("p0")
        s1 = rts.subscribe("p1")
        rts.start()
        rts.feed_packet(packet(1.0, "eth0"))
        rts.feed_packet(packet(2.0, "eth1"))
        assert s0.poll() == [(1,)]
        assert s1.poll() == [(2,)]

    def test_feed_iterable_pumps(self):
        rts = RuntimeSystem(heartbeat_interval=None)
        producer = Producer("p")
        doubler = Doubler("d")
        rts.register_node(producer, packet_interface="eth0")
        rts.register_node(doubler)
        rts.connect(doubler, ["p"])
        subscription = rts.subscribe("d")
        rts.start()
        rts.feed(packet(float(i)) for i in range(600))
        assert len(subscription.poll()) == 600

    def test_stats_exposed(self):
        rts = RuntimeSystem(heartbeat_interval=None)
        producer = Producer("p")
        rts.register_node(producer, packet_interface="eth0")
        rts.start()
        rts.feed_packet(packet(0.0))
        stats = rts.stats()
        assert stats["p"]["tuples_out"] == 1


class TestHeartbeats:
    def test_periodic_heartbeats_in_stream_time(self):
        rts = RuntimeSystem(heartbeat_interval=1.0)
        producer = Producer("p")
        rts.register_node(producer, packet_interface="eth0")
        rts.start()
        for i in range(30):
            rts.feed_packet(packet(i * 0.25))
        # 7.25 seconds of stream time at 1 Hz -> ~8 heartbeats
        assert 6 <= len(producer.heartbeats) <= 9

    def test_heartbeats_reach_silent_interfaces(self):
        """The whole point: a quiet interface still gets time tokens."""
        rts = RuntimeSystem(heartbeat_interval=1.0)
        busy = Producer("busy")
        quiet = Producer("quiet")
        rts.register_node(busy, packet_interface="eth0")
        rts.register_node(quiet, packet_interface="eth1")
        rts.start()
        for i in range(50):
            rts.feed_packet(packet(i * 0.2, "eth0"))  # only eth0 traffic
        assert len(quiet.heartbeats) >= 8

    def test_on_demand_heartbeat(self):
        rts = RuntimeSystem(heartbeat_interval=None)
        producer = Producer("p")
        rts.register_node(producer, packet_interface="eth0")
        rts.start()
        rts.feed_packet(packet(5.0))
        rts.heartbeat_requested(producer)
        rts.pump()
        assert producer.heartbeats == [5.0]

    def test_advance_time_without_packets(self):
        rts = RuntimeSystem(heartbeat_interval=1.0)
        producer = Producer("p")
        rts.register_node(producer, packet_interface="eth0")
        rts.start()
        rts.advance_time(42.0)
        assert producer.heartbeats == [42.0]


class TestFlush:
    def test_flush_all_propagates(self):
        rts = RuntimeSystem(heartbeat_interval=None)
        producer = Producer("p")
        doubler = Doubler("d")
        rts.register_node(producer, packet_interface="eth0")
        rts.register_node(doubler)
        rts.connect(doubler, ["p"])
        subscription = rts.subscribe("d")
        rts.start()
        rts.feed_packet(packet(1.0))
        rts.flush_all()
        subscription.poll()
        assert subscription.ended
