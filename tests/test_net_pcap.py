"""Tests for the pcap capture-file reader/writer."""

import io
import struct

import pytest

from repro.net.packet import CapturedPacket
from repro.net.pcap import (
    CaptureTruncated,
    MAGIC_USEC,
    PcapError,
    PcapReader,
    PcapWriter,
    read_pcap,
    write_pcap,
)


def _packets(n=5):
    return [
        CapturedPacket(timestamp=1_000_000.0 + i * 0.25,
                       data=bytes([i]) * (20 + i))
        for i in range(n)
    ]


class TestRoundTrip:
    def test_memory_round_trip(self):
        buffer = io.BytesIO()
        writer = PcapWriter(buffer, snaplen=65535)
        packets = _packets()
        for packet in packets:
            writer.write(packet)
        assert writer.packets_written == len(packets)
        buffer.seek(0)
        read = list(PcapReader(buffer))
        assert len(read) == len(packets)
        for original, loaded in zip(packets, read):
            assert loaded.data == original.data
            assert loaded.orig_len == original.orig_len
            assert abs(loaded.timestamp - original.timestamp) < 1e-5

    def test_file_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.pcap")
        packets = _packets(8)
        assert write_pcap(path, packets) == 8
        loaded = read_pcap(path)
        assert [p.data for p in loaded] == [p.data for p in packets]

    def test_snaplen_truncates_records(self):
        buffer = io.BytesIO()
        writer = PcapWriter(buffer, snaplen=10)
        writer.write(CapturedPacket(timestamp=0.0, data=b"z" * 100))
        buffer.seek(0)
        (record,) = list(PcapReader(buffer))
        assert record.caplen == 10
        assert record.orig_len == 100
        assert record.truncated


class TestBigEndian:
    def test_reads_big_endian_files(self):
        header = struct.pack(">IHHiIII", MAGIC_USEC, 2, 4, 0, 0, 65535, 1)
        record = struct.pack(">IIII", 7, 500_000, 3, 3) + b"abc"
        reader = PcapReader(io.BytesIO(header + record))
        (packet,) = list(reader)
        assert packet.data == b"abc"
        assert abs(packet.timestamp - 7.5) < 1e-6


class TestErrors:
    def test_bad_magic(self):
        with pytest.raises(PcapError):
            PcapReader(io.BytesIO(b"\x00" * 24))

    def test_truncated_global_header(self):
        with pytest.raises(PcapError):
            PcapReader(io.BytesIO(b"\xd4\xc3\xb2\xa1"))

    def test_truncated_record_header(self):
        buffer = io.BytesIO()
        PcapWriter(buffer).write(CapturedPacket(timestamp=0.0, data=b"xy"))
        blob = buffer.getvalue()[:-10]  # cut into the record
        reader = PcapReader(io.BytesIO(blob))
        with pytest.raises(PcapError):
            list(reader)

    def test_truncated_record_body(self):
        buffer = io.BytesIO()
        PcapWriter(buffer).write(CapturedPacket(timestamp=0.0, data=b"x" * 40))
        blob = buffer.getvalue()[:-5]
        with pytest.raises(PcapError):
            list(PcapReader(io.BytesIO(blob)))

    def test_microsecond_rollover(self):
        buffer = io.BytesIO()
        writer = PcapWriter(buffer)
        writer.write(CapturedPacket(timestamp=1.9999996, data=b"a"))
        buffer.seek(0)
        (packet,) = list(PcapReader(buffer))
        assert abs(packet.timestamp - 2.0) < 1e-5


class TestCaptureTruncated:
    """Cut-off traces raise the typed CaptureTruncated, never a bare
    struct.error -- the recovery path catches it to treat a torn tail
    as end-of-data."""

    def _blob(self, n=3):
        buffer = io.BytesIO()
        writer = PcapWriter(buffer)
        for packet in _packets(n):
            writer.write(packet)
        return buffer.getvalue()

    def test_short_global_header(self):
        with pytest.raises(CaptureTruncated):
            PcapReader(io.BytesIO(self._blob()[:12]))

    def test_cut_in_record_header(self):
        blob = self._blob(1)
        with pytest.raises(CaptureTruncated):
            list(PcapReader(io.BytesIO(blob[:24 + 7])))

    def test_cut_in_record_body(self):
        with pytest.raises(CaptureTruncated):
            list(PcapReader(io.BytesIO(self._blob(1)[:-3])))

    def test_is_a_pcap_error(self):
        assert issubclass(CaptureTruncated, PcapError)

    def test_every_cut_point_raises_typed_error(self):
        blob = self._blob()
        for cut in range(len(blob)):
            reader_input = io.BytesIO(blob[:cut])
            try:
                list(PcapReader(reader_input))
            except CaptureTruncated:
                pass
            # Any other exception type (struct.error above all) fails.

    def test_zero_length_record(self):
        # A record header claiming zero captured bytes for a 64-byte
        # packet: the capture stopped mid-packet.
        header = struct.pack("<IHHiIII", MAGIC_USEC, 2, 4, 0, 0, 65535, 1)
        record = struct.pack("<IIII", 1, 0, 0, 64)
        with pytest.raises(CaptureTruncated):
            list(PcapReader(io.BytesIO(header + record)))
