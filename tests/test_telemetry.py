"""Tests for the self-telemetry subsystem (``repro.obs.telemetry``).

The contract under test: engine internals are ordinary GSQL streams --
queries and alert triggers read ``_gs_*`` unmodified, rows carry only
deterministic virtual-time values, the sampler keeps per-operator rows
monotone and gap-free even through quarantines and restarts, and the
profiler never leaves a dangling cost attribution.
"""

import math

import pytest

from repro.core.engine import Gigascope
from repro.core.stream_manager import RegistryError
from repro.obs.telemetry import (
    TELEMETRY_STREAMS,
    PumpProfiler,
    TelemetryStreamNode,
    telemetry_schema,
)
from repro.report import engine_report
from repro.workloads.generators import http_port80_pool, packet_stream


FLOWS_QUERY = """
    DEFINE query_name flows;
    Select tb, count(*) as pkts
    From tcp
    Group by time/2 as tb
"""

PKTS_QUERY = """
    DEFINE query_name pkts;
    Select time, len
    From tcp
"""

META_QUERY = """
    Select floor(time/2) as tb, sum(dropped_delta) as drops
    From _gs_channel
    Group by floor(time/2) as tb
"""

STORM_TRIGGER = ("chanstorm:on=_gs_channel,key=channel,"
                 "when=sum(dropped_delta) > 40,epoch=2,"
                 "raise_for=1,clear_for=2,severity=warning")


def feed_traffic(gs, duration_s=10.0, seed=7, pump_every=64):
    pool = http_port80_pool(seed=seed)
    gs.feed(packet_stream(pool, rate_mbps=2.0, duration_s=duration_s,
                          seed=seed), pump_every=pump_every)
    gs.flush()


def make_engine(**kw):
    kw.setdefault("seed", 7)
    kw.setdefault("heartbeat_interval", 0.5)
    kw.setdefault("channel_capacity", 256)
    return Gigascope(**kw)


class TestSchemas:
    def test_every_stream_has_a_schema_led_by_increasing_time(self):
        for stream in TELEMETRY_STREAMS:
            schema = telemetry_schema(stream)
            assert schema.names[0] == "time"
            assert schema.attributes[0].ordering.usable_for_windows

    def test_unknown_stream_raises(self):
        with pytest.raises(KeyError):
            telemetry_schema("_gs_bogus")

    def test_stream_node_rejects_input(self):
        node = TelemetryStreamNode("_gs_shed")
        with pytest.raises(TypeError):
            node.on_tuple((0.0,), 0)


class TestRegistration:
    def test_off_by_default(self):
        gs = make_engine()
        assert gs.rts.telemetry is None
        assert gs.telemetry_report() is None
        from repro.gsql.semantic import SemanticError
        with pytest.raises(SemanticError):
            gs.add_query("Select time From _gs_channel", name="meta")

    def test_enable_twice_raises(self):
        gs = make_engine()
        gs.enable_telemetry()
        with pytest.raises(RegistryError):
            gs.enable_telemetry()

    def test_stream_subset(self):
        gs = make_engine()
        hub = gs.enable_telemetry(streams=("_gs_channel", "_gs_shed"))
        assert sorted(hub.nodes) == ["_gs_channel", "_gs_shed"]

    def test_unknown_stream_name_raises(self):
        gs = make_engine()
        with pytest.raises(KeyError):
            gs.enable_telemetry(streams=("_gs_channel", "_gs_nope"))

    def test_negative_interval_raises(self):
        gs = make_engine()
        with pytest.raises(ValueError):
            gs.enable_telemetry(interval=-1.0)


class TestGsqlOverTelemetry:
    def test_meta_query_runs_unmodified(self):
        gs = make_engine()
        gs.enable_telemetry(interval=0.5)
        gs.add_query(FLOWS_QUERY)
        gs.add_query(META_QUERY, name="chan_drops")
        meta = gs.subscribe("chan_drops")
        gs.start()
        feed_traffic(gs)
        rows = meta.poll()
        # Multiple 2s epochs closed before end-of-stream: punctuation
        # from the telemetry node advances the window, not just FLUSH.
        assert len(rows) >= 4
        assert [row[0] for row in rows] == sorted(row[0] for row in rows)

    def test_raw_stream_subscription(self):
        gs = make_engine()
        gs.enable_telemetry(interval=0.5)
        gs.add_query(FLOWS_QUERY)
        chan = gs.subscribe("_gs_channel")
        ops = gs.subscribe("_gs_operator")
        gs.start()
        feed_traffic(gs)
        chan_rows, op_rows = chan.poll(), ops.poll()
        assert chan_rows and op_rows
        schema = telemetry_schema("_gs_channel")
        assert all(len(row) == len(schema.names) for row in chan_rows)
        # Cumulative counters never run backwards per channel.
        by_channel = {}
        for row in chan_rows:
            name = row[1]
            prev = by_channel.get(name)
            if prev is not None:
                assert row[4] >= prev[4]   # pushed
                assert row[6] >= prev[6]   # dropped
            by_channel[name] = row

    def test_rows_are_deterministic_values_only(self):
        def run():
            gs = make_engine()
            gs.enable_telemetry(interval=0.5)
            gs.add_query(FLOWS_QUERY)
            sub = {s: gs.subscribe(s) for s in TELEMETRY_STREAMS}
            gs.start()
            feed_traffic(gs)
            return {s: sub[s].poll() for s in TELEMETRY_STREAMS}

        assert run() == run()


class TestMetaAlerts:
    def run(self, storm):
        gs = make_engine()
        gs.enable_telemetry(interval=0.5)
        gs.add_query(PKTS_QUERY)
        gs.enable_alerts([STORM_TRIGGER])
        data = gs.subscribe("pkts")
        alerts = gs.subscribe("alerts")
        if storm:
            gs.inject_faults(["channel_storm:at=3.0,duration=2.0,capacity=4"])
        gs.start()
        feed_traffic(gs)
        assert data.poll()
        return alerts.poll()

    def test_clean_run_raises_nothing(self):
        assert self.run(storm=False) == []

    def test_storm_raises_and_clears_on_the_squeezed_channel(self):
        rows = self.run(storm=True)
        kinds = [row[3] for row in rows]
        assert kinds == [b"RAISE", b"CLEAR"]
        assert all(row[5] == b"pkts->app" for row in rows)


def operator_rows_by_name(rows):
    by_name = {}
    for row in rows:
        by_name.setdefault(row[1], []).append(row)
    return by_name


def assert_monotone_and_gap_free(rows):
    """Every operator appears in every sample, at strictly increasing
    times -- no dangling attribution, no missing rows."""
    sample_times = sorted({row[0] for row in rows})
    assert sample_times == sorted(sample_times)
    by_name = operator_rows_by_name(rows)
    for name, entries in by_name.items():
        times = [row[0] for row in entries]
        assert times == sample_times, f"{name} misses samples"
        assert all(a < b for a, b in zip(times, times[1:]))
        # Cumulative counters are monotone per operator.
        for field in (2, 3, 4):
            values = [row[field] for row in entries]
            assert values == sorted(values), f"{name} field {field} regressed"


class TestOperatorStreamInvariants:
    def test_clean_run_monotone_and_gap_free(self):
        gs = make_engine()
        gs.enable_telemetry(interval=0.5)
        gs.add_query(FLOWS_QUERY)
        ops = gs.subscribe("_gs_operator")
        gs.start()
        feed_traffic(gs)
        rows = ops.poll()
        assert rows
        assert_monotone_and_gap_free(rows)

    def test_quarantine_mid_cycle_keeps_rows_gap_free(self):
        # PR 3 path: the operator dies permanently mid-cycle.  It must
        # keep appearing in _gs_operator (flagged) with frozen counters.
        gs = make_engine(batch_size=1)
        gs.enable_telemetry(interval=0.5)
        gs.add_query(FLOWS_QUERY)
        ops = gs.subscribe("_gs_operator")
        gs.start()
        gs.inject_faults(["operator_error:node=flows,at_tuple=3,times=9999"])
        feed_traffic(gs)
        rows = ops.poll()
        assert_monotone_and_gap_free(rows)
        flows_rows = operator_rows_by_name(rows)[b"flows"]
        flags = [row[8] for row in flows_rows]
        assert flags[0] == 0 and flags[-1] == 1
        # After quarantine the cost attribution stays closed: deltas 0.
        dead = [row for row in flows_rows if row[8] == 1]
        assert all(row[5] == 0 and row[7] == 0.0 for row in dead[1:])

    def test_restart_mid_cycle_keeps_rows_gap_free(self):
        # PR 5 path: transient crash, supervisor restores + replays
        # inline; the next sample must show clean-run counters.
        def run(crash):
            gs = make_engine(batch_size=1)
            gs.enable_telemetry(interval=0.5)
            gs.add_query(FLOWS_QUERY)
            ops = gs.subscribe("_gs_operator")
            gs.enable_recovery(checkpoint_interval=1.0)
            gs.start()
            if crash:
                from repro.faults.injectors import OperatorFault
                # The LFTA hands flows one row per closed 2s epoch, so
                # tuple 2 lands mid-run (~t=6) with live group state.
                gs.inject_faults([OperatorFault("flows", at_tuple=2,
                                                times=1)])
            feed_traffic(gs)
            report = gs.recovery_report()
            return ops.poll(), report["restarts_total"]

        clean_rows, clean_restarts = run(crash=False)
        crash_rows, crash_restarts = run(crash=True)
        assert clean_restarts == 0 and crash_restarts == 1
        assert_monotone_and_gap_free(crash_rows)
        assert crash_rows == clean_rows


class TestProfiler:
    def test_begin_cycle_sampling(self):
        profiler = PumpProfiler(sample_every=3)
        decisions = [profiler.begin_cycle() for _ in range(9)]
        assert decisions == [False, False, True] * 3
        assert profiler.cycles == 9
        assert profiler.profiled_cycles == 3

    def test_sample_every_must_be_positive(self):
        with pytest.raises(ValueError):
            PumpProfiler(sample_every=0)

    def test_attribution_covers_only_real_operators(self):
        gs = make_engine()
        gs.enable_telemetry(interval=0.5)
        gs.add_query(FLOWS_QUERY)
        gs.subscribe("flows")
        gs.start()
        feed_traffic(gs)
        report = gs.telemetry_report()
        profiler = report["profiler"]
        assert profiler["cycles"] > 0
        assert profiler["profiled_cycles"] == profiler["cycles"]
        node_names = set(dict(gs.rts.iter_nodes()))
        assert set(profiler["wall_us"]) <= node_names
        assert all(value >= 0.0 for value in profiler["wall_us"].values())
        # Virtual attribution covers the data path.
        assert any(value > 0 for value in profiler["virtual_us"].values())

    def test_profile_every_thins_wall_sampling(self):
        gs = make_engine()
        gs.enable_telemetry(interval=0.5, profile_every=4)
        gs.add_query(FLOWS_QUERY)
        gs.start()
        feed_traffic(gs)
        profiler = gs.telemetry_report()["profiler"]
        assert profiler["sample_every"] == 4
        assert profiler["profiled_cycles"] <= profiler["cycles"] // 4 + 1


class TestReporting:
    def test_report_counts_match_subscriptions(self):
        gs = make_engine()
        gs.enable_telemetry(interval=0.5)
        gs.add_query(FLOWS_QUERY)
        subs = {s: gs.subscribe(s) for s in TELEMETRY_STREAMS}
        gs.start()
        feed_traffic(gs)
        report = gs.telemetry_report()
        assert report["samples"] > 1
        assert report["last_sample_time"] is not None
        for stream in TELEMETRY_STREAMS:
            assert report["rows"][stream] == len(subs[stream].poll())

    def test_engine_report_has_telemetry_section(self):
        gs = make_engine()
        gs.enable_telemetry(interval=0.5)
        gs.add_query(FLOWS_QUERY)
        gs.start()
        feed_traffic(gs, duration_s=4.0)
        text = engine_report(gs)
        assert "telemetry" in text
        assert "_gs_channel" in text
        assert "profiler:" in text

    def test_no_samples_before_traffic(self):
        gs = make_engine()
        gs.enable_telemetry()
        gs.add_query(FLOWS_QUERY)
        report = gs.telemetry_report()
        assert report["samples"] == 0
        assert report["last_sample_time"] is None
        assert math.isinf(gs.rts.telemetry._last_sample)
