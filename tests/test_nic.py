"""Tests for the simulated NIC, BPF prefilter, and on-NIC RTS."""

import pytest

from repro.gsql.codegen import ExprCompiler
from repro.gsql.planner import PushedPredicate
from repro.gsql.schema import PacketView
from repro.nic.bpf import BpfProgram, compile_pushed_predicates
from repro.nic.nic import Nic
from repro.nic.nic_rts import NicRts
from repro.operators.lfta import LftaNode
from tests.conftest import tcp_packet, udp_packet


class TestBpf:
    def test_port_and_protocol_tests(self):
        program = compile_pushed_predicates([
            PushedPredicate("destport", "=", 80),
            PushedPredicate("protocol", "=", 6),
        ])
        assert program.matches(tcp_packet(dport=80).data)
        assert not program.matches(tcp_packet(dport=443).data)
        assert not program.matches(udp_packet(dport=80).data)
        assert program.evaluated == 3
        assert program.matched == 1

    def test_ip_address_tests(self):
        from repro.net.packet import ip_to_int
        program = compile_pushed_predicates([
            PushedPredicate("srcip", "=", ip_to_int("10.0.0.1")),
        ])
        assert program.matches(tcp_packet(src="10.0.0.1").data)
        assert not program.matches(tcp_packet(src="10.0.0.2").data)

    def test_range_operators(self):
        program = compile_pushed_predicates([
            PushedPredicate("destport", "<=", 1023),
        ])
        assert program.matches(tcp_packet(dport=80).data)
        assert not program.matches(tcp_packet(dport=8080).data)

    def test_non_ip_rejected(self):
        program = compile_pushed_predicates([])
        assert not program.matches(b"\x00" * 60)  # ethertype 0

    def test_truncated_frame_fails_field_tests(self):
        program = compile_pushed_predicates([
            PushedPredicate("destport", "=", 80),
        ])
        assert not program.matches(tcp_packet(dport=80).data[:20])

    def test_consistency_with_packet_view(self):
        """The NIC's raw-offset extraction must agree with full parsing."""
        program = compile_pushed_predicates([
            PushedPredicate("destport", "=", 80),
            PushedPredicate("ipversion", "=", 4),
        ])
        for dport in (80, 443, 8080):
            packet = tcp_packet(dport=dport, payload=b"xyz")
            view = PacketView(packet)
            expected = view.tcp is not None and view.tcp.dst_port == 80
            assert program.matches(packet.data) == expected


class TestNicQueueing:
    def test_fast_nic_accepts_everything(self):
        nic = Nic(service_us=1.0, ring_slots=8)
        for i in range(100):
            nic.receive(tcp_packet(ts=i * 0.001), now_us=i * 1000.0)
        assert nic.stats.ring_dropped == 0
        assert nic.stats.delivered_packets == 100

    def test_slow_nic_drops_on_ring_overflow(self):
        nic = Nic(service_us=1000.0, ring_slots=8)
        for i in range(100):
            nic.receive(tcp_packet(ts=i * 1e-6), now_us=float(i))
        assert nic.stats.ring_dropped > 0
        assert nic.loss_rate > 0.5

    def test_bpf_filter_counts(self):
        program = compile_pushed_predicates([PushedPredicate("destport", "=", 80)])
        nic = Nic(service_us=1.0, ring_slots=64, bpf=program)
        nic.receive(tcp_packet(dport=80), 0.0)
        nic.receive(tcp_packet(dport=443), 10.0)
        assert nic.stats.filtered == 1
        assert nic.stats.delivered_packets == 1

    def test_snaplen_truncation(self):
        nic = Nic(service_us=1.0, snaplen=60)
        nic.receive(tcp_packet(payload=b"z" * 500), 0.0)
        ((_, delivered),) = nic.take_deliveries()
        assert delivered.caplen == 60
        assert delivered.orig_len > 500


class TestOnNicLfta:
    def _nic_with_lfta(self, compile_plan):
        analyzed, plan, compiler = compile_plan(
            "DEFINE query_name q; Select time, destPort From tcp "
            "Where destPort = 80")
        lfta = LftaNode(plan.lftas[0], analyzed, compiler)
        rts = NicRts([lfta])
        return Nic(service_us=1.0, ring_slots=64, rts=rts), lfta

    def test_tuples_delivered_not_packets(self, compile_plan):
        nic, _ = self._nic_with_lfta(compile_plan)
        nic.receive(tcp_packet(ts=1.0, dport=80), 0.0)
        nic.receive(tcp_packet(ts=2.0, dport=443), 10.0)
        assert nic.stats.delivered_tuples == 1
        assert nic.stats.delivered_packets == 0
        ((_, rows),) = nic.take_deliveries()
        assert rows == [(1, 80)]

    def test_nic_results_match_host_lfta(self, compile_plan):
        """Running the LFTA on the card is semantically transparent."""
        nic, _ = self._nic_with_lfta(compile_plan)
        analyzed, plan, compiler = compile_plan(
            "DEFINE query_name q2; Select time, destPort From tcp "
            "Where destPort = 80")
        host_lfta = LftaNode(plan.lftas[0], analyzed, compiler)
        tap = host_lfta.subscribe()
        packets = [tcp_packet(ts=float(i), dport=80 if i % 3 else 22)
                   for i in range(30)]
        for i, packet in enumerate(packets):
            nic.receive(packet, i * 10.0)
            host_lfta.accept_packet(packet)
        nic_rows = [row for _, batch in nic.take_deliveries() for row in batch]
        host_rows = [item for item in tap.drain() if type(item) is tuple]
        assert nic_rows == host_rows

    def test_rts_heartbeat_and_flush(self, compile_plan):
        analyzed, plan, compiler = compile_plan(
            "DEFINE query_name agg; Select tb, count(*) From tcp "
            "Group by time/10 as tb")
        lfta = LftaNode(plan.lftas[0], analyzed, compiler)
        rts = NicRts([lfta])
        nic = Nic(service_us=1.0, rts=rts)
        nic.receive(tcp_packet(ts=1.0), 0.0)
        assert rts.heartbeat(50.0) == [(0, 1)]
        nic.receive(tcp_packet(ts=60.0), 100.0)
        assert rts.flush() == [(6, 1)]
