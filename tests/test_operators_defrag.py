"""Tests for the IP defragmentation user node."""

import pytest

from repro.gsql.schema import builtin_registry
from repro.net.build import capture
from repro.net.ethernet import ETHERTYPE_IPV4, EthernetHeader
from repro.net.ip import IPv4Header, PROTO_UDP, fragment_ipv4
from repro.net.packet import CapturedPacket, ip_to_int
from repro.net.udp import UDPHeader
from repro.operators.defrag import DefragNode
from tests.conftest import udp_packet


def fragmented_udp(payload_len=3000, mtu=600, ident=42, ts=1.0):
    """Build a UDP datagram and fragment it; returns captured fragments."""
    src, dst = ip_to_int("10.0.0.1"), ip_to_int("10.0.0.2")
    udp = UDPHeader(src_port=5000, dst_port=6000)
    payload = bytes(range(256)) * (payload_len // 256 + 1)
    payload = payload[:payload_len]
    datagram = udp.pack(src, dst, payload) + payload
    ip = IPv4Header(src=src, dst=dst, protocol=PROTO_UDP, identification=ident)
    eth = EthernetHeader(ethertype=ETHERTYPE_IPV4).pack()
    wires = fragment_ipv4(ip, datagram, mtu)
    return [capture(eth + wire, ts + i * 0.001)
            for i, wire in enumerate(wires)], payload


@pytest.fixture
def node():
    registry = builtin_registry()
    return DefragNode("defrag0", registry.get("udp"))


def rows_of(tap):
    return [item for item in tap.drain() if type(item) is tuple]


class TestReassembly:
    def test_in_order_fragments(self, node):
        tap = node.subscribe()
        fragments, payload = fragmented_udp()
        assert len(fragments) > 2
        for packet in fragments:
            node.accept_packet(packet)
        rows = rows_of(tap)
        assert len(rows) == 1
        schema = node.protocol
        assert rows[0][schema.index_of("data")] == payload
        assert node.datagrams_reassembled == 1
        assert node.fragments_seen == len(fragments)

    def test_out_of_order_fragments(self, node):
        tap = node.subscribe()
        fragments, payload = fragmented_udp()
        reordered = list(reversed(fragments))
        for packet in reordered:
            node.accept_packet(packet)
        rows = rows_of(tap)
        assert len(rows) == 1
        assert rows[0][node.protocol.index_of("data")] == payload

    def test_unfragmented_passes_through(self, node):
        tap = node.subscribe()
        node.accept_packet(udp_packet(ts=1.0, payload=b"small"))
        rows = rows_of(tap)
        assert len(rows) == 1
        assert rows[0][node.protocol.index_of("data")] == b"small"

    def test_interleaved_datagrams(self, node):
        tap = node.subscribe()
        frag_a, payload_a = fragmented_udp(ident=1)
        frag_b, payload_b = fragmented_udp(ident=2)
        for pair in zip(frag_a, frag_b):
            for packet in pair:
                node.accept_packet(packet)
        rows = rows_of(tap)
        assert len(rows) == 2
        payloads = {row[node.protocol.index_of("data")] for row in rows}
        assert payloads == {payload_a, payload_b}

    def test_incomplete_never_emits(self, node):
        tap = node.subscribe()
        fragments, _ = fragmented_udp()
        for packet in fragments[:-1]:  # hold back the last fragment
            node.accept_packet(packet)
        assert rows_of(tap) == []
        assert node.datagrams_reassembled == 0

    def test_timeout_discards_stale_state(self, node):
        tap = node.subscribe()
        fragments, _ = fragmented_udp(ts=1.0)
        node.accept_packet(fragments[0])
        node.on_heartbeat(100.0)  # way past the 30 s timeout
        assert node.timed_out == 1
        # the late fragments no longer complete anything
        for packet in fragments[1:]:
            node.accept_packet(packet)
        assert rows_of(tap) == []

    def test_non_ip_ignored(self, node):
        tap = node.subscribe()
        node.accept_packet(CapturedPacket(timestamp=0.0, data=b"\x00" * 60))
        assert rows_of(tap) == []

    def test_rejects_tuple_input(self, node):
        with pytest.raises(TypeError):
            node.on_tuple((1,), 0)
