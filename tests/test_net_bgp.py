"""Tests for the simplified BGP UPDATE encoding."""

import pytest

from repro.net.bgp import BGPUpdate
from repro.net.packet import ip_to_int


class TestRoundTrip:
    def test_full_update(self):
        update = BGPUpdate(
            announced=[(ip_to_int("10.0.0.0"), 8), (ip_to_int("192.168.4.0"), 24)],
            withdrawn=[(ip_to_int("172.16.0.0"), 12)],
            as_path=[7018, 1239, 3356],
        )
        parsed = BGPUpdate.parse(update.pack())
        assert parsed.announced == update.announced
        assert parsed.withdrawn == update.withdrawn
        assert parsed.as_path == [7018, 1239, 3356]
        assert parsed.origin_as == 3356

    def test_empty_update(self):
        parsed = BGPUpdate.parse(BGPUpdate().pack())
        assert parsed.announced == []
        assert parsed.withdrawn == []
        assert parsed.origin_as == 0

    def test_default_route_prefix(self):
        update = BGPUpdate(announced=[(0, 0)], as_path=[100])
        parsed = BGPUpdate.parse(update.pack())
        assert parsed.announced == [(0, 0)]


class TestErrors:
    def test_truncated(self):
        with pytest.raises(ValueError):
            BGPUpdate.parse(b"\xff" * 10)

    def test_bad_marker(self):
        blob = bytearray(BGPUpdate(as_path=[1]).pack())
        blob[0] = 0x00
        with pytest.raises(ValueError):
            BGPUpdate.parse(bytes(blob))

    def test_wrong_message_type(self):
        blob = bytearray(BGPUpdate().pack())
        blob[18] = 1  # OPEN
        with pytest.raises(ValueError):
            BGPUpdate.parse(bytes(blob))

    def test_bad_prefix_length_rejected_on_pack(self):
        with pytest.raises(ValueError):
            BGPUpdate(announced=[(0, 40)]).pack()
