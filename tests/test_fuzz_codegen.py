"""Fuzz the code generator against the interpreter.

Random well-typed GSQL expressions over the tcp schema must evaluate
identically in compiled and interpreted mode on random tuples -- the
two execution paths are independent implementations, so agreement is
strong evidence both are right.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.gsql.ast_nodes import BinaryOp, Column, Literal, UnaryOp
from repro.gsql.codegen import ExprCompiler
from repro.gsql.functions import builtin_functions
from repro.gsql.parser import parse_query
from repro.gsql.schema import builtin_registry
from repro.gsql.semantic import analyze
from repro.gsql.unparse import expr_to_gsql

NUMERIC_COLUMNS = ["time", "len", "destPort", "srcPort", "ttl"]


def numeric_exprs(depth=3):
    """Random well-typed numeric expressions (division by literals only)."""
    leaves = st.one_of(
        st.sampled_from(NUMERIC_COLUMNS).map(Column),
        st.integers(0, 1000).map(Literal),
    )

    def extend(children):
        safe_div = st.builds(
            lambda left, c: BinaryOp("/", left, Literal(c)),
            children, st.integers(1, 60),
        )
        safe_mod = st.builds(
            lambda left, c: BinaryOp("%", left, Literal(c)),
            children, st.integers(1, 60),
        )
        arith = st.builds(
            lambda op, left, right: BinaryOp(op, left, right),
            st.sampled_from(["+", "-", "*"]), children, children,
        )
        return st.one_of(arith, safe_div, safe_mod)

    return st.recursive(leaves, extend, max_leaves=8)


def boolean_exprs():
    comparison = st.builds(
        lambda op, left, right: BinaryOp(op, left, right),
        st.sampled_from(["=", "<>", "<", "<=", ">", ">="]),
        numeric_exprs(), numeric_exprs(),
    )

    def extend(children):
        logic = st.builds(
            lambda op, left, right: BinaryOp(op, left, right),
            st.sampled_from(["AND", "OR"]), children, children,
        )
        negation = st.builds(lambda inner: UnaryOp("NOT", inner), children)
        return st.one_of(logic, negation)

    return st.recursive(comparison, extend, max_leaves=5)


def random_row(draw, registry):
    tcp = registry.get("tcp")
    row = [0] * len(tcp)
    for name in NUMERIC_COLUMNS:
        row[tcp.index_of(name)] = draw(st.integers(0, 100_000))
    row[tcp.index_of("data")] = b""
    return tuple(row)


@pytest.fixture(scope="module")
def registry():
    return builtin_registry()


@pytest.fixture(scope="module")
def functions():
    return builtin_functions()


class TestFuzzModesAgree:
    @settings(max_examples=120, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(expr=numeric_exprs(), data=st.data())
    def test_numeric_expressions(self, expr, data, registry, functions):
        # Round-trip through the real front end so types/bindings exist.
        text = f"Select {expr_to_gsql(expr)} From tcp"
        analyzed = analyze(parse_query(text), registry, functions)
        target = analyzed.output_columns[0].expr
        results = []
        for mode in ("compiled", "interpreted"):
            compiler = ExprCompiler(analyzed, functions, mode=mode)
            fn = compiler.scalar_fn(target)
            rows = [random_row(data.draw, registry) for _ in range(3)]
            results.append([fn(row) for row in rows])
            if mode == "compiled":
                shared_rows = rows
        # evaluate interpreted on the same rows for a fair comparison
        compiler = ExprCompiler(analyzed, functions, mode="interpreted")
        fn = compiler.scalar_fn(target)
        assert results[0] == [fn(row) for row in shared_rows]

    @settings(max_examples=120, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(expr=boolean_exprs(), data=st.data())
    def test_boolean_expressions(self, expr, data, registry, functions):
        text = f"Select time From tcp Where {expr_to_gsql(expr)}"
        analyzed = analyze(parse_query(text), registry, functions)
        rows = [random_row(data.draw, registry) for _ in range(4)]
        outcomes = {}
        for mode in ("compiled", "interpreted"):
            compiler = ExprCompiler(analyzed, functions, mode=mode)
            predicate = compiler.predicate_fn(analyzed.where_conjuncts)
            outcomes[mode] = [predicate(row) for row in rows]
        assert outcomes["compiled"] == outcomes["interpreted"]

    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(expr=numeric_exprs())
    def test_unparse_parse_stable(self, expr, registry, functions):
        """Unparsing a generated expression and reparsing preserves it."""
        text = f"Select {expr_to_gsql(expr)} From tcp"
        first = parse_query(text)
        second = parse_query(f"Select {expr_to_gsql(first.select_items[0].expr)} "
                             "From tcp")
        assert first.select_items[0].expr == second.select_items[0].expr
