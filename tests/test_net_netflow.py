"""Tests for Netflow v5 records and the router export model."""

import pytest

from repro.net.netflow import (
    NetflowExporter,
    NetflowRecord,
    export_datagrams,
    pack_netflow_v5,
    unpack_netflow_v5,
)


def _record(i=0, start=10.0, end=20.0):
    return NetflowRecord(
        src_ip=0x0A000001 + i, dst_ip=0x0A000002, src_port=1000 + i,
        dst_port=80, protocol=6, packets=5, octets=500,
        start_time=start, end_time=end, tcp_flags=0x18,
    )


class TestWireFormat:
    def test_round_trip(self):
        records = [_record(i, start=100.0 + i, end=130.0 + i) for i in range(7)]
        blob = pack_netflow_v5(records, sys_uptime_ms=500_000, unix_secs=500)
        loaded = unpack_netflow_v5(blob)
        assert len(loaded) == 7
        for original, back in zip(records, loaded):
            assert back.src_ip == original.src_ip
            assert back.dst_port == 80
            assert back.packets == 5
            assert abs(back.start_time - original.start_time) < 0.01
            assert abs(back.end_time - original.end_time) < 0.01
            assert back.tcp_flags == 0x18

    def test_rejects_more_than_thirty(self):
        with pytest.raises(ValueError):
            pack_netflow_v5([_record(i) for i in range(31)])

    def test_rejects_wrong_version(self):
        blob = bytearray(pack_netflow_v5([_record()]))
        blob[1] = 9
        with pytest.raises(ValueError):
            unpack_netflow_v5(bytes(blob))

    def test_rejects_truncation(self):
        blob = pack_netflow_v5([_record()])
        with pytest.raises(ValueError):
            unpack_netflow_v5(blob[:-4])
        with pytest.raises(ValueError):
            unpack_netflow_v5(blob[:10])

    def test_export_datagrams_batches_by_thirty(self):
        records = [_record(i) for i in range(65)]
        datagrams = list(export_datagrams(records))
        assert len(datagrams) == 3
        assert len(unpack_netflow_v5(datagrams[0])) == 30
        assert len(unpack_netflow_v5(datagrams[2])) == 5


class TestExporterOrdering:
    """The Section 2.1 property: end times monotone, start times banded."""

    def _run_exporter(self):
        import random
        rng = random.Random(5)
        exporter = NetflowExporter(export_interval=30.0, inactive_timeout=10.0)
        exported = []
        now = 0.0
        while now < 600.0:
            exported.extend(
                exporter.observe(
                    now,
                    src_ip=rng.randrange(1, 50),
                    dst_ip=1,
                    src_port=rng.randrange(1024, 1060),
                    dst_port=80,
                    protocol=6,
                    octets=100,
                )
            )
            now += rng.random() * 0.5
        exported.extend(exporter.flush())
        return exported

    def test_end_times_nondecreasing_within_export(self):
        records = self._run_exporter()
        assert len(records) > 50
        # Each batch is sorted; global stream is nondecreasing too since
        # batches are flushed in time order.
        ends = [r.end_time for r in records]
        assert all(a <= b + 30.0 for a, b in zip(ends, ends[1:]))

    def test_start_times_banded_increasing(self):
        records = self._run_exporter()
        high_water = float("-inf")
        band = 30.0 + 10.0  # export interval + inactive timeout slack
        for record in records:
            high_water = max(high_water, record.start_time)
            assert record.start_time > high_water - 3 * band

    def test_flow_accumulation(self):
        exporter = NetflowExporter(export_interval=30.0, inactive_timeout=5.0)
        for i in range(10):
            exporter.observe(float(i), 1, 2, 3, 4, 6, octets=100)
        records = exporter.flush()
        assert len(records) == 1
        assert records[0].packets == 10
        assert records[0].octets == 1000
        assert records[0].start_time == 0.0
        assert records[0].end_time == 9.0
