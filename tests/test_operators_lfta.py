"""Tests for the LFTA node: filtering, projection, partial aggregation."""

import pytest

from repro.core.heartbeat import Punctuation
from repro.operators.lfta import LftaNode
from tests.conftest import tcp_packet, udp_packet


def make_lfta(compile_plan, text, table_size=4096, **kw):
    analyzed, plan, compiler = compile_plan(text, **kw)
    lfta = LftaNode(plan.lftas[0], analyzed, compiler, table_size=table_size)
    tap = lfta.subscribe()
    return lfta, tap


def rows_of(tap):
    return [item for item in tap.drain() if type(item) is tuple]


def puncts_of(tap):
    return [item for item in tap.drain() if isinstance(item, Punctuation)]


class TestProjectionMode:
    def test_filters_and_projects(self, compile_plan):
        lfta, tap = make_lfta(
            compile_plan,
            "DEFINE query_name q; Select destIP, time From tcp "
            "Where destPort = 80")
        lfta.accept_packet(tcp_packet(ts=10.0, dport=80))
        lfta.accept_packet(tcp_packet(ts=11.0, dport=443))
        lfta.accept_packet(udp_packet(ts=12.0))  # not tcp at all
        rows = rows_of(tap)
        assert len(rows) == 1
        assert rows[0][1] == 10
        assert lfta.stats.discarded == 1  # the 443 packet
        assert lfta.packets_seen == 3

    def test_heartbeat_emits_punctuation(self, compile_plan):
        lfta, tap = make_lfta(
            compile_plan,
            "DEFINE query_name q; Select destIP, time From tcp")
        lfta.on_heartbeat(99.5)
        (punct,) = puncts_of(tap)
        # output slot 1 is `time`; bound is int(99.5)
        assert punct.bound_for(1) == 99

    def test_punctuation_transform_through_bucketing(self, compile_plan):
        lfta, tap = make_lfta(
            compile_plan,
            "DEFINE query_name q; Select time/60, destIP From tcp")
        lfta.on_heartbeat(120.0)
        (punct,) = puncts_of(tap)
        assert punct.bound_for(0) == 2

    def test_no_punctuation_for_unordered_outputs(self, compile_plan):
        lfta, tap = make_lfta(
            compile_plan,
            "DEFINE query_name q; Select destIP, destPort From tcp")
        lfta.on_heartbeat(10.0)
        assert puncts_of(tap) == []


class TestPartialAggregationMode:
    QUERY = ("DEFINE query_name q; Select tb, count(*), sum(len) From tcp "
             "Group by time/60 as tb")

    def test_epoch_advance_flushes(self, compile_plan):
        lfta, tap = make_lfta(compile_plan, self.QUERY)
        for i in range(5):
            lfta.accept_packet(tcp_packet(ts=10.0 + i))
        assert rows_of(tap) == []  # epoch still open
        lfta.accept_packet(tcp_packet(ts=70.0))  # next bucket
        rows = rows_of(tap)
        assert len(rows) == 1
        key_tb, count, total_len = rows[0]
        assert key_tb == 0
        assert count == 5

    def test_flush_emits_punctuation(self, compile_plan):
        lfta, tap = make_lfta(compile_plan, self.QUERY)
        lfta.accept_packet(tcp_packet(ts=10.0))
        lfta.accept_packet(tcp_packet(ts=70.0))
        puncts = [i for i in tap.drain() if isinstance(i, Punctuation)]
        assert puncts and puncts[-1].bound_for(0) == 1

    def test_collision_ejects_partial(self, compile_plan):
        lfta, tap = make_lfta(
            compile_plan,
            "DEFINE query_name q; Select d, tb, count(*) From tcp "
            "Group by destPort as d, time/60 as tb",
            table_size=1)
        lfta.accept_packet(tcp_packet(ts=1.0, dport=80))
        lfta.accept_packet(tcp_packet(ts=2.0, dport=443))  # ejects port 80
        rows = rows_of(tap)
        assert len(rows) == 1
        assert rows[0][0] == 80 and rows[0][2] == 1

    def test_same_group_multiple_partials_sum_correctly(self, compile_plan):
        lfta, tap = make_lfta(
            compile_plan,
            "DEFINE query_name q; Select d, tb, count(*) From tcp "
            "Group by destPort as d, time/60 as tb",
            table_size=1)
        # Alternate between two colliding groups: many ejections.
        for i in range(10):
            lfta.accept_packet(tcp_packet(ts=1.0 + i * 0.1,
                                          dport=80 if i % 2 else 443))
        lfta.flush()
        totals = {}
        for port, _tb, count in rows_of(tap):
            totals[port] = totals.get(port, 0) + count
        assert totals == {80: 5, 443: 5}

    def test_heartbeat_flushes_closed_epochs(self, compile_plan):
        lfta, tap = make_lfta(compile_plan, self.QUERY)
        lfta.accept_packet(tcp_packet(ts=10.0))
        assert rows_of(tap) == []
        lfta.on_heartbeat(130.0)  # bucket 2 >= bucket 0 closed
        rows = rows_of(tap)
        assert len(rows) == 1 and rows[0][1] == 1

    def test_end_of_stream_flush(self, compile_plan):
        lfta, tap = make_lfta(compile_plan, self.QUERY)
        lfta.accept_packet(tcp_packet(ts=5.0))
        lfta.flush()
        assert len(rows_of(tap)) == 1

    def test_flush_sorted_by_window_key(self, compile_plan):
        lfta, tap = make_lfta(compile_plan, self.QUERY)
        for ts in (10.0, 70.0, 130.0):
            lfta.accept_packet(tcp_packet(ts=ts))
        lfta.flush()
        buckets = [row[0] for row in rows_of(tap)]
        assert buckets == sorted(buckets)

    def test_partial_function_in_group_discards(self, compile_plan):
        lfta, tap = make_lfta(
            compile_plan,
            "DEFINE query_name q; Select peer, tb, count(*) From tcp "
            "Group by getlpmid(destIP, '192.168.0.0/16 5') as peer, "
            "time/60 as tb")
        lfta.accept_packet(tcp_packet(ts=1.0, dst="192.168.1.1"))
        lfta.accept_packet(tcp_packet(ts=2.0, dst="10.0.0.1"))  # no match
        lfta.flush()
        rows = rows_of(tap)
        assert len(rows) == 1
        assert rows[0][0] == 5 and rows[0][2] == 1
        assert lfta.stats.discarded == 1


class TestLftaRejectsTupleInput:
    def test_on_tuple_raises(self, compile_plan):
        lfta, _ = make_lfta(
            compile_plan, "DEFINE query_name q; Select time From tcp")
        with pytest.raises(TypeError):
            lfta.on_tuple((1,), 0)
