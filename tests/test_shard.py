"""The sharded multi-process runtime (repro.shard, DESIGN section 15).

Three contracts under test:

* the flow partitioner: process-stable (PYTHONHASHSEED-independent),
  balanced (chi-square over realistic packet pools), and the generated
  fused kernel agrees with the reference ``flow_hash`` on every packet
  shape, including the ugly ones;
* the runtime: sharded output is byte-identical to single-process --
  clean, across a worker crash/restart (checkpoint resume and
  restart-from-scratch), and with sibling shards unaffected by a
  quarantined one;
* the accounting: worker-side channel overflow and quarantine packet
  loss survive the process boundary into the parent's ledgers.
"""

import os
import struct
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.engine import Gigascope, resolve_shards
from repro.core.stream_manager import RegistryError
from repro.determinism import derive_seed
from repro.net.build import build_tcp_frame, build_udp_frame, capture
from repro.shard import ShardedGigascope, flow_hash, shard_of
from repro.shard.partition import assign_shards, partition_filter
from repro.shard.worker import CRASH_ENV
from repro.workloads.flows import ZipfFlowWorkload
from repro.workloads.generators import (background_pool, http_port80_pool,
                                        packet_stream)
from tests.conftest import tcp_packet, udp_packet

SRC_ROOT = str(Path(__file__).resolve().parents[1] / "src")

FLOWS_QUERY = """
    DEFINE query_name flows;
    Select tb, srcIP, srcPort, count(*), sum(len)
    From tcp
    Group by time/5 as tb, srcIP, srcPort
"""


def zipf_packets(count=3000, seed=7):
    workload = ZipfFlowWorkload(num_flows=300, alpha=1.1,
                                seed=derive_seed(seed, "workload.zipf"))
    return list(workload.packets(count, pps=2000.0))


def run_single(packets, query=FLOWS_QUERY, name="flows", **kwargs):
    gs = Gigascope(seed=7, heartbeat_interval=0.5, metrics=False, **kwargs)
    gs.add_query(query)
    sub = gs.subscribe(name)
    gs.start()
    gs.feed(packets, pump_every=128)
    gs.flush()
    return sub.poll()


def run_sharded(packets, shards, query=FLOWS_QUERY, name="flows",
                engine_kwargs=None, **kwargs):
    gs = ShardedGigascope(shards, seed=7, heartbeat_interval=0.5,
                          metrics=False, **(engine_kwargs or {}), **kwargs)
    gs.add_query(query)
    sub = gs.subscribe(name)
    gs.start()
    gs.feed(packets, pump_every=128)
    gs.flush()
    return sub.poll(), gs


# ---------------------------------------------------------------------------
# The flow partitioner
# ---------------------------------------------------------------------------

class TestFlowHash:
    def test_fast_path_uses_the_five_tuple(self):
        # Same 5-tuple, different payload/seq -> same hash (flow
        # affinity); different port -> different shard assignment
        # possible (the key actually covers the tuple).
        a = build_tcp_frame("10.0.0.1", "192.168.1.1", 1234, 80,
                            payload=b"x", seq=1)
        b = build_tcp_frame("10.0.0.1", "192.168.1.1", 1234, 80,
                            payload=b"yyyy", seq=999)
        assert flow_hash(a) == flow_hash(b)
        c = build_tcp_frame("10.0.0.1", "192.168.1.1", 1235, 80)
        assert flow_hash(a) != flow_hash(c)

    def test_tcp_and_udp_with_same_ports_differ(self):
        t = build_tcp_frame("10.0.0.1", "192.168.1.1", 53, 5353)
        u = build_udp_frame("10.0.0.1", "192.168.1.1", 53, 5353)
        assert flow_hash(t) != flow_hash(u)

    def test_fragment_falls_back_to_addresses(self):
        frame = bytearray(build_tcp_frame("10.0.0.1", "192.168.1.1",
                                          1234, 80))
        # Set a nonzero fragment offset: ports are no longer trustworthy.
        frame[20] = 0x00
        frame[21] = 0x10
        whole = build_tcp_frame("10.0.0.1", "192.168.1.1", 9999, 443)
        fragged = bytearray(whole)
        fragged[20] = 0x00
        fragged[21] = 0x10
        # Different ports, same addresses+protocol: fragments collapse
        # onto the address key, so both land on one shard.
        assert flow_hash(bytes(frame)) == flow_hash(bytes(fragged))

    def test_non_ip_and_short_frames_hash_whole_frame(self):
        arp = b"\x02" * 12 + b"\x08\x06" + b"\x00" * 28
        assert isinstance(flow_hash(arp), int)
        assert flow_hash(arp) != flow_hash(arp[:-1])
        assert isinstance(flow_hash(b""), int)
        assert isinstance(flow_hash(b"\x08"), int)

    def test_shard_of_is_mod_nshards(self):
        frame = build_tcp_frame("10.0.0.1", "192.168.1.1", 1234, 80)
        for nshards in (1, 2, 4, 7):
            assert shard_of(frame, nshards) == flow_hash(frame) % nshards

    def test_cross_process_stability(self):
        # The partitioner must not move with PYTHONHASHSEED: same
        # packets, same assignments, in any process.
        script = (
            "from repro.shard import flow_hash\n"
            "from repro.net.build import build_tcp_frame\n"
            "frames = [build_tcp_frame('10.0.0.%d' % i, '192.168.1.1',"
            " 1000 + i, 80) for i in range(32)]\n"
            "print([flow_hash(f) % 4 for f in frames])\n"
        )
        outputs = set()
        for hash_seed in ("0", "1", "31337"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed,
                       PYTHONPATH=SRC_ROOT)
            result = subprocess.run([sys.executable, "-c", script],
                                    env=env, capture_output=True,
                                    text=True, check=True)
            outputs.add(result.stdout.strip())
        assert len(outputs) == 1

    def test_generated_kernel_agrees_with_reference(self):
        # The fused worker kernel and the reference implementation must
        # partition identically -- fast path, options, fragments,
        # non-IP, truncated, everything.
        packets = zipf_packets(800)
        packets.append(udp_packet(ts=0.1))
        packets.append(tcp_packet(ts=0.2, payload=b"z" * 64))
        # IPv4 with options (IHL=6): 4 extra header bytes after byte 33.
        with_options = bytearray(
            build_tcp_frame("10.0.0.9", "192.168.1.9", 4321, 80))
        with_options[14] = 0x46
        packets.append(capture(bytes(with_options), 0.3))
        # A fragment.
        frag = bytearray(build_tcp_frame("10.0.0.8", "192.168.1.8",
                                         1111, 80))
        frag[21] = 0x08
        packets.append(capture(bytes(frag), 0.4))
        # Non-IP and short frames.
        packets.append(capture(b"\x02" * 12 + b"\x08\x06" + b"\x00" * 28,
                               0.5))
        packets.append(capture(b"\x01\x02\x03", 0.6))
        nshards = 4
        reference = assign_shards(packets, nshards)
        for shard in range(nshards):
            kept = []
            partition_filter(nshards, shard)(packets, kept.append)
            expected = [p for p, s in zip(packets, reference) if s == shard]
            assert kept == expected
        # Partitions are disjoint and exhaustive by construction of the
        # comparison above; spot-check total coverage anyway.
        assert sum(reference.count(s) for s in range(nshards)) == len(packets)

    def test_balance_chi_square(self):
        # Hash balance over realistic traffic: chi-square against the
        # uniform hypothesis across 4 shards, df=3; 16.27 is the 99.9th
        # percentile, so an unbalanced partitioner fails loudly.
        packets = list(packet_stream(http_port80_pool(seed=1),
                                     rate_mbps=20.0, duration_s=3.0,
                                     seed=5))
        packets += list(packet_stream(background_pool(seed=2),
                                      rate_mbps=20.0, duration_s=3.0,
                                      seed=6))
        nshards = 4
        assignments = assign_shards(packets, nshards)
        assert len(packets) > 2000
        # Chi-square applies to the independent trials -- the distinct
        # flows, not the packets (pools repeat a finite flow set, so
        # per-packet counts are not i.i.d. and would inflate chi2).
        flow_shards = {flow_hash(p.data): s
                       for p, s in zip(packets, assignments)}
        flow_counts = [0] * nshards
        for shard in flow_shards.values():
            flow_counts[shard] += 1
        expected = len(flow_shards) / nshards
        chi2 = sum((c - expected) ** 2 / expected for c in flow_counts)
        assert len(flow_shards) > 200
        assert chi2 < 16.27, (
            f"unbalanced flows: {flow_counts} (chi2={chi2:.1f})")
        # Packet-level load stays within 25% of even despite skewed
        # per-flow packet counts.
        packet_counts = [assignments.count(s) for s in range(nshards)]
        per_shard = len(packets) / nshards
        assert max(packet_counts) < 1.25 * per_shard, packet_counts
        assert min(packet_counts) > 0.75 * per_shard, packet_counts


# ---------------------------------------------------------------------------
# The runtime: merge identity
# ---------------------------------------------------------------------------

class TestShardedRuntime:
    def test_sharded_output_is_byte_identical(self):
        packets = zipf_packets()
        base = run_single(packets)
        assert base
        for shards in (1, 2, 3):
            rows, gs = run_sharded(packets, shards)
            assert rows == base
            report = gs.shard_report()
            assert sum(report["packets"]) == len(packets)

    def test_selection_concat_matches_single_process_multiset(self):
        query = """
            DEFINE query_name picks;
            Select time, srcIP, srcPort From tcp Where destPort = 80
        """
        packets = zipf_packets(1500)
        base = run_single(packets, query=query, name="picks")
        rows, _ = run_sharded(packets, 2, query=query, name="picks")
        # Concatenation is shard-ordered, not globally ordered: same
        # rows, possibly different order.
        assert sorted(rows) == sorted(base)
        assert len(rows) == len(base)

    def test_multiple_generations_accumulate(self):
        packets = zipf_packets()
        half = len(packets) // 2
        base = run_single(packets)
        gs = ShardedGigascope(2, seed=7, heartbeat_interval=0.5,
                              metrics=False)
        gs.add_query(FLOWS_QUERY)
        sub = gs.subscribe("flows")
        gs.start()
        gs.feed(packets[:half], pump_every=128)
        gs.feed(packets[half:], pump_every=128)
        gs.flush()
        assert sub.poll() == base
        assert gs.generations == 2

    def test_crash_restart_resumes_from_snapshot(self, monkeypatch):
        packets = zipf_packets()
        base = run_single(packets)
        monkeypatch.setenv(CRASH_ENV, "1:700")
        rows, gs = run_sharded(packets, 2)
        assert rows == base
        report = gs.shard_report()
        assert report["restarts"] == [0, 1]
        assert report["snapshots"][1] > 0
        assert sum(report["dropped_packets"]) == 0
        assert not report["quarantined"]

    def test_crash_before_first_barrier_restarts_from_scratch(
            self, monkeypatch):
        packets = zipf_packets()
        base = run_single(packets)
        monkeypatch.setenv(CRASH_ENV, "0:3")
        rows, gs = run_sharded(packets, 2)
        assert rows == base
        assert gs.shard_report()["restarts"] == [1, 0]

    def test_quarantine_leaves_siblings_untouched(self, monkeypatch):
        packets = zipf_packets()
        assignments = assign_shards(packets, 2)
        monkeypatch.setenv(CRASH_ENV, "1:700")
        rows, gs = run_sharded(packets, 2, max_restarts=0)
        report = gs.shard_report()
        assert report["quarantined"] == {
            "1": "worker exited with code 3 before its end frame"}
        # Shard 0's groups are complete and exact: identical to running
        # shard 0's partition through a single-process engine.
        shard0_packets = [p for p, s in zip(packets, assignments) if s == 0]
        assert rows == run_single(shard0_packets)
        # The lost packets are accounted, not silent.
        assert report["dropped_packets"][1] == assignments.count(1)
        assert report["packets"] == [assignments.count(0), 0]

    def test_quarantined_shard_stays_dead_across_generations(
            self, monkeypatch):
        packets = zipf_packets()
        monkeypatch.setenv(CRASH_ENV, "1:700")
        gs = ShardedGigascope(2, seed=7, heartbeat_interval=0.5,
                              metrics=False, max_restarts=0)
        gs.add_query(FLOWS_QUERY)
        gs.subscribe("flows")
        gs.start()
        gs.feed(packets, pump_every=128)
        dropped_first = gs.shard_report()["dropped_packets"][1]
        gs.feed(packets, pump_every=128)
        report = gs.shard_report()
        assert report["dropped_packets"][1] == 2 * dropped_first
        assert report["restarts"] == [0, 0]

    def test_worker_channel_drops_reach_the_parent_ledger(self):
        # A tiny inter-node channel capacity inside the workers forces
        # overflow drops there; the counts must surface in the parent's
        # overload report (satellite: cross-process backpressure).
        packets = zipf_packets()
        rows, gs = run_sharded(packets, 2,
                               engine_kwargs={"channel_capacity": 2})
        report = gs.overload_report()
        assert report["channel_dropped"] > 0
        assert sum(gs.shard_channel_dropped) == report["channel_dropped"]
        dropped_channels = {name: info for name, info
                            in report["channels"].items() if info["dropped"]}
        assert dropped_channels
        assert all(name.startswith("shard") for name in dropped_channels)

    def test_stats_namespaces_workers_and_merge(self):
        packets = zipf_packets(800)
        rows, gs = run_sharded(packets, 2)
        stats = gs.stats()
        assert "merge/flows" in stats
        assert any(name.startswith("shard0/") for name in stats)
        assert any(name.startswith("shard1/") for name in stats)
        assert stats["merge/flows"]["tuples_out"] == len(rows)


# ---------------------------------------------------------------------------
# Validation and configuration
# ---------------------------------------------------------------------------

class TestValidation:
    def test_shards_must_be_positive(self):
        for bad in (0, -1):
            with pytest.raises(ValueError):
                ShardedGigascope(bad)

    def test_resolve_shards(self, monkeypatch):
        monkeypatch.delenv("GS_SHARDS", raising=False)
        assert resolve_shards() == 0
        assert resolve_shards(3) == 3
        monkeypatch.setenv("GS_SHARDS", "4")
        assert resolve_shards() == 4
        assert resolve_shards(2) == 2  # explicit argument wins
        monkeypatch.setenv("GS_SHARDS", "banana")
        with pytest.raises(ValueError):
            resolve_shards()
        monkeypatch.setenv("GS_SHARDS", "-2")
        with pytest.raises(ValueError):
            resolve_shards()

    def test_malformed_crash_spec_raises(self, monkeypatch):
        gs = ShardedGigascope(2, metrics=False)
        gs.add_query(FLOWS_QUERY)
        gs.subscribe("flows")
        gs.start()
        monkeypatch.setenv(CRASH_ENV, "nonsense")
        with pytest.raises(ValueError):
            gs.feed(zipf_packets(100))
        monkeypatch.setenv(CRASH_ENV, "9:10")  # no shard 9
        with pytest.raises(ValueError):
            gs.feed(zipf_packets(100))

    def test_feed_requires_start(self):
        gs = ShardedGigascope(2, metrics=False)
        gs.add_query(FLOWS_QUERY)
        with pytest.raises(RegistryError):
            gs.feed(zipf_packets(10))

    def test_subscribe_unknown_name_raises(self):
        gs = ShardedGigascope(2, metrics=False)
        gs.add_query(FLOWS_QUERY)
        with pytest.raises(RegistryError):
            gs.subscribe("nope")

    def test_subscribing_aggregation_with_downstream_reader_refused(self):
        gs = ShardedGigascope(2, metrics=False)
        gs.add_query(FLOWS_QUERY)
        gs.add_query("""
            DEFINE query_name heavy;
            Select tb, srcIP From flows Where cnt > 10
        """)
        # Workers would flip 'flows' into partial output, feeding
        # 'heavy' superaggregates instead of finalized rows.
        with pytest.raises(RegistryError):
            gs.subscribe("flows")
        gs.subscribe("heavy")  # the downstream query itself is fine

    def test_schema_and_explain_delegate_to_template(self):
        gs = ShardedGigascope(2, metrics=False)
        gs.add_query(FLOWS_QUERY)
        assert gs.schema_of("flows").names[0] == "tb"
        assert "flows" in gs.explain("flows")


class TestCliValidation:
    def run_cli(self, argv, env_extra=None):
        env = dict(os.environ, PYTHONPATH=SRC_ROOT)
        env.pop("GS_SHARDS", None)
        if env_extra:
            env.update(env_extra)
        return subprocess.run(
            [sys.executable, "-m", "repro.cli", *argv],
            env=env, capture_output=True, text=True)

    BASE = ["--query", "Select destIP From tcp", "--synthetic", "1x1"]

    def test_non_positive_shards_exits_2(self):
        for bad in ("0", "-2"):
            result = self.run_cli(["--shards", bad, *self.BASE])
            assert result.returncode == 2
            assert "--shards" in result.stderr

    def test_malformed_gs_shards_exits_2(self):
        result = self.run_cli(self.BASE, env_extra={"GS_SHARDS": "many"})
        assert result.returncode == 2
        assert "GS_SHARDS" in result.stderr

    def test_scalar_forcing_flags_refused(self):
        for extra in (["--fault", "ring_burst:at=0.1,duration=0.1"],
                      ["--shed", "adaptive"],
                      ["--recover"],
                      ["--telemetry"],
                      ["--trace-sample", "0.5"]):
            result = self.run_cli(["--shards", "2", *extra, *self.BASE])
            assert result.returncode == 2, extra
            assert "--shards" in result.stderr

    def test_sharded_cli_run_matches_single(self):
        query = ("DEFINE query_name c; Select tb, destPort, count(*) "
                 "From tcp Group by time/1 as tb, destPort")
        argv = ["--query", query, "--synthetic", "5x1"]
        single = self.run_cli(argv)
        sharded = self.run_cli(["--shards", "2", *argv])
        assert single.returncode == 0 and sharded.returncode == 0
        assert sharded.stdout == single.stdout
        assert "# shard report" in sharded.stderr
