"""Tests for GSQL semantic analysis."""

import pytest

from repro.gsql.functions import builtin_functions
from repro.gsql.ordering import Ordering, OrderingKind
from repro.gsql.parser import parse_query
from repro.gsql.schema import builtin_registry
from repro.gsql.semantic import AggRef, AnalyzedQuery, KeyRef, SemanticError, analyze
from repro.gsql.types import BOOL, FLOAT, IP, STRING, UINT, ULLONG


@pytest.fixture(scope="module")
def registry():
    return builtin_registry()


@pytest.fixture(scope="module")
def functions():
    return builtin_functions()


def run(text, registry, functions, streams=None) -> AnalyzedQuery:
    return analyze(parse_query(text), registry, functions,
                   stream_resolver=(streams or {}).get)


class TestClassification:
    def test_selection(self, registry, functions):
        analyzed = run("Select destIP From tcp", registry, functions)
        assert analyzed.kind == "selection"

    def test_aggregation_by_group(self, registry, functions):
        analyzed = run("Select tb From tcp Group by time/60 as tb",
                       registry, functions)
        assert analyzed.kind == "aggregation"

    def test_aggregation_by_aggregate(self, registry, functions):
        analyzed = run("Select count(*) From tcp", registry, functions)
        assert analyzed.kind == "aggregation"
        assert analyzed.window_key_index == -1
        assert analyzed.warnings  # no ordered group key -> flush-only

    def test_join(self, registry, functions):
        analyzed = run(
            "Select B.time From eth0.tcp B, eth1.tcp C Where B.time = C.time",
            registry, functions)
        assert analyzed.kind == "join"

    def test_three_way_join_rejected(self, registry, functions):
        with pytest.raises(SemanticError):
            run("Select a.time From eth0.tcp a, eth1.tcp b, eth2.tcp c",
                registry, functions)

    def test_merge(self, registry, functions):
        base = run("DEFINE query_name s0; Select time, destIP From tcp",
                   registry, functions)
        streams = {"s0": base.output_schema, "s1": base.output_schema}
        analyzed = run("Merge s0.time : s1.time From s0, s1",
                       registry, functions, streams)
        assert analyzed.kind == "merge"


class TestBinding:
    def test_unknown_source(self, registry, functions):
        with pytest.raises(SemanticError):
            run("Select x From nosuchthing", registry, functions)

    def test_interface_on_stream_rejected(self, registry, functions):
        with pytest.raises(SemanticError):
            run("Select x From eth0.nosuchproto", registry, functions)

    def test_unknown_column(self, registry, functions):
        with pytest.raises(SemanticError):
            run("Select nocolumn From tcp", registry, functions)

    def test_ambiguous_column(self, registry, functions):
        with pytest.raises(SemanticError):
            run("Select time From eth0.tcp B, eth1.tcp C Where B.time = C.time",
                registry, functions)

    def test_qualified_disambiguation(self, registry, functions):
        analyzed = run(
            "Select B.time From eth0.tcp B, eth1.tcp C Where B.time = C.time",
            registry, functions)
        assert analyzed.output_columns[0].name == "time"

    def test_duplicate_bindings_rejected(self, registry, functions):
        with pytest.raises(SemanticError):
            run("Select B.time From eth0.tcp B, eth1.tcp B Where B.time = B.time",
                registry, functions)


class TestTyping:
    def test_output_types(self, registry, functions):
        analyzed = run(
            "Select destIP, time/60, timestamp, data From tcp",
            registry, functions)
        types = [c.gsql_type for c in analyzed.output_columns]
        assert types == [IP, UINT, FLOAT, STRING]

    def test_aggregate_types(self, registry, functions):
        analyzed = run(
            "Select count(*), sum(len), avg(len), min(time), max(timestamp) "
            "From tcp Group by time/60 as tb",
            registry, functions)
        types = [c.gsql_type for c in analyzed.output_columns]
        assert types == [ULLONG, ULLONG, FLOAT, UINT, FLOAT]

    def test_comparison_type_mismatch(self, registry, functions):
        with pytest.raises(SemanticError):
            run("Select time From tcp Where data = 5", registry, functions)

    def test_arithmetic_on_string_rejected(self, registry, functions):
        with pytest.raises(SemanticError):
            run("Select data + 1 From tcp", registry, functions)

    def test_where_must_be_boolean(self, registry, functions):
        with pytest.raises(SemanticError):
            run("Select time From tcp Where len + 1", registry, functions)

    def test_function_arity_checked(self, registry, functions):
        with pytest.raises(SemanticError):
            run("Select getlpmid(destIP) From tcp", registry, functions)

    def test_function_arg_type_checked(self, registry, functions):
        with pytest.raises(SemanticError):
            run("Select str_len(time) From tcp", registry, functions)

    def test_handle_param_must_be_literal(self, registry, functions):
        with pytest.raises(SemanticError):
            run("Select getlpmid(destIP, data) From tcp", registry, functions)

    def test_handle_accepts_query_param(self, registry, functions):
        analyzed = run("Select getlpmid(destIP, $table) From tcp",
                       registry, functions)
        assert analyzed.params == ["table"]

    def test_unknown_function(self, registry, functions):
        from repro.gsql.functions import FunctionError
        with pytest.raises(FunctionError):
            run("Select nosuchfn(time) From tcp", registry, functions)


class TestAggregationRewrite:
    def test_select_by_alias_and_expr(self, registry, functions):
        analyzed = run(
            "Select tb, time/60, count(*) From tcp Group by time/60 as tb",
            registry, functions)
        assert analyzed.output_columns[0].expr == KeyRef(0)
        assert analyzed.output_columns[1].expr == KeyRef(0)
        assert analyzed.output_columns[2].expr == AggRef(0)

    def test_aggregates_deduplicated(self, registry, functions):
        analyzed = run(
            "Select count(*), count(*), sum(len) From tcp Group by time/60 as tb",
            registry, functions)
        assert len(analyzed.aggregates) == 2

    def test_expression_over_aggregates(self, registry, functions):
        analyzed = run(
            "Select sum(len) / count(*) From tcp Group by time/60 as tb",
            registry, functions)
        expr = analyzed.output_columns[0].expr
        assert expr.left == AggRef(0)
        assert expr.right == AggRef(1)

    def test_raw_column_rejected(self, registry, functions):
        with pytest.raises(SemanticError):
            run("Select destIP, count(*) From tcp Group by time/60 as tb",
                registry, functions)

    def test_having_rewritten(self, registry, functions):
        analyzed = run(
            "Select tb, count(*) From tcp Group by time/60 as tb "
            "Having count(*) > 5",
            registry, functions)
        assert analyzed.having is not None
        assert analyzed.having.left == AggRef(0)

    def test_window_key_found(self, registry, functions):
        analyzed = run(
            "Select peer, tb, count(*) From tcp "
            "Group by getsubnet(destIP, 8) as peer, time/60 as tb",
            registry, functions)
        assert analyzed.window_key_index == 1  # tb is the ordered key
        assert analyzed.group_orderings[0].kind == OrderingKind.NONE


class TestJoinWindows:
    def test_equality_window(self, registry, functions):
        analyzed = run(
            "Select B.time From eth0.tcp B, eth1.tcp C Where B.time = C.time",
            registry, functions)
        window = analyzed.join_window
        assert (window.low, window.high) == (0, 0)
        assert window.is_equality

    def test_band_window(self, registry, functions):
        analyzed = run(
            "Select B.time From eth0.tcp B, eth1.tcp C "
            "Where B.time >= C.time - 1 and B.time <= C.time + 1",
            registry, functions)
        window = analyzed.join_window
        assert (window.low, window.high) == (-1, 1)
        assert window.width == 2

    def test_reversed_band_window(self, registry, functions):
        analyzed = run(
            "Select B.time From eth0.tcp B, eth1.tcp C "
            "Where C.time >= B.time - 2 and C.time <= B.time + 3",
            registry, functions)
        window = analyzed.join_window
        # C - B in [-2, 3]  =>  B - C in [-3, 2]
        assert (window.low, window.high) == (-3, 2)

    def test_no_window_rejected(self, registry, functions):
        with pytest.raises(SemanticError):
            run("Select B.time From eth0.tcp B, eth1.tcp C "
                "Where B.destPort = C.destPort",
                registry, functions)

    def test_half_window_rejected(self, registry, functions):
        with pytest.raises(SemanticError):
            run("Select B.time From eth0.tcp B, eth1.tcp C "
                "Where B.time >= C.time - 1",
                registry, functions)

    def test_unordered_equality_not_a_window(self, registry, functions):
        # destPort = destPort is an equality but not on ordered attrs
        with pytest.raises(SemanticError):
            run("Select B.time From eth0.tcp B, eth1.tcp C "
                "Where B.destPort = C.destPort and B.len = C.len",
                registry, functions)


class TestOrderingImputation:
    def test_projection_preserves(self, registry, functions):
        analyzed = run("Select time, destPort From tcp", registry, functions)
        assert analyzed.output_columns[0].ordering.is_increasing
        assert analyzed.output_columns[1].ordering.kind == OrderingKind.NONE

    def test_bucketing_weakens_strictness(self, registry, functions):
        analyzed = run("Select time/60 From tcp", registry, functions)
        assert analyzed.output_columns[0].ordering == Ordering.increasing()

    def test_banded_input_bucketed(self, registry, functions):
        # time_start is FLOAT so /60 is float division: the band scales.
        analyzed = run("Select time_start/60 From netflow", registry, functions)
        assert analyzed.output_columns[0].ordering == Ordering.banded(0.5)

    def test_negation_reverses(self, registry, functions):
        analyzed = run("Select 0 - time From tcp", registry, functions)
        assert analyzed.output_columns[0].ordering == Ordering.decreasing()

    def test_group_key_ordering_in_output(self, registry, functions):
        analyzed = run("Select tb, count(*) From tcp Group by time/60 as tb",
                       registry, functions)
        assert analyzed.output_columns[0].ordering.is_increasing
        assert analyzed.output_columns[1].ordering.kind == OrderingKind.NONE

    def test_equality_join_keeps_monotone(self, registry, functions):
        analyzed = run(
            "Select B.time From eth0.tcp B, eth1.tcp C Where B.time = C.time",
            registry, functions)
        assert analyzed.output_columns[0].ordering == Ordering.increasing()

    def test_band_join_output_banded(self, registry, functions):
        analyzed = run(
            "Select B.time From eth0.tcp B, eth1.tcp C "
            "Where B.time >= C.time - 1 and B.time <= C.time + 1",
            registry, functions)
        # The paper: "B.ts might be ... banded-increasing(2) depending on
        # the choice of join algorithm"
        assert analyzed.output_columns[0].ordering == Ordering.banded(2)


class TestMergeAnalysis:
    def _streams(self, registry, functions):
        base = run("Select time, destIP From tcp", registry, functions)
        return {"s0": base.output_schema, "s1": base.output_schema}

    def test_merge_ordering(self, registry, functions):
        streams = self._streams(registry, functions)
        analyzed = run("Merge s0.time : s1.time From s0, s1",
                       registry, functions, streams)
        time_col = analyzed.output_columns[0]
        assert time_col.ordering == Ordering.increasing()

    def test_merge_column_must_be_ordered(self, registry, functions):
        streams = self._streams(registry, functions)
        with pytest.raises(SemanticError):
            run("Merge s0.destIP : s1.destIP From s0, s1",
                registry, functions, streams)

    def test_merge_schema_mismatch(self, registry, functions):
        base = run("Select time, destIP From tcp", registry, functions)
        other = run("Select time From tcp", registry, functions)
        streams = {"s0": base.output_schema, "s2": other.output_schema}
        with pytest.raises(SemanticError):
            run("Merge s0.time : s2.time From s0, s2",
                registry, functions, streams)

    def test_merge_wrong_qualifier(self, registry, functions):
        streams = self._streams(registry, functions)
        with pytest.raises(SemanticError):
            run("Merge s1.time : s0.time From s0, s1",
                registry, functions, streams)


class TestOutputNaming:
    def test_default_and_alias_names(self, registry, functions):
        analyzed = run(
            "Select destIP, sum(len) as nbytes, count(*) From tcp "
            "Group by destIP, time/60 as tb Having count(*) > 0",
            registry, functions)
        names = [c.name for c in analyzed.output_columns]
        assert names[0] == "destIP"
        assert names[1] == "nbytes"
        assert names[2] == "cnt"

    def test_name_collisions_deduped(self, registry, functions):
        analyzed = run("Select time, time From tcp", registry, functions)
        names = [c.name for c in analyzed.output_columns]
        assert len(set(n.lower() for n in names)) == 2
