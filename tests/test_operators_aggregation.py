"""Tests for the HFTA aggregation node (ordered flush, partial combine)."""

import pytest

from repro.core.heartbeat import FLUSH, Punctuation
from repro.operators.aggregation import AggregationNode


def make_agg(compile_plan, text, streams=None, mode="compiled"):
    analyzed, plan, compiler = compile_plan(text, streams=streams, mode=mode)
    node = AggregationNode(plan.hfta, analyzed, compiler)
    tap = node.subscribe()
    return node, tap


def rows_of(tap):
    return [item for item in tap.drain() if type(item) is tuple]


# A stream schema to aggregate over: (time UINT increasing, len UINT).
def base_stream(compile_plan):
    _, plan, _ = compile_plan("DEFINE query_name base; "
                              "Select time, len From tcp")
    return {"base": plan.output_schema}


class TestFullAggregation:
    def test_ordered_flush(self, compile_plan):
        streams = base_stream(compile_plan)
        node, tap = make_agg(
            compile_plan,
            "DEFINE query_name q; Select tb, count(*), sum(len) From base "
            "Group by time/60 as tb", streams)
        for t in (0, 10, 50):
            node.dispatch((t, 100), 0)
        assert rows_of(tap) == []  # bucket 0 still open
        node.dispatch((65, 100), 0)  # advances to bucket 1
        rows = rows_of(tap)
        assert rows == [(0, 3, 300)]
        assert node.open_groups == 1

    def test_having_filters_groups(self, compile_plan):
        streams = base_stream(compile_plan)
        node, tap = make_agg(
            compile_plan,
            "DEFINE query_name q; Select tb, count(*) From base "
            "Group by time/60 as tb Having count(*) >= 2", streams)
        node.dispatch((0, 1), 0)
        node.dispatch((70, 1), 0)
        node.dispatch((71, 1), 0)
        node.dispatch((140, 1), 0)
        rows = rows_of(tap)
        assert rows == [(1, 2)]  # bucket 0 (count 1) suppressed

    def test_avg(self, compile_plan):
        streams = base_stream(compile_plan)
        node, tap = make_agg(
            compile_plan,
            "DEFINE query_name q; Select tb, avg(len) From base "
            "Group by time/60 as tb", streams)
        node.dispatch((0, 100), 0)
        node.dispatch((1, 300), 0)
        node.dispatch((70, 1), 0)
        assert rows_of(tap) == [(0, 200.0)]

    def test_multiple_groups_flush_in_key_order(self, compile_plan):
        streams = base_stream(compile_plan)
        node, tap = make_agg(
            compile_plan,
            "DEFINE query_name q; Select tb, lenk, count(*) From base "
            "Group by time/60 as tb, len as lenk", streams)
        node.dispatch((0, 5), 0)
        node.dispatch((61, 7), 0)
        node.dispatch((125, 9), 0)  # closes buckets 0 and 1
        rows = rows_of(tap)
        assert [r[0] for r in rows] == [0, 1]

    def test_flush_token_drains_everything(self, compile_plan):
        streams = base_stream(compile_plan)
        node, tap = make_agg(
            compile_plan,
            "DEFINE query_name q; Select tb, count(*) From base "
            "Group by time/60 as tb", streams)
        node.dispatch((0, 1), 0)
        node.dispatch((61, 1), 0)
        node.dispatch(FLUSH, 0)
        items = tap.drain()
        rows = [i for i in items if type(i) is tuple]
        assert rows == [(0, 1), (1, 1)]
        assert any(item is FLUSH for item in items)

    def test_punctuation_flushes(self, compile_plan):
        streams = base_stream(compile_plan)
        node, tap = make_agg(
            compile_plan,
            "DEFINE query_name q; Select tb, count(*) From base "
            "Group by time/60 as tb", streams)
        node.dispatch((0, 1), 0)
        # a promise that time >= 120 closes bucket 0 (and 1)
        node.dispatch(Punctuation({0: 120}), 0)
        rows = rows_of(tap)
        assert rows == [(0, 1)]

    def test_outgoing_punctuation_on_window_slot(self, compile_plan):
        streams = base_stream(compile_plan)
        node, tap = make_agg(
            compile_plan,
            "DEFINE query_name q; Select tb, count(*) From base "
            "Group by time/60 as tb", streams)
        node.dispatch((0, 1), 0)
        node.dispatch((200, 1), 0)
        puncts = [i for i in tap.drain() if isinstance(i, Punctuation)]
        assert puncts and puncts[-1].bound_for(0) == 3

    def test_pre_predicate_applied(self, compile_plan):
        streams = base_stream(compile_plan)
        node, tap = make_agg(
            compile_plan,
            "DEFINE query_name q; Select tb, count(*) From base "
            "Where len > 10 Group by time/60 as tb", streams)
        node.dispatch((0, 5), 0)
        node.dispatch((1, 50), 0)
        node.dispatch(FLUSH, 0)
        assert rows_of(tap) == [(0, 1)]


class TestFromPartials:
    def test_combines_lfta_partials(self, compile_plan):
        # Plan the paper-style two-level aggregation, then drive the HFTA
        # directly with partial tuples (key, count_partial, sum_partial).
        analyzed, plan, compiler = compile_plan(
            "DEFINE query_name q; Select tb, count(*), sum(len) From tcp "
            "Group by time/60 as tb")
        node = AggregationNode(plan.hfta, analyzed, compiler)
        tap = node.subscribe()
        assert plan.hfta.final_from_partials
        # Two partials for bucket 0 (an eviction + final flush), one for 1.
        node.dispatch((0, 3, 300), 0)
        node.dispatch((0, 2, 200), 0)
        node.dispatch((1, 1, 50), 0)
        node.dispatch(FLUSH, 0)
        assert rows_of(tap) == [(0, 5, 500), (1, 1, 50)]

    def test_banded_partials_respect_slack(self, compile_plan):
        # netflow time_start is banded(30): bucketing by /60 (float) makes
        # the group key banded(0.5); the HFTA must keep the slack.
        analyzed, plan, compiler = compile_plan(
            "DEFINE query_name q; Select tb, count(*) From netflow "
            "Group by time_start/60 as tb")
        node = AggregationNode(plan.hfta, analyzed, compiler)
        tap = node.subscribe()
        assert node._window_band == pytest.approx(0.5)
        node.dispatch((1.0, 4), 0)
        node.dispatch((1.4, 2), 0)  # within the band: must NOT close 1.0
        assert rows_of(tap) == []
        # 2.0 promises future keys >= 1.5: both 1.0 and 1.4 are closed.
        node.dispatch((2.0, 1), 0)
        assert rows_of(tap) == [(1.0, 4), (1.4, 2)]
