#!/usr/bin/env python
"""Router configuration analysis: BGP UPDATE monitoring in GSQL.

The paper lists "router configuration analysis (e.g. BGP monitoring)"
among Gigascope's applications and BGP updates among the packet sources
a Protocol can interpret.  This example watches a feed of UPDATE
messages for two classic signals:

* per-origin-AS announcement volume per minute, and
* withdrawal storms (route flaps) -- minutes where withdrawals spike.

Run:  python examples/bgp_monitor.py
"""

import random

from repro import Gigascope
from repro.net.bgp import BGPUpdate
from repro.net.build import build_udp_frame, capture
from repro.net.packet import ip_to_int


def bgp_feed(duration_s=600.0, updates_per_s=20.0, seed=17,
             flap_start=240.0, flap_end=300.0):
    """Synthetic BGP session: steady announcements plus a flap window."""
    rng = random.Random(seed)
    origins = [7018, 1239, 3356, 701, 2914]
    now = 0.0
    while now < duration_s:
        origin = rng.choice(origins)
        prefix = (ip_to_int(f"{rng.randrange(1, 224)}.{rng.randrange(256)}.0.0"), 16)
        flapping = flap_start <= now < flap_end
        if flapping and rng.random() < 0.7:
            update = BGPUpdate(withdrawn=[prefix], as_path=[origin])
        else:
            path = [rng.choice(origins) for _ in range(rng.randrange(1, 4))]
            update = BGPUpdate(announced=[prefix], as_path=path + [origin])
        frame = build_udp_frame("10.0.0.1", "10.0.0.2", 179, 179,
                                payload=update.pack())
        yield capture(frame, now, "bgp0")
        now += rng.expovariate(updates_per_s)


def main() -> None:
    gs = Gigascope(default_interface="bgp0")

    gs.add_queries("""
        DEFINE query_name origin_volume;
        Select tb, origin_as, sum(announced) as prefixes
        From bgp
        Group by time/60 as tb, origin_as
        Having sum(announced) > 0;

        DEFINE query_name flap_watch;
        Select tb, sum(withdrawn) as withdrawals, count(*) as updates
        From bgp
        Group by time/60 as tb
        Having sum(withdrawn) > 100
    """)

    volume = gs.subscribe("origin_volume")
    flaps = gs.subscribe("flap_watch")
    gs.start()
    gs.feed(bgp_feed())
    gs.flush()

    print("announcements per origin AS per minute (first 3 minutes):")
    print("minute  origin-AS  prefixes")
    for tb, origin, prefixes in volume.poll():
        if tb < 3:
            print(f"{tb:>6}  {origin:>9}  {prefixes:>8}")

    print("\nwithdrawal storms (>100 withdrawals/minute):")
    print("minute  withdrawals  updates")
    for tb, withdrawals, updates in flaps.poll():
        print(f"{tb:>6}  {withdrawals:>11}  {updates:>7}")
    print("\nThe flap window (t=240..300 s -> minute 4) is flagged.")


if __name__ == "__main__":
    main()
