#!/usr/bin/env python
"""Network attack monitoring: a SYN-flood detector on the alert layer.

The paper lists "network attack and intrusion detection and monitoring
(e.g. distributed denial of service attacks)" among Gigascope's target
applications.  The GSQL query stays a plain per-victim SYN aggregate;
the declarative trigger layer (``repro.alerts``) owns the threshold,
the hysteresis, and the RAISE/CLEAR alert edges, and the labeled
scenario corpus (``repro.workloads.scenarios``) supplies an attack
whose ground truth is known -- so the printed alerts can be checked
against when and where the flood actually happened.

Run:  python examples/syn_flood_detector.py
"""

from repro import Gigascope
from repro.net.packet import int_to_ip
from repro.workloads.scenarios import syn_flood


def main() -> None:
    gs = Gigascope(heartbeat_interval=0.5)

    # tcpflags & 0x12 = 0x02 selects SYN-without-ACK segments; no
    # Having clause -- thresholding moved into the trigger below.
    gs.add_query(
        """
        DEFINE query_name syn_watch;
        Select tb, destIP, count(*) as syns
        From tcp
        Where tcpflags & 18 = 2
        Group by time/5 as tb, destIP
        """
    )

    gs.enable_alerts([
        "synflood:on=syn_watch,key=destIP,when=sum(syns) > 400,"
        "epoch=5,raise_for=1,clear_for=2,severity=critical",
    ])

    alerts = gs.subscribe("alerts")
    gs.start()

    scenario = syn_flood(duration_s=50.0, background_mbps=6.0, pps=800.0)
    gs.feed(scenario.packets, pump_every=64)
    gs.flush()

    print("ALERTS (sum(syns) > 400 per 5 s epoch, per destination)")
    print("time    kind   severity  victim            SYNs")
    for time, epoch, trigger, kind, severity, key, value, _ in alerts.poll():
        print(f"{time:>6.1f}  {kind.decode():<5}  {severity.decode():<8}  "
              f"{key.decode():<16}  {value:>6.0f}")

    lo, hi = scenario.window
    print(f"\nGround truth: {scenario.kind} against "
          f"{int_to_ip(scenario.subject_ip)} during t={lo:.0f}..{hi:.0f} s.")
    print("The RAISE lands in the first attack epoch; after the flood "
          "stops,\ntwo quiet epochs (clear_for=2) end the alert with a "
          "CLEAR.")


if __name__ == "__main__":
    main()
