#!/usr/bin/env python
"""Network attack monitoring: a SYN-flood / scan detector in GSQL.

The paper lists "network attack and intrusion detection and monitoring
(e.g. distributed denial of service attacks)" among Gigascope's target
applications.  This example watches for destination hosts receiving an
abnormal number of TCP SYNs per 5-second bucket -- the classic SYN
flood signature -- using only filtering + aggregation + HAVING, with a
query parameter so the alarm threshold can be changed on the fly.

Run:  python examples/syn_flood_detector.py
"""

import random

from repro import Gigascope
from repro.net.build import build_tcp_frame, capture
from repro.net.packet import int_to_ip
from repro.net.tcp import FLAG_ACK, FLAG_SYN
from repro.workloads.generators import background_pool, merge_streams, packet_stream


def attack_stream(victim="192.168.9.9", start=20.0, duration=15.0,
                  pps=2000.0, seed=5):
    """Spoofed-source SYNs aimed at one victim."""
    rng = random.Random(seed)
    now = start
    end = start + duration
    while now < end:
        src = f"{rng.randrange(1, 224)}.{rng.randrange(256)}." \
              f"{rng.randrange(256)}.{rng.randrange(1, 255)}"
        frame = build_tcp_frame(src, victim, rng.randrange(1024, 65535), 80,
                                flags=FLAG_SYN, seq=rng.randrange(1 << 31))
        yield capture(frame, now)
        now += (0.5 + rng.random()) / pps


def main() -> None:
    gs = Gigascope()

    # tcpflags & 0x12 = 0x02 selects SYN-without-ACK segments.
    gs.add_query(
        """
        DEFINE query_name syn_watch;
        Select tb, destIP, count(*) as syns
        From tcp
        Where tcpflags & 18 = 2
        Group by time/5 as tb, destIP
        Having count(*) > $threshold
        """,
        params={"threshold": 100},
    )
    print(gs.explain("syn_watch"))
    print()

    alerts = gs.subscribe("syn_watch")
    gs.start()

    background = packet_stream(background_pool(seed=1), rate_mbps=20.0,
                               duration_s=60.0, seed=3)
    gs.feed(merge_streams(background, attack_stream()))
    gs.flush()

    print("ALERTS (threshold: >100 SYNs / 5s to one host)")
    print("bucket  victim            SYN count")
    for tb, victim, syns in alerts.poll():
        print(f"{tb:>6}  {int_to_ip(victim):<16}  {syns:>9}")
    print("\nThe attack window (t=20..35s -> buckets 4..6) stands out; "
          "normal traffic never crosses the threshold.")


if __name__ == "__main__":
    main()
