#!/usr/bin/env python
"""Quickstart: compile a GSQL query and run it over synthetic traffic.

This is the smallest useful Gigascope program: one selection query over
the built-in ``tcp`` Protocol, fed from a synthetic packet stream.

Run:  python examples/quickstart.py
"""

from repro import Gigascope
from repro.net.packet import int_to_ip
from repro.workloads.generators import http_port80_pool, packet_stream


def main() -> None:
    gs = Gigascope()

    # The paper's first example query (Section 2.2): destination IP and
    # port plus a timestamp for TCP packets on eth0.
    gs.add_query("""
        DEFINE query_name tcpdest0;
        Select destIP, destPort, time
        From eth0.tcp
        Where ipversion = 4 and protocol = 6
    """)

    # Show what the compiler did with it: a simple query executes
    # entirely as an LFTA, with predicates pushed toward the NIC.
    print(gs.explain("tcpdest0"))
    plan = gs.plan_of("tcpdest0")
    print("NIC prefilter:", [str(p) for p in plan.lftas[0].hints.pushed])
    print("snap length:", plan.lftas[0].hints.snaplen, "bytes")
    print()

    subscription = gs.subscribe("tcpdest0")
    gs.start()

    # 2 seconds of 20 Mbit/s port-80 traffic.
    pool = http_port80_pool(seed=1)
    gs.feed(packet_stream(pool, rate_mbps=20.0, duration_s=2.0))
    gs.flush()

    rows = subscription.poll()
    print(f"received {len(rows)} tuples; first five:")
    for dest_ip, dest_port, time in rows[:5]:
        print(f"  t={time:>3}  {int_to_ip(dest_ip)}:{dest_port}")

    stats = gs.stats()["tcpdest0"]
    print(f"\nLFTA stats: {stats['packets_seen']} packets seen, "
          f"{stats['tuples_out']} tuples out, {stats['discarded']} discarded")


if __name__ == "__main__":
    main()
