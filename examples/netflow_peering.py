#!/usr/bin/env python
"""Traffic analysis over Netflow: per-peer volume from router exports.

Netflow is the paper's running example of non-trivially ordered data
(Section 2.1): a router exports flow records sorted by *end* time,
dumping its cache every 30 seconds, so the *start* time -- the one most
queries key on -- is only banded-increasing(30 s).  The built-in
``netflow`` Protocol declares exactly that, and the aggregation below
groups on a bucket of ``time_start``: the engine keeps the band of
slack before closing groups, so late-starting flows still land in the
right bucket.

Run:  python examples/netflow_peering.py
"""

from repro import Gigascope
from repro.workloads.netflow_source import netflow_export_stream


def main() -> None:
    gs = Gigascope(default_interface="nf0")

    # floor() is an order-preserving function: the analyzer knows the
    # bucketed key is still (banded-)increasing, so groups flush
    # incrementally instead of only at end of stream.
    gs.add_query("""
        DEFINE query_name flow_minutes;
        Select tb, count(*) as flows, sum(octets) as octets,
               sum(packets) as pkts
        From netflow
        Group by floor(time_start)/60 as tb
    """)

    # Show the imputed ordering: the banded property survives bucketing.
    analyzed_schema = gs.schema_of("flow_minutes")
    print("output schema:")
    for attribute in analyzed_schema.attributes:
        print(f"  {attribute}")
    print()

    subscription = gs.subscribe("flow_minutes")
    gs.start()

    # Ten minutes of synthetic flow exports from one router.
    gs.feed(netflow_export_stream(duration_s=600.0, flows_per_second=120.0))
    gs.flush()

    print("minute  flows   octets    packets")
    for tb, flows, octets, pkts in subscription.poll():
        print(f"{tb:>6}  {flows:>5}  {octets:>8}  {pkts:>8}")

    stats = gs.stats()
    lfta_name = next(name for name in stats if name.startswith("_fta_"))
    print(f"\nLFTA {lfta_name}: {stats[lfta_name]['tuples_in']} flow records "
          f"in, {stats[lfta_name]['tuples_out']} partials out "
          "(early reduction before the HFTA)")


if __name__ == "__main__":
    main()
