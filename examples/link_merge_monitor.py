#!/usr/bin/env python
"""Monitoring a simplex optical link pair with merge + getlpmid.

Optical links are usually simplex: seeing the full traffic on a logical
link means monitoring two interfaces and merging the streams (the paper
implemented merge before join for exactly this reason).  On top of the
merge we run the paper's Section 2.2 aggregation: per-minute traffic
per peer AS, where the peer is found by longest-prefix matching the
destination address against a routing-table snapshot -- the
``getlpmid`` user function with a pass-by-handle prefix table.

Run:  python examples/link_merge_monitor.py
"""

from repro import Gigascope
from repro.workloads.generators import http_port80_pool, packet_stream, merge_streams

# A toy routing-table snapshot: prefix -> peer AS id.  In the AT&T
# deployment this came from a file of peer prefixes ('peerid.tbl').
PEER_TABLE = "\n".join([
    "192.168.0.0/24 7018  # AT&T",
    "192.168.1.0/24 1239  # Sprint",
    "192.168.2.0/24 3356  # Level3",
    "192.168.3.0/24 701   # UUNET",
])


def main() -> None:
    gs = Gigascope()

    gs.add_queries("""
        DEFINE query_name east;
        Select destIP, len, time From eth0.tcp;

        DEFINE query_name west;
        Select destIP, len, time From eth1.tcp;

        DEFINE query_name link;
        Merge east.time : west.time From east, west
    """)

    # The aggregation reads the merged stream; peer lookup via the
    # pass-by-handle table (here passed as a query parameter).
    gs.add_query(
        """
        DEFINE query_name peer_minutes;
        Select peerid, tb, count(*), sum(len)
        From link
        Group by time/60 as tb, getlpmid(destIP, $peers) as peerid
        """,
        params={"peers": PEER_TABLE},
    )

    subscription = gs.subscribe("peer_minutes")
    gs.start()

    pool_a = http_port80_pool(seed=11)
    pool_b = http_port80_pool(seed=22)
    east = packet_stream(pool_a, rate_mbps=8.0, duration_s=180.0,
                         interface="eth0", seed=1)
    west = packet_stream(pool_b, rate_mbps=6.0, duration_s=180.0,
                         interface="eth1", seed=2)
    gs.feed(merge_streams(east, west))
    gs.flush()

    print("minute  peer-AS  packets     bytes")
    for peer, tb, packets, nbytes in subscription.poll():
        print(f"{tb:>6}  {peer:>7}  {packets:>7}  {nbytes:>8}")

    link_stats = gs.stats()["link"]
    print(f"\nmerge node: {link_stats['tuples_in']} tuples in, "
          f"{link_stats['tuples_out']} out "
          f"(order preserved across both interfaces)")


if __name__ == "__main__":
    main()
