#!/usr/bin/env python
"""Reproduce the paper's Section 4 experiment interactively.

Sweeps the four capture stacks over the Section 4 workload and prints
the loss curve plus the 2%-loss knee table, side by side with the
paper's numbers (disk 180 / libpcap 480 / host 480 / NIC <2% at 610).
The same code backs benchmark E1; this script is the human-facing view.

Run:  python examples/capture_path_study.py        (~1 minute)
"""

from repro.gsql.schema import PacketView
from repro.sim.capture import CaptureConfig, CaptureSimulation, find_loss_knee
from repro.workloads.generators import background_pool, http_port80_pool, section4_stream

PAPER = {
    CaptureConfig.DISK_DUMP: "180",
    CaptureConfig.LIBPCAP_DISCARD: "480",
    CaptureConfig.GIGASCOPE_HOST: "480",
    CaptureConfig.GIGASCOPE_NIC: ">=610 (source-limited)",
}


def main() -> None:
    pools = (http_port80_pool(seed=1), background_pool(seed=2))
    cache = {}

    def qualifier(packet):
        key = id(packet.data)
        if key not in cache:
            view = PacketView(packet)
            if view.tcp is not None and view.tcp.dst_port == 80:
                cache[key] = len(view.payload or b"")
            else:
                cache[key] = None
        return cache[key]

    def loss_at(config, mbps):
        stream = section4_stream(background_mbps=max(0.0, mbps - 60.0),
                                 duration_s=0.5, pools=pools)
        return CaptureSimulation(config, qualifier=qualifier).run(stream).loss_rate

    rates = [120, 180, 240, 330, 420, 480, 540, 610, 700]
    print("loss rate vs offered load (Mbit/s); 60 Mbit/s of port-80 "
          "traffic is always present\n")
    print("config            " + "".join(f"{r:>7}" for r in rates))
    for config in CaptureConfig:
        losses = [loss_at(config, r) for r in rates]
        print(f"{config.value:<18}" + "".join(f"{l:>7.3f}" for l in losses))

    print("\n2%-loss knees (Mbit/s): paper vs this model")
    print(f"{'config':<20}{'paper':>24}{'measured':>10}")
    for config in CaptureConfig:
        knee = find_loss_knee(lambda m: loss_at(config, m),
                              low=80, high=900, tolerance=15)
        print(f"{config.value:<20}{PAPER[config]:>24}{knee:>10.0f}")

    print("\nConclusions reproduced: early data reduction is critical "
          "(and the earlier the better); the host paths die of interrupt "
          "livelock; touching disk is worst of all.")


if __name__ == "__main__":
    main()
