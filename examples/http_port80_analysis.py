#!/usr/bin/env python
"""The paper's Section 4 workload: what fraction of port-80 traffic is HTTP?

Port 80 is used to tunnel through firewalls, so counting packets on
port 80 says little about web traffic.  The analysis compares a count
of all port-80 packets with a count of those whose payload matches
``^[^\\n]*HTTP/1.*`` -- expensive processing that the GSQL compiler
splits: the LFTA filters TCP port 80 (cheap, runs in the RTS or on the
NIC), and the HFTA runs the regular expression.

Run:  python examples/http_port80_analysis.py
"""

from repro import Gigascope
from repro.workloads.generators import section4_stream


def main() -> None:
    gs = Gigascope()

    gs.add_queries(r"""
        DEFINE query_name port80_all;
        Select tb, count(*) From tcp
        Where destPort = 80
        Group by time/10 as tb;

        DEFINE query_name port80_http;
        Select tb, count(*) From tcp
        Where destPort = 80 and str_match_regex(data, '^[^\n]*HTTP/1.')
        Group by time/10 as tb
    """)

    for name in ("port80_all", "port80_http"):
        print(gs.explain(name))
    print()

    all_sub = gs.subscribe("port80_all")
    http_sub = gs.subscribe("port80_http")
    gs.start()

    # 60 Mbit/s of port-80 traffic plus 40 Mbit/s background, 30 s.
    gs.feed(section4_stream(background_mbps=40.0, duration_s=30.0))
    gs.flush()

    totals = {tb: count for tb, count in all_sub.poll()}
    https = {tb: count for tb, count in http_sub.poll()}

    print("bucket  port-80 pkts  HTTP pkts  HTTP fraction")
    for tb in sorted(totals):
        total = totals[tb]
        http = https.get(tb, 0)
        print(f"{tb:>6}  {total:>12}  {http:>9}  {http / total:>13.1%}")

    grand_total = sum(totals.values())
    grand_http = sum(https.values())
    print(f"\noverall: {grand_http}/{grand_total} "
          f"= {grand_http / grand_total:.1%} of port-80 traffic is HTTP "
          "(the rest is tunneled)")


if __name__ == "__main__":
    main()
