"""``gsq-trace``: filter, trim, and convert capture files with GSQL.

The data-management problem the paper opens with -- "Most network
analysis is done via ad-hoc tools on network trace dumps, often
resulting in severe data management problems" -- starts with trace
files that are too big and in the wrong format.  This tool applies a
GSQL predicate to a trace and writes the surviving packets back out,
converting between pcap and pcapng by extension:

    # keep only port-80 TCP, as pcapng
    python -m repro.trace --in big.pcap --out web.pcapng \\
        --protocol tcp --where "destPort = 80"

    # trim to a time range and truncate to headers
    python -m repro.trace --in big.pcap --out sample.pcap \\
        --time-range 100:200 --snaplen 128

The predicate runs through the real GSQL front end and code generator:
whatever a query can filter, the trace tool can too (including user
functions such as ``getlpmid``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Iterable, List, Optional

from repro.gsql.codegen import ExprCompiler
from repro.gsql.functions import builtin_functions
from repro.gsql.lexer import GSQLSyntaxError
from repro.gsql.parser import parse_query
from repro.gsql.schema import builtin_registry
from repro.gsql.semantic import SemanticError, analyze
from repro.net.packet import CapturedPacket
from repro.net.pcap import PcapReader, PcapWriter
from repro.net.pcapng import PcapngReader, PcapngWriter, SHB_TYPE


def _open_reader(path: str):
    import struct
    handle = open(path, "rb")
    magic = handle.read(4)
    handle.seek(0)
    if len(magic) == 4 and struct.unpack("<I", magic)[0] == SHB_TYPE:
        return PcapngReader(handle)
    return PcapReader(handle)


def _open_writer(path: str, snaplen: int):
    if path.endswith(".pcapng"):
        return PcapngWriter(open(path, "wb"), snaplen=snaplen)
    return PcapWriter(open(path, "wb"), snaplen=snaplen)


def build_packet_filter(protocol_name: str, where: Optional[str]):
    """Compile ``where`` into a packet predicate via the GSQL front end."""
    registry = builtin_registry()
    functions = builtin_functions()
    protocol = registry.get(protocol_name)
    if protocol is None:
        raise SystemExit(f"unknown protocol {protocol_name!r}; "
                         f"one of {', '.join(registry.names())}")
    if where is None:
        return lambda packet: bool(protocol.interpret(packet))
    text = f"Select * From {protocol_name} Where {where}"
    analyzed = analyze(parse_query(text), registry, functions)
    compiler = ExprCompiler(analyzed, functions)
    predicate = compiler.predicate_fn(analyzed.where_conjuncts, (None, None))

    def keep(packet: CapturedPacket) -> bool:
        return any(predicate(row) for row in protocol.interpret(packet))

    return keep


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="gsq-trace",
        description="Filter/convert capture files with GSQL predicates.",
    )
    parser.add_argument("--in", dest="input", required=True, metavar="FILE",
                        help="input trace (pcap or pcapng, sniffed by magic)")
    parser.add_argument("--out", dest="output", required=True, metavar="FILE",
                        help="output trace; '.pcapng' suffix selects pcapng")
    parser.add_argument("--protocol", default="ip",
                        help="protocol whose fields --where may use "
                             "(default: ip)")
    parser.add_argument("--where", help="GSQL predicate over the protocol's "
                                        "fields; omitted = keep packets the "
                                        "protocol interprets")
    parser.add_argument("--time-range", metavar="START:END",
                        help="keep packets with START <= timestamp < END")
    parser.add_argument("--snaplen", type=int, default=65535,
                        help="truncate written packets (default: full)")
    parser.add_argument("--limit", type=int,
                        help="stop after writing this many packets")
    parser.add_argument("--invert", action="store_true",
                        help="keep packets that do NOT match")
    args = parser.parse_args(argv)

    time_range = None
    if args.time_range:
        try:
            start_text, _, end_text = args.time_range.partition(":")
            time_range = (float(start_text), float(end_text))
        except ValueError:
            parser.error(f"bad --time-range {args.time_range!r}")

    try:
        keep = build_packet_filter(args.protocol, args.where)
    except (GSQLSyntaxError, SemanticError) as error:
        print(f"predicate error: {error}", file=sys.stderr)
        return 1

    read = written = 0
    with _open_reader(args.input) as reader:
        writer = _open_writer(args.output, args.snaplen)
        try:
            for packet in reader:
                read += 1
                if time_range is not None and not (
                        time_range[0] <= packet.timestamp < time_range[1]):
                    continue
                matched = keep(packet)
                if matched == args.invert:
                    continue
                writer.write(packet)
                written += 1
                if args.limit is not None and written >= args.limit:
                    break
        finally:
            writer.close()
    print(f"{written}/{read} packets -> {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
