"""Network substrate: wire formats, capture files, and network algorithms.

Everything Gigascope interprets at the packet level lives here, written
from scratch (no scapy/dpkt):

* :mod:`repro.net.packet` -- captured-packet container and address helpers
* :mod:`repro.net.ethernet`, :mod:`repro.net.ip`, :mod:`repro.net.tcp`,
  :mod:`repro.net.udp` -- header parse/build with checksums
* :mod:`repro.net.pcap` -- classic libpcap file reader/writer
* :mod:`repro.net.netflow` -- Netflow v5-style records and router export
* :mod:`repro.net.bgp` -- simplified BGP UPDATE messages
* :mod:`repro.net.lpm` -- longest-prefix-match trie (used by ``getlpmid``)
"""

from repro.net.packet import CapturedPacket, ip_to_int, int_to_ip, mac_to_bytes, bytes_to_mac
from repro.net.ethernet import EthernetHeader, ETHERTYPE_IPV4
from repro.net.ip import IPv4Header, PROTO_TCP, PROTO_UDP, PROTO_ICMP
from repro.net.tcp import TCPHeader
from repro.net.udp import UDPHeader
from repro.net.pcap import CaptureTruncated, PcapReader, PcapWriter
from repro.net.netflow import NetflowRecord, NetflowExporter, pack_netflow_v5, unpack_netflow_v5
from repro.net.bgp import BGPUpdate
from repro.net.lpm import PrefixTable

__all__ = [
    "CapturedPacket",
    "ip_to_int",
    "int_to_ip",
    "mac_to_bytes",
    "bytes_to_mac",
    "EthernetHeader",
    "ETHERTYPE_IPV4",
    "IPv4Header",
    "PROTO_TCP",
    "PROTO_UDP",
    "PROTO_ICMP",
    "TCPHeader",
    "UDPHeader",
    "CaptureTruncated",
    "PcapReader",
    "PcapWriter",
    "NetflowRecord",
    "NetflowExporter",
    "pack_netflow_v5",
    "unpack_netflow_v5",
    "BGPUpdate",
    "PrefixTable",
]
