"""Captured-packet container and address helpers.

A :class:`CapturedPacket` is what a capture device (NIC, pcap file, or
synthetic generator) hands to the Gigascope run-time system: raw bytes
plus capture metadata.  Interpretation of the bytes is done lazily by
the protocol schemas in :mod:`repro.gsql.schema` via the header parsers
in this package.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field


def ip_to_int(dotted: str) -> int:
    """Convert dotted-quad notation to a 32-bit integer.

    >>> hex(ip_to_int("10.0.0.1"))
    '0xa000001'
    """
    parts = dotted.split(".")
    if len(parts) != 4:
        raise ValueError(f"not a dotted quad: {dotted!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"octet out of range in {dotted!r}")
        value = (value << 8) | octet
    return value


def int_to_ip(value: int) -> str:
    """Convert a 32-bit integer to dotted-quad notation.

    >>> int_to_ip(0x0a000001)
    '10.0.0.1'
    """
    if not 0 <= value <= 0xFFFFFFFF:
        raise ValueError(f"not a 32-bit address: {value!r}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def mac_to_bytes(mac: str) -> bytes:
    """Convert ``aa:bb:cc:dd:ee:ff`` notation to 6 raw bytes."""
    parts = mac.split(":")
    if len(parts) != 6:
        raise ValueError(f"not a MAC address: {mac!r}")
    return bytes(int(part, 16) for part in parts)


def bytes_to_mac(raw: bytes) -> str:
    """Convert 6 raw bytes to ``aa:bb:cc:dd:ee:ff`` notation."""
    if len(raw) != 6:
        raise ValueError(f"MAC address must be 6 bytes, got {len(raw)}")
    return ":".join(f"{byte:02x}" for byte in raw)


@dataclass
class CapturedPacket:
    """A packet as delivered by a capture device.

    Attributes:
        timestamp: capture time in seconds (float; virtual time in
            simulations, epoch time when read from pcap).
        data: the captured bytes, possibly truncated to the snap length.
        orig_len: length of the packet on the wire.  Equal to
            ``len(data)`` unless a snap length truncated the capture.
        interface: symbolic name of the capture interface (GSQL binds
            Protocols to Interfaces by this name).
    """

    timestamp: float
    data: bytes
    orig_len: int = -1
    interface: str = "eth0"

    def __post_init__(self) -> None:
        if self.orig_len < 0:
            self.orig_len = len(self.data)

    @property
    def caplen(self) -> int:
        """Number of bytes actually captured."""
        return len(self.data)

    @property
    def truncated(self) -> bool:
        """True if a snap length cut the capture short."""
        return self.caplen < self.orig_len

    def truncate(self, snaplen: int) -> "CapturedPacket":
        """Return a copy truncated to ``snaplen`` bytes (snap length)."""
        if snaplen >= self.caplen:
            return self
        return CapturedPacket(
            timestamp=self.timestamp,
            data=self.data[:snaplen],
            orig_len=self.orig_len,
            interface=self.interface,
        )


# struct codes shared by the header modules
_U8 = struct.Struct("!B")
_U16 = struct.Struct("!H")
_U32 = struct.Struct("!I")


def read_u8(data: bytes, offset: int) -> int:
    """Read an unsigned byte at ``offset`` (network order is moot for 1 byte)."""
    return _U8.unpack_from(data, offset)[0]


def read_u16(data: bytes, offset: int) -> int:
    """Read a big-endian unsigned 16-bit integer at ``offset``."""
    return _U16.unpack_from(data, offset)[0]


def read_u32(data: bytes, offset: int) -> int:
    """Read a big-endian unsigned 32-bit integer at ``offset``."""
    return _U32.unpack_from(data, offset)[0]
