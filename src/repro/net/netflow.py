"""Netflow v5-style flow records and the router export model.

Section 2.1 of the paper uses Netflow as the motivating example for
non-monotone ordered attributes: a router exports records sorted by the
flow *end* time, dumping its cache every 30 seconds, so the *start*
time is only banded-increasing(30 s) relative to the high-water mark.
:class:`NetflowExporter` reproduces exactly that behaviour.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

V5_HEADER = struct.Struct("!HHIIIIBBH")
V5_RECORD = struct.Struct("!IIIHHIIIIHHBBBBHHBBH")
V5_VERSION = 5


@dataclass
class NetflowRecord:
    """One unidirectional flow summary (subset of Netflow v5 fields)."""

    src_ip: int = 0
    dst_ip: int = 0
    src_port: int = 0
    dst_port: int = 0
    protocol: int = 6
    packets: int = 0
    octets: int = 0
    start_time: float = 0.0  # first packet of the flow, seconds
    end_time: float = 0.0  # last packet of the flow, seconds
    tcp_flags: int = 0
    tos: int = 0
    input_if: int = 0
    output_if: int = 0

    def key(self) -> Tuple[int, int, int, int, int]:
        """The 5-tuple flow key."""
        return (self.src_ip, self.dst_ip, self.src_port, self.dst_port, self.protocol)


def pack_netflow_v5(records: Sequence[NetflowRecord], sys_uptime_ms: int = 0,
                    unix_secs: int = 0, flow_sequence: int = 0) -> bytes:
    """Pack up to 30 records into one Netflow v5 export datagram.

    Times are encoded the way real v5 does: milliseconds of router
    uptime, relative to ``sys_uptime_ms``/``unix_secs``.
    """
    if len(records) > 30:
        raise ValueError("Netflow v5 datagrams carry at most 30 records")
    out = bytearray(
        V5_HEADER.pack(
            V5_VERSION, len(records), sys_uptime_ms, unix_secs, 0,
            flow_sequence, 0, 0, 0,
        )
    )
    base = unix_secs - sys_uptime_ms / 1000.0
    for record in records:
        first_ms = max(0, int(round((record.start_time - base) * 1000)))
        last_ms = max(0, int(round((record.end_time - base) * 1000)))
        out.extend(
            V5_RECORD.pack(
                record.src_ip, record.dst_ip, 0,
                record.input_if, record.output_if,
                record.packets, record.octets,
                first_ms, last_ms,
                record.src_port, record.dst_port,
                0, record.tcp_flags, record.protocol, record.tos,
                0, 0, 0, 0, 0,
            )
        )
    return bytes(out)


def unpack_netflow_v5(data: bytes) -> List[NetflowRecord]:
    """Decode a Netflow v5 export datagram back into records."""
    if len(data) < V5_HEADER.size:
        raise ValueError("truncated Netflow v5 header")
    (version, count, sys_uptime_ms, unix_secs, _nsecs, _seq,
     _etype, _eid, _interval) = V5_HEADER.unpack_from(data, 0)
    if version != V5_VERSION:
        raise ValueError(f"not Netflow v5 (version={version})")
    need = V5_HEADER.size + count * V5_RECORD.size
    if len(data) < need:
        raise ValueError("truncated Netflow v5 records")
    base = unix_secs - sys_uptime_ms / 1000.0
    records = []
    for i in range(count):
        fields = V5_RECORD.unpack_from(data, V5_HEADER.size + i * V5_RECORD.size)
        (src_ip, dst_ip, _nexthop, input_if, output_if, packets, octets,
         first_ms, last_ms, src_port, dst_port, _pad, tcp_flags, protocol,
         tos, _as1, _as2, _m1, _m2, _pad2) = fields
        records.append(
            NetflowRecord(
                src_ip=src_ip, dst_ip=dst_ip,
                src_port=src_port, dst_port=dst_port, protocol=protocol,
                packets=packets, octets=octets,
                start_time=base + first_ms / 1000.0,
                end_time=base + last_ms / 1000.0,
                tcp_flags=tcp_flags, tos=tos,
                input_if=input_if, output_if=output_if,
            )
        )
    return records


class NetflowExporter:
    """Models a router's flow cache and its periodic export.

    Packets are folded into per-5-tuple flow state; every
    ``export_interval`` seconds the whole cache is dumped, *sorted by
    end time* ("Netflow records are sorted on the end time, and all
    Netflow records are dumped every 30 seconds", Section 2.1).  The
    resulting stream therefore has monotone end times and
    banded-increasing(``export_interval``) start times.  Long-lived
    flows are split into per-interval records, like the real v5 active
    timeout.
    """

    def __init__(self, export_interval: float = 30.0,
                 inactive_timeout: Optional[float] = None) -> None:
        self.export_interval = export_interval
        # retained for API compatibility; the full-dump model makes a
        # separate inactive timeout redundant
        self.inactive_timeout = inactive_timeout
        self._flows: dict = {}
        self._next_export = export_interval
        self.flows_exported = 0

    def observe(self, timestamp: float, src_ip: int, dst_ip: int, src_port: int,
                dst_port: int, protocol: int, octets: int,
                tcp_flags: int = 0) -> List[NetflowRecord]:
        """Account one packet; returns any records exported at this step."""
        key = (src_ip, dst_ip, src_port, dst_port, protocol)
        flow = self._flows.get(key)
        if flow is None:
            flow = NetflowRecord(
                src_ip=src_ip, dst_ip=dst_ip, src_port=src_port,
                dst_port=dst_port, protocol=protocol,
                start_time=timestamp, end_time=timestamp,
            )
            self._flows[key] = flow
        flow.packets += 1
        flow.octets += octets
        flow.tcp_flags |= tcp_flags
        flow.end_time = timestamp
        if timestamp >= self._next_export:
            self._next_export += self.export_interval
            return self._export(timestamp)
        return []

    def _export(self, now: float) -> List[NetflowRecord]:
        """Dump the whole cache, sorted by end time (v5 export order)."""
        records = sorted(self._flows.values(),
                         key=lambda record: record.end_time)
        self._flows.clear()
        self.flows_exported += len(records)
        return records

    def flush(self) -> List[NetflowRecord]:
        """Export everything still cached (end of trace)."""
        records = sorted(self._flows.values(), key=lambda record: record.end_time)
        self._flows.clear()
        self.flows_exported += len(records)
        return records


def export_datagrams(records: Iterable[NetflowRecord],
                     unix_secs: int = 0) -> Iterator[bytes]:
    """Batch records into v5 datagrams of at most 30 records each."""
    batch: List[NetflowRecord] = []
    sequence = 0
    for record in records:
        batch.append(record)
        if len(batch) == 30:
            yield pack_netflow_v5(batch, unix_secs=unix_secs, flow_sequence=sequence)
            sequence += len(batch)
            batch = []
    if batch:
        yield pack_netflow_v5(batch, unix_secs=unix_secs, flow_sequence=sequence)
