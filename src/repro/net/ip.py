"""IPv4 header parsing, serialization, and fragmentation."""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.net.checksum import internet_checksum
from repro.net.packet import int_to_ip, ip_to_int

PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17

FLAG_DF = 0x2  # don't fragment
FLAG_MF = 0x1  # more fragments

MIN_HEADER_LEN = 20

_FIXED = struct.Struct("!BBHHHBBHII")


@dataclass
class IPv4Header:
    """An IPv4 header.

    Addresses are stored as 32-bit integers (GSQL exposes them as UINT);
    use :func:`repro.net.packet.int_to_ip` for display.
    """

    src: int = 0
    dst: int = 0
    protocol: int = PROTO_TCP
    ttl: int = 64
    tos: int = 0
    identification: int = 0
    flags: int = 0
    fragment_offset: int = 0  # in 8-byte units
    total_length: int = 0  # filled by pack() when 0
    options: bytes = b""
    version: int = 4
    checksum: int = 0  # filled by pack(); as-parsed value after parse()

    @classmethod
    def parse(cls, data: bytes, offset: int = 0) -> "IPv4Header":
        """Parse a header from ``data`` at ``offset``; raises on truncation."""
        if len(data) - offset < MIN_HEADER_LEN:
            raise ValueError("truncated IPv4 header")
        (
            ver_ihl,
            tos,
            total_length,
            identification,
            flags_frag,
            ttl,
            protocol,
            checksum,
            src,
            dst,
        ) = _FIXED.unpack_from(data, offset)
        version = ver_ihl >> 4
        ihl = ver_ihl & 0x0F
        header_len = ihl * 4
        if header_len < MIN_HEADER_LEN:
            raise ValueError(f"bad IHL {ihl}")
        if len(data) - offset < header_len:
            raise ValueError("truncated IPv4 options")
        options = bytes(data[offset + MIN_HEADER_LEN : offset + header_len])
        return cls(
            version=version,
            tos=tos,
            total_length=total_length,
            identification=identification,
            flags=(flags_frag >> 13) & 0x7,
            fragment_offset=flags_frag & 0x1FFF,
            ttl=ttl,
            protocol=protocol,
            checksum=checksum,
            src=src,
            dst=dst,
            options=options,
        )

    @property
    def header_len(self) -> int:
        """Header length in bytes, including options padded to 4 bytes."""
        opt_len = (len(self.options) + 3) & ~3
        return MIN_HEADER_LEN + opt_len

    @property
    def is_fragment(self) -> bool:
        """True for any fragment (first, middle, or last) of a larger datagram."""
        return self.fragment_offset > 0 or bool(self.flags & FLAG_MF)

    @property
    def more_fragments(self) -> bool:
        return bool(self.flags & FLAG_MF)

    @property
    def dont_fragment(self) -> bool:
        return bool(self.flags & FLAG_DF)

    @property
    def src_str(self) -> str:
        return int_to_ip(self.src)

    @property
    def dst_str(self) -> str:
        return int_to_ip(self.dst)

    def pack(self, payload_len: int = -1) -> bytes:
        """Serialize with a correct checksum.

        If ``total_length`` is 0 it is computed from ``payload_len``
        (which then must be given).
        """
        opt = self.options + b"\x00" * ((-len(self.options)) % 4)
        ihl = (MIN_HEADER_LEN + len(opt)) // 4
        total_length = self.total_length
        if total_length == 0:
            if payload_len < 0:
                raise ValueError("need payload_len to compute total_length")
            total_length = MIN_HEADER_LEN + len(opt) + payload_len
        flags_frag = ((self.flags & 0x7) << 13) | (self.fragment_offset & 0x1FFF)
        header = bytearray(
            _FIXED.pack(
                (self.version << 4) | ihl,
                self.tos,
                total_length,
                self.identification,
                flags_frag,
                self.ttl,
                self.protocol,
                0,
                self.src,
                self.dst,
            )
        )
        header.extend(opt)
        checksum = internet_checksum(bytes(header))
        header[10] = checksum >> 8
        header[11] = checksum & 0xFF
        return bytes(header)

    def key(self) -> Tuple[int, int, int, int]:
        """Reassembly key: (src, dst, protocol, identification)."""
        return (self.src, self.dst, self.protocol, self.identification)


def build_ipv4_packet(header: IPv4Header, payload: bytes) -> bytes:
    """Serialize ``header`` followed by ``payload`` with lengths fixed up."""
    hdr = IPv4Header(**{**header.__dict__})
    hdr.total_length = 0
    return hdr.pack(payload_len=len(payload)) + payload


def fragment_ipv4(header: IPv4Header, payload: bytes, mtu: int) -> List[bytes]:
    """Split an IPv4 datagram into fragments that fit ``mtu`` bytes each.

    Returns the full on-wire bytes of each fragment (header + data).
    The fragment data size is rounded down to a multiple of 8 as the
    wire format requires.
    """
    header_len = header.header_len
    max_data = (mtu - header_len) & ~7
    if max_data <= 0:
        raise ValueError(f"MTU {mtu} too small for header of {header_len} bytes")
    if header_len + len(payload) <= mtu:
        return [build_ipv4_packet(header, payload)]
    if header.dont_fragment:
        raise ValueError("DF set on a datagram larger than the MTU")
    fragments = []
    offset = 0
    while offset < len(payload):
        chunk = payload[offset : offset + max_data]
        last = offset + len(chunk) >= len(payload)
        frag_header = IPv4Header(**{**header.__dict__})
        frag_header.fragment_offset = (header.fragment_offset * 8 + offset) // 8
        frag_header.flags = header.flags | (0 if last and not header.more_fragments else FLAG_MF)
        frag_header.total_length = 0
        fragments.append(frag_header.pack(payload_len=len(chunk)) + chunk)
        offset += len(chunk)
    return fragments
