"""Classic libpcap capture-file format (the ``.pcap`` tcpdump writes).

Only the original microsecond format is implemented (magic
``0xa1b2c3d4``); both byte orders are accepted on read.
"""

from __future__ import annotations

import struct
from typing import BinaryIO, Iterator, Union

from repro.net.packet import CapturedPacket

MAGIC_USEC = 0xA1B2C3D4
LINKTYPE_ETHERNET = 1

_GLOBAL_HDR = struct.Struct("<IHHiIII")
_GLOBAL_HDR_BE = struct.Struct(">IHHiIII")
_REC_HDR = struct.Struct("<IIII")
_REC_HDR_BE = struct.Struct(">IIII")


class PcapError(ValueError):
    """Raised for malformed pcap files."""


class CaptureTruncated(PcapError):
    """The capture ends mid-structure (short header or record body).

    Subclasses :class:`PcapError` so existing ``except PcapError``
    handlers keep working; callers that want to treat a cut-off trace
    as "end of data" can catch this type specifically.
    """


class PcapWriter:
    """Write :class:`CapturedPacket` objects to a pcap file.

    Usable as a context manager::

        with PcapWriter(open(path, "wb"), snaplen=65535) as writer:
            writer.write(packet)
    """

    def __init__(self, fileobj: BinaryIO, snaplen: int = 65535,
                 linktype: int = LINKTYPE_ETHERNET) -> None:
        self._file = fileobj
        self.snaplen = snaplen
        self._file.write(
            _GLOBAL_HDR.pack(MAGIC_USEC, 2, 4, 0, 0, snaplen, linktype)
        )
        self.packets_written = 0

    def write(self, packet: CapturedPacket) -> None:
        """Append one packet record, truncating to the file's snap length."""
        data = packet.data[: self.snaplen]
        seconds = int(packet.timestamp)
        microseconds = int(round((packet.timestamp - seconds) * 1_000_000))
        if microseconds >= 1_000_000:
            seconds += 1
            microseconds -= 1_000_000
        self._file.write(_REC_HDR.pack(seconds, microseconds, len(data), packet.orig_len))
        self._file.write(data)
        self.packets_written += 1

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "PcapWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class PcapReader:
    """Iterate :class:`CapturedPacket` objects out of a pcap file."""

    def __init__(self, fileobj: BinaryIO, interface: str = "pcap0") -> None:
        self._file = fileobj
        self.interface = interface
        header = fileobj.read(_GLOBAL_HDR.size)
        if len(header) < _GLOBAL_HDR.size:
            raise CaptureTruncated("truncated pcap global header")
        magic_le = struct.unpack_from("<I", header)[0]
        if magic_le == MAGIC_USEC:
            self._rec = _REC_HDR
            fields = _GLOBAL_HDR.unpack(header)
        elif struct.unpack_from(">I", header)[0] == MAGIC_USEC:
            self._rec = _REC_HDR_BE
            fields = _GLOBAL_HDR_BE.unpack(header)
        else:
            raise PcapError(f"bad pcap magic {magic_le:#x}")
        (_, self.version_major, self.version_minor, _, _,
         self.snaplen, self.linktype) = fields

    def __iter__(self) -> Iterator[CapturedPacket]:
        return self

    def __next__(self) -> CapturedPacket:
        header = self._file.read(self._rec.size)
        if not header:
            raise StopIteration
        if len(header) < self._rec.size:
            raise CaptureTruncated("truncated pcap record header")
        seconds, microseconds, caplen, orig_len = self._rec.unpack(header)
        if caplen == 0:
            # A record with zero captured bytes: the capture stopped
            # mid-packet (matches the pcapng reader's EPB treatment).
            raise CaptureTruncated("zero-length pcap record")
        data = self._file.read(caplen)
        if len(data) < caplen:
            raise CaptureTruncated("truncated pcap record body")
        return CapturedPacket(
            timestamp=seconds + microseconds / 1_000_000,
            data=data,
            orig_len=orig_len,
            interface=self.interface,
        )

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "PcapReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def write_pcap(path: str, packets, snaplen: int = 65535) -> int:
    """Write ``packets`` to ``path``; returns the number written."""
    with PcapWriter(open(path, "wb"), snaplen=snaplen) as writer:
        for packet in packets:
            writer.write(packet)
        return writer.packets_written


def read_pcap(path: str, interface: str = "pcap0"):
    """Read all packets from ``path`` into a list."""
    with PcapReader(open(path, "rb"), interface=interface) as reader:
        return list(reader)
