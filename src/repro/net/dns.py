"""DNS message header and question-section parsing.

DNS monitoring (query floods, NXDOMAIN storms, cache-poisoning
signatures) is bread-and-butter network analysis; the ``dns`` Protocol
interprets UDP port-53 datagrams with this parser.  Only the header and
the first question are decoded -- what per-packet monitoring queries
need -- with compression-pointer handling for names.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional, Tuple

HEADER_LEN = 12

QTYPE_A = 1
QTYPE_NS = 2
QTYPE_CNAME = 5
QTYPE_PTR = 12
QTYPE_MX = 15
QTYPE_TXT = 16
QTYPE_AAAA = 28
QTYPE_ANY = 255

RCODE_NOERROR = 0
RCODE_SERVFAIL = 2
RCODE_NXDOMAIN = 3

_HDR = struct.Struct("!HHHHHH")


@dataclass
class DNSMessage:
    """The fixed header plus the first question of a DNS message."""

    txid: int = 0
    is_response: bool = False
    opcode: int = 0
    rcode: int = 0
    recursion_desired: bool = False
    questions: int = 0
    answers: int = 0
    qname: str = ""
    qtype: int = 0

    @classmethod
    def parse(cls, data: bytes) -> "DNSMessage":
        """Parse header + first question; raises ``ValueError`` when short."""
        if len(data) < HEADER_LEN:
            raise ValueError("truncated DNS header")
        txid, flags, qdcount, ancount, _ns, _ar = _HDR.unpack_from(data, 0)
        message = cls(
            txid=txid,
            is_response=bool(flags & 0x8000),
            opcode=(flags >> 11) & 0xF,
            rcode=flags & 0xF,
            recursion_desired=bool(flags & 0x0100),
            questions=qdcount,
            answers=ancount,
        )
        if qdcount > 0:
            name, offset = decode_name(data, HEADER_LEN)
            message.qname = name
            if len(data) >= offset + 2:
                message.qtype = struct.unpack_from("!H", data, offset)[0]
        return message


def decode_name(data: bytes, offset: int, depth: int = 0) -> Tuple[str, int]:
    """Decode a (possibly compressed) domain name.

    Returns ``(name, offset_after_name)`` where the offset is past the
    name *at the original position* (pointers do not advance it).
    """
    if depth > 10:
        raise ValueError("DNS name compression loop")
    labels = []
    cursor = offset
    while True:
        if cursor >= len(data):
            raise ValueError("truncated DNS name")
        length = data[cursor]
        if length == 0:
            cursor += 1
            break
        if length & 0xC0 == 0xC0:  # compression pointer
            if cursor + 1 >= len(data):
                raise ValueError("truncated DNS pointer")
            pointer = ((length & 0x3F) << 8) | data[cursor + 1]
            suffix, _ = decode_name(data, pointer, depth + 1)
            labels.append(suffix)
            cursor += 2
            return ".".join(label for label in labels if label), cursor
        cursor += 1
        if cursor + length > len(data):
            raise ValueError("truncated DNS label")
        labels.append(data[cursor : cursor + length].decode("ascii", "replace"))
        cursor += length
    return ".".join(labels), cursor


def encode_name(name: str) -> bytes:
    """Encode a dotted name (no compression)."""
    out = bytearray()
    for label in name.split("."):
        if not label:
            continue
        raw = label.encode("ascii")
        if len(raw) > 63:
            raise ValueError(f"DNS label too long: {label!r}")
        out.append(len(raw))
        out.extend(raw)
    out.append(0)
    return bytes(out)


def build_query(txid: int, qname: str, qtype: int = QTYPE_A,
                recursion_desired: bool = True) -> bytes:
    """Build a one-question DNS query message."""
    flags = 0x0100 if recursion_desired else 0
    header = _HDR.pack(txid, flags, 1, 0, 0, 0)
    return header + encode_name(qname) + struct.pack("!HH", qtype, 1)


def build_response(txid: int, qname: str, qtype: int = QTYPE_A,
                   rcode: int = RCODE_NOERROR, answers: int = 1) -> bytes:
    """Build a minimal response (question echoed, answer count only)."""
    flags = 0x8180 | (rcode & 0xF)
    header = _HDR.pack(txid, flags, 1, answers if rcode == 0 else 0, 0, 0)
    return header + encode_name(qname) + struct.pack("!HH", qtype, 1)
