"""Ethernet II framing."""

from __future__ import annotations

import struct
from typing import Optional

from repro.net.packet import bytes_to_mac, mac_to_bytes

ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_ARP = 0x0806
ETHERTYPE_IPV6 = 0x86DD

HEADER_LEN = 14

_HDR = struct.Struct("!6s6sH")


class EthernetHeader:
    """An Ethernet II header (no 802.1Q tag support).

    ``dst``/``src`` read as ``aa:bb:cc:dd:ee:ff`` strings, but a parsed
    header holds the raw 6-byte fields and formats them lazily: the
    capture path parses Ethernet on every packet while almost no query
    projects a MAC, and the string conversion used to dominate the
    per-packet parse cost.
    """

    __slots__ = ("_dst", "_src", "_dst_raw", "_src_raw", "ethertype")

    def __init__(self, dst: str = "ff:ff:ff:ff:ff:ff",
                 src: str = "00:00:00:00:00:00",
                 ethertype: int = ETHERTYPE_IPV4) -> None:
        self._dst: Optional[str] = dst
        self._src: Optional[str] = src
        self._dst_raw: Optional[bytes] = None
        self._src_raw: Optional[bytes] = None
        self.ethertype = ethertype

    @classmethod
    def parse(cls, data: bytes, offset: int = 0) -> "EthernetHeader":
        """Parse a header from ``data`` starting at ``offset``."""
        if len(data) - offset < HEADER_LEN:
            raise ValueError("truncated Ethernet header")
        dst_raw, src_raw, ethertype = _HDR.unpack_from(data, offset)
        header = cls.__new__(cls)
        header._dst = None
        header._src = None
        header._dst_raw = dst_raw
        header._src_raw = src_raw
        header.ethertype = ethertype
        return header

    @property
    def dst(self) -> str:
        value = self._dst
        if value is None:
            value = self._dst = bytes_to_mac(self._dst_raw)
        return value

    @property
    def src(self) -> str:
        value = self._src
        if value is None:
            value = self._src = bytes_to_mac(self._src_raw)
        return value

    def pack(self) -> bytes:
        """Serialize to the 14-byte wire format."""
        dst_raw = self._dst_raw if self._dst_raw is not None else mac_to_bytes(self._dst)
        src_raw = self._src_raw if self._src_raw is not None else mac_to_bytes(self._src)
        return _HDR.pack(dst_raw, src_raw, self.ethertype)

    def __repr__(self) -> str:
        return (f"EthernetHeader(dst={self.dst!r}, src={self.src!r}, "
                f"ethertype={self.ethertype})")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EthernetHeader):
            return NotImplemented
        return (self.ethertype == other.ethertype
                and self.dst == other.dst and self.src == other.src)

    @property
    def header_len(self) -> int:
        return HEADER_LEN
