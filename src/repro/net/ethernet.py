"""Ethernet II framing."""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.net.packet import bytes_to_mac, mac_to_bytes

ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_ARP = 0x0806
ETHERTYPE_IPV6 = 0x86DD

HEADER_LEN = 14

_HDR = struct.Struct("!6s6sH")


@dataclass
class EthernetHeader:
    """An Ethernet II header (no 802.1Q tag support)."""

    dst: str = "ff:ff:ff:ff:ff:ff"
    src: str = "00:00:00:00:00:00"
    ethertype: int = ETHERTYPE_IPV4

    @classmethod
    def parse(cls, data: bytes, offset: int = 0) -> "EthernetHeader":
        """Parse a header from ``data`` starting at ``offset``."""
        if len(data) - offset < HEADER_LEN:
            raise ValueError("truncated Ethernet header")
        dst, src, ethertype = _HDR.unpack_from(data, offset)
        return cls(dst=bytes_to_mac(dst), src=bytes_to_mac(src), ethertype=ethertype)

    def pack(self) -> bytes:
        """Serialize to the 14-byte wire format."""
        return _HDR.pack(mac_to_bytes(self.dst), mac_to_bytes(self.src), self.ethertype)

    @property
    def header_len(self) -> int:
        return HEADER_LEN
