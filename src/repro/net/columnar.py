"""Columnar packet blocks for the LFTA hot path (DESIGN section 14).

The batched data path (DESIGN section 10) moves *blocks* of packets,
but each block is still a list of per-packet objects and every field
read goes through a :class:`~repro.gsql.schema.PacketView` property
chain and a per-header parser object.  This module is the next rung of
the MonetDB/X100 ladder: decode a whole block's header fields into
parallel arrays with one combined ``struct`` unpack per packet, so the
generated query kernels loop over plain Python lists.

Byte-identity contract
----------------------

For the built-in ``ip``/``tcp``/``udp`` protocols a row *exists* if and
only if the protocol guard passes (``v.ip``/``v.tcp``/``v.udp`` not
None), and under the guard every field function is total -- none can
return ``None`` (capture metadata always exists; IP fields exist when
the IP header parsed; TCP/UDP fields, including the possibly-empty
``data`` payload, exist when the L4 header parsed).  The decoders below
reproduce the guard exactly -- the same truncation, IHL, fragment, and
data-offset checks as :meth:`PacketView._parse` plus the header
``parse`` classmethods -- so a block decode keeps exactly the packets
the row-at-a-time interpreter would, in the same order.  Protocols
outside this family (DDL-declared views, expander protocols, ipv6,
icmp, ethernet) have no decoder here and stay on the row-based path.

Lazy decode
-----------

Decoding fills only three parallel arrays -- the combined unpack tuple,
the packet reference, and the payload offset (an ``array('l')``) -- per
surviving row.  Actual field columns are materialized on first use:
eagerly for the columns the predicate conjuncts touch (``col``), and
only for the post-filter survivors for everything else (``gather``).
A field no query expression touches is never decoded at all.
"""

from __future__ import annotations

import struct
from array import array
from typing import Callable, Dict, List, Optional, Sequence

from repro.net.packet import CapturedPacket

#: eth(12 skipped MAC bytes + ethertype) + IPv4 fixed header
_ETH_IP = struct.Struct("!12xHBBHHHBBHII")
#: the same, with the 20-byte TCP fixed header appended (IHL == 5 fast path)
_ETH_IP_TCP = struct.Struct("!12xHBBHHHBBHIIHHIIBBHHH")
#: the same, with the 8-byte UDP header appended (IHL == 5 fast path)
_ETH_IP_UDP = struct.Struct("!12xHBBHHHBBHIIHHHH")
_TCP_FIXED = struct.Struct("!HHIIBBHHH")
_UDP_FIXED = struct.Struct("!HHHH")

# Combined-unpack tuple positions (shared by all three decoders):
#   0 ethertype   1 ver_ihl   2 tos        3 total_length  4 identification
#   5 flags_frag  6 ttl       7 protocol   8 checksum      9 src  10 dst
# TCP suffix:  11 src_port  12 dst_port  13 seq  14 ack  15 offset_reserved
#              16 flags     17 window    18 checksum  19 urgent
# UDP suffix:  11 src_port  12 dst_port  13 length  14 checksum

_ETHERTYPE_IPV4 = 0x0800
_PROTO_TCP = 6
_PROTO_UDP = 17


class ColumnarBlock:
    """One decoded packet block: parallel arrays plus lazy field columns.

    ``n`` rows survived the protocol guard.  ``vals[i]`` is row *i*'s
    combined header unpack, ``pkts[i]`` the originating packet, and
    ``pay[i]`` the payload offset into its data.  ``columns`` caches
    materialized field columns by attribute index.
    """

    __slots__ = ("n", "vals", "pkts", "pay", "columns", "_specs")

    def __init__(self, vals: list, pkts: list, pay: array,
                 specs: Dict[int, tuple]) -> None:
        self.n = len(vals)
        self.vals = vals
        self.pkts = pkts
        self.pay = pay
        self.columns: Dict[int, list] = {}
        self._specs = specs

    def col(self, index: int) -> list:
        """The full column for attribute ``index`` (cached)."""
        column = self.columns.get(index)
        if column is None:
            column = self._materialize(index, None)
            self.columns[index] = column
        return column

    def gather(self, index: int, rows: Sequence[int]) -> list:
        """Attribute ``index`` for just ``rows``, aligned with ``rows``.

        This is the lazy-decode entry point: columns untouched by the
        prefilter are built here, for survivors only.  An already-cached
        full column is sliced instead of re-decoded.
        """
        column = self.columns.get(index)
        if column is not None:
            return [column[i] for i in rows]
        return self._materialize(index, rows)

    def _materialize(self, index: int, rows: Optional[Sequence[int]]) -> list:
        kind, j = self._specs[index]
        vals = self.vals
        pkts = self.pkts
        if kind == "v":  # a straight pick out of the combined unpack
            if rows is None:
                return [v[j] for v in vals]
            return [vals[i][j] for i in rows]
        if kind == "time":
            if rows is None:
                return [int(p.timestamp) for p in pkts]
            return [int(pkts[i].timestamp) for i in rows]
        if kind == "timestamp":
            if rows is None:
                return [p.timestamp for p in pkts]
            return [pkts[i].timestamp for i in rows]
        if kind == "len":
            if rows is None:
                return [p.orig_len for p in pkts]
            return [pkts[i].orig_len for i in rows]
        if kind == "caplen":
            if rows is None:
                return [len(p.data) for p in pkts]
            return [len(pkts[i].data) for i in rows]
        if kind == "data":
            pay = self.pay
            if rows is None:
                return [p.data[o:] for p, o in zip(pkts, pay)]
            return [pkts[i].data[pay[i]:] for i in rows]
        if kind == "ipversion":
            if rows is None:
                return [v[1] >> 4 for v in vals]
            return [vals[i][1] >> 4 for i in rows]
        if kind == "frag_offset":
            if rows is None:
                return [v[5] & 0x1FFF for v in vals]
            return [vals[i][5] & 0x1FFF for i in rows]
        if kind == "more_fragments":
            if rows is None:
                return [(v[5] >> 13) & 1 for v in vals]
            return [(vals[i][5] >> 13) & 1 for i in rows]
        raise KeyError(f"unknown column kind {kind!r}")


# Field specs by attribute index, mirroring the built-in protocol
# schemas in repro.gsql.schema (attribute order is part of the schema
# contract; tests pin the correspondence).
_IP_SPECS: Dict[int, tuple] = {
    0: ("time", 0),
    1: ("timestamp", 0),
    2: ("ipversion", 0),
    3: ("v", 7),        # protocol
    4: ("v", 9),        # srcIP
    5: ("v", 10),       # destIP
    6: ("len", 0),
    7: ("caplen", 0),
    8: ("v", 6),        # ttl
    9: ("v", 4),        # id
    10: ("frag_offset", 0),
    11: ("more_fragments", 0),
}

_TCP_SPECS: Dict[int, tuple] = dict(_IP_SPECS)
_TCP_SPECS.update({
    12: ("v", 11),      # srcPort
    13: ("v", 12),      # destPort
    14: ("v", 16),      # tcpflags
    15: ("v", 13),      # seqno
    16: ("v", 14),      # ackno
    17: ("v", 17),      # tcpwindow
    18: ("data", 0),
})

_UDP_SPECS: Dict[int, tuple] = dict(_IP_SPECS)
_UDP_SPECS.update({
    12: ("v", 11),      # srcPort
    13: ("v", 12),      # destPort
    14: ("v", 13),      # udplen
    15: ("data", 0),
})


def _decode_tcp(packets: Sequence[CapturedPacket]) -> ColumnarBlock:
    """Guard + decode for the ``tcp`` protocol, one combined unpack.

    A row exists iff eth/IPv4/TCP all parse and the packet is not a
    fragment -- the exact PacketView conditions: >= 14 bytes of frame,
    ethertype IPv4, >= IHL*4 bytes of IP header with IHL >= 5,
    fragment offset 0 (an MF first fragment still parses L4), protocol
    TCP, and a data offset >= 20 that fits the capture.
    """
    vals: list = []
    pay = array("l")
    pkts: list = []
    unpack54 = _ETH_IP_TCP.unpack_from
    unpack_tcp = _TCP_FIXED.unpack_from
    va = vals.append
    pa = pkts.append
    oa = pay.append
    for p in packets:
        d = p.data
        n = len(d)
        if n < 54:  # eth(14) + min IP(20) + min TCP(20): guard must fail
            continue
        v = unpack54(d)
        if v[0] != _ETHERTYPE_IPV4 or v[7] != _PROTO_TCP or v[5] & 0x1FFF:
            continue
        ihl = v[1] & 0x0F
        if ihl == 5:
            doff = (v[15] >> 4) * 4
            if doff < 20 or n - 34 < doff:
                continue
            o = 34 + doff
        else:
            if ihl < 5:
                continue
            l4 = 14 + ihl * 4
            if n < l4 or n - l4 < 20:
                continue
            t = unpack_tcp(d, l4)
            doff = (t[4] >> 4) * 4
            if doff < 20 or n - l4 < doff:
                continue
            v = v[:11] + t
            o = l4 + doff
        va(v)
        pa(p)
        oa(o)
    return ColumnarBlock(vals, pkts, pay, _TCP_SPECS)


def _decode_udp(packets: Sequence[CapturedPacket]) -> ColumnarBlock:
    """Guard + decode for the ``udp`` protocol (see :func:`_decode_tcp`)."""
    vals: list = []
    pay = array("l")
    pkts: list = []
    unpack42 = _ETH_IP_UDP.unpack_from
    unpack_udp = _UDP_FIXED.unpack_from
    va = vals.append
    pa = pkts.append
    oa = pay.append
    for p in packets:
        d = p.data
        n = len(d)
        if n < 42:  # eth(14) + min IP(20) + UDP(8)
            continue
        v = unpack42(d)
        if v[0] != _ETHERTYPE_IPV4 or v[7] != _PROTO_UDP or v[5] & 0x1FFF:
            continue
        ihl = v[1] & 0x0F
        if ihl == 5:
            o = 42
        else:
            if ihl < 5:
                continue
            l4 = 14 + ihl * 4
            if n < l4 or n - l4 < 8:
                continue
            v = v[:11] + unpack_udp(d, l4)
            o = l4 + 8
        va(v)
        pa(p)
        oa(o)
    return ColumnarBlock(vals, pkts, pay, _UDP_SPECS)


def _decode_ip(packets: Sequence[CapturedPacket]) -> ColumnarBlock:
    """Guard + decode for the ``ip`` protocol: any parsed IPv4 header
    (fragments included -- the guard does not require an L4 layer)."""
    vals: list = []
    pay = array("l")
    pkts: list = []
    unpack34 = _ETH_IP.unpack_from
    va = vals.append
    pa = pkts.append
    for p in packets:
        d = p.data
        n = len(d)
        if n < 34:  # eth(14) + min IP(20)
            continue
        v = unpack34(d)
        if v[0] != _ETHERTYPE_IPV4:
            continue
        ihl = v[1] & 0x0F
        if ihl < 5 or n - 14 < ihl * 4:
            continue
        va(v)
        pa(p)
    return ColumnarBlock(vals, pkts, pay, _IP_SPECS)


BlockDecoder = Callable[[Sequence[CapturedPacket]], ColumnarBlock]

_DECODERS: Dict[str, BlockDecoder] = {
    "ip": _decode_ip,
    "tcp": _decode_tcp,
    "udp": _decode_udp,
}


def decoder_for(protocol_name: str) -> Optional[BlockDecoder]:
    """The block decoder for a built-in protocol, or None.

    Only protocols whose guard/field semantics are replicated above are
    eligible; everything else falls back to the row-based interpreter.
    """
    return _DECODERS.get(protocol_name.lower())


# -- columnar row-block serialization (DESIGN section 15) --------------------
#
# The shard transport ships blocks of result rows (shard partials) over
# a pipe.  Pickling a list of small tuples pays per-tuple object
# overhead; transposing the block into parallel columns first pickles
# N+1 containers instead of N_rows tuples and reconstructs exactly the
# same tuples on the other side.

def rows_to_columns(rows: Sequence[tuple]) -> tuple:
    """Transpose a block of row tuples into ``(n_rows, [column, ...])``."""
    if not rows:
        return (0, [])
    return (len(rows), [list(column) for column in zip(*rows)])


def columns_to_rows(block: tuple) -> List[tuple]:
    """Rebuild the row tuples a :func:`rows_to_columns` block encodes."""
    n, columns = block
    if not columns:
        # Zero-width rows: the count alone carries the information.
        return [() for _ in range(n)]
    return list(zip(*columns))
