"""ICMP header parsing and serialization.

Ping floods and unreachable storms are classic intrusion-detection
signals (one of Gigascope's listed applications), so the stock protocol
library exposes ICMP alongside TCP/UDP.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.net.checksum import internet_checksum

TYPE_ECHO_REPLY = 0
TYPE_DEST_UNREACHABLE = 3
TYPE_ECHO_REQUEST = 8
TYPE_TIME_EXCEEDED = 11

HEADER_LEN = 8

_HDR = struct.Struct("!BBHHH")


@dataclass
class ICMPHeader:
    """An ICMP header (echo-style rest-of-header as id/seq)."""

    icmp_type: int = TYPE_ECHO_REQUEST
    code: int = 0
    identifier: int = 0
    sequence: int = 0
    checksum: int = 0  # as-parsed; recomputed by pack()

    @classmethod
    def parse(cls, data: bytes, offset: int = 0) -> "ICMPHeader":
        """Parse from ``data`` at ``offset``; raises on truncation."""
        if len(data) - offset < HEADER_LEN:
            raise ValueError("truncated ICMP header")
        icmp_type, code, checksum, identifier, sequence = _HDR.unpack_from(
            data, offset)
        return cls(icmp_type=icmp_type, code=code, checksum=checksum,
                   identifier=identifier, sequence=sequence)

    @property
    def header_len(self) -> int:
        return HEADER_LEN

    @property
    def is_echo(self) -> bool:
        return self.icmp_type in (TYPE_ECHO_REQUEST, TYPE_ECHO_REPLY)

    def pack(self, payload: bytes = b"") -> bytes:
        """Serialize with a correct checksum over header + payload."""
        header = bytearray(
            _HDR.pack(self.icmp_type, self.code, 0, self.identifier,
                      self.sequence)
        )
        checksum = internet_checksum(bytes(header) + payload)
        header[2] = checksum >> 8
        header[3] = checksum & 0xFF
        return bytes(header)
