"""TCP header parsing and serialization."""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.net.checksum import internet_checksum, pseudo_header
from repro.net.ip import PROTO_TCP

FLAG_FIN = 0x01
FLAG_SYN = 0x02
FLAG_RST = 0x04
FLAG_PSH = 0x08
FLAG_ACK = 0x10
FLAG_URG = 0x20

MIN_HEADER_LEN = 20

_FIXED = struct.Struct("!HHIIBBHHH")


@dataclass
class TCPHeader:
    """A TCP header (options carried opaquely)."""

    src_port: int = 0
    dst_port: int = 0
    seq: int = 0
    ack: int = 0
    flags: int = 0
    window: int = 65535
    urgent: int = 0
    options: bytes = b""
    checksum: int = 0  # as-parsed; recomputed by pack()

    @classmethod
    def parse(cls, data: bytes, offset: int = 0) -> "TCPHeader":
        """Parse from ``data`` at ``offset``; raises on truncation."""
        if len(data) - offset < MIN_HEADER_LEN:
            raise ValueError("truncated TCP header")
        (
            src_port,
            dst_port,
            seq,
            ack,
            offset_reserved,
            flags,
            window,
            checksum,
            urgent,
        ) = _FIXED.unpack_from(data, offset)
        data_offset = (offset_reserved >> 4) * 4
        if data_offset < MIN_HEADER_LEN:
            raise ValueError(f"bad TCP data offset {data_offset}")
        if len(data) - offset < data_offset:
            raise ValueError("truncated TCP options")
        options = bytes(data[offset + MIN_HEADER_LEN : offset + data_offset])
        return cls(
            src_port=src_port,
            dst_port=dst_port,
            seq=seq,
            ack=ack,
            flags=flags,
            window=window,
            checksum=checksum,
            urgent=urgent,
            options=options,
        )

    @property
    def header_len(self) -> int:
        """Header length in bytes, options padded to a 4-byte boundary."""
        return MIN_HEADER_LEN + ((len(self.options) + 3) & ~3)

    @property
    def syn(self) -> bool:
        return bool(self.flags & FLAG_SYN)

    @property
    def fin(self) -> bool:
        return bool(self.flags & FLAG_FIN)

    @property
    def rst(self) -> bool:
        return bool(self.flags & FLAG_RST)

    @property
    def ack_flag(self) -> bool:
        return bool(self.flags & FLAG_ACK)

    def pack(self, src_ip: int = 0, dst_ip: int = 0, payload: bytes = b"") -> bytes:
        """Serialize; the checksum covers the pseudo-header when IPs are given."""
        opt = self.options + b"\x00" * ((-len(self.options)) % 4)
        data_offset = (MIN_HEADER_LEN + len(opt)) // 4
        header = bytearray(
            _FIXED.pack(
                self.src_port,
                self.dst_port,
                self.seq,
                self.ack,
                data_offset << 4,
                self.flags,
                self.window,
                0,
                self.urgent,
            )
        )
        header.extend(opt)
        segment = bytes(header) + payload
        pseudo = pseudo_header(src_ip, dst_ip, PROTO_TCP, len(segment))
        checksum = internet_checksum(pseudo + segment)
        header[16] = checksum >> 8
        header[17] = checksum & 0xFF
        return bytes(header)
