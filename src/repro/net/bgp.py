"""Simplified BGP UPDATE messages.

The paper lists BGP monitoring (router configuration analysis) among
Gigascope's applications, with BGP updates as one of the packet sources
a Protocol can interpret.  We implement a compact UPDATE encoding:
announced and withdrawn prefixes plus an AS path, framed with the
standard 19-byte BGP header.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Tuple

BGP_HEADER = struct.Struct("!16sHB")
MSG_UPDATE = 2
MARKER = b"\xff" * 16

Prefix = Tuple[int, int]  # (network as int, prefix length)


def _pack_prefix(prefix: Prefix) -> bytes:
    network, length = prefix
    if not 0 <= length <= 32:
        raise ValueError(f"bad prefix length {length}")
    nbytes = (length + 7) // 8
    raw = network.to_bytes(4, "big")[:nbytes]
    return bytes([length]) + raw


def _unpack_prefixes(data: bytes) -> List[Prefix]:
    prefixes = []
    offset = 0
    while offset < len(data):
        length = data[offset]
        nbytes = (length + 7) // 8
        raw = data[offset + 1 : offset + 1 + nbytes]
        if len(raw) < nbytes:
            raise ValueError("truncated prefix")
        network = int.from_bytes(raw + b"\x00" * (4 - nbytes), "big")
        prefixes.append((network, length))
        offset += 1 + nbytes
    return prefixes


@dataclass
class BGPUpdate:
    """One BGP UPDATE: withdrawals, announcements, and the AS path."""

    peer_as: int = 0
    announced: List[Prefix] = field(default_factory=list)
    withdrawn: List[Prefix] = field(default_factory=list)
    as_path: List[int] = field(default_factory=list)

    def pack(self) -> bytes:
        """Serialize with the standard BGP header framing."""
        withdrawn = b"".join(_pack_prefix(p) for p in self.withdrawn)
        # Path attribute: type AS_PATH (2), one AS_SEQUENCE segment.
        if self.as_path:
            segment = bytes([2, len(self.as_path)]) + b"".join(
                asn.to_bytes(2, "big") for asn in self.as_path
            )
            attrs = bytes([0x40, 2, len(segment)]) + segment
        else:
            attrs = b""
        announced = b"".join(_pack_prefix(p) for p in self.announced)
        body = (
            len(withdrawn).to_bytes(2, "big") + withdrawn
            + len(attrs).to_bytes(2, "big") + attrs
            + announced
        )
        return BGP_HEADER.pack(MARKER, BGP_HEADER.size + len(body), MSG_UPDATE) + body

    @classmethod
    def parse(cls, data: bytes) -> "BGPUpdate":
        """Parse a serialized UPDATE; raises ``ValueError`` when malformed."""
        if len(data) < BGP_HEADER.size:
            raise ValueError("truncated BGP header")
        marker, length, msg_type = BGP_HEADER.unpack_from(data, 0)
        if marker != MARKER:
            raise ValueError("bad BGP marker")
        if msg_type != MSG_UPDATE:
            raise ValueError(f"not an UPDATE (type={msg_type})")
        if len(data) < length:
            raise ValueError("truncated BGP message")
        body = data[BGP_HEADER.size : length]
        wlen = int.from_bytes(body[0:2], "big")
        withdrawn = _unpack_prefixes(body[2 : 2 + wlen])
        offset = 2 + wlen
        alen = int.from_bytes(body[offset : offset + 2], "big")
        attrs = body[offset + 2 : offset + 2 + alen]
        as_path: List[int] = []
        aoff = 0
        while aoff < len(attrs):
            _flags, attr_type, attr_len = attrs[aoff], attrs[aoff + 1], attrs[aoff + 2]
            value = attrs[aoff + 3 : aoff + 3 + attr_len]
            if attr_type == 2 and len(value) >= 2:
                count = value[1]
                as_path = [
                    int.from_bytes(value[2 + 2 * i : 4 + 2 * i], "big")
                    for i in range(count)
                ]
            aoff += 3 + attr_len
        announced = _unpack_prefixes(body[offset + 2 + alen :])
        return cls(announced=announced, withdrawn=withdrawn, as_path=as_path)

    @property
    def origin_as(self) -> int:
        """The AS that originated the announcement (last in the path)."""
        return self.as_path[-1] if self.as_path else 0
