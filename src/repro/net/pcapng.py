"""pcapng (next-generation capture) file reading and writing.

Modern tooling writes pcapng rather than classic pcap; traces arrive in
both, so the CLI and :mod:`repro.net` support both.  Implemented
subset, which covers everything tcpdump/wireshark emit by default:

* Section Header Blocks (both byte orders),
* Interface Description Blocks (snaplen, link type, ``if_tsresol`` and
  ``if_name`` options),
* Enhanced Packet Blocks (timestamps in the interface's resolution),
* unknown block types are skipped, per the spec.
"""

from __future__ import annotations

import struct
from typing import BinaryIO, Dict, Iterator, List, Optional

from repro.net.packet import CapturedPacket
from repro.net.pcap import CaptureTruncated as _PcapCaptureTruncated

SHB_TYPE = 0x0A0D0D0A
IDB_TYPE = 0x00000001
EPB_TYPE = 0x00000006
BYTE_ORDER_MAGIC = 0x1A2B3C4D

_OPT_END = 0
_OPT_IF_NAME = 2
_OPT_IF_TSRESOL = 9

LINKTYPE_ETHERNET = 1


class PcapngError(ValueError):
    """Raised for malformed pcapng files."""


class CaptureTruncated(_PcapCaptureTruncated, PcapngError):
    """The capture ends mid-block (short header, body, or option).

    Subclasses both :class:`PcapngError` and the pcap module's
    :class:`~repro.net.pcap.CaptureTruncated`, so one ``except``
    covers cut-off traces in either container format.
    """


class _Interface:
    def __init__(self, name: str, tsresol_raw: int = 6) -> None:
        self.name = name
        if tsresol_raw & 0x80:
            self.ticks_per_second = 2 ** (tsresol_raw & 0x7F)
        else:
            self.ticks_per_second = 10 ** tsresol_raw


def _parse_options(data: bytes, endian: str) -> Dict[int, bytes]:
    options: Dict[int, bytes] = {}
    offset = 0
    while offset + 4 <= len(data):
        code, length = struct.unpack_from(endian + "HH", data, offset)
        offset += 4
        if code == _OPT_END:
            break
        if offset + length > len(data):
            # The option claims more bytes than the block has left; a
            # silent short slice here would hand callers a partial
            # option value as if it were complete.
            raise CaptureTruncated(
                f"option {code} (length {length}) overruns its block")
        options[code] = data[offset : offset + length]
        offset += (length + 3) & ~3
    return options


class PcapngReader:
    """Iterate :class:`CapturedPacket` objects out of a pcapng file.

    Interface names come from ``if_name`` options when present, else
    ``"pcapng<N>"``; they become the packets' capture interfaces.
    """

    def __init__(self, fileobj: BinaryIO,
                 interface_prefix: str = "pcapng") -> None:
        self._file = fileobj
        self._prefix = interface_prefix
        self._endian = "<"
        self._interfaces: List[_Interface] = []
        self._started = False

    def _read_block(self):
        header = self._file.read(8)
        if not header:
            return None
        if len(header) < 8:
            raise CaptureTruncated("truncated block header")
        block_type = struct.unpack_from(self._endian + "I", header, 0)[0]
        if block_type == SHB_TYPE:
            # Total length endianness is defined by the section itself:
            # peek at the byte-order magic first.
            magic_raw = self._file.read(4)
            if len(magic_raw) < 4:
                raise CaptureTruncated("truncated section header")
            if struct.unpack("<I", magic_raw)[0] == BYTE_ORDER_MAGIC:
                self._endian = "<"
            elif struct.unpack(">I", magic_raw)[0] == BYTE_ORDER_MAGIC:
                self._endian = ">"
            else:
                raise PcapngError("bad byte-order magic")
            total_length = struct.unpack(self._endian + "I", header[4:8])[0]
            if total_length < 12 or total_length % 4:
                raise PcapngError(f"bad block length {total_length}")
            body = self._file.read(total_length - 12)
            if len(body) < total_length - 12:
                raise CaptureTruncated("truncated section header block")
            self._interfaces = []  # a new section resets interfaces
            self._started = True
            return (SHB_TYPE, b"")
        total_length = struct.unpack(self._endian + "I", header[4:8])[0]
        if total_length < 12 or total_length % 4:
            raise PcapngError(f"bad block length {total_length}")
        body = self._file.read(total_length - 8)
        if len(body) < total_length - 8:
            raise CaptureTruncated("truncated block body")
        return (block_type, body[:-4])  # strip trailing total length

    def __iter__(self) -> Iterator[CapturedPacket]:
        while True:
            block = self._read_block()
            if block is None:
                return
            block_type, body = block
            if block_type == SHB_TYPE:
                continue
            if not self._started:
                raise PcapngError("file does not start with a section header")
            if block_type == IDB_TYPE:
                if len(body) < 8:
                    raise CaptureTruncated(
                        "truncated interface description block")
                _linktype, _reserved, _snaplen = struct.unpack_from(
                    self._endian + "HHI", body, 0)
                options = _parse_options(body[8:], self._endian)
                name = options.get(_OPT_IF_NAME, b"").split(b"\x00")[0].decode(
                    "utf-8", "replace")
                tsresol_raw = options.get(_OPT_IF_TSRESOL) or b"\x06"
                tsresol = tsresol_raw[0]
                if not name:
                    name = f"{self._prefix}{len(self._interfaces)}"
                self._interfaces.append(_Interface(name, tsresol))
                continue
            if block_type == EPB_TYPE:
                if len(body) < 20:
                    raise CaptureTruncated("truncated enhanced packet block")
                (iface_id, ts_high, ts_low, caplen, orig_len) = \
                    struct.unpack_from(self._endian + "IIIII", body, 0)
                if caplen == 0:
                    # A packet record with zero captured bytes: the
                    # capture stopped mid-packet.
                    raise CaptureTruncated(
                        "zero-length enhanced packet block payload")
                data = body[20 : 20 + caplen]
                if len(data) < caplen:
                    raise CaptureTruncated("truncated packet data")
                if iface_id >= len(self._interfaces):
                    raise PcapngError(f"EPB references unknown interface "
                                      f"{iface_id}")
                interface = self._interfaces[iface_id]
                ticks = (ts_high << 32) | ts_low
                yield CapturedPacket(
                    timestamp=ticks / interface.ticks_per_second,
                    data=data,
                    orig_len=orig_len,
                    interface=interface.name,
                )
                continue
            # Unknown block types are skipped, per the spec.

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "PcapngReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _pad4(data: bytes) -> bytes:
    return data + b"\x00" * ((-len(data)) % 4)


def _option(code: int, value: bytes) -> bytes:
    return struct.pack("<HH", code, len(value)) + _pad4(value)


class PcapngWriter:
    """Write packets as one section with one interface per name seen."""

    def __init__(self, fileobj: BinaryIO, snaplen: int = 65535) -> None:
        self._file = fileobj
        self.snaplen = snaplen
        self._interface_ids: Dict[str, int] = {}
        self.packets_written = 0
        body = struct.pack("<IHHq", BYTE_ORDER_MAGIC, 1, 0, -1)
        self._write_block(SHB_TYPE, body)

    def _write_block(self, block_type: int, body: bytes) -> None:
        total = 12 + len(body)
        self._file.write(struct.pack("<II", block_type, total))
        self._file.write(body)
        self._file.write(struct.pack("<I", total))

    def _interface_id(self, name: str) -> int:
        if name not in self._interface_ids:
            options = (_option(_OPT_IF_NAME, name.encode() + b"\x00")
                       + _option(_OPT_IF_TSRESOL, b"\x06\x00\x00\x00")
                       + struct.pack("<HH", _OPT_END, 0))
            body = struct.pack("<HHI", LINKTYPE_ETHERNET, 0, self.snaplen)
            self._write_block(IDB_TYPE, body + options)
            self._interface_ids[name] = len(self._interface_ids)
        return self._interface_ids[name]

    def write(self, packet: CapturedPacket) -> None:
        iface_id = self._interface_id(packet.interface)
        data = packet.data[: self.snaplen]
        ticks = int(round(packet.timestamp * 1_000_000))
        header = struct.pack(
            "<IIIII", iface_id, (ticks >> 32) & 0xFFFFFFFF,
            ticks & 0xFFFFFFFF, len(data), packet.orig_len,
        )
        self._write_block(EPB_TYPE, header + _pad4(data))
        self.packets_written += 1

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "PcapngWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def write_pcapng(path: str, packets, snaplen: int = 65535) -> int:
    with PcapngWriter(open(path, "wb"), snaplen=snaplen) as writer:
        for packet in packets:
            writer.write(packet)
        return writer.packets_written


def read_pcapng(path: str):
    with PcapngReader(open(path, "rb")) as reader:
        return list(reader)
