"""Longest-prefix matching over IPv4 prefixes.

This is the "special fast algorithm" behind the paper's ``getlpmid``
user function (Section 2.2): map an IP address to the ID of the most
specific matching subnet, e.g. to attribute traffic to AT&T peers'
autonomous systems.  Implemented as a binary trie; lookups walk at most
32 nodes.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, TextIO, Tuple, Union

from repro.net.packet import ip_to_int


class _Node:
    __slots__ = ("children", "value", "has_value")

    def __init__(self) -> None:
        self.children: List[Optional[_Node]] = [None, None]
        self.value: Any = None
        self.has_value = False


def parse_prefix(text: str) -> Tuple[int, int]:
    """Parse ``"10.1.0.0/16"`` into ``(network_int, prefix_len)``.

    A bare address is treated as a /32.  The network is masked to the
    prefix length.
    """
    if "/" in text:
        addr, _, length_text = text.partition("/")
        length = int(length_text)
    else:
        addr, length = text, 32
    if not 0 <= length <= 32:
        raise ValueError(f"bad prefix length in {text!r}")
    network = ip_to_int(addr)
    if length < 32:
        network &= ~((1 << (32 - length)) - 1) & 0xFFFFFFFF
    return network, length


class PrefixTable:
    """A longest-prefix-match table from IPv4 prefixes to values."""

    def __init__(self) -> None:
        self._root = _Node()
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def add(self, prefix: Union[str, Tuple[int, int]], value: Any) -> None:
        """Insert ``prefix`` (string or ``(network, length)``) with ``value``.

        Re-inserting an existing prefix replaces its value.
        """
        if isinstance(prefix, str):
            network, length = parse_prefix(prefix)
        else:
            network, length = prefix
        node = self._root
        for depth in range(length):
            bit = (network >> (31 - depth)) & 1
            child = node.children[bit]
            if child is None:
                child = _Node()
                node.children[bit] = child
            node = child
        if not node.has_value:
            self._count += 1
        node.value = value
        node.has_value = True

    def lookup(self, address: Union[int, str]) -> Any:
        """Return the value of the longest matching prefix, or ``None``."""
        if isinstance(address, str):
            address = ip_to_int(address)
        node = self._root
        best = node.value if node.has_value else None
        for depth in range(32):
            bit = (address >> (31 - depth)) & 1
            node = node.children[bit]
            if node is None:
                break
            if node.has_value:
                best = node.value
        return best

    def __contains__(self, address: Union[int, str]) -> bool:
        return self.lookup(address) is not None

    @classmethod
    def from_lines(cls, lines: Iterable[str]) -> "PrefixTable":
        """Build a table from ``prefix value`` lines (# comments allowed).

        This is the format the ``getlpmid`` pass-by-handle parameter file
        uses: one prefix and its peer/AS id per line.
        """
        table = cls()
        for raw in lines:
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) != 2:
                raise ValueError(f"expected 'prefix value', got {raw!r}")
            prefix_text, value_text = parts
            try:
                value: Any = int(value_text)
            except ValueError:
                value = value_text
            table.add(prefix_text, value)
        return table

    @classmethod
    def from_file(cls, path: str) -> "PrefixTable":
        """Load a prefix table from a file of ``prefix value`` lines."""
        with open(path) as handle:
            return cls.from_lines(handle)
