"""UDP header parsing and serialization."""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.net.checksum import internet_checksum, pseudo_header
from repro.net.ip import PROTO_UDP

HEADER_LEN = 8

_HDR = struct.Struct("!HHHH")


@dataclass
class UDPHeader:
    """A UDP header."""

    src_port: int = 0
    dst_port: int = 0
    length: int = 0  # filled by pack() when 0
    checksum: int = 0  # as-parsed; recomputed by pack()

    @classmethod
    def parse(cls, data: bytes, offset: int = 0) -> "UDPHeader":
        """Parse from ``data`` at ``offset``; raises on truncation."""
        if len(data) - offset < HEADER_LEN:
            raise ValueError("truncated UDP header")
        src_port, dst_port, length, checksum = _HDR.unpack_from(data, offset)
        return cls(src_port=src_port, dst_port=dst_port, length=length, checksum=checksum)

    @property
    def header_len(self) -> int:
        return HEADER_LEN

    def pack(self, src_ip: int = 0, dst_ip: int = 0, payload: bytes = b"") -> bytes:
        """Serialize; the checksum covers the pseudo-header when IPs are given."""
        length = self.length or HEADER_LEN + len(payload)
        header = bytearray(_HDR.pack(self.src_port, self.dst_port, length, 0))
        datagram = bytes(header) + payload
        pseudo = pseudo_header(src_ip, dst_ip, PROTO_UDP, length)
        checksum = internet_checksum(pseudo + datagram)
        if checksum == 0:
            checksum = 0xFFFF  # RFC 768: transmitted zero means "no checksum"
        header[6] = checksum >> 8
        header[7] = checksum & 0xFF
        return bytes(header)
