"""IPv6 header parsing and serialization.

The paper's protocol list is IPv4-centric (2003), but its Protocol
mechanism is format-agnostic: "These data packets can be from any
reasonable source."  IPv6 is the obvious second network layer, and the
stock library exposes ``tcp6``/``udp6`` protocols built on this header.

Addresses are carried as 128-bit integers; :func:`ip6_to_int` /
:func:`int_to_ip6` convert to and from colon-hex text (with ``::``
compression support on both sides).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Optional, Tuple

ETHERTYPE_IPV6 = 0x86DD
HEADER_LEN = 40

# Extension headers that carry a (next_header, length) prefix and can
# simply be skipped to find the transport header.
_SKIPPABLE_EXTENSIONS = frozenset({0, 43, 60})  # hop-by-hop, routing, dest opts
EXT_FRAGMENT = 44

_FIXED = struct.Struct("!IHBB16s16s")


def ip6_to_int(text: str) -> int:
    """Parse colon-hex IPv6 notation (with ``::``) to a 128-bit integer."""
    if text.count("::") > 1:
        raise ValueError(f"multiple '::' in {text!r}")
    if "::" in text:
        head_text, _, tail_text = text.partition("::")
        head = head_text.split(":") if head_text else []
        tail = tail_text.split(":") if tail_text else []
        missing = 8 - len(head) - len(tail)
        if missing < 1:
            raise ValueError(f"bad '::' expansion in {text!r}")
        groups = head + ["0"] * missing + tail
    else:
        groups = text.split(":")
    if len(groups) != 8:
        raise ValueError(f"IPv6 address needs 8 groups: {text!r}")
    value = 0
    for group in groups:
        number = int(group or "0", 16)
        if not 0 <= number <= 0xFFFF:
            raise ValueError(f"group out of range in {text!r}")
        value = (value << 16) | number
    return value


def int_to_ip6(value: int) -> str:
    """Render a 128-bit integer as compressed colon-hex notation."""
    if not 0 <= value < (1 << 128):
        raise ValueError(f"not a 128-bit address: {value!r}")
    groups = [(value >> (112 - 16 * i)) & 0xFFFF for i in range(8)]
    # Find the longest run of zero groups for :: compression.
    best_start, best_len = -1, 0
    run_start, run_len = -1, 0
    for index, group in enumerate(groups + [-1]):
        if group == 0:
            if run_start < 0:
                run_start, run_len = index, 0
            run_len += 1
        else:
            if run_len > best_len:
                best_start, best_len = run_start, run_len
            run_start, run_len = -1, 0
    if best_len >= 2:
        head = ":".join(f"{g:x}" for g in groups[:best_start])
        tail = ":".join(f"{g:x}" for g in groups[best_start + best_len :])
        return f"{head}::{tail}"
    return ":".join(f"{g:x}" for g in groups)


@dataclass
class IPv6Header:
    """An IPv6 fixed header."""

    src: int = 0
    dst: int = 0
    next_header: int = 6
    payload_length: int = 0  # filled by pack() when 0
    hop_limit: int = 64
    traffic_class: int = 0
    flow_label: int = 0
    version: int = 6

    @classmethod
    def parse(cls, data: bytes, offset: int = 0) -> "IPv6Header":
        """Parse a fixed header; raises on truncation."""
        if len(data) - offset < HEADER_LEN:
            raise ValueError("truncated IPv6 header")
        word, payload_length, next_header, hop_limit, src, dst = \
            _FIXED.unpack_from(data, offset)
        return cls(
            version=word >> 28,
            traffic_class=(word >> 20) & 0xFF,
            flow_label=word & 0xFFFFF,
            payload_length=payload_length,
            next_header=next_header,
            hop_limit=hop_limit,
            src=int.from_bytes(src, "big"),
            dst=int.from_bytes(dst, "big"),
        )

    @property
    def header_len(self) -> int:
        return HEADER_LEN

    def pack(self, payload_len: int = -1) -> bytes:
        """Serialize (IPv6 has no header checksum)."""
        payload_length = self.payload_length
        if payload_length == 0:
            if payload_len < 0:
                raise ValueError("need payload_len to compute payload_length")
            payload_length = payload_len
        word = (
            (self.version << 28)
            | ((self.traffic_class & 0xFF) << 20)
            | (self.flow_label & 0xFFFFF)
        )
        return _FIXED.pack(
            word, payload_length, self.next_header, self.hop_limit,
            self.src.to_bytes(16, "big"), self.dst.to_bytes(16, "big"),
        )


def skip_extension_headers(data: bytes, offset: int,
                           next_header: int) -> Tuple[int, int]:
    """Walk skippable extension headers; returns (protocol, L4 offset).

    A fragment header (there is no L4 header in non-first fragments)
    returns protocol 44 at the fragment header itself.
    """
    while next_header in _SKIPPABLE_EXTENSIONS:
        if len(data) - offset < 2:
            raise ValueError("truncated IPv6 extension header")
        next_next = data[offset]
        length = (data[offset + 1] + 1) * 8
        offset += length
        next_header = next_next
    return next_header, offset


def pseudo_header_v6(src: int, dst: int, protocol: int, length: int) -> bytes:
    """The IPv6 pseudo-header for TCP/UDP checksums (RFC 8200 §8.1)."""
    return (
        src.to_bytes(16, "big")
        + dst.to_bytes(16, "big")
        + length.to_bytes(4, "big")
        + b"\x00\x00\x00"
        + bytes([protocol])
    )
