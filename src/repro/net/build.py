"""Convenience builders for complete Ethernet/IPv4/TCP|UDP frames.

The traffic generators in :mod:`repro.workloads` use these to produce
real wire bytes which the GSQL protocol schemas then re-interpret --
the same round trip a deployed Gigascope performs.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.net.ethernet import ETHERTYPE_IPV4, EthernetHeader
from repro.net.ip import IPv4Header, PROTO_TCP, PROTO_UDP
from repro.net.packet import CapturedPacket, ip_to_int
from repro.net.tcp import TCPHeader
from repro.net.udp import UDPHeader


def _as_ip_int(addr: Union[int, str]) -> int:
    return addr if isinstance(addr, int) else ip_to_int(addr)


def build_tcp_frame(
    src_ip: Union[int, str],
    dst_ip: Union[int, str],
    src_port: int,
    dst_port: int,
    payload: bytes = b"",
    seq: int = 0,
    ack: int = 0,
    flags: int = 0,
    ttl: int = 64,
    identification: int = 0,
    eth_src: str = "02:00:00:00:00:01",
    eth_dst: str = "02:00:00:00:00:02",
) -> bytes:
    """Build a full Ethernet/IPv4/TCP frame with valid checksums."""
    src = _as_ip_int(src_ip)
    dst = _as_ip_int(dst_ip)
    tcp = TCPHeader(
        src_port=src_port, dst_port=dst_port, seq=seq, ack=ack, flags=flags
    )
    segment = tcp.pack(src, dst, payload) + payload
    ip = IPv4Header(
        src=src, dst=dst, protocol=PROTO_TCP, ttl=ttl, identification=identification
    )
    eth = EthernetHeader(dst=eth_dst, src=eth_src, ethertype=ETHERTYPE_IPV4)
    return eth.pack() + ip.pack(payload_len=len(segment)) + segment


def build_udp_frame(
    src_ip: Union[int, str],
    dst_ip: Union[int, str],
    src_port: int,
    dst_port: int,
    payload: bytes = b"",
    ttl: int = 64,
    identification: int = 0,
    eth_src: str = "02:00:00:00:00:01",
    eth_dst: str = "02:00:00:00:00:02",
) -> bytes:
    """Build a full Ethernet/IPv4/UDP frame with valid checksums."""
    src = _as_ip_int(src_ip)
    dst = _as_ip_int(dst_ip)
    udp = UDPHeader(src_port=src_port, dst_port=dst_port)
    datagram = udp.pack(src, dst, payload) + payload
    ip = IPv4Header(
        src=src, dst=dst, protocol=PROTO_UDP, ttl=ttl, identification=identification
    )
    eth = EthernetHeader(dst=eth_dst, src=eth_src, ethertype=ETHERTYPE_IPV4)
    return eth.pack() + ip.pack(payload_len=len(datagram)) + datagram


def _as_ip6_int(addr: Union[int, str]) -> int:
    from repro.net.ipv6 import ip6_to_int
    return addr if isinstance(addr, int) else ip6_to_int(addr)


def _patch_checksum(header: bytes, checksum_offset: int, pseudo: bytes,
                    payload: bytes) -> bytes:
    """Recompute an L4 checksum over a v6 pseudo-header."""
    from repro.net.checksum import internet_checksum
    cleared = bytearray(header)
    cleared[checksum_offset] = 0
    cleared[checksum_offset + 1] = 0
    checksum = internet_checksum(pseudo + bytes(cleared) + payload)
    cleared[checksum_offset] = checksum >> 8
    cleared[checksum_offset + 1] = checksum & 0xFF
    return bytes(cleared)


def build_tcp6_frame(
    src_ip: Union[int, str],
    dst_ip: Union[int, str],
    src_port: int,
    dst_port: int,
    payload: bytes = b"",
    seq: int = 0,
    flags: int = 0,
    hop_limit: int = 64,
    eth_src: str = "02:00:00:00:00:01",
    eth_dst: str = "02:00:00:00:00:02",
) -> bytes:
    """Build a full Ethernet/IPv6/TCP frame with a valid checksum."""
    from repro.net.ipv6 import ETHERTYPE_IPV6, IPv6Header, pseudo_header_v6
    from repro.net.ip import PROTO_TCP

    src = _as_ip6_int(src_ip)
    dst = _as_ip6_int(dst_ip)
    tcp = TCPHeader(src_port=src_port, dst_port=dst_port, seq=seq, flags=flags)
    header = tcp.pack(0, 0, payload)  # checksummed for v4; re-patch for v6
    pseudo = pseudo_header_v6(src, dst, PROTO_TCP, len(header) + len(payload))
    header = _patch_checksum(header, 16, pseudo, payload)
    ip6 = IPv6Header(src=src, dst=dst, next_header=PROTO_TCP,
                     hop_limit=hop_limit)
    eth = EthernetHeader(dst=eth_dst, src=eth_src, ethertype=ETHERTYPE_IPV6)
    return eth.pack() + ip6.pack(payload_len=len(header) + len(payload)) \
        + header + payload


def build_udp6_frame(
    src_ip: Union[int, str],
    dst_ip: Union[int, str],
    src_port: int,
    dst_port: int,
    payload: bytes = b"",
    hop_limit: int = 64,
    eth_src: str = "02:00:00:00:00:01",
    eth_dst: str = "02:00:00:00:00:02",
) -> bytes:
    """Build a full Ethernet/IPv6/UDP frame with a valid checksum."""
    from repro.net.ipv6 import ETHERTYPE_IPV6, IPv6Header, pseudo_header_v6
    from repro.net.ip import PROTO_UDP

    src = _as_ip6_int(src_ip)
    dst = _as_ip6_int(dst_ip)
    udp = UDPHeader(src_port=src_port, dst_port=dst_port)
    header = udp.pack(0, 0, payload)
    pseudo = pseudo_header_v6(src, dst, PROTO_UDP, len(header) + len(payload))
    header = _patch_checksum(header, 6, pseudo, payload)
    ip6 = IPv6Header(src=src, dst=dst, next_header=PROTO_UDP,
                     hop_limit=hop_limit)
    eth = EthernetHeader(dst=eth_dst, src=eth_src, ethertype=ETHERTYPE_IPV6)
    return eth.pack() + ip6.pack(payload_len=len(header) + len(payload)) \
        + header + payload


def build_icmp_frame(
    src_ip: Union[int, str],
    dst_ip: Union[int, str],
    icmp_type: int = 8,
    code: int = 0,
    identifier: int = 0,
    sequence: int = 0,
    payload: bytes = b"",
    ttl: int = 64,
    identification: int = 0,
    eth_src: str = "02:00:00:00:00:01",
    eth_dst: str = "02:00:00:00:00:02",
) -> bytes:
    """Build a full Ethernet/IPv4/ICMP frame with valid checksums."""
    from repro.net.icmp import ICMPHeader
    from repro.net.ip import PROTO_ICMP

    src = _as_ip_int(src_ip)
    dst = _as_ip_int(dst_ip)
    icmp = ICMPHeader(icmp_type=icmp_type, code=code, identifier=identifier,
                      sequence=sequence)
    message = icmp.pack(payload) + payload
    ip = IPv4Header(src=src, dst=dst, protocol=PROTO_ICMP, ttl=ttl,
                    identification=identification)
    eth = EthernetHeader(dst=eth_dst, src=eth_src, ethertype=ETHERTYPE_IPV4)
    return eth.pack() + ip.pack(payload_len=len(message)) + message


def capture(
    frame: bytes,
    timestamp: float,
    interface: str = "eth0",
    snaplen: Optional[int] = None,
) -> CapturedPacket:
    """Wrap frame bytes as a :class:`CapturedPacket`, optionally truncated."""
    packet = CapturedPacket(timestamp=timestamp, data=frame, interface=interface)
    if snaplen is not None:
        packet = packet.truncate(snaplen)
    return packet
