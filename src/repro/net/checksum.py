"""The Internet checksum (RFC 1071), used by IPv4, TCP, and UDP."""

from __future__ import annotations


def internet_checksum(data: bytes) -> int:
    """Compute the 16-bit one's-complement Internet checksum of ``data``.

    Odd-length input is padded with a zero byte, per RFC 1071.
    """
    if len(data) % 2:
        data = data + b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
    # Fold the carries back in until the sum fits in 16 bits.
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def pseudo_header(src_ip: int, dst_ip: int, protocol: int, length: int) -> bytes:
    """Build the IPv4 pseudo-header used by the TCP and UDP checksums."""
    return bytes(
        [
            (src_ip >> 24) & 0xFF,
            (src_ip >> 16) & 0xFF,
            (src_ip >> 8) & 0xFF,
            src_ip & 0xFF,
            (dst_ip >> 24) & 0xFF,
            (dst_ip >> 16) & 0xFF,
            (dst_ip >> 8) & 0xFF,
            dst_ip & 0xFF,
            0,
            protocol & 0xFF,
            (length >> 8) & 0xFF,
            length & 0xFF,
        ]
    )


def verify_checksum(data: bytes) -> bool:
    """True if ``data`` (checksum field included) sums to zero."""
    return internet_checksum(data) == 0
