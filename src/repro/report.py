"""Operational reporting: a textual snapshot of a running Gigascope.

Seven AT&T installations ran "three months nonstop"; operators of a
long-running monitor need to see where tuples flow, where they are
discarded, and which buffers are filling.  :func:`engine_report`
renders exactly that from the live node/channel statistics.
"""

from __future__ import annotations

from typing import List

from repro.core.engine import Gigascope


def _format_row(columns, widths) -> str:
    return "  ".join(str(value).ljust(width)
                     for value, width in zip(columns, widths))


def engine_report(engine: Gigascope) -> str:
    """A multi-section plain-text report of the engine's state."""
    lines: List[str] = []
    rts = engine.rts
    lines.append("gigascope status")
    lines.append(f"  stream time: {rts.stream_time:.3f} s"
                 if rts.stream_time > float("-inf") else "  stream time: -")
    lines.append(f"  packets fed: {rts.packets_fed}")
    lines.append(f"  heartbeats sent: {rts.heartbeats_sent}")
    lines.append(f"  started: {rts.started}")
    lines.append("")

    header = ("node", "in", "out", "discard", "drops", "extra")
    rows = []
    for name in sorted(rts.names()):
        node = rts.node(name)
        stats = node.stats
        drops = sum(ch.stats.dropped for ch in node.subscribers)
        extras = []
        for attr in ("packets_seen", "dropped", "pairs_emitted",
                     "groups_emitted", "open_groups", "buffered",
                     "sessions_emitted", "reorder_peak", "sampled_out"):
            value = getattr(node, attr, None)
            if value:
                extras.append(f"{attr}={value}")
        table = getattr(node, "table", None)
        if table is not None and table.collisions:
            extras.append(f"collisions={table.collisions}")
        rows.append((name, stats.tuples_in, stats.tuples_out,
                     stats.discarded, drops, " ".join(extras)))
    widths = [max(len(str(row[i])) for row in rows + [header])
              for i in range(len(header))]
    lines.append(_format_row(header, widths))
    for row in rows:
        lines.append(_format_row(row, widths))

    # Channel depths: anything non-empty is either mid-pump or stuck.
    pending = []
    for name in sorted(rts.names()):
        node = rts.node(name)
        for channel in node.subscribers:
            if len(channel):
                pending.append(f"  {channel.name}: {len(channel)} queued "
                               f"(max {channel.stats.max_depth})")
    if pending:
        lines.append("")
        lines.append("channels with queued items:")
        lines.extend(pending)
    return "\n".join(lines)
