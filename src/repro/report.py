"""Operational reporting: a textual snapshot of a running Gigascope.

Seven AT&T installations ran "three months nonstop"; operators of a
long-running monitor need to see where tuples flow, where they are
discarded, and which buffers are filling.  :func:`engine_report`
renders exactly that from the canonical observability snapshot
(:func:`repro.obs.collectors.engine_snapshot` -- the same single source
of truth behind ``RuntimeSystem.stats()`` and the metrics exposition),
plus the overload control plane's drop ledger.
"""

from __future__ import annotations

from typing import List

from repro.obs.collectors import NODE_EXTRA_ATTRS


def _format_row(columns, widths) -> str:
    return "  ".join(str(value).ljust(width)
                     for value, width in zip(columns, widths))


def _node_table(stats, lines: List[str]) -> None:
    header = ("node", "in", "out", "discard", "drops", "extra")
    rows = []
    for name in sorted(stats):
        entry = stats[name]
        channels = entry.get("channels", {})
        drops = sum(ch["dropped"] for ch in channels.values())
        extras = [f"{attr}={entry[attr]}" for attr in NODE_EXTRA_ATTRS
                  if entry.get(attr)]
        if entry.get("hash_collisions"):
            extras.append(f"collisions={entry['hash_collisions']}")
        rows.append((name, entry["tuples_in"], entry["tuples_out"],
                     entry["discarded"], drops, " ".join(extras)))
    widths = [max(len(str(row[i])) for row in rows + [header])
              for i in range(len(header))]
    lines.append(_format_row(header, widths))
    for row in rows:
        lines.append(_format_row(row, widths))

    # Channel depths: anything non-empty is either mid-pump or stuck.
    pending = []
    for name in sorted(stats):
        for channel_name, channel in stats[name].get("channels", {}).items():
            if channel["depth"]:
                pending.append(f"  {channel_name}: {channel['depth']} queued "
                               f"(max {channel['max_depth']})")
    if pending:
        lines.append("")
        lines.append("channels with queued items:")
        lines.extend(pending)


def _overload_section(overload, lines: List[str]) -> None:
    lines.append("")
    lines.append("overload")
    lines.append(f"  policy: {overload.get('policy_state', overload['policy'])}"
                 f"  shed_rate={overload['shed_rate']:.3f}")
    if "cycles" in overload:
        lines.append(f"  pressured cycles: {overload['pressured_cycles']}"
                     f"/{overload['cycles']}")
    lines.append(f"  packets shed: {overload['packets_shed']}"
                 f"  channel drops: {overload['channel_dropped']}")
    dropped = [(name, info) for name, info in
               sorted(overload["channels"].items()) if info["dropped"]]
    for name, info in dropped:
        lines.append(f"  channel {name}: dropped={info['dropped']} "
                     f"max_depth={info['max_depth']} cap={info['capacity']}")


def _sharded_report(engine) -> str:
    """The report for a :class:`~repro.shard.runtime.ShardedGigascope`.

    Same node table and overload ledger as the single-process report
    (the worker statistics travel in their ``end`` frames, namespaced
    ``shardN/...``; the parent's combine operators appear as
    ``merge/...``), plus a per-shard lifecycle section.
    """
    lines: List[str] = []
    report = engine.shard_report()
    lines.append("gigascope status (sharded)")
    lines.append(f"  shards: {report['count']}")
    lines.append(f"  generations: {report['generations']}")
    lines.append(f"  packets fed: {sum(report['packets'])}")
    lines.append(f"  started: {engine.started}")
    lines.append("")
    _node_table(engine.stats(), lines)
    lines.append("")
    lines.append("shards")
    for shard in range(report["count"]):
        status = report["quarantined"].get(str(shard), "ok")
        lines.append(f"  shard {shard}: packets={report['packets'][shard]} "
                     f"rows={report['rows'][shard]} "
                     f"restarts={report['restarts'][shard]} "
                     f"snapshots={report['snapshots'][shard]} "
                     f"dropped={report['dropped_packets'][shard]} "
                     f"[{status}]")
    _overload_section(engine.overload_report(), lines)
    return "\n".join(lines)


def engine_report(engine) -> str:
    """A multi-section plain-text report of the engine's state."""
    if hasattr(engine, "shard_report"):
        return _sharded_report(engine)
    lines: List[str] = []
    rts = engine.rts
    stats = engine.stats()
    lines.append("gigascope status")
    lines.append(f"  stream time: {rts.stream_time:.3f} s"
                 if rts.stream_time > float("-inf") else "  stream time: -")
    lines.append(f"  packets fed: {rts.packets_fed}")
    lines.append(f"  heartbeats sent: {rts.heartbeats_sent}")
    lines.append(f"  started: {rts.started}")
    lines.append("")
    _node_table(stats, lines)
    _overload_section(engine.overload_report(), lines)

    # Alerts section: per-trigger counters come out of the same stats
    # snapshot as the node table above, so the two can never disagree
    # about what the trigger nodes did; the alert engine only supplies
    # the static trigger metadata (watched query, condition).
    alert_engine = rts.alert_engine
    if alert_engine is not None:
        lines.append("")
        lines.append("alerts")
        lines.append(f"  bus: {alert_engine.bus.name}"
                     f"  triggers: {len(alert_engine.triggers)}"
                     f"  ticks: {alert_engine.ticks_sent}")
        for trigger_name, node in alert_engine.triggers.items():
            entry = stats.get(node.name, {})
            lines.append(
                f"  {trigger_name}: on={node.spec.on} "
                f"when=[{node.spec.condition}] "
                f"severity={node.spec.severity} "
                f"active={entry.get('alerts_active', 0)} "
                f"raised={entry.get('alerts_raised', 0)} "
                f"cleared={entry.get('alerts_cleared', 0)} "
                f"suppressed={entry.get('alerts_suppressed', 0)} "
                f"epochs={entry.get('epochs_evaluated', 0)}")

    # Telemetry section: sampler cadence, per-stream row counts, and
    # the profiler's per-operator cost attribution (virtual time is
    # replayable; wall time is measured and advisory).
    telemetry = rts.telemetry
    if telemetry is not None:
        report = telemetry.report()
        lines.append("")
        lines.append("telemetry")
        last = report["last_sample_time"]
        lines.append(f"  interval: {report['interval']}s"
                     f"  samples: {report['samples']}"
                     f"  last: "
                     + (f"{last:.3f} s" if last is not None else "-"))
        lines.append("  rows: " + "  ".join(
            f"{stream}={count}"
            for stream, count in report["rows"].items()))
        profiler = report["profiler"]
        lines.append(f"  profiler: {profiler['profiled_cycles']}"
                     f"/{profiler['cycles']} cycles "
                     f"(every {profiler['sample_every']})")
        for operator in profiler["virtual_us"]:
            lines.append(
                f"  operator {operator}: "
                f"virtual_us={profiler['virtual_us'][operator]} "
                f"wall_us={profiler['wall_us'].get(operator, 0.0)}")
    return "\n".join(lines)
