"""Synthesize Netflow v5 export traffic.

Runs a packet population through the router flow-cache model
(:class:`repro.net.netflow.NetflowExporter`) and wraps the exported
records in real v5 UDP datagrams, producing a stream the built-in
``netflow`` Protocol interprets.  The resulting ``time_start``
attribute exhibits exactly the banded-increasing(30 s) structure
Section 2.1 discusses.
"""

from __future__ import annotations

import random
from typing import Iterator, List

from repro.net.build import build_udp_frame
from repro.net.netflow import NetflowExporter, NetflowRecord, pack_netflow_v5
from repro.net.packet import CapturedPacket, ip_to_int


def netflow_export_stream(
    duration_s: float = 120.0,
    flows_per_second: float = 50.0,
    seed: int = 23,
    router_ip: str = "10.255.0.1",
    collector_ip: str = "10.255.0.2",
    interface: str = "nf0",
    export_interval: float = 30.0,
) -> Iterator[CapturedPacket]:
    """Yield UDP packets carrying Netflow v5 exports of a synthetic mix."""
    rng = random.Random(seed)
    exporter = NetflowExporter(export_interval=export_interval)
    pending: List[NetflowRecord] = []
    sequence = 0

    def ship(now: float) -> Iterator[CapturedPacket]:
        nonlocal pending, sequence
        while len(pending) >= 30:
            batch, pending = pending[:30], pending[30:]
            payload = pack_netflow_v5(batch, unix_secs=0, flow_sequence=sequence)
            sequence += len(batch)
            yield CapturedPacket(
                timestamp=now,
                data=build_udp_frame(router_ip, collector_ip, 4000, 2055,
                                     payload=payload),
                interface=interface,
            )

    now = 0.0
    step = 1.0 / flows_per_second
    while now < duration_s:
        # One synthetic packet observation; flows accumulate in the cache.
        src = rng.randrange(1, 1 << 32)
        dst = ip_to_int(f"192.168.{rng.randrange(4)}.{rng.randrange(1, 255)}")
        exported = exporter.observe(
            now, src, dst, rng.randrange(1024, 65535),
            rng.choice((80, 443, 25)), 6, rng.randrange(40, 1500),
        )
        pending.extend(exported)
        yield from ship(now)
        now += step * (0.5 + rng.random())
    pending.extend(exporter.flush())
    # Ship the remainder, padding the final partial datagram.
    while pending:
        batch, pending = pending[:30], pending[30:]
        payload = pack_netflow_v5(batch, unix_secs=0, flow_sequence=sequence)
        sequence += len(batch)
        yield CapturedPacket(
            timestamp=now,
            data=build_udp_frame(router_ip, collector_ip, 4000, 2055,
                                 payload=payload),
            interface=interface,
        )
