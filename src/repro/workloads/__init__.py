"""Synthetic traffic: the stand-in for the paper's live AT&T links.

* :mod:`repro.workloads.generators` -- the Section 4 experiment mix
  (60 Mbit/s of port-80 traffic, HTTP and tunneled, plus bursty
  background) and generic packet-stream utilities
* :mod:`repro.workloads.flows` -- Zipf flow workloads with tunable
  temporal locality (for the LFTA hash-table experiment)
* :mod:`repro.workloads.netflow_source` -- Netflow v5 export datagrams
  synthesized from a flow population (banded start times)
"""

from repro.workloads.generators import (
    PacketPool,
    background_pool,
    http_port80_pool,
    merge_streams,
    packet_stream,
    section4_stream,
)
from repro.workloads.flows import ZipfFlowWorkload
from repro.workloads.netflow_source import netflow_export_stream

__all__ = [
    "PacketPool",
    "background_pool",
    "http_port80_pool",
    "merge_streams",
    "packet_stream",
    "section4_stream",
    "ZipfFlowWorkload",
    "netflow_export_stream",
]
