"""Synthetic traffic: the stand-in for the paper's live AT&T links.

* :mod:`repro.workloads.generators` -- the Section 4 experiment mix
  (60 Mbit/s of port-80 traffic, HTTP and tunneled, plus bursty
  background) and generic packet-stream utilities
* :mod:`repro.workloads.flows` -- Zipf flow workloads with tunable
  temporal locality (for the LFTA hash-table experiment)
* :mod:`repro.workloads.netflow_source` -- Netflow v5 export datagrams
  synthesized from a flow population (banded start times)
* :mod:`repro.workloads.scenarios` -- labeled attack/anomaly scenarios
  with ground truth (SYN flood, port scan, ping sweep, DNS
  amplification, flash crowd), the corpus E14 scores detectors against
"""

from repro.workloads.generators import (
    PacketPool,
    background_pool,
    http_port80_pool,
    merge_streams,
    packet_stream,
    section4_stream,
)
from repro.workloads.flows import ZipfFlowWorkload
from repro.workloads.netflow_source import netflow_export_stream
from repro.workloads.scenarios import (
    Scenario,
    dns_amplification,
    flash_crowd,
    ping_sweep,
    port_scan,
    syn_flood,
)

__all__ = [
    "Scenario",
    "dns_amplification",
    "flash_crowd",
    "ping_sweep",
    "port_scan",
    "syn_flood",
    "PacketPool",
    "background_pool",
    "http_port80_pool",
    "merge_streams",
    "packet_stream",
    "section4_stream",
    "ZipfFlowWorkload",
    "netflow_export_stream",
]
