"""Packet-stream generators for the Section 4 experiment.

"We generated 60 Mbit/sec of port 80 traffic, and additional background
traffic to vary the data rates."  The query under test computes the
fraction of port-80 traffic that is actually HTTP (port 80 is used to
tunnel through firewalls), so the port-80 pool mixes genuine HTTP
payloads (matching ``^[^\\n]*HTTP/1.*``) with binary tunnel traffic.

For throughput, streams draw frames from a pre-built :class:`PacketPool`
(building checksummed frames is expensive) and only the timestamps are
fresh; this mirrors a hardware traffic generator replaying templates.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence

from repro.net.build import build_tcp_frame, build_udp_frame
from repro.net.packet import CapturedPacket
from repro.net.tcp import FLAG_ACK, FLAG_PSH

_HTTP_REQUESTS = [
    b"GET /index.html HTTP/1.1\r\nHost: www.example.com\r\n"
    b"User-Agent: Mozilla/4.0\r\nAccept: */*\r\n\r\n",
    b"GET /images/logo.gif HTTP/1.0\r\nHost: portal.example.net\r\n\r\n",
    b"POST /cgi-bin/form HTTP/1.1\r\nHost: www.example.org\r\n"
    b"Content-Length: 42\r\n\r\n" + b"x" * 42,
    b"HTTP/1.1 200 OK\r\nServer: Apache/1.3\r\nContent-Type: text/html\r\n"
    b"Content-Length: 512\r\n\r\n" + b"<html>" + b"a" * 500 + b"</html>",
    b"HTTP/1.0 304 Not Modified\r\nDate: Mon, 09 Jun 2003 10:00:00 GMT\r\n\r\n",
]


@dataclass
class PacketPool:
    """Pre-built frames with their wire sizes and mean size."""

    frames: List[bytes]

    @property
    def mean_size(self) -> float:
        return sum(len(frame) for frame in self.frames) / len(self.frames)

    def __len__(self) -> int:
        return len(self.frames)


def http_port80_pool(seed: int = 1, pool_size: int = 256,
                     http_fraction: float = 0.7) -> PacketPool:
    """Port-80 TCP frames: ``http_fraction`` genuine HTTP, rest tunneled."""
    rng = random.Random(seed)
    frames = []
    for index in range(pool_size):
        src = f"10.{rng.randrange(256)}.{rng.randrange(256)}.{rng.randrange(1, 255)}"
        dst = f"192.168.{rng.randrange(4)}.{rng.randrange(1, 255)}"
        if rng.random() < http_fraction:
            payload = rng.choice(_HTTP_REQUESTS)
        else:
            # Tunneled traffic on port 80: binary, never matches the regex.
            payload = bytes(rng.randrange(1, 256) for _ in range(rng.randrange(64, 700)))
        frames.append(
            build_tcp_frame(
                src, dst, rng.randrange(1024, 65535), 80,
                payload=payload, seq=rng.randrange(1 << 31),
                flags=FLAG_ACK | FLAG_PSH, identification=index,
            )
        )
    return PacketPool(frames)


def background_pool(seed: int = 2, pool_size: int = 256) -> PacketPool:
    """Non-port-80 mix: small ACKs, medium UDP, full-size TCP."""
    rng = random.Random(seed)
    frames = []
    for index in range(pool_size):
        src = f"172.16.{rng.randrange(256)}.{rng.randrange(1, 255)}"
        dst = f"10.{rng.randrange(256)}.{rng.randrange(256)}.{rng.randrange(1, 255)}"
        choice = rng.random()
        if choice < 0.4:  # pure ACK
            frames.append(
                build_tcp_frame(src, dst, rng.randrange(1024, 65535),
                                rng.choice((22, 25, 443, 8000)),
                                flags=FLAG_ACK, identification=index)
            )
        elif choice < 0.7:  # medium UDP (DNS-ish, media)
            payload = bytes(rng.randrange(256) for _ in range(rng.randrange(100, 576)))
            frames.append(
                build_udp_frame(src, dst, rng.randrange(1024, 65535),
                                rng.choice((53, 123, 5004)),
                                payload=payload, identification=index)
            )
        else:  # full-size TCP data
            payload = bytes(rng.randrange(256) for _ in range(1400))
            frames.append(
                build_tcp_frame(src, dst, rng.randrange(1024, 65535),
                                rng.choice((21, 119, 443, 6000)),
                                payload=payload, flags=FLAG_ACK,
                                identification=index)
            )
    return PacketPool(frames)


def packet_stream(
    pool: PacketPool,
    rate_mbps: float,
    duration_s: float,
    start: float = 0.0,
    interface: str = "eth0",
    seed: int = 3,
    bursty: bool = False,
    burst_on_s: float = 0.08,
    burst_off_s: float = 0.02,
) -> Iterator[CapturedPacket]:
    """Yield pool frames at ``rate_mbps`` for ``duration_s`` seconds.

    With ``bursty`` the stream is ON/OFF (exponential periods averaging
    ``burst_on_s``/``burst_off_s``) with the ON rate scaled so the long-
    run average still meets ``rate_mbps`` -- "network traffic is
    notoriously bursty in this manner".
    """
    if rate_mbps <= 0:
        return
    rng = random.Random(seed)
    mean_size = pool.mean_size
    pps = rate_mbps * 1e6 / 8.0 / mean_size
    frames = pool.frames
    count = len(frames)
    now = start
    end = start + duration_s
    if not bursty:
        gap = 1.0 / pps
        index = rng.randrange(count)
        while now < end:
            yield CapturedPacket(timestamp=now, data=frames[index],
                                 interface=interface)
            index += 1
            if index == count:
                index = 0
            # Small jitter so arrivals are not perfectly periodic.
            now += gap * (0.5 + rng.random())
        return
    duty = burst_on_s / (burst_on_s + burst_off_s)
    on_pps = pps / duty
    on_gap = 1.0 / on_pps
    index = rng.randrange(count)
    while now < end:
        burst_until = now + rng.expovariate(1.0 / burst_on_s)
        while now < burst_until and now < end:
            yield CapturedPacket(timestamp=now, data=frames[index],
                                 interface=interface)
            index += 1
            if index == count:
                index = 0
            now += on_gap * (0.5 + rng.random())
        now += rng.expovariate(1.0 / burst_off_s)


def merge_streams(*streams: Iterable[CapturedPacket]) -> Iterator[CapturedPacket]:
    """Merge packet streams into one, ordered by timestamp."""
    return heapq.merge(*streams, key=lambda packet: packet.timestamp)


def section4_stream(
    background_mbps: float,
    duration_s: float = 1.0,
    port80_mbps: float = 60.0,
    seed: int = 7,
    interface: str = "eth0",
    pools: Optional[Sequence[PacketPool]] = None,
) -> Iterator[CapturedPacket]:
    """The Section 4 mix: fixed port-80 load plus variable background."""
    if pools is None:
        pools = (http_port80_pool(seed), background_pool(seed + 1))
    port80, background = pools
    streams = [
        packet_stream(port80, port80_mbps, duration_s, seed=seed + 2,
                      interface=interface),
    ]
    if background_mbps > 0:
        streams.append(
            packet_stream(background, background_mbps, duration_s,
                          seed=seed + 3, interface=interface, bursty=True)
        )
    return merge_streams(*streams)
