"""Labeled attack/anomaly scenarios with ground truth.

The paper motivates Gigascope with "network attack and intrusion
detection and monitoring (e.g. distributed denial of service attacks)".
Detector queries need workloads where the right answer is *known*; each
scenario here mixes benign background with one injected anomaly and
returns the ground truth alongside the packets, so tests can score the
GSQL detectors against it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Tuple

from repro.determinism import rng_for
from repro.net.build import (
    build_icmp_frame,
    build_tcp_frame,
    build_udp_frame,
    capture,
)
from repro.net.packet import CapturedPacket, ip_to_int
from repro.net.tcp import FLAG_ACK, FLAG_SYN
from repro.workloads.generators import background_pool, merge_streams, packet_stream


@dataclass
class Scenario:
    """Packets plus the ground truth a detector should recover."""

    packets: List[CapturedPacket]
    #: anomaly window in stream time
    window: Tuple[float, float]
    #: the attacked/attacking address, as an integer
    subject_ip: int
    kind: str
    detail: dict = field(default_factory=dict)


def _background(duration_s: float, rate_mbps: float, seed: int
                ) -> Iterator[CapturedPacket]:
    return packet_stream(background_pool(seed=seed), rate_mbps, duration_s,
                         seed=seed + 1)


def syn_flood(duration_s: float = 60.0, start: float = 20.0,
              attack_s: float = 15.0, pps: float = 1500.0,
              victim: str = "192.168.77.7", background_mbps: float = 15.0,
              seed: int = 41) -> Scenario:
    """Spoofed-source SYN flood against one host."""
    rng = rng_for(seed, "scenarios.syn_flood")

    def attack() -> Iterator[CapturedPacket]:
        now = start
        end = start + attack_s
        while now < end:
            src = (f"{rng.randrange(1, 224)}.{rng.randrange(256)}."
                   f"{rng.randrange(256)}.{rng.randrange(1, 255)}")
            frame = build_tcp_frame(src, victim, rng.randrange(1024, 65535),
                                    80, flags=FLAG_SYN,
                                    seq=rng.randrange(1 << 31))
            yield capture(frame, now)
            now += (0.5 + rng.random()) / pps

    packets = list(merge_streams(_background(duration_s, background_mbps,
                                             seed + 5), attack()))
    return Scenario(packets=packets, window=(start, start + attack_s),
                    subject_ip=ip_to_int(victim), kind="syn_flood",
                    detail={"pps": pps})


def port_scan(duration_s: float = 60.0, start: float = 10.0,
              scan_s: float = 20.0, scanner: str = "203.0.113.66",
              target: str = "192.168.5.5", ports: int = 2000,
              background_mbps: float = 15.0, seed: int = 43) -> Scenario:
    """One source probing many ports of one host (vertical scan)."""
    rng = rng_for(seed, "scenarios.port_scan")

    def attack() -> Iterator[CapturedPacket]:
        gap = scan_s / ports
        now = start
        for port in rng.sample(range(1, 65536), ports):
            frame = build_tcp_frame(scanner, target,
                                    rng.randrange(40000, 65000), port,
                                    flags=FLAG_SYN)
            yield capture(frame, now)
            now += gap * (0.5 + rng.random())

    packets = list(merge_streams(_background(duration_s, background_mbps,
                                             seed + 5), attack()))
    return Scenario(packets=packets, window=(start, start + scan_s),
                    subject_ip=ip_to_int(scanner), kind="port_scan",
                    detail={"ports": ports})


def ping_sweep(duration_s: float = 60.0, start: float = 30.0,
               sweep_s: float = 10.0, scanner: str = "198.51.100.9",
               hosts: int = 500, background_mbps: float = 15.0,
               seed: int = 47) -> Scenario:
    """One source echo-requesting many hosts of a /16 (horizontal sweep)."""
    rng = rng_for(seed, "scenarios.ping_sweep")

    def attack() -> Iterator[CapturedPacket]:
        gap = sweep_s / hosts
        now = start
        for index in range(hosts):
            target = f"192.168.{rng.randrange(256)}.{rng.randrange(1, 255)}"
            frame = build_icmp_frame(scanner, target, icmp_type=8,
                                     sequence=index)
            yield capture(frame, now)
            now += gap * (0.5 + rng.random())

    packets = list(merge_streams(_background(duration_s, background_mbps,
                                             seed + 5), attack()))
    return Scenario(packets=packets, window=(start, start + sweep_s),
                    subject_ip=ip_to_int(scanner), kind="ping_sweep",
                    detail={"hosts": hosts})


def dns_amplification(duration_s: float = 60.0, start: float = 15.0,
                      attack_s: float = 20.0, pps: float = 600.0,
                      victim: str = "192.168.44.4", reflectors: int = 120,
                      amp_bytes: int = 900, background_mbps: float = 15.0,
                      seed: int = 59) -> Scenario:
    """Reflected DNS amplification: many resolvers answering one victim.

    The attacker spoofs the victim's address in small queries to open
    resolvers; what the monitored link sees is the *reflection* -- large
    UDP responses from port 53, many distinct sources, one destination.
    A per-destination byte-rate trigger catches it where per-source
    counts stay low (each reflector sends only ``pps / reflectors``).
    """
    rng = rng_for(seed, "scenarios.dns_amplification")
    pool = [
        f"{rng.randrange(1, 224)}.{rng.randrange(256)}."
        f"{rng.randrange(256)}.{rng.randrange(1, 255)}"
        for _ in range(reflectors)
    ]
    # A handful of pre-built response payloads (frame building dominates
    # generation cost); sizes spread around amp_bytes like real answers.
    payloads = [
        bytes([rng.randrange(256) for _ in range(
            max(100, amp_bytes + rng.randrange(-200, 201)))])
        for _ in range(16)
    ]

    def attack() -> Iterator[CapturedPacket]:
        now = start
        end = start + attack_s
        while now < end:
            frame = build_udp_frame(rng.choice(pool), victim, 53,
                                    rng.randrange(1024, 65535),
                                    payload=rng.choice(payloads))
            yield capture(frame, now)
            now += (0.5 + rng.random()) / pps

    packets = list(merge_streams(_background(duration_s, background_mbps,
                                             seed + 5), attack()))
    return Scenario(packets=packets, window=(start, start + attack_s),
                    subject_ip=ip_to_int(victim), kind="dns_amplification",
                    detail={"pps": pps, "reflectors": reflectors,
                            "amp_bytes": amp_bytes})


def flash_crowd(duration_s: float = 60.0, start: float = 25.0,
                crowd_s: float = 20.0, server: str = "192.168.10.10",
                clients: int = 400, background_mbps: float = 15.0,
                seed: int = 53) -> Scenario:
    """Legitimate-looking HTTP surge: many real clients, one server.

    The negative control: per-source rates stay modest, so SYN-flood
    and scan detectors must NOT fire on the individual sources.
    """
    rng = rng_for(seed, "scenarios.flash_crowd")

    def crowd() -> Iterator[CapturedPacket]:
        now = start
        end = start + crowd_s
        addresses = [
            f"10.{rng.randrange(256)}.{rng.randrange(256)}.{rng.randrange(1, 255)}"
            for _ in range(clients)
        ]
        while now < end:
            src = rng.choice(addresses)
            frame = build_tcp_frame(src, server, rng.randrange(1024, 65535),
                                    80, flags=FLAG_ACK,
                                    payload=b"GET /hot HTTP/1.1\r\n\r\n")
            yield capture(frame, now)
            now += rng.random() * 0.004

    packets = list(merge_streams(_background(duration_s, background_mbps,
                                             seed + 5), crowd()))
    return Scenario(packets=packets, window=(start, start + crowd_s),
                    subject_ip=ip_to_int(server), kind="flash_crowd",
                    detail={"clients": clients})
