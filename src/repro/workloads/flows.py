"""Zipf flow workloads with tunable temporal locality.

"Because of temporal locality, aggregation even with a small hash table
is effective in early data reduction" (Section 3).  Whether that holds
depends on how concentrated the flow popularity distribution is; this
workload draws packets from a population of 5-tuple flows whose
popularity follows a Zipf law with parameter ``alpha``, with optional
flow churn.  Benchmark E4 sweeps the LFTA table size against ``alpha``.
"""

from __future__ import annotations

import random
from bisect import bisect
from dataclasses import dataclass
from itertools import accumulate
from typing import Iterator, List, Tuple

from repro.net.build import build_tcp_frame
from repro.net.packet import CapturedPacket
from repro.net.tcp import FLAG_ACK


@dataclass
class _Flow:
    src_ip: str
    dst_ip: str
    src_port: int
    dst_port: int
    frame: bytes


class ZipfFlowWorkload:
    """Packets drawn from ``num_flows`` flows with Zipf(alpha) popularity."""

    def __init__(self, num_flows: int = 10_000, alpha: float = 1.1,
                 seed: int = 11, churn_per_packet: float = 0.0) -> None:
        if num_flows <= 0:
            raise ValueError("num_flows must be positive")
        self.num_flows = num_flows
        self.alpha = alpha
        self.churn_per_packet = churn_per_packet
        self._rng = random.Random(seed)
        weights = [1.0 / (rank ** alpha) for rank in range(1, num_flows + 1)]
        self._cumulative = list(accumulate(weights))
        self._total = self._cumulative[-1]
        self._flows: List[_Flow] = [self._new_flow() for _ in range(num_flows)]

    def _new_flow(self) -> _Flow:
        rng = self._rng
        src = f"10.{rng.randrange(256)}.{rng.randrange(256)}.{rng.randrange(1, 255)}"
        dst = f"192.168.{rng.randrange(256)}.{rng.randrange(1, 255)}"
        sport = rng.randrange(1024, 65535)
        dport = rng.choice((80, 443, 25, 53, 8080))
        payload = bytes(64)
        frame = build_tcp_frame(src, dst, sport, dport, payload=payload,
                                flags=FLAG_ACK)
        return _Flow(src, dst, sport, dport, frame)

    def _pick(self) -> int:
        """Sample a flow rank from the Zipf distribution."""
        point = self._rng.random() * self._total
        return bisect(self._cumulative, point)

    def packets(self, count: int, pps: float = 100_000.0,
                start: float = 0.0, interface: str = "eth0"
                ) -> Iterator[CapturedPacket]:
        """Yield ``count`` packets at ``pps`` packets/second."""
        gap = 1.0 / pps
        now = start
        for _ in range(count):
            rank = self._pick()
            if (self.churn_per_packet
                    and self._rng.random() < self.churn_per_packet):
                self._flows[rank] = self._new_flow()
            flow = self._flows[min(rank, self.num_flows - 1)]
            yield CapturedPacket(timestamp=now, data=flow.frame,
                                 interface=interface)
            now += gap

    def distinct_keys(self) -> int:
        return self.num_flows
