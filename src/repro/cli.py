"""``gsq``: run GSQL queries over pcap traces from the command line.

The workflow the paper's network analysts follow, minus the cluster:

    # one query inline, results as CSV on stdout
    python -m repro.cli --pcap trace.pcap \\
        --query "Select destIP, destPort, time From tcp Where destPort = 80"

    # a batch file of ';'-separated queries, subscribing to two of them
    python -m repro.cli --pcap trace.pcap --query-file queries.gsql \\
        --subscribe counts --subscribe alerts --output out/

    # show the compiled plans without running anything
    python -m repro.cli --query-file queries.gsql --explain

Exit status is 0 on success, 2 on bad usage, 1 on query errors.
"""

from __future__ import annotations

import argparse
import csv
import sys
from pathlib import Path
from typing import Iterable, List, Optional

from repro.core.engine import Gigascope
from repro.gsql.lexer import GSQLSyntaxError
from repro.gsql.semantic import SemanticError
from repro.net.packet import CapturedPacket, int_to_ip
from repro.net.pcap import PcapReader


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="gsq",
        description="Run GSQL stream queries over a pcap trace.",
    )
    source = parser.add_mutually_exclusive_group()
    source.add_argument("--pcap", action="append", default=[],
                        metavar="FILE[:IFACE]",
                        help="pcap file to replay; ':IFACE' binds it to an "
                             "interface name (default eth0, eth1, ... in "
                             "order given)")
    source.add_argument("--synthetic", metavar="MBPSxSECONDS",
                        help="generate synthetic port-80+background traffic "
                             "instead of reading a trace, e.g. 100x5")
    parser.add_argument("--query", action="append", default=[],
                        help="GSQL query text (repeatable)")
    parser.add_argument("--query-file", action="append", default=[],
                        help="file of ';'-separated GSQL queries (repeatable)")
    parser.add_argument("--subscribe", action="append", default=[],
                        metavar="NAME",
                        help="query name to print/write results for "
                             "(default: every named query)")
    parser.add_argument("--output", metavar="DIR",
                        help="write one CSV per subscription into DIR "
                             "instead of stdout")
    parser.add_argument("--param", action="append", default=[],
                        metavar="QUERY.NAME=VALUE",
                        help="set a query parameter, e.g. watch.port=80")
    parser.add_argument("--mode", choices=("compiled", "interpreted"),
                        default="compiled", help="codegen mode")
    parser.add_argument("--explain", action="store_true",
                        help="print the LFTA/HFTA plans and exit")
    parser.add_argument("--stats", action="store_true",
                        help="print per-node statistics (including "
                             "per-channel overflow counters) after the run")
    parser.add_argument("--seed", type=int, default=0, metavar="N",
                        help="root seed for every data-path RNG (DEFINE-"
                             "sample gates, shed gates, fault coin flips); "
                             "the same queries, packets, and seed replay "
                             "byte-identically regardless of "
                             "PYTHONHASHSEED (default 0)")
    parser.add_argument("--fault", action="append", default=[],
                        metavar="SPEC",
                        help="inject a seeded, virtual-time fault "
                             "(repeatable): ring_burst:at=T,duration=D"
                             "[,drop=P] | channel_storm:at=T,duration=D"
                             "[,capacity=N] | clock_skew:iface=I,skew=S | "
                             "heartbeat_silence:at=T,duration=D | "
                             "operator_error:node=NAME[,at_tuple=N]"
                             "[,times=K]; "
                             "prints each injector's ledger after the run")
    parser.add_argument("--alert", action="append", default=[],
                        metavar="SPEC",
                        help="attach a declarative trigger to a named query "
                             "(repeatable): NAME:on=QUERY,when=COND"
                             "[,key=FIELD][,severity=info|warning|critical]"
                             "[,epoch=SECS][,raise_for=N][,clear_for=N]"
                             "[,min_interval=SECS], e.g. "
                             "'flood:on=syn_watch,key=destIP,"
                             "when=sum(syns) > 400'; RAISE/CLEAR rows land "
                             "on the 'alerts' stream (--subscribe alerts) "
                             "and the alert report prints after the run")
    parser.add_argument("--alert-out", metavar="PATH",
                        help="write the merged alert stream as JSON lines "
                             "to PATH (requires --alert)")
    parser.add_argument("--recover", action="store_true",
                        help="enable checkpoint/restore recovery: crashed "
                             "operators restart from the last checkpoint "
                             "with their input-journal gap replayed instead "
                             "of being permanently quarantined")
    parser.add_argument("--checkpoint-interval", type=float, metavar="SECS",
                        help="virtual-time seconds between crash-consistent "
                             "checkpoints (implies --recover; default 1.0)")
    parser.add_argument("--max-restarts", type=int, metavar="N",
                        help="restart attempts per node before degrading to "
                             "permanent quarantine (implies --recover; "
                             "default 3)")
    parser.add_argument("--shed", metavar="POLICY",
                        help="enable the overload control plane with this "
                             "shedding policy: none | static:RATE | adaptive; "
                             "prints the overload report after the run")
    parser.add_argument("--channel-capacity", type=int, metavar="N",
                        help="bound inter-node channels at N tuples "
                             "(overflow drops data tuples, never "
                             "punctuation; drops are accounted)")
    parser.add_argument("--batch-size", type=int, metavar="N",
                        help="packets per block on the vectorized data "
                             "path (1 disables batching; default from "
                             "GS_BATCH/GS_BATCH_SIZE, else 256)")
    parser.add_argument("--shards", type=int, metavar="N",
                        help="hash-partition packets by flow key across N "
                             "worker processes, each running an independent "
                             "LFTA shard, with superaggregate shard-merge in "
                             "the parent (default from GS_SHARDS, else "
                             "single-process); prints the shard report "
                             "after the run")
    parser.add_argument("--standby", action="store_true",
                        help="run a warm-standby pair: the primary streams "
                             "checksummed snapshot/delta frames to an "
                             "in-process replica, which is promoted on "
                             "primary failure with exactly-once output; "
                             "prints the replication report after the run")
    parser.add_argument("--replicate", metavar="SECS",
                        help="virtual-time seconds between replication "
                             "delta frames (implies --standby; 0 ships a "
                             "frame at every pump boundary; default from "
                             "GS_REPLICATE, else 1.0)")
    parser.add_argument("--promote-after", type=float, metavar="SECS",
                        help="promote the standby once heartbeat silence "
                             "exceeds the heartbeat interval by SECS "
                             "(implies --standby); pair with --fault "
                             "heartbeat_silence:... to rehearse a failover")
    parser.add_argument("--replicate-log", metavar="PATH",
                        help="write every replication frame to PATH as "
                             "length-prefixed GSCK bytes (implies "
                             "--standby)")
    parser.add_argument("--no-columnar", action="store_true",
                        help="decode blocks row-by-row instead of into "
                             "columnar blocks on the LFTA hot path "
                             "(default from GS_COLUMNAR, else columnar)")
    parser.add_argument("--telemetry", action="store_true",
                        help="publish engine internals as queryable _gs_* "
                             "streams (_gs_channel, _gs_operator, _gs_shed, "
                             "_gs_recovery, _gs_alert): GSQL queries and "
                             "--alert triggers can read them like packet "
                             "streams; prints the telemetry report (samples, "
                             "per-stream rows, profiler attribution) after "
                             "the run")
    parser.add_argument("--telemetry-interval", type=float, metavar="SECS",
                        help="virtual-time seconds between telemetry samples "
                             "(implies --telemetry; default 1.0)")
    parser.add_argument("--telemetry-out", metavar="PATH",
                        help="write every telemetry stream row as JSON lines "
                             "to PATH (requires --telemetry)")
    parser.add_argument("--metrics-out", metavar="PATH",
                        help="write a metrics snapshot (repro.obs registry) "
                             "to PATH after the run")
    parser.add_argument("--metrics-format", choices=("prom", "json"),
                        default="prom",
                        help="metrics snapshot format: Prometheus text or "
                             "JSON (default: prom)")
    parser.add_argument("--trace-sample", type=float, metavar="RATE",
                        help="trace roughly RATE (0 < RATE <= 1) of packets "
                             "through the LFTA/HFTA split (sampled lineage "
                             "spans with virtual-time timestamps)")
    parser.add_argument("--trace-out", metavar="PATH",
                        help="write the sampled trace spans as JSON to PATH "
                             "(requires --trace-sample)")
    parser.add_argument("--pretty-ip", action="store_true",
                        help="render IP-typed columns as dotted quads")
    return parser


def _parse_params(entries: List[str]):
    params = {}
    for entry in entries:
        try:
            key, value = entry.split("=", 1)
            query_name, param_name = key.split(".", 1)
        except ValueError:
            raise SystemExit(f"bad --param {entry!r}; use QUERY.NAME=VALUE")
        for cast in (int, float):
            try:
                value = cast(value)
                break
            except ValueError:
                continue
        params.setdefault(query_name, {})[param_name] = value
    return params


def _open_capture(path: str, interface: str):
    """Open a capture file, sniffing pcap vs pcapng by magic number."""
    from repro.net.pcapng import PcapngReader, SHB_TYPE
    handle = open(path, "rb")
    magic = handle.read(4)
    handle.seek(0)
    import struct
    if len(magic) == 4 and struct.unpack("<I", magic)[0] == SHB_TYPE:
        return PcapngReader(handle)
    return PcapReader(handle, interface=interface)


def _packets_from_pcaps(specs: List[str]) -> Iterable[CapturedPacket]:
    import heapq
    readers = []
    for index, spec in enumerate(specs):
        path, _, interface = spec.partition(":")
        interface = interface or f"eth{index}"
        readers.append(_open_capture(path, interface))
    try:
        yield from heapq.merge(*readers, key=lambda p: p.timestamp)
    finally:
        for reader in readers:
            reader.close()


def _synthetic_packets(spec: str) -> Iterable[CapturedPacket]:
    from repro.workloads.generators import section4_stream
    try:
        mbps_text, _, seconds_text = spec.partition("x")
        mbps = float(mbps_text)
        seconds = float(seconds_text)
    except ValueError:
        raise SystemExit(f"bad --synthetic {spec!r}; use MBPSxSECONDS")
    return section4_stream(background_mbps=max(0.0, mbps - 60.0),
                           duration_s=seconds)


def _formatters(engine: Gigascope, name: str, pretty_ip: bool):
    from repro.gsql.types import IP
    schema = engine.schema_of(name)
    fns = []
    for attribute in schema.attributes:
        if pretty_ip and attribute.gsql_type is IP:
            fns.append(int_to_ip)
        elif attribute.gsql_type.python_type is bytes:
            fns.append(lambda v: v.decode("latin-1", "replace")
                       if isinstance(v, bytes) else v)
        else:
            fns.append(lambda v: v)
    return schema.names, fns


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    query_texts = list(args.query)
    for path in args.query_file:
        query_texts.append(Path(path).read_text())
    if not query_texts:
        parser.error("no queries given (use --query or --query-file)")

    params = _parse_params(args.param)
    if args.channel_capacity is not None and args.channel_capacity <= 0:
        parser.error(f"--channel-capacity must be positive, "
                     f"got {args.channel_capacity}")
    if args.trace_out and args.trace_sample is None:
        parser.error("--trace-out requires --trace-sample")
    if args.batch_size is not None and args.batch_size <= 0:
        parser.error(f"--batch-size must be positive, got {args.batch_size}")
    if args.alert_out and not args.alert:
        parser.error("--alert-out requires --alert")
    telemetry = (args.telemetry or args.telemetry_interval is not None)
    if args.telemetry_out and not telemetry:
        parser.error("--telemetry-out requires --telemetry")
    if args.telemetry_interval is not None and args.telemetry_interval < 0:
        parser.error(f"--telemetry-interval must be >= 0, "
                     f"got {args.telemetry_interval}")
    # Distinct artifacts must go to distinct files: writing two streams
    # to one path silently clobbers the first, so it is a usage error.
    seen_outputs: dict = {}
    for flag, value in (("--trace-out", args.trace_out),
                        ("--metrics-out", args.metrics_out),
                        ("--telemetry-out", args.telemetry_out),
                        ("--alert-out", args.alert_out),
                        ("--replicate-log", args.replicate_log)):
        if not value:
            continue
        resolved = Path(value).resolve()
        if resolved in seen_outputs:
            parser.error(f"{seen_outputs[resolved]} and {flag} both "
                         f"write to {value!r}; give each output its "
                         f"own path")
        seen_outputs[resolved] = flag
    if args.checkpoint_interval is not None and args.checkpoint_interval <= 0:
        parser.error(f"--checkpoint-interval must be positive, "
                     f"got {args.checkpoint_interval}")
    if args.max_restarts is not None and args.max_restarts < 0:
        parser.error(f"--max-restarts must be >= 0, got {args.max_restarts}")
    recover = (args.recover or args.checkpoint_interval is not None
               or args.max_restarts is not None)
    if args.shards is not None and args.shards <= 0:
        parser.error(f"--shards must be positive, got {args.shards}")
    try:
        from repro.core.engine import resolve_shards
        shards = resolve_shards(args.shards)
    except ValueError as error:
        # A malformed GS_SHARDS is a usage error (exit 2), same as a
        # bad --shards on the command line -- not a crash.
        parser.error(str(error))
    try:
        from repro.replication import resolve_replicate_cadence
        cadence = resolve_replicate_cadence(args.replicate)
    except ValueError as error:
        # Same convention: a malformed GS_REPLICATE or --replicate is
        # exit 2, and the message names whichever knob was malformed.
        parser.error(str(error))
    if args.promote_after is not None and args.promote_after < 0:
        parser.error(f"--promote-after must be >= 0, "
                     f"got {args.promote_after}")
    standby = (args.standby or cadence is not None
               or args.promote_after is not None
               or args.replicate_log is not None)
    if standby and shards:
        parser.error("--standby cannot be combined with --shards (the "
                     "warm-standby pair is single-process; the sharded "
                     "runtime has its own per-shard standby path)")
    if standby:
        # The warm-standby pair mirrors the bare query engine; the
        # single-process control planes below are not replicated to
        # the standby, so running them on the primary would diverge
        # after a promotion -- a usage error, not a silent one.
        for flag, value in (("--shed", args.shed),
                            ("--alert", args.alert),
                            ("--recover", args.recover),
                            ("--checkpoint-interval",
                             args.checkpoint_interval),
                            ("--max-restarts", args.max_restarts),
                            ("--telemetry", args.telemetry),
                            ("--telemetry-interval",
                             args.telemetry_interval),
                            ("--trace-sample", args.trace_sample)):
            if value:
                parser.error(f"{flag} cannot be combined with --standby "
                             f"(control planes other than fault "
                             f"injection are not mirrored to the "
                             f"replica)")
    if shards:
        # The sharded runtime replicates the whole engine per worker;
        # flags that arm single-process control planes (fault clocks,
        # shedding, trigger state, in-process recovery, tracing,
        # telemetry sampling) would run N divergent copies, so they
        # are a usage error rather than a silent behavior change.
        for flag, value in (("--fault", args.fault),
                            ("--shed", args.shed),
                            ("--alert", args.alert),
                            ("--recover", args.recover),
                            ("--checkpoint-interval",
                             args.checkpoint_interval),
                            ("--max-restarts", args.max_restarts),
                            ("--telemetry", args.telemetry),
                            ("--telemetry-interval",
                             args.telemetry_interval),
                            ("--trace-sample", args.trace_sample)):
            if value:
                parser.error(f"{flag} cannot be combined with --shards "
                             f"(worker crash recovery is built into the "
                             f"sharded runtime; the other control planes "
                             f"are single-process)")
    try:
        if shards:
            from repro.shard import ShardedGigascope
            engine = ShardedGigascope(
                shards, mode=args.mode,
                channel_capacity=args.channel_capacity,
                seed=args.seed, batch_size=args.batch_size,
                columnar=False if args.no_columnar else None)
        elif standby:
            from repro.replication import (DEFAULT_CADENCE,
                                           ReplicatedGigascope)
            engine = ReplicatedGigascope(
                cadence=(cadence if cadence is not None
                         else DEFAULT_CADENCE),
                promote_after=args.promote_after,
                log_path=args.replicate_log,
                mode=args.mode,
                channel_capacity=args.channel_capacity,
                seed=args.seed, batch_size=args.batch_size,
                columnar=False if args.no_columnar else None)
        else:
            engine = Gigascope(mode=args.mode,
                               channel_capacity=args.channel_capacity,
                               seed=args.seed,
                               batch_size=args.batch_size,
                               columnar=False if args.no_columnar else None)
    except ValueError as error:
        # A malformed GS_BATCH_SIZE in the environment is a usage
        # error (exit 2), same as a bad --batch-size on the command
        # line -- not a crash.
        parser.error(str(error))
    tracer = None
    if args.trace_sample is not None:
        try:
            tracer = engine.enable_tracing(args.trace_sample)
        except ValueError as error:
            parser.error(f"bad --trace-sample: {error}")
    if args.shed:
        try:
            engine.enable_shedding(args.shed)
        except ValueError as error:
            raise SystemExit(f"bad --shed {args.shed!r}: {error}")
    telemetry_hub = None
    if telemetry:
        # Before the queries compile, so "From _gs_channel" resolves
        # like any packet protocol.
        telemetry_hub = engine.enable_telemetry(
            interval=(args.telemetry_interval
                      if args.telemetry_interval is not None else 1.0))
    names: List[str] = []
    try:
        for text in query_texts:
            names.extend(engine.add_queries(text, params=params))
    except (GSQLSyntaxError, SemanticError) as error:
        print(f"query error: {error}", file=sys.stderr)
        return 1

    if args.explain:
        for name in names:
            print(engine.explain(name))
        return 0

    alert_file = None
    if args.alert:
        # Triggers attach after the queries exist (``on=`` names one)
        # and before faults are armed, so operator_error can target an
        # alert node too.
        from repro.alerts import AlertSpecError
        try:
            alert_engine = engine.enable_alerts(args.alert)
        except AlertSpecError as error:
            # AlertSpecError messages lead with the offending field
            # name ("when: ..."), mirroring the --fault convention.
            parser.error(f"bad --alert: {error}")
        if args.alert_out:
            from repro.sinks import JsonlSink, attach_sink
            alert_file = open(args.alert_out, "w")
            attach_sink(engine, alert_engine.bus.name, JsonlSink, alert_file)

    if args.fault:
        # Arm after the queries exist (operator_error names a node) and
        # before any packet flows.
        from repro.core.stream_manager import RegistryError
        try:
            engine.inject_faults(args.fault)
        except (ValueError, KeyError, RegistryError) as error:
            parser.error(f"bad --fault: {error}")

    watched = args.subscribe or [n for n in names if not n.startswith("_")]
    subscriptions = {name: engine.subscribe(name) for name in watched}
    telemetry_subs = {}
    if args.telemetry_out:
        telemetry_subs = {stream: engine.subscribe(stream)
                          for stream in sorted(telemetry_hub.nodes)}

    if args.pcap:
        packets = _packets_from_pcaps(args.pcap)
    elif args.synthetic:
        packets = _synthetic_packets(args.synthetic)
    else:
        parser.error("no packet source (use --pcap or --synthetic)")

    if recover:
        engine.enable_recovery(
            checkpoint_interval=(args.checkpoint_interval
                                 if args.checkpoint_interval is not None
                                 else 1.0),
            max_restarts=(args.max_restarts
                          if args.max_restarts is not None else 3),
        )

    engine.start()
    engine.feed(packets)
    engine.flush()

    out_dir = Path(args.output) if args.output else None
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
    for name, subscription in subscriptions.items():
        header, fns = _formatters(engine, name, args.pretty_ip)
        rows = subscription.poll()
        if out_dir is not None:
            with open(out_dir / f"{name}.csv", "w", newline="") as handle:
                writer = csv.writer(handle)
                writer.writerow(header)
                for row in rows:
                    writer.writerow([fn(v) for fn, v in zip(fns, row)])
            print(f"{name}: {len(rows)} rows -> {out_dir / (name + '.csv')}")
        else:
            writer = csv.writer(sys.stdout)
            print(f"# {name}")
            writer.writerow(header)
            for row in rows:
                writer.writerow([fn(v) for fn, v in zip(fns, row)])

    if args.fault:
        print("# fault ledger", file=sys.stderr)
        for entry in engine.fault_report():
            print(f"#  {entry}", file=sys.stderr)
        if engine.rts.quarantined:
            for node_name, reason in sorted(engine.rts.quarantined.items()):
                print(f"#  quarantined {node_name}: {reason}",
                      file=sys.stderr)
    if recover:
        report = engine.recovery_report()
        print("# recovery report", file=sys.stderr)
        print(f"#  checkpoints={report['checkpoints_taken']} "
              f"({report['checkpoint_bytes']} bytes, "
              f"{report['checkpoint_nodes']} nodes) "
              f"restarts={report['restarts_total']} "
              f"replayed={report['replayed_items']} "
              f"suppressed={report['suppressed_rows']} "
              f"exhausted={report['retries_exhausted']}", file=sys.stderr)
        for node_name, count in report["restarts"].items():
            print(f"#  restarted {node_name}: {count} attempt(s)",
                  file=sys.stderr)
    if args.alert:
        report = engine.alert_report()
        print("# alert report", file=sys.stderr)
        print(f"#  bus={report['bus']} ticks={report['ticks_sent']} "
              f"active={report['active_total']} "
              f"raised={report['raised_total']} "
              f"cleared={report['cleared_total']} "
              f"suppressed={report['suppressed_total']}", file=sys.stderr)
        for trigger_name, entry in report["triggers"].items():
            print(f"#  trigger {trigger_name}: on={entry['on']} "
                  f"when=[{entry['condition']}] "
                  f"severity={entry['severity']} "
                  f"active={entry['active']} raised={entry['raised']} "
                  f"cleared={entry['cleared']} "
                  f"suppressed={entry['suppressed']}", file=sys.stderr)
        if alert_file is not None:
            alert_file.close()
            print(f"#  alert stream -> {args.alert_out}", file=sys.stderr)
    if telemetry:
        report = engine.telemetry_report()
        print("# telemetry report", file=sys.stderr)
        print(f"#  interval={report['interval']} "
              f"samples={report['samples']} "
              f"last_sample={report['last_sample_time']}", file=sys.stderr)
        print(f"#  rows: " + " ".join(
            f"{stream}={count}"
            for stream, count in report["rows"].items()), file=sys.stderr)
        profiler = report["profiler"]
        print(f"#  profiler: cycles={profiler['cycles']} "
              f"profiled={profiler['profiled_cycles']} "
              f"(every {profiler['sample_every']})", file=sys.stderr)
        for operator in profiler["virtual_us"]:
            print(f"#  operator {operator}: "
                  f"virtual_us={profiler['virtual_us'][operator]} "
                  f"wall_us={profiler['wall_us'].get(operator, 0.0)}",
                  file=sys.stderr)
        if args.telemetry_out:
            import json as json_module
            with open(args.telemetry_out, "w") as handle:
                for stream, subscription in telemetry_subs.items():
                    schema = engine.schema_of(stream)
                    for row in subscription.poll():
                        record = {"stream": stream}
                        for key, value in zip(schema.names, row):
                            if isinstance(value, bytes):
                                value = value.decode("utf-8", "replace")
                            record[key] = value
                        json_module.dump(record, handle)
                        handle.write("\n")
            print(f"#  telemetry streams -> {args.telemetry_out}",
                  file=sys.stderr)
    if shards:
        report = engine.shard_report()
        print("# shard report", file=sys.stderr)
        print(f"#  shards={report['count']} "
              f"generations={report['generations']} "
              f"restarts={sum(report['restarts'])} "
              f"snapshots={sum(report['snapshots'])} "
              f"dropped={sum(report['dropped_packets'])}", file=sys.stderr)
        for shard in range(report["count"]):
            status = report["quarantined"].get(str(shard), "ok")
            print(f"#  shard {shard}: packets={report['packets'][shard]} "
                  f"rows={report['rows'][shard]} "
                  f"restarts={report['restarts'][shard]} [{status}]",
                  file=sys.stderr)
    if standby:
        report = engine.replication_report()
        print("# replication report", file=sys.stderr)
        print(f"#  cadence={report['cadence']} frames: "
              f"full={report['frames_full']} "
              f"delta={report['frames_delta']} "
              f"bytes={report['bytes_total']} "
              f"nodes={report['nodes_shipped']} "
              f"skipped={report['skipped_unquiescent']}", file=sys.stderr)
        print(f"#  standby: applied_seq={report['applied_seq']} "
              f"frames_applied={report['frames_applied']} "
              f"apply_errors={report['apply_errors']}", file=sys.stderr)
        print(f"#  promoted={report['promoted']} "
              f"promotions={report['promotions']} "
              f"replayed_packets={report['replayed_packets']} "
              f"suppressed_rows={report['suppressed_rows']}",
              file=sys.stderr)
        if report["promoted"]:
            print(f"#  failure: {report['failure_reason']}; "
                  f"rpo_packets={report['rpo_packets']} "
                  f"rpo_virtual_s={report['rpo_virtual_s']:.3f} "
                  f"rto_wall_s={report['promote_wall_s']:.6f}",
                  file=sys.stderr)
        if args.replicate_log:
            print(f"#  replication log -> {args.replicate_log}",
                  file=sys.stderr)
    if args.stats:
        # The same canonical snapshot the metrics exposition exports
        # (repro.obs.collectors), rendered one node per line.
        print("# node statistics", file=sys.stderr)
        for name, stats in sorted(engine.stats().items()):
            print(f"#  {name}: {stats}", file=sys.stderr)
    if args.metrics_out:
        registry = engine.metrics
        if args.metrics_format == "json":
            text = registry.to_json(indent=2)
        else:
            text = registry.to_prometheus()
        Path(args.metrics_out).write_text(text)
        print(f"# metrics snapshot ({args.metrics_format}) -> "
              f"{args.metrics_out}", file=sys.stderr)
    if tracer is not None:
        if args.trace_out:
            Path(args.trace_out).write_text(tracer.to_json(indent=2))
            print(f"# {tracer.started} sampled traces -> {args.trace_out}",
                  file=sys.stderr)
        else:
            print(f"# {tracer.started} sampled traces recorded "
                  f"(use --trace-out to dump them)", file=sys.stderr)
    if args.shed:
        report = engine.overload_report()
        print("# overload report", file=sys.stderr)
        print(f"#  policy={report['policy_state']} "
              f"shed_rate={report['shed_rate']:.3f} "
              f"min={report['min_shed_rate']:.3f} "
              f"cycles={report['cycles']} "
              f"pressured={report['pressured_cycles']}", file=sys.stderr)
        print(f"#  packets: seen={report['packets_seen']} "
              f"shed={report['packets_shed']} "
              f"({report['shed_fraction']:.1%}); "
              f"channel_dropped={report['channel_dropped']}",
              file=sys.stderr)
        for channel_name, info in sorted(report["channels"].items()):
            print(f"#  channel {channel_name}: depth={info['depth']} "
                  f"max={info['max_depth']} cap={info['capacity']} "
                  f"dropped={info['dropped']}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
