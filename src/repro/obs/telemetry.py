"""Self-telemetry: the engine's internals as first-class GSQL streams.

Gigascope's defining observability move is that it monitors itself with
its own query language -- internal performance data is exposed as
ordinary streams that GSQL queries (and PR 6 alert triggers) consume
exactly like packet streams.  The :class:`TelemetryHub` turns the
canonical observability snapshot (:mod:`repro.obs.collectors`) into
five typed streams, registered in the engine's schema like any query
output:

* ``_gs_channel``  -- per-channel depth, high-water mark, and overflow
  drops (cumulative and per-sample delta);
* ``_gs_operator`` -- per-operator input/output counters, per-sample
  deltas, the Section 4 virtual-time cost of the work done since the
  last sample, and the quarantine flag;
* ``_gs_shed``     -- the overload control plane's shed rate and drop
  ledger;
* ``_gs_recovery`` -- checkpoint/restart/replay counters from the
  recovery supervisor;
* ``_gs_alert``    -- RAISE/CLEAR/suppression totals from the alert
  plane.

Rows are emitted at pump boundaries *in virtual time* -- the hub's
:meth:`~TelemetryHub.on_cycle` runs before the drain, so telemetry
rows travel through the same (journaled) channels as every other
stream item.  That inheritance is the whole determinism argument:
row values are derived exclusively from deterministic counters (never
wall clocks), so ``replay verify-telemetry`` can prove telemetry
streams byte-identical across ``PYTHONHASHSEED`` values and across a
mid-run crash/restore, with zero telemetry-specific recovery code.

The no-feedback rule: telemetry streams observe only non-telemetry
nodes and channels (names starting with ``_gs_`` are skipped), so each
sample emits a bounded, workload-independent number of rows and the
streams never describe themselves.

Bounded memory (DESIGN section 13): every stream declares ``time``
with :meth:`Ordering.increasing`, the same admission evidence packet
protocols carry, so windowed meta-queries and triggers pass the
bounded-memory check of ``gsql/ordering.py`` unchanged.

Wall-clock cost is profiled separately: :class:`PumpProfiler` samples
``perf_counter`` around each operator's share of the pump drain and
surfaces the attribution through :meth:`TelemetryHub.report` and the
``gs_telemetry_profile*`` metrics -- never through the streams, which
must stay replayable.
"""

from __future__ import annotations

import math
from time import perf_counter
from typing import Any, Dict, List, Optional, Tuple

from repro.core.heartbeat import Punctuation
from repro.core.query_node import QueryNode
from repro.gsql.ordering import Ordering
from repro.gsql.schema import Attribute, StreamSchema
from repro.gsql.types import FLOAT, STRING, UINT

#: every stream the hub can publish, in emission order
TELEMETRY_STREAMS = ("_gs_channel", "_gs_operator", "_gs_shed",
                     "_gs_recovery", "_gs_alert")


def telemetry_schema(stream: str) -> StreamSchema:
    """The typed schema of one ``_gs_*`` stream.

    ``time`` leads every stream with an increasing ordering: sample
    times are strictly advancing virtual time, which is what admits
    windowed meta-queries (``Group by time/5``) as bounded-memory.
    """
    time_attr = Attribute("time", FLOAT, Ordering.increasing())
    if stream == "_gs_channel":
        return StreamSchema(stream, [
            time_attr,
            Attribute("channel", STRING),
            Attribute("depth", UINT),
            Attribute("max_depth", UINT),
            Attribute("pushed", UINT),
            Attribute("popped", UINT),
            Attribute("dropped", UINT),
            Attribute("dropped_delta", UINT),
        ])
    if stream == "_gs_operator":
        return StreamSchema(stream, [
            time_attr,
            Attribute("operator", STRING),
            Attribute("tuples_in", UINT),
            Attribute("tuples_out", UINT),
            Attribute("discarded", UINT),
            Attribute("in_delta", UINT),
            Attribute("out_delta", UINT),
            Attribute("cost_us", FLOAT),
            Attribute("quarantined", UINT),
        ])
    if stream == "_gs_shed":
        return StreamSchema(stream, [
            time_attr,
            Attribute("shed_rate", FLOAT),
            Attribute("packets_shed", UINT),
            Attribute("shed_delta", UINT),
            Attribute("channel_dropped", UINT),
            Attribute("pressured_cycles", UINT),
            Attribute("cycles", UINT),
        ])
    if stream == "_gs_recovery":
        return StreamSchema(stream, [
            time_attr,
            Attribute("checkpoints", UINT),
            Attribute("checkpoint_bytes", UINT),
            Attribute("restarts", UINT),
            Attribute("replayed", UINT),
            Attribute("suppressed", UINT),
            Attribute("suspended", UINT),
            Attribute("journal_len", UINT),
        ])
    if stream == "_gs_alert":
        return StreamSchema(stream, [
            time_attr,
            Attribute("triggers", UINT),
            Attribute("ticks", UINT),
            Attribute("raised", UINT),
            Attribute("cleared", UINT),
            Attribute("suppressed", UINT),
            Attribute("active", UINT),
        ])
    raise KeyError(f"unknown telemetry stream {stream!r}; "
                   f"known: {TELEMETRY_STREAMS}")


class TelemetryStreamNode(QueryNode):
    """The producer node behind one ``_gs_*`` stream.

    A pure emitter: it has no inputs (the hub pushes rows into it at
    pump boundaries) and no state beyond the base counters, so
    checkpoint/restore needs nothing telemetry-specific.  After each
    sample it emits punctuation on the ``time`` attribute (slot 0) so
    downstream windowed meta-queries close their epochs promptly.
    """

    accepts_batch = False

    def __init__(self, stream: str) -> None:
        super().__init__(stream, telemetry_schema(stream))

    def on_tuple(self, row: tuple, input_index: int) -> None:
        raise TypeError(f"{self.name} is a telemetry source; it has no inputs")

    def publish(self, rows: List[tuple], stream_time: float) -> None:
        for row in rows:
            self.emit(row)
        self.emit_punctuation(Punctuation({0: stream_time}))


class PumpProfiler:
    """Sampling wall-clock profiler for the pump drain.

    Every ``sample_every``-th pump cycle, the RTS brackets each
    operator's share of the drain with ``perf_counter`` and reports it
    here.  Attribution closes when the operator's drain ends --
    including a mid-cycle quarantine or restart, so a contained failure
    never leaves a dangling cost entry.  Wall times are *observability
    only*: they feed the report and the ``gs_telemetry_profile*``
    metrics, never the telemetry streams.
    """

    __slots__ = ("sample_every", "cycles", "profiled_cycles", "wall_s")

    def __init__(self, sample_every: int = 1) -> None:
        if sample_every < 1:
            raise ValueError("profile_every must be >= 1")
        self.sample_every = sample_every
        self.cycles = 0
        self.profiled_cycles = 0
        #: operator name -> accumulated wall seconds across sampled cycles
        self.wall_s: Dict[str, float] = {}

    def begin_cycle(self) -> bool:
        """Count a pump cycle; True when this cycle should be profiled."""
        self.cycles += 1
        if self.cycles % self.sample_every:
            return False
        self.profiled_cycles += 1
        return True

    def add(self, operator: str, seconds: float) -> None:
        self.wall_s[operator] = self.wall_s.get(operator, 0.0) + seconds

    def wall_us(self) -> Dict[str, float]:
        return {name: self.wall_s[name] * 1e6 for name in sorted(self.wall_s)}


class TelemetryHub:
    """Owns the ``_gs_*`` stream nodes, the sampler, and the profiler.

    Created via :meth:`repro.core.engine.Gigascope.enable_telemetry`;
    the RTS calls :meth:`on_cycle` at every pump boundary (before the
    drain, like the alert plane's epoch clock) and :meth:`on_stream_end`
    from ``flush_all`` so subscribers of telemetry streams terminate
    like any other stream's.
    """

    def __init__(self, engine, interval: float = 1.0,
                 streams: Optional[Tuple[str, ...]] = None,
                 profile_every: int = 1) -> None:
        if interval < 0:
            raise ValueError("telemetry interval must be >= 0")
        unknown = [s for s in (streams or ()) if s not in TELEMETRY_STREAMS]
        if unknown:
            raise KeyError(f"unknown telemetry streams {unknown}; "
                           f"known: {TELEMETRY_STREAMS}")
        self.engine = engine
        self.rts = engine.rts
        self.interval = interval
        self.nodes: Dict[str, TelemetryStreamNode] = {}
        for stream in TELEMETRY_STREAMS:
            if streams is not None and stream not in streams:
                continue
            node = TelemetryStreamNode(stream)
            engine.add_node(node)
            self.nodes[stream] = node
        self.profiler = PumpProfiler(sample_every=profile_every)
        self.samples_taken = 0
        self._last_sample = -math.inf
        #: per-channel previous (pushed, dropped), keyed by channel object
        self._prev_channel: Dict[int, Tuple[int, int]] = {}
        #: per-operator previous (tuples_in, tuples_out, packets_seen)
        self._prev_node: Dict[str, Tuple[int, int, int]] = {}
        self._prev_shed = 0
        #: cumulative Section 4 virtual cost attributed per operator
        self.virtual_us: Dict[str, float] = {}
        self.rts.telemetry = self
        if self.rts.metrics is not None:
            from repro.obs.collectors import install_telemetry_metrics
            install_telemetry_metrics(self.rts.metrics, self)

    # -- sampling -------------------------------------------------------------
    def on_cycle(self, stream_time: float) -> None:
        """Pump-boundary hook: sample the engine if the interval elapsed.

        Runs *before* the drain so the emitted rows flow through
        (journaled) channels this same cycle, exactly like alert epoch
        ticks -- the property ``replay verify-telemetry`` gates on.
        """
        if math.isinf(stream_time) or stream_time <= self._last_sample:
            return
        if (self.samples_taken and
                stream_time < self._last_sample + self.interval):
            return
        self._sample(stream_time)

    def on_stream_end(self, stream_time: float) -> None:
        """End-of-stream hook (``flush_all``): final sample, then FLUSH.

        Telemetry nodes are not packet consumers, so the RTS's flush
        loop never reaches them; without this, meta-queries and
        meta-triggers reading ``_gs_*`` streams would never terminate.
        """
        if not math.isinf(stream_time) and stream_time > self._last_sample:
            self._sample(stream_time)
        for node in self.nodes.values():
            if not node.flushed:
                node.flushed = True
                node.flush()
                node.emit_flush()

    def _observed_nodes(self):
        """(name, node) pairs telemetry reports on: everything non-``_gs_``."""
        for name, node in self.rts.iter_nodes():
            if not name.startswith("_gs_"):
                yield name, node

    def _sample(self, stream_time: float) -> None:
        self._last_sample = stream_time
        self.samples_taken += 1
        time_value = float(stream_time)
        channel_rows: List[tuple] = []
        operator_rows: List[tuple] = []
        shed_total = 0
        dropped_total = 0
        cost_model = self.rts.cost_model
        tuple_us = cost_model.hfta_tuple_us if cost_model is not None else 0.0
        for name, node in self._observed_nodes():
            stats = node.stats
            packets_seen = getattr(node, "packets_seen", 0) or 0
            shed_total += getattr(node, "shed_packets", 0) or 0
            prev_in, prev_out, prev_seen = self._prev_node.get(name, (0, 0, 0))
            in_delta = stats.tuples_in - prev_in
            out_delta = stats.tuples_out - prev_out
            seen_delta = packets_seen - prev_seen
            self._prev_node[name] = (stats.tuples_in, stats.tuples_out,
                                     packets_seen)
            # Section 4 cost of the work done since the last sample:
            # channel items for HFTAs, examined packets for consumers.
            cost_us = float(max(in_delta, seen_delta, 0) * tuple_us)
            self.virtual_us[name] = self.virtual_us.get(name, 0.0) + cost_us
            operator_rows.append((
                time_value,
                name.encode("utf-8", "backslashreplace"),
                int(stats.tuples_in),
                int(stats.tuples_out),
                int(stats.discarded),
                int(max(in_delta, 0)),
                int(max(out_delta, 0)),
                cost_us,
                int(node.quarantined is not None),
            ))
            for channel in node.subscribers:
                cstats = channel.stats
                prev_pushed, prev_dropped = self._prev_channel.get(
                    id(channel), (0, 0))
                dropped_delta = cstats.dropped - prev_dropped
                self._prev_channel[id(channel)] = (cstats.pushed,
                                                   cstats.dropped)
                dropped_total += cstats.dropped
                channel_rows.append((
                    time_value,
                    channel.name.encode("utf-8", "backslashreplace"),
                    int(len(channel)),
                    int(cstats.max_depth),
                    int(cstats.pushed),
                    int(cstats.popped),
                    int(cstats.dropped),
                    int(max(dropped_delta, 0)),
                ))
        self._publish("_gs_channel", channel_rows, stream_time)
        self._publish("_gs_operator", operator_rows, stream_time)
        if "_gs_shed" in self.nodes:
            controller = self.rts.controller
            shed_delta = shed_total - self._prev_shed
            self._prev_shed = shed_total
            self._publish("_gs_shed", [(
                time_value,
                float(controller.shed_rate) if controller is not None else 1.0,
                int(shed_total),
                int(max(shed_delta, 0)),
                int(dropped_total),
                int(controller.pressured_cycles) if controller is not None
                else 0,
                int(controller.cycles) if controller is not None else 0,
            )], stream_time)
        if "_gs_recovery" in self.nodes:
            supervisor = self.rts.supervisor
            if supervisor is None:
                row = (time_value, 0, 0, 0, 0, 0, 0, 0)
            else:
                row = (
                    time_value,
                    int(supervisor.checkpoints_taken),
                    int(supervisor.checkpoint_bytes),
                    int(supervisor.restarts_total),
                    int(supervisor.replayed_items),
                    int(supervisor.suppressed_rows),
                    int(len(supervisor._suspended)),
                    int(supervisor.journal_len),
                )
            self._publish("_gs_recovery", [row], stream_time)
        if "_gs_alert" in self.nodes:
            alert_engine = self.rts.alert_engine
            if alert_engine is None:
                row = (time_value, 0, 0, 0, 0, 0, 0)
            else:
                triggers = alert_engine.triggers.values()
                row = (
                    time_value,
                    int(len(alert_engine.triggers)),
                    int(alert_engine.ticks_sent),
                    int(sum(t.alerts_raised for t in triggers)),
                    int(sum(t.alerts_cleared for t in triggers)),
                    int(sum(t.alerts_suppressed for t in triggers)),
                    int(sum(t.alerts_active for t in triggers)),
                )
            self._publish("_gs_alert", [row], stream_time)

    def _publish(self, stream: str, rows: List[tuple],
                 stream_time: float) -> None:
        node = self.nodes.get(stream)
        if node is not None:
            node.publish(rows, stream_time)

    # -- reporting ------------------------------------------------------------
    def report(self) -> Dict[str, Any]:
        """The hub's ledger (the ``# telemetry report`` source)."""
        profiler = self.profiler
        return {
            "interval": self.interval,
            "streams": sorted(self.nodes),
            "samples": self.samples_taken,
            "last_sample_time": (self._last_sample
                                 if not math.isinf(self._last_sample)
                                 else None),
            "rows": {stream: node.stats.tuples_out
                     for stream, node in sorted(self.nodes.items())},
            "profiler": {
                "sample_every": profiler.sample_every,
                "cycles": profiler.cycles,
                "profiled_cycles": profiler.profiled_cycles,
                "wall_us": {name: round(value, 1)
                            for name, value in profiler.wall_us().items()},
                "virtual_us": {name: round(self.virtual_us[name], 1)
                               for name in sorted(self.virtual_us)},
            },
        }


__all__ = [
    "TELEMETRY_STREAMS",
    "PumpProfiler",
    "TelemetryHub",
    "TelemetryStreamNode",
    "telemetry_schema",
]
