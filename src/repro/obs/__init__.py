"""``repro.obs``: the unified observability layer.

* :mod:`repro.obs.registry` -- typed metrics (counters, gauges,
  fixed-bucket histograms) with Prometheus-text and JSON exposition.
* :mod:`repro.obs.collectors` -- the canonical node/channel/NIC
  statistics snapshot every reporting surface is built on.
* :mod:`repro.obs.tracing` -- sampled tuple-lineage tracing through the
  NIC -> LFTA -> channel -> HFTA -> sink path.
* :mod:`repro.obs.telemetry` -- self-telemetry: the engine's internals
  published as first-class ``_gs_*`` GSQL streams, plus the sampling
  pump profiler.
"""

from repro.obs.collectors import (
    NODE_EXTRA_ATTRS,
    bind_nic,
    engine_snapshot,
    install_alert_metrics,
    install_engine_metrics,
    install_telemetry_metrics,
    node_snapshot,
)
from repro.obs.telemetry import (
    TELEMETRY_STREAMS,
    PumpProfiler,
    TelemetryHub,
    TelemetryStreamNode,
    telemetry_schema,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
)
from repro.obs.tracing import Tracer, trace_key

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "Tracer",
    "trace_key",
    "NODE_EXTRA_ATTRS",
    "TELEMETRY_STREAMS",
    "PumpProfiler",
    "TelemetryHub",
    "TelemetryStreamNode",
    "bind_nic",
    "engine_snapshot",
    "install_alert_metrics",
    "install_engine_metrics",
    "install_telemetry_metrics",
    "node_snapshot",
    "telemetry_schema",
]
