"""Typed metrics registry with Prometheus-text and JSON exposition.

The paper's operators ran seven installations "three months nonstop"
and diagnosed them from runtime statistics; a long-running monitor
needs those statistics in one place, typed, and exportable.  The
registry holds three metric kinds:

* :class:`Counter` -- a monotonically increasing total,
* :class:`Gauge` -- a value that goes up and down (depth, rate, fill),
* :class:`Histogram` -- fixed-bucket distribution (cycle latencies).

Metrics are grouped into label-carrying families (``name{node="q0"}``)
exactly as in the Prometheus data model, and exposed either as
Prometheus text format (:meth:`MetricsRegistry.to_prometheus`) or as a
JSON document (:meth:`MetricsRegistry.to_json`).

Hot-path cost is kept near zero by *collectors*: most of the stack's
counters already exist (node stats, channel stats, NIC stats), so the
registry samples them lazily -- registered collector callbacks run only
when a snapshot is taken, never per packet.
"""

from __future__ import annotations

import json
import re
from bisect import bisect_left
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: default buckets for virtual-time latency histograms, in microseconds
DEFAULT_US_BUCKETS = (10.0, 50.0, 100.0, 500.0, 1_000.0, 5_000.0,
                      10_000.0, 50_000.0, 100_000.0, 500_000.0)


class MetricError(ValueError):
    """Raised for invalid metric names, labels, or kind mismatches."""


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricError("counters only go up; use a Gauge")
        self.value += amount

    def set(self, value: float) -> None:
        """Overwrite the total (used by collectors sampling an existing
        cumulative counter elsewhere in the stack)."""
        self.value = value


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram (cumulative buckets, Prometheus-style)."""

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: Tuple[float, ...]) -> None:
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1 for the +Inf bucket
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def bucket_counts(self) -> List[Tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs, +Inf last."""
        out = []
        running = 0
        for bound, count in zip(self.bounds, self.counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), running + self.counts[-1]))
        return out


class MetricFamily:
    """One named metric with zero or more label dimensions."""

    def __init__(self, name: str, help_text: str, kind: str,
                 label_names: Tuple[str, ...] = (),
                 buckets: Optional[Tuple[float, ...]] = None) -> None:
        if not _NAME_RE.match(name):
            raise MetricError(f"bad metric name {name!r}")
        for label in label_names:
            if not _LABEL_RE.match(label):
                raise MetricError(f"bad label name {label!r}")
        self.name = name
        self.help = help_text
        self.kind = kind
        self.label_names = tuple(label_names)
        self.buckets = buckets
        self._children: Dict[Tuple[str, ...], Any] = {}

    def _make_child(self):
        if self.kind == "counter":
            return Counter()
        if self.kind == "gauge":
            return Gauge()
        return Histogram(self.buckets or DEFAULT_US_BUCKETS)

    def labels(self, **labels: str):
        """The child metric for this label combination (created on use)."""
        if set(labels) != set(self.label_names):
            raise MetricError(
                f"{self.name}: expected labels {self.label_names}, "
                f"got {tuple(labels)}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = self._make_child()
        return child

    @property
    def unlabeled(self):
        """The single child of a label-less family."""
        if self.label_names:
            raise MetricError(f"{self.name} has labels; use .labels()")
        return self.labels()

    # convenience passthroughs for label-less families
    def inc(self, amount: float = 1.0) -> None:
        self.unlabeled.inc(amount)

    def set(self, value: float) -> None:
        self.unlabeled.set(value)

    def observe(self, value: float) -> None:
        self.unlabeled.observe(value)

    @property
    def value(self) -> float:
        return self.unlabeled.value

    def clear(self) -> None:
        """Drop all children (collectors repopulate dynamic label sets)."""
        self._children.clear()

    def samples(self) -> Iterable[Tuple[Tuple[str, ...], Any]]:
        return self._children.items()


class MetricsRegistry:
    """A namespace of metric families plus lazy collector callbacks."""

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}
        self._collectors: List[Callable[[], None]] = []

    # -- registration -------------------------------------------------------
    def _family(self, name: str, help_text: str, kind: str,
                labels: Tuple[str, ...],
                buckets: Optional[Tuple[float, ...]] = None) -> MetricFamily:
        existing = self._families.get(name)
        if existing is not None:
            if existing.kind != kind or existing.label_names != tuple(labels):
                raise MetricError(
                    f"metric {name!r} already registered as {existing.kind} "
                    f"with labels {existing.label_names}"
                )
            return existing
        family = MetricFamily(name, help_text, kind, tuple(labels), buckets)
        self._families[name] = family
        return family

    def counter(self, name: str, help_text: str = "",
                labels: Tuple[str, ...] = ()) -> MetricFamily:
        return self._family(name, help_text, "counter", labels)

    def gauge(self, name: str, help_text: str = "",
              labels: Tuple[str, ...] = ()) -> MetricFamily:
        return self._family(name, help_text, "gauge", labels)

    def histogram(self, name: str, help_text: str = "",
                  labels: Tuple[str, ...] = (),
                  buckets: Tuple[float, ...] = DEFAULT_US_BUCKETS
                  ) -> MetricFamily:
        return self._family(name, help_text, "histogram", labels, buckets)

    def add_collector(self, fn: Callable[[], None]) -> None:
        """Register a callback that refreshes sampled metrics; it runs
        once per snapshot/exposition, never on the packet path."""
        self._collectors.append(fn)

    def families(self) -> List[MetricFamily]:
        return [self._families[name] for name in sorted(self._families)]

    def get(self, name: str) -> Optional[MetricFamily]:
        return self._families.get(name)

    # -- snapshots ---------------------------------------------------------
    def collect(self) -> None:
        """Run every collector so sampled metrics are current."""
        for fn in self._collectors:
            fn()

    def snapshot(self) -> Dict[str, Dict[Tuple[str, ...], float]]:
        """``{name: {label_values: value}}`` for counters and gauges."""
        self.collect()
        out: Dict[str, Dict[Tuple[str, ...], float]] = {}
        for family in self.families():
            if family.kind == "histogram":
                continue
            out[family.name] = {key: child.value
                                for key, child in family.samples()}
        return out

    # -- exposition --------------------------------------------------------
    @staticmethod
    def _render_labels(names: Tuple[str, ...], values: Tuple[str, ...],
                       extra: Tuple[Tuple[str, str], ...] = ()) -> str:
        pairs = [(n, v) for n, v in zip(names, values)] + list(extra)
        if not pairs:
            return ""
        escaped = ",".join(
            '%s="%s"' % (n, v.replace("\\", "\\\\").replace('"', '\\"')
                         .replace("\n", "\\n"))
            for n, v in pairs
        )
        return "{%s}" % escaped

    @staticmethod
    def _render_value(value: float) -> str:
        if value == float("inf"):
            return "+Inf"
        if isinstance(value, float) and value.is_integer():
            return str(int(value))
        return repr(value)

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        self.collect()
        lines: List[str] = []
        for family in self.families():
            lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for key, child in sorted(family.samples()):
                labels = self._render_labels(family.label_names, key)
                if family.kind == "histogram":
                    for bound, count in child.bucket_counts():
                        le = self._render_labels(
                            family.label_names, key,
                            extra=(("le", self._render_value(bound)),))
                        lines.append(f"{family.name}_bucket{le} {count}")
                    lines.append(f"{family.name}_sum{labels} "
                                 f"{self._render_value(child.sum)}")
                    lines.append(f"{family.name}_count{labels} {child.count}")
                else:
                    lines.append(f"{family.name}{labels} "
                                 f"{self._render_value(child.value)}")
        return "\n".join(lines) + "\n"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable document of every family and sample."""
        self.collect()
        metrics = []
        for family in self.families():
            samples = []
            for key, child in sorted(family.samples()):
                labels = dict(zip(family.label_names, key))
                if family.kind == "histogram":
                    samples.append({
                        "labels": labels,
                        "buckets": [[bound if bound != float("inf") else "+Inf",
                                     count]
                                    for bound, count in child.bucket_counts()],
                        "sum": child.sum,
                        "count": child.count,
                    })
                else:
                    samples.append({"labels": labels, "value": child.value})
            metrics.append({
                "name": family.name,
                "type": family.kind,
                "help": family.help,
                "samples": samples,
            })
        return {"metrics": metrics}

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)
