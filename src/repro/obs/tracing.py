"""Sampled tuple-lineage tracing: follow one packet through the split.

Gigascope's defining structure is the LFTA/HFTA split -- a packet is
reduced on (or near) the card, crosses a channel as a tuple, and is
finished high in the stack.  When a deployment misbehaves, the question
is always "where did my packet go?"; this module answers it for a
sampled subset of traffic.

Sampling is *content-deterministic*: whether a packet is traced is a
pure function of its first bytes and timestamp (:func:`trace_key`), so
independent components -- the simulated NIC and the host RTS -- agree
on which packets are traced without any shared state or packet
mutation.  The key doubles as the trace id.

A traced packet produces a chain of span events::

    nic -> feed -> lfta -> emit -> hfta -> ... -> sink / app

each stamped with the virtual-time clock of the component that recorded
it.  Derived tuples are followed through channels by object identity
(the tuple object pushed by ``emit`` is the one popped at ``pump``),
and operator activations triggered while a traced item is being
processed are attributed to that trace -- causal attribution, the same
convention distributed tracers use.  Dump everything with
:meth:`Tracer.to_json` for offline inspection.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Any, Dict, List, Optional

#: bytes of packet payload hashed into the trace key; keep below any
#: realistic snap length so NIC-side truncation cannot change the key
TRACE_PROBE_BYTES = 32

#: span stages, in causal order along the packet path; ``nic_drop``
#: (ring loss) and ``nic_filtered`` (BPF prefilter rejection) are both
#: terminal on the card -- distinct so trace reconstruction can tell
#: an accounted rejection from an accounted loss
STAGES = ("nic", "nic_drop", "nic_filtered", "feed", "lfta", "emit",
          "hfta", "sink", "app", "recovered")


def trace_key(packet) -> int:
    """Deterministic 32-bit trace id for a captured packet."""
    seed = int(packet.timestamp * 1e6) & 0xFFFFFFFF
    return zlib.crc32(packet.data[:TRACE_PROBE_BYTES],
                      zlib.crc32(struct.pack("<I", seed)))


class Tracer:
    """Records span events for a sampled subset of packets."""

    def __init__(self, sample_rate: float, max_traces: int = 1024,
                 max_tagged: int = 8192) -> None:
        if not 0.0 < sample_rate <= 1.0:
            raise ValueError(f"sample rate must be in (0, 1], "
                             f"got {sample_rate}")
        self.sample_rate = sample_rate
        self.max_traces = max_traces
        self.max_tagged = max_tagged
        self._threshold = int(sample_rate * 2**32)
        self.traces: Dict[int, List[Dict[str, Any]]] = {}
        self.started = 0       # traces begun
        self.truncated = 0     # traces refused because max_traces was hit
        self._seq = 0
        #: id(tuple object) -> trace id, for following tuples through
        #: channels; bounded, oldest entries evicted
        self._tagged: Dict[int, int] = {}
        #: the trace whose item is currently being processed, if any
        self.current: Optional[int] = None

    # -- sampling ----------------------------------------------------------
    def wants(self, packet) -> Optional[int]:
        """The packet's trace id if it is sampled, else None."""
        key = trace_key(packet)
        return key if key < self._threshold else None

    def begin(self, trace: int, packet, stage: str, t: float,
              node: Optional[str] = None) -> bool:
        """Open (or append to) a trace with a packet-level span event."""
        events = self.traces.get(trace)
        if events is None:
            if len(self.traces) >= self.max_traces:
                self.truncated += 1
                return False
            events = self.traces[trace] = []
            self.started += 1
        self._seq += 1
        events.append({
            "seq": self._seq, "stage": stage, "node": node, "t": t,
            "interface": packet.interface, "caplen": packet.caplen,
        })
        return True

    def event(self, trace: int, stage: str, node: Optional[str],
              t: float) -> None:
        """Append a span event to an already-open trace."""
        events = self.traces.get(trace)
        if events is None:
            return
        self._seq += 1
        events.append({"seq": self._seq, "stage": stage, "node": node,
                       "t": t})

    # -- tuple lineage -----------------------------------------------------
    def tag(self, obj: Any, trace: int) -> None:
        """Associate a live tuple object with a trace."""
        tagged = self._tagged
        if len(tagged) >= self.max_tagged:
            # evict the oldest quarter (dicts preserve insertion order)
            for key in list(tagged)[: self.max_tagged // 4]:
                del tagged[key]
        tagged[id(obj)] = trace

    def lookup(self, obj: Any) -> Optional[int]:
        return self._tagged.get(id(obj))

    # -- inspection --------------------------------------------------------
    def spans(self, trace: int) -> List[Dict[str, Any]]:
        return list(self.traces.get(trace, ()))

    def stage_chain(self, trace: int) -> List[str]:
        """The trace's stages in recording order (for chain assertions)."""
        return [event["stage"] for event in self.traces.get(trace, ())]

    def complete_chains(self, required=("feed", "lfta", "emit")) -> List[int]:
        """Trace ids whose span chain covers all ``required`` stages."""
        wanted = set(required)
        return [trace for trace, events in self.traces.items()
                if wanted.issubset(event["stage"] for event in events)]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "sample_rate": self.sample_rate,
            "started": self.started,
            "truncated": self.truncated,
            "stages": list(STAGES),
            "traces": {str(trace): events
                       for trace, events in self.traces.items()},
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)
