"""Collectors: the one place runtime statistics are gathered.

``RuntimeSystem.stats()``, :func:`repro.report.engine_report`, and the
metrics registry exposition previously each walked the node/channel
objects themselves and had drifted apart (``stats()`` omitted
``reorder_peak``, ``open_groups``, and ``sessions_emitted`` that the
report showed).  This module defines the canonical snapshot --
:data:`NODE_EXTRA_ATTRS` and :func:`node_snapshot` -- and every other
surface is built on top of it.

:func:`install_engine_metrics` registers a lazy collector on a
:class:`~repro.obs.registry.MetricsRegistry` that re-exports the
snapshot as typed metric families; it runs only when a metrics snapshot
is taken, so the packet path pays nothing for it.
"""

from __future__ import annotations

import math
from typing import Any, Dict

from repro.obs.registry import MetricsRegistry

#: Operator-specific counters, beyond the NodeStats five, that both
#: ``RuntimeSystem.stats()`` and ``report.engine_report`` surface.
#: Defined once so the two can never drift again.
NODE_EXTRA_ATTRS = (
    "packets_seen",      # LFTA/defrag: packets examined
    "dropped",           # defrag/merge: fragments or late tuples dropped
    "pairs_emitted",     # join
    "groups_emitted",    # aggregation
    "open_groups",       # aggregation: groups currently held open
    "buffered",          # merge: tuples held waiting for the other input
    "sessions_emitted",  # sessionize
    "reorder_peak",      # sorted band join: reorder-buffer high water
    "sampled_out",       # DEFINE sample p: packets thinned by the analyst
    "shed_packets",      # overload control: packets shed by the gate
    "alerts_raised",     # trigger node: RAISE events emitted
    "alerts_cleared",    # trigger node: CLEAR events emitted
    "alerts_suppressed", # trigger node: raises withheld by min_interval
    "alerts_active",     # trigger node: keys currently in the raised set
    "epochs_evaluated",  # trigger node: epochs closed so far
)


def channel_snapshot(channel) -> Dict[str, Any]:
    """The canonical per-channel statistics dict."""
    stats = channel.stats
    return {
        "pushed": stats.pushed,
        "popped": stats.popped,
        "dropped": stats.dropped,
        "depth": len(channel),
        "max_depth": stats.max_depth,
        "capacity": channel.capacity,
    }


def node_snapshot(node) -> Dict[str, Any]:
    """The canonical per-node statistics dict (single source of truth)."""
    stats = node.stats
    entry: Dict[str, Any] = {
        "tuples_in": stats.tuples_in,
        "tuples_out": stats.tuples_out,
        "discarded": stats.discarded,
        "punctuations_in": stats.punctuations_in,
        "punctuations_out": stats.punctuations_out,
    }
    for extra in NODE_EXTRA_ATTRS:
        value = getattr(node, extra, None)
        if value is not None:
            entry[extra] = value
    table = getattr(node, "table", None)
    if table is not None:
        entry["hash_collisions"] = table.collisions
    if getattr(node, "quarantined", None) is not None:
        # The RTS contained a failure here; the reason travels with the
        # node's statistics so the ledger explains the missing output.
        entry["quarantined"] = node.quarantined
    if node.subscribers:
        entry["channels"] = {
            channel.name: channel_snapshot(channel)
            for channel in node.subscribers
        }
    return entry


def engine_snapshot(rts) -> Dict[str, Dict[str, Any]]:
    """Per-node snapshots for every registered node."""
    return {name: node_snapshot(node) for name, node in rts.iter_nodes()}


def install_engine_metrics(registry: MetricsRegistry, rts) -> None:
    """Export the RTS's node/channel statistics through ``registry``.

    Registers a collector; nothing here touches the packet path.
    """
    packets = registry.counter(
        "gs_packets_fed_total", "packets handed to the RTS")
    nbytes = registry.counter(
        "gs_bytes_fed_total", "captured bytes handed to the RTS")
    heartbeats = registry.counter(
        "gs_heartbeats_total", "ordering-update tokens injected")
    heartbeats_suppressed = registry.counter(
        "gs_heartbeats_suppressed_total",
        "heartbeats withheld by an injected silence fault")
    quarantined = registry.counter(
        "gs_nodes_quarantined_total",
        "query nodes quarantined after an unhandled failure")
    fault_dropped = registry.counter(
        "gs_fault_dropped_total",
        "packets dropped pre-dispatch by injected faults")
    stream_time = registry.gauge(
        "gs_stream_time_seconds", "latest observed stream time")
    # Batch-path instrumentation keeps the distinctive gs_batch prefix:
    # the scalar/batched differential harness strips gs_batch* before
    # diffing snapshots (these counters differ by construction).
    batches = registry.counter(
        "gs_batch_blocks_fed_total",
        "packet blocks dispatched on the vectorized path")
    batch_size_gauge = registry.gauge(
        "gs_batch_size", "configured packets per block (<=1 means scalar)")
    columnar_blocks = registry.counter(
        "gs_batch_columnar_blocks_total",
        "packet blocks decoded into columnar form by LFTAs")
    node_counters = {
        stat: registry.counter(
            f"gs_node_{stat}_total", f"per-node {stat}", labels=("node",))
        for stat in ("tuples_in", "tuples_out", "discarded",
                     "punctuations_in", "punctuations_out")
    }
    node_extra = registry.gauge(
        "gs_node_extra", "operator-specific counters "
        "(packets_seen, buffered, reorder_peak, ...)",
        labels=("node", "stat"))
    channel_gauges = {
        stat: registry.gauge(
            f"gs_channel_{stat}", f"per-channel {stat}", labels=("channel",))
        for stat in ("depth", "max_depth", "capacity")
    }
    channel_counters = {
        stat: registry.counter(
            f"gs_channel_{stat}_total", f"per-channel {stat}",
            labels=("channel",))
        for stat in ("pushed", "popped", "dropped")
    }

    def collect() -> None:
        packets.set(rts.packets_fed)
        nbytes.set(rts.bytes_fed)
        heartbeats.set(rts.heartbeats_sent)
        heartbeats_suppressed.set(rts.heartbeats_suppressed)
        quarantined.set(rts.nodes_quarantined)
        fault_dropped.set(rts.fault_dropped)
        batches.set(rts.batches_fed)
        batch_size_gauge.set(rts.batch_size)
        columnar_blocks.set(sum(
            getattr(node, "columnar_blocks", 0)
            for _, node in rts.iter_nodes()))
        if rts.stream_time > float("-inf"):
            stream_time.set(rts.stream_time)
        # Nodes and channels come and go; rebuild the label sets so a
        # removed query does not linger in the exposition.
        for family in node_counters.values():
            family.clear()
        node_extra.clear()
        for family in channel_gauges.values():
            family.clear()
        for family in channel_counters.values():
            family.clear()
        for name, snapshot in engine_snapshot(rts).items():
            for stat, family in node_counters.items():
                family.labels(node=name).set(snapshot[stat])
            for stat in NODE_EXTRA_ATTRS:
                if stat in snapshot:
                    node_extra.labels(node=name, stat=stat).set(
                        snapshot[stat])
            if "hash_collisions" in snapshot:
                node_extra.labels(node=name, stat="hash_collisions").set(
                    snapshot["hash_collisions"])
            for channel_name, channel in snapshot.get("channels", {}).items():
                for stat, family in channel_gauges.items():
                    value = channel[stat]
                    family.labels(channel=channel_name).set(
                        value if value is not None else -1)
                for stat, family in channel_counters.items():
                    family.labels(channel=channel_name).set(channel[stat])

    registry.add_collector(collect)


def install_recovery_metrics(registry: MetricsRegistry, supervisor) -> None:
    """Export the recovery supervisor's ledger through ``registry``.

    All families carry the distinctive ``gs_recovery`` prefix: the
    crash/clean differential harness (``replay verify-recovery``) strips
    ``gs_recovery*`` before diffing snapshots, since a crash run restarts
    nodes and a clean run does not (these counters differ by design).
    """
    checkpoints = registry.counter(
        "gs_recovery_checkpoints_total",
        "crash-consistent checkpoints cut at pump boundaries")
    checkpoint_bytes = registry.gauge(
        "gs_recovery_checkpoint_bytes",
        "encoded size of the latest full checkpoint")
    restarts = registry.counter(
        "gs_recovery_restarts_total",
        "restore-and-replay attempts across all nodes")
    replayed = registry.counter(
        "gs_recovery_replayed_items_total",
        "journal entries re-dispatched during gap repair")
    suppressed = registry.counter(
        "gs_recovery_suppressed_rows_total",
        "already-delivered rows suppressed during replay (exactly-once)")
    exhausted = registry.counter(
        "gs_recovery_retries_exhausted_total",
        "nodes degraded to permanent quarantine after the retry budget")
    suspended = registry.gauge(
        "gs_recovery_nodes_suspended",
        "nodes awaiting a backoff retry")
    journal_len = registry.gauge(
        "gs_recovery_journal_len",
        "journal entries retained since the last checkpoint")

    def collect() -> None:
        checkpoints.set(supervisor.checkpoints_taken)
        checkpoint_bytes.set(supervisor.checkpoint_bytes)
        restarts.set(supervisor.restarts_total)
        replayed.set(supervisor.replayed_items)
        suppressed.set(supervisor.suppressed_rows)
        exhausted.set(supervisor.retries_exhausted)
        suspended.set(len(supervisor._suspended))
        journal_len.set(supervisor.journal_len)

    registry.add_collector(collect)


def install_alert_metrics(registry: MetricsRegistry, alert_engine) -> None:
    """Export the alert plane's ledger through ``registry``.

    Per-trigger families carry a ``trigger`` label; the label set is
    rebuilt each collection so removed triggers do not linger.
    """
    triggers = registry.gauge(
        "gs_alert_triggers", "trigger definitions installed")
    ticks = registry.counter(
        "gs_alert_ticks_total", "epoch-clock ticks sent at pump boundaries")
    active = registry.gauge(
        "gs_alert_active", "keys currently raised", labels=("trigger",))
    raised = registry.counter(
        "gs_alert_raised_total", "RAISE events emitted", labels=("trigger",))
    cleared = registry.counter(
        "gs_alert_cleared_total", "CLEAR events emitted", labels=("trigger",))
    suppressed = registry.counter(
        "gs_alert_suppressed_total",
        "raises withheld by per-trigger rate limiting", labels=("trigger",))
    epochs = registry.counter(
        "gs_alert_epochs_evaluated_total",
        "evaluation epochs closed", labels=("trigger",))

    def collect() -> None:
        triggers.set(len(alert_engine.triggers))
        ticks.set(alert_engine.ticks_sent)
        for family in (active, raised, cleared, suppressed, epochs):
            family.clear()
        for name, node in alert_engine.triggers.items():
            active.labels(trigger=name).set(node.alerts_active)
            raised.labels(trigger=name).set(node.alerts_raised)
            cleared.labels(trigger=name).set(node.alerts_cleared)
            suppressed.labels(trigger=name).set(node.alerts_suppressed)
            epochs.labels(trigger=name).set(node.epochs_evaluated)

    registry.add_collector(collect)


def install_telemetry_metrics(registry: MetricsRegistry, hub) -> None:
    """Export the telemetry hub's ledger through ``registry``.

    Every family carries the ``gs_telemetry`` prefix so it can never
    collide with the collector families above -- the ``_gs_*`` stream
    *nodes* are ordinary registered nodes and already appear under
    ``gs_node_*{node="_gs_channel"}`` etc.; these families cover only
    what the hub adds on top (sampling cadence, per-stream row counts,
    and the wall-clock profile, which is observability-only and never
    enters the replayable streams).
    """
    samples = registry.counter(
        "gs_telemetry_samples_total",
        "telemetry samples taken at pump boundaries")
    last_sample = registry.gauge(
        "gs_telemetry_last_sample_time_seconds",
        "virtual time of the latest telemetry sample")
    rows = registry.counter(
        "gs_telemetry_rows_total",
        "rows emitted per telemetry stream", labels=("stream",))
    profiled = registry.counter(
        "gs_telemetry_profile_cycles_total",
        "pump cycles the sampling profiler timed")
    wall = registry.counter(
        "gs_telemetry_profile_wall_us_total",
        "wall-clock microseconds of pump-drain work attributed per "
        "operator (sampled cycles only)", labels=("operator",))
    virtual = registry.counter(
        "gs_telemetry_profile_virtual_us_total",
        "Section 4 virtual-time microseconds attributed per operator",
        labels=("operator",))

    def collect() -> None:
        samples.set(hub.samples_taken)
        if not math.isinf(hub._last_sample):
            last_sample.set(hub._last_sample)
        for stream, node in hub.nodes.items():
            rows.labels(stream=stream).set(node.stats.tuples_out)
        profiler = hub.profiler
        profiled.set(profiler.profiled_cycles)
        wall.clear()
        for operator, value in profiler.wall_us().items():
            wall.labels(operator=operator).set(value)
        virtual.clear()
        for operator, value in hub.virtual_us.items():
            virtual.labels(operator=operator).set(value)

    registry.add_collector(collect)


def install_replication_metrics(registry: MetricsRegistry, pair) -> None:
    """Export the replication plane's ledger through ``registry``.

    ``pair`` is a :class:`repro.replication.ReplicatedGigascope`.  All
    families carry the distinctive ``gs_repl`` prefix: the failover
    differential harness (``replay verify-failover``) compares rows
    only, but any snapshot-diffing caller can strip ``gs_repl*`` the
    way ``gs_recovery*`` is stripped.
    """
    frames = registry.counter(
        "gs_repl_frames_total",
        "replication frames cut at quiescent pump boundaries",
        labels=("kind",))
    frame_bytes = registry.counter(
        "gs_repl_bytes_total", "encoded replication frame bytes shipped")
    nodes_shipped = registry.counter(
        "gs_repl_nodes_shipped_total",
        "per-node state blobs carried by frames (delta frames carry "
        "only the nodes whose state changed)")
    skipped = registry.counter(
        "gs_repl_skipped_unquiescent_total",
        "frame cuts deferred because a channel held in-flight items")
    last_seq = registry.gauge(
        "gs_repl_last_frame_seq", "sequence number of the latest frame "
        "applied by the standby (-1 before the full epoch)")
    last_time = registry.gauge(
        "gs_repl_last_frame_time_seconds",
        "virtual time of the latest applied frame")
    lag = registry.gauge(
        "gs_repl_standby_lag_seconds",
        "primary stream time minus the latest applied frame's time "
        "(the recovery-point exposure right now)")
    apply_errors = registry.counter(
        "gs_repl_apply_errors_total",
        "frames the standby refused (corrupt, stale-version, or "
        "out-of-order; never applied partially)")
    promotions = registry.counter(
        "gs_repl_promotions_total",
        "standby promotions after a detected primary failure")
    replayed = registry.counter(
        "gs_repl_replayed_packets_total",
        "journal-tail packets re-fed through the promoted standby")
    suppressed = registry.counter(
        "gs_repl_suppressed_rows_total",
        "already-delivered rows dropped by the promotion skip gates "
        "(exactly-once output)")

    def collect() -> None:
        shipper, replica = pair.shipper, pair.replica
        frames.clear()
        frames.labels(kind="full").set(shipper.frames_full)
        frames.labels(kind="delta").set(shipper.frames_delta)
        frame_bytes.set(shipper.bytes_total)
        nodes_shipped.set(shipper.nodes_shipped)
        skipped.set(shipper.skipped_unquiescent)
        last_seq.set(replica.applied_seq)
        if not math.isinf(replica.applied_time):
            last_time.set(replica.applied_time)
            primary_time = pair.primary.rts.stream_time
            if not math.isinf(primary_time):
                lag.set(primary_time - replica.applied_time)
        apply_errors.set(len(pair.apply_errors))
        promotions.set(pair.promotions)
        replayed.set(pair.replayed_packets)
        suppressed.set(pair.suppressed_rows)

    registry.add_collector(collect)


def install_shard_metrics(registry: MetricsRegistry, runtime) -> None:
    """Export the sharded runtime's parent-side ledger through ``registry``.

    Everything here carries the ``gs_shard`` prefix.  The families
    cover what only the parent can see -- per-shard packet/row/restart
    accounting, quarantines, cross-process drop totals -- plus the
    merge operators' output counts; the per-node statistics *inside*
    each worker travel in its ``end`` frame and surface through
    ``stats()`` / the report instead (a worker's own registry dies with
    its process).
    """
    count = registry.gauge(
        "gs_shard_count", "worker processes the runtime partitions across")
    generations = registry.counter(
        "gs_shard_generations_total", "feed() generations dispatched")
    packets = registry.counter(
        "gs_shard_packets_total",
        "packets processed per worker shard", labels=("shard",))
    rows = registry.counter(
        "gs_shard_partial_rows_total",
        "partial-aggregate rows shipped to the parent", labels=("shard",))
    restarts = registry.counter(
        "gs_shard_restarts_total",
        "worker respawns from a shard snapshot", labels=("shard",))
    snapshots = registry.counter(
        "gs_shard_snapshots_total",
        "shard checkpoints cut at barrier crossings", labels=("shard",))
    channel_dropped = registry.counter(
        "gs_shard_channel_dropped_total",
        "worker-side channel overflow drops", labels=("shard",))
    dropped_packets = registry.counter(
        "gs_shard_dropped_packets_total",
        "packets lost to a quarantined shard (accounted, not silent)",
        labels=("shard",))
    quarantined = registry.gauge(
        "gs_shard_quarantined",
        "shards permanently quarantined after the restart budget")
    merge_rows = registry.counter(
        "gs_shard_merge_rows_total",
        "finalized rows emitted by the parent's combine operators",
        labels=("query",))

    def collect() -> None:
        count.set(runtime.shards)
        generations.set(runtime.generations)
        for family in (packets, rows, restarts, snapshots,
                       channel_dropped, dropped_packets):
            family.clear()
        for shard in range(runtime.shards):
            label = str(shard)
            packets.labels(shard=label).set(runtime.shard_packets[shard])
            rows.labels(shard=label).set(runtime.shard_rows[shard])
            restarts.labels(shard=label).set(runtime.shard_restarts[shard])
            snapshots.labels(shard=label).set(
                runtime.shard_snapshots[shard])
            channel_dropped.labels(shard=label).set(
                runtime.shard_channel_dropped[shard])
            dropped_packets.labels(shard=label).set(
                runtime.shard_dropped_packets[shard])
        quarantined.set(len(runtime.quarantined))
        merge_rows.clear()
        for name, sink in runtime._sinks.items():
            if sink.partial:
                merge_rows.labels(query=name).set(sink.node.stats.tuples_out)

    registry.add_collector(collect)


def bind_nic(registry: MetricsRegistry, nic, name: str = "nic0") -> None:
    """Export a simulated NIC's ring occupancy and drop counters."""
    counters = {
        stat: registry.counter(
            f"gs_nic_{stat}_total", f"NIC {stat}", labels=("nic",))
        for stat in ("received", "filtered", "ring_dropped",
                     "delivered_packets", "delivered_tuples")
    }
    occupancy = registry.gauge(
        "gs_nic_ring_occupancy", "packets queued in the card's ring",
        labels=("nic",))
    loss = registry.gauge(
        "gs_nic_loss_rate", "ring drops / packets received", labels=("nic",))

    def collect() -> None:
        stats = nic.stats
        for stat, family in counters.items():
            family.labels(nic=name).set(getattr(stats, stat))
        occupancy.labels(nic=name).set(nic.ring_occupancy)
        loss.labels(nic=name).set(nic.loss_rate)

    registry.add_collector(collect)
