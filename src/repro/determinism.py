"""Deterministic replay: stable hashing, seeded RNGs, and the verifier.

The paper's argument is *accountable* loss -- tuples are dropped only
where the system says they are (NIC ring, prefilter, shedding), and the
numbers stay interpretable under overload.  That argument is only
checkable if the system can replay itself: the same scenario and seed
must produce the same samples, the same shed packets, the same
direct-mapped-table ejections, and therefore the same sink rows and
drop ledger -- in *any* process, regardless of ``PYTHONHASHSEED``.

Three tools enforce that contract:

* :func:`stable_hash` -- a crc32 over a canonical encoding of (nested)
  primitive values.  Python's builtin ``hash()`` of str/bytes is
  randomized per process; every data-path placement decision (the
  LFTA's direct-mapped table slots) routes through this instead.
* :func:`rng_for` / :func:`derive_seed` -- the seeded RNG registry.
  Every data-path consumer of randomness (``DEFINE sample`` gates, the
  overload-control shed gate, workload generators) derives its own
  named, independent ``random.Random`` stream from one engine seed, so
  adding a consumer never perturbs the draws of another.
* :func:`verify_replay` -- runs a scenario twice in subprocesses with
  *different* ``PYTHONHASHSEED`` values and diffs the sink rows, the
  drop ledger, the node statistics, and the metrics snapshot.  Any
  surviving use of process-randomized ``hash()`` on the data path shows
  up as a diff.

Command line (via the :mod:`repro.replay` shim)::

    python -m repro.replay run    --scenario mixed --seed 7
    python -m repro.replay verify --scenario mixed --seed 7
"""

from __future__ import annotations

import json
import os
import random
import subprocess
import sys
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

_NAMESPACE = zlib.crc32(b"repro.determinism")

#: value types :func:`stable_hash` accepts; their ``repr`` is defined by
#: the language, not by the process (no addresses, no hash ordering)
_STABLE_TYPES = (type(None), bool, int, float, str, bytes)


def _canonical(obj: Any) -> bytes:
    """A process-stable byte encoding of a nested primitive value."""
    if isinstance(obj, _STABLE_TYPES):
        return repr(obj).encode("utf-8", "backslashreplace")
    if isinstance(obj, (tuple, list)):
        return b"(" + b",".join(_canonical(item) for item in obj) + b")"
    raise TypeError(
        f"stable_hash only covers primitives and tuples of them, "
        f"got {type(obj).__name__}"
    )


def stable_hash(obj: Any) -> int:
    """Process-stable 32-bit hash of a group key (or any primitive nest).

    Unlike builtin ``hash()``, the result does not depend on
    ``PYTHONHASHSEED``, so hash-table placement -- and therefore
    collision/ejection behavior -- replays identically across runs.
    """
    return zlib.crc32(_canonical(obj))


def derive_seed(seed: int, *names: Any) -> int:
    """Derive an independent 32-bit stream seed from ``seed`` and names.

    Chained crc32 over the engine seed and the consumer's name path,
    e.g. ``derive_seed(7, "lfta.sample", "_fta_q_eth0")``.  Stable
    across processes and insensitive to registration order.
    """
    acc = _NAMESPACE ^ (seed & 0xFFFFFFFF)
    for name in names:
        acc = zlib.crc32(str(name).encode("utf-8"), acc)
    return acc


def rng_for(seed: int, *names: Any) -> random.Random:
    """A named, independent RNG stream from the seeded registry."""
    return random.Random(derive_seed(seed, *names))


# ---------------------------------------------------------------------------
# Replay scenarios
# ---------------------------------------------------------------------------

#: name -> callable(seed) returning a JSON-serializable snapshot dict
SCENARIOS: Dict[str, Callable[[int], Dict[str, Any]]] = {}


def scenario(name: str):
    """Register a replay scenario under ``name``."""
    def register(fn):
        SCENARIOS[name] = fn
        return fn
    return register


def snapshot_engine(gs, subscriptions: Dict[str, Any]) -> Dict[str, Any]:
    """Everything replay must reproduce byte-for-byte, as one dict.

    ``rows`` uses ``repr`` so float formatting and bytes content are
    compared exactly; ``drops`` is the end-to-end overload ledger;
    ``stats`` carries per-node counters including hash-table collision
    (= group ejection) counts; ``metrics`` is the full registry
    exposition.
    """
    snapshot: Dict[str, Any] = {
        "rows": {name: [repr(row) for row in sub.poll()]
                 for name, sub in sorted(subscriptions.items())},
        "drops": gs.overload_report(),
        "stats": gs.stats(),
    }
    if gs.metrics is not None:
        snapshot["metrics"] = json.loads(gs.metrics.to_json())
    return snapshot


@scenario("mixed")
def _mixed_scenario(seed: int) -> Dict[str, Any]:
    """Sampling + shedding + LFTA aggregation, all drawing randomness.

    A deliberately hostile replay target: a ``DEFINE sample`` query
    (sample RNG), a static shed gate (shed RNG), an LFTA partial
    aggregation over an undersized direct-mapped table (slot placement
    and ejections), bounded channels (overflow drops), over a Zipf flow
    workload (generator RNG).
    """
    from repro.core.engine import Gigascope
    from repro.workloads.flows import ZipfFlowWorkload

    gs = Gigascope(seed=seed, lfta_table_size=64, channel_capacity=256,
                   heartbeat_interval=0.5)
    gs.add_query("""
        DEFINE query_name flows;
        Select tb, srcIP, srcPort, count(*), sum(len)
        From tcp
        Group by time/5 as tb, srcIP, srcPort
    """)
    gs.add_query("""
        DEFINE { query_name sampled; sample 0.25; }
        Select srcIP, destIP, destPort, time
        From tcp
        Where protocol = 6
    """)
    gs.enable_shedding("static:0.6")
    subs = {name: gs.subscribe(name) for name in ("flows", "sampled")}
    gs.start()
    workload = ZipfFlowWorkload(num_flows=400, alpha=1.1,
                                seed=derive_seed(seed, "workload.zipf"))
    gs.feed(workload.packets(4000, pps=2000.0), pump_every=128)
    gs.flush()
    return snapshot_engine(gs, subs)


@scenario("e4")
def _e4_scenario(seed: int) -> Dict[str, Any]:
    """E4-style aggregation sweep step: small table, skewed flows.

    Group ejections from the direct-mapped table dominate the output,
    so any instability in slot placement is immediately visible.
    """
    from repro.core.engine import Gigascope
    from repro.workloads.flows import ZipfFlowWorkload

    gs = Gigascope(seed=seed, lfta_table_size=128)
    gs.add_query("""
        DEFINE query_name flows;
        Select tb, srcIP, srcPort, count(*), sum(len)
        From tcp
        Group by time/30 as tb, srcIP, srcPort
    """)
    subs = {"flows": gs.subscribe("flows")}
    gs.start()
    workload = ZipfFlowWorkload(num_flows=2000, alpha=0.8,
                                seed=derive_seed(seed, "workload.zipf"))
    gs.feed(workload.packets(6000, pps=2000.0))
    gs.flush()
    return snapshot_engine(gs, subs)


def resolve_scenario(name: str) -> Callable[[int], Dict[str, Any]]:
    """A registered scenario, or a ``module:callable`` dotted path."""
    if name in SCENARIOS:
        return SCENARIOS[name]
    if ":" in name:
        module_name, _, attr = name.partition(":")
        import importlib
        module = importlib.import_module(module_name)
        return getattr(module, attr)
    raise KeyError(
        f"unknown scenario {name!r}; registered: {sorted(SCENARIOS)} "
        f"(or use a 'module:callable' path)"
    )


def run_scenario(name: str, seed: int = 0) -> Dict[str, Any]:
    """Run a scenario in this process and return its snapshot."""
    return resolve_scenario(name)(seed)


# ---------------------------------------------------------------------------
# The replay verifier
# ---------------------------------------------------------------------------

@dataclass
class ReplayReport:
    """The verdict of one :func:`verify_replay` run."""

    scenario: str
    seed: int
    hash_seeds: Tuple[str, str]
    ok: bool
    diffs: List[str] = field(default_factory=list)
    snapshots: Optional[Tuple[Dict[str, Any], Dict[str, Any]]] = None
    #: what varied between the two runs (for the report text)
    axis: str = "PYTHONHASHSEED"

    def describe(self) -> str:
        if self.ok:
            return (f"replay OK: scenario {self.scenario!r} seed "
                    f"{self.seed} identical under {self.axis} "
                    f"{self.hash_seeds[0]} and {self.hash_seeds[1]}")
        lines = [f"replay FAILED: scenario {self.scenario!r} seed "
                 f"{self.seed} diverges between {self.axis} "
                 f"{self.hash_seeds[0]} and {self.hash_seeds[1]}:"]
        lines.extend(f"  - {diff}" for diff in self.diffs)
        return "\n".join(lines)


def _subprocess_snapshot(name: str, seed: int, hash_seed: str,
                         extra_env: Optional[Dict[str, str]] = None
                         ) -> Dict[str, Any]:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    if extra_env:
        env.update(extra_env)
    src_root = str(Path(__file__).resolve().parents[1])
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [sys.executable, "-m", "repro.replay", "run",
         "--scenario", name, "--seed", str(seed)],
        env=env, capture_output=True, text=True,
    )
    if result.returncode != 0:
        raise RuntimeError(
            f"scenario {name!r} failed under PYTHONHASHSEED={hash_seed} "
            f"{extra_env or {}}:\n" + result.stderr
        )
    return json.loads(result.stdout)


def strip_batch_metrics(snapshot: Dict[str, Any]) -> Dict[str, Any]:
    """Drop ``gs_batch*`` metric families from a scenario snapshot.

    The batch-path counters (blocks fed, configured block size) differ
    between scalar and batched execution *by construction*; everything
    else in the snapshot must not.
    """
    metrics = snapshot.get("metrics")
    if isinstance(metrics, dict) and isinstance(metrics.get("metrics"), list):
        metrics["metrics"] = [
            family for family in metrics["metrics"]
            if not str(family.get("name", "")).startswith("gs_batch")
        ]
    return snapshot


def verify_batch_equivalence(scenario_name: str, seed: int = 0,
                             batch_size: Optional[int] = None) -> ReplayReport:
    """Run a scenario scalar (``GS_BATCH=0``) and batched (``GS_BATCH=1``)
    in subprocesses and diff the snapshots after stripping the
    ``gs_batch*`` counters: the vectorized path must be byte-identical
    in rows, drop ledger, statistics, and every other metric.
    """
    scalar_env = {"GS_BATCH": "0"}
    batched_env = {"GS_BATCH": "1"}
    if batch_size is not None:
        batched_env["GS_BATCH_SIZE"] = str(batch_size)
    scalar = strip_batch_metrics(
        _subprocess_snapshot(scenario_name, seed, "0", scalar_env))
    batched = strip_batch_metrics(
        _subprocess_snapshot(scenario_name, seed, "0", batched_env))
    diffs: List[str] = []
    _diff_paths(scalar, batched, "$", diffs)
    return ReplayReport(
        scenario=scenario_name, seed=seed,
        hash_seeds=("GS_BATCH=0", "GS_BATCH=1"),
        ok=not diffs, diffs=diffs, snapshots=(scalar, batched),
        axis="execution path",
    )


def _diff_paths(a: Any, b: Any, path: str, out: List[str],
                limit: int = 20) -> None:
    """Record the paths where two JSON-shaped values differ."""
    if len(out) >= limit:
        return
    if type(a) is not type(b):
        out.append(f"{path}: type {type(a).__name__} != {type(b).__name__}")
    elif isinstance(a, dict):
        for key in sorted(set(a) | set(b)):
            if key not in a or key not in b:
                out.append(f"{path}.{key}: present in only one run")
            else:
                _diff_paths(a[key], b[key], f"{path}.{key}", out, limit)
    elif isinstance(a, list):
        if len(a) != len(b):
            out.append(f"{path}: length {len(a)} != {len(b)}")
        for index, (x, y) in enumerate(zip(a, b)):
            _diff_paths(x, y, f"{path}[{index}]", out, limit)
    elif a != b:
        out.append(f"{path}: {a!r} != {b!r}")


def verify_replay(scenario_name: str, seed: int = 0,
                  hash_seeds: Tuple[str, str] = ("1", "2")) -> ReplayReport:
    """Run ``scenario_name`` twice under different ``PYTHONHASHSEED``
    values (in subprocesses) and diff everything replay must preserve:
    sink rows, drop ledger, node statistics, metrics snapshot.
    """
    first = _subprocess_snapshot(scenario_name, seed, hash_seeds[0])
    second = _subprocess_snapshot(scenario_name, seed, hash_seeds[1])
    diffs: List[str] = []
    _diff_paths(first, second, "$", diffs)
    return ReplayReport(
        scenario=scenario_name, seed=seed, hash_seeds=hash_seeds,
        ok=not diffs, diffs=diffs, snapshots=(first, second),
    )


def main(argv: Optional[List[str]] = None) -> int:
    import argparse
    parser = argparse.ArgumentParser(
        prog="python -m repro.replay",
        description="Deterministic-replay tools.",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    run_cmd = commands.add_parser(
        "run", help="run a scenario, print its snapshot as JSON")
    verify_cmd = commands.add_parser(
        "verify", help="run a scenario under two PYTHONHASHSEEDs and diff")
    batch_cmd = commands.add_parser(
        "verify-batch",
        help="run a scenario scalar (GS_BATCH=0) and batched and diff")
    for sub in (run_cmd, verify_cmd, batch_cmd):
        sub.add_argument("--scenario", default="mixed",
                         help=f"one of {sorted(SCENARIOS)} or module:callable")
        sub.add_argument("--seed", type=int, default=0)
    verify_cmd.add_argument("--hash-seeds", nargs=2, default=("1", "2"),
                            metavar=("A", "B"))
    batch_cmd.add_argument("--batch-size", type=int, default=None,
                           help="block size for the batched run "
                                "(default: engine default)")
    args = parser.parse_args(argv)
    if args.command == "run":
        snapshot = run_scenario(args.scenario, args.seed)
        json.dump(snapshot, sys.stdout, sort_keys=True)
        sys.stdout.write("\n")
        return 0
    if args.command == "verify-batch":
        report = verify_batch_equivalence(args.scenario, args.seed,
                                          batch_size=args.batch_size)
    else:
        report = verify_replay(args.scenario, args.seed,
                               hash_seeds=tuple(args.hash_seeds))
    print(report.describe())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
