"""Deterministic replay: stable hashing, seeded RNGs, and the verifier.

The paper's argument is *accountable* loss -- tuples are dropped only
where the system says they are (NIC ring, prefilter, shedding), and the
numbers stay interpretable under overload.  That argument is only
checkable if the system can replay itself: the same scenario and seed
must produce the same samples, the same shed packets, the same
direct-mapped-table ejections, and therefore the same sink rows and
drop ledger -- in *any* process, regardless of ``PYTHONHASHSEED``.

Three tools enforce that contract:

* :func:`stable_hash` -- a crc32 over a canonical encoding of (nested)
  primitive values.  Python's builtin ``hash()`` of str/bytes is
  randomized per process; every data-path placement decision (the
  LFTA's direct-mapped table slots) routes through this instead.
* :func:`rng_for` / :func:`derive_seed` -- the seeded RNG registry.
  Every data-path consumer of randomness (``DEFINE sample`` gates, the
  overload-control shed gate, workload generators) derives its own
  named, independent ``random.Random`` stream from one engine seed, so
  adding a consumer never perturbs the draws of another.
* :func:`verify_replay` -- runs a scenario twice in subprocesses with
  *different* ``PYTHONHASHSEED`` values and diffs the sink rows, the
  drop ledger, the node statistics, and the metrics snapshot.  Any
  surviving use of process-randomized ``hash()`` on the data path shows
  up as a diff.

Command line (via the :mod:`repro.replay` shim)::

    python -m repro.replay run    --scenario mixed --seed 7
    python -m repro.replay verify --scenario mixed --seed 7
    python -m repro.replay verify-recovery --scenario recovery_agg
    python -m repro.replay verify-alerts
    python -m repro.replay verify-telemetry
    python -m repro.replay verify-shard --shards 4
    python -m repro.replay verify-failover

``verify-recovery`` is the recovery plane's acceptance gate: a run
that crashes an operator mid-stream and recovers it (checkpoint
restore + journal replay, see :mod:`repro.recovery`) must be
byte-identical to the run without the crash.  ``verify-alerts`` is the
alert plane's: the SYN-flood and port-scan alert streams must be
byte-identical across ``PYTHONHASHSEED`` values *and* across a
crash/restore of the trigger node itself.  ``verify-telemetry`` is the
self-telemetry plane's: the ``_gs_*`` streams (and the meta-query and
meta-alert outputs computed from them) must be byte-identical across
``PYTHONHASHSEED`` values and across a mid-run crash/restore of the
meta-query node.  ``verify-shard`` is the sharded runtime's: the
hash-partitioned multi-process run (``repro.shard``) must match the
single-process run byte-for-byte, per hash seed, including an arm
where one worker is killed mid-stream and respawned from its shard
snapshot.  ``verify-failover`` is the replication plane's (DESIGN
section 16): a primary killed at a snapshot epoch, after a delta
frame, mid-frame (torn write), or mid-delta-interval must -- after the
warm standby is promoted, replays its journal tail, and resumes the
feed from the recorded cursor -- produce output byte-identical to the
uninterrupted run, per hash seed, plus a shard-standby arm where the
crashed worker respawns from the parent's delta fold.
"""

from __future__ import annotations

import json
import os
import random
import subprocess
import sys
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

_NAMESPACE = zlib.crc32(b"repro.determinism")

#: value types :func:`stable_hash` accepts; their ``repr`` is defined by
#: the language, not by the process (no addresses, no hash ordering)
_STABLE_TYPES = (type(None), bool, int, float, str, bytes)


def _canonical(obj: Any) -> bytes:
    """A process-stable byte encoding of a nested primitive value."""
    if isinstance(obj, _STABLE_TYPES):
        return repr(obj).encode("utf-8", "backslashreplace")
    if isinstance(obj, (tuple, list)):
        return b"(" + b",".join(_canonical(item) for item in obj) + b")"
    raise TypeError(
        f"stable_hash only covers primitives and tuples of them, "
        f"got {type(obj).__name__}"
    )


def stable_hash(obj: Any) -> int:
    """Process-stable 32-bit hash of a group key (or any primitive nest).

    Unlike builtin ``hash()``, the result does not depend on
    ``PYTHONHASHSEED``, so hash-table placement -- and therefore
    collision/ejection behavior -- replays identically across runs.
    """
    return zlib.crc32(_canonical(obj))


def derive_seed(seed: int, *names: Any) -> int:
    """Derive an independent 32-bit stream seed from ``seed`` and names.

    Chained crc32 over the engine seed and the consumer's name path,
    e.g. ``derive_seed(7, "lfta.sample", "_fta_q_eth0")``.  Stable
    across processes and insensitive to registration order.
    """
    acc = _NAMESPACE ^ (seed & 0xFFFFFFFF)
    for name in names:
        acc = zlib.crc32(str(name).encode("utf-8"), acc)
    return acc


def rng_for(seed: int, *names: Any) -> random.Random:
    """A named, independent RNG stream from the seeded registry."""
    return random.Random(derive_seed(seed, *names))


# ---------------------------------------------------------------------------
# Replay scenarios
# ---------------------------------------------------------------------------

#: name -> callable(seed) returning a JSON-serializable snapshot dict
SCENARIOS: Dict[str, Callable[[int], Dict[str, Any]]] = {}


def scenario(name: str):
    """Register a replay scenario under ``name``."""
    def register(fn):
        SCENARIOS[name] = fn
        return fn
    return register


def snapshot_engine(gs, subscriptions: Dict[str, Any]) -> Dict[str, Any]:
    """Everything replay must reproduce byte-for-byte, as one dict.

    ``rows`` uses ``repr`` so float formatting and bytes content are
    compared exactly; ``drops`` is the end-to-end overload ledger;
    ``stats`` carries per-node counters including hash-table collision
    (= group ejection) counts; ``metrics`` is the full registry
    exposition.
    """
    snapshot: Dict[str, Any] = {
        "rows": {name: [repr(row) for row in sub.poll()]
                 for name, sub in sorted(subscriptions.items())},
        "drops": gs.overload_report(),
        "stats": gs.stats(),
    }
    if gs.metrics is not None:
        snapshot["metrics"] = json.loads(gs.metrics.to_json())
    return snapshot


@scenario("mixed")
def _mixed_scenario(seed: int) -> Dict[str, Any]:
    """Sampling + shedding + LFTA aggregation, all drawing randomness.

    A deliberately hostile replay target: a ``DEFINE sample`` query
    (sample RNG), a static shed gate (shed RNG), an LFTA partial
    aggregation over an undersized direct-mapped table (slot placement
    and ejections), bounded channels (overflow drops), over a Zipf flow
    workload (generator RNG).
    """
    from repro.core.engine import Gigascope
    from repro.workloads.flows import ZipfFlowWorkload

    gs = Gigascope(seed=seed, lfta_table_size=64, channel_capacity=256,
                   heartbeat_interval=0.5)
    gs.add_query("""
        DEFINE query_name flows;
        Select tb, srcIP, srcPort, count(*), sum(len)
        From tcp
        Group by time/5 as tb, srcIP, srcPort
    """)
    gs.add_query("""
        DEFINE { query_name sampled; sample 0.25; }
        Select srcIP, destIP, destPort, time
        From tcp
        Where protocol = 6
    """)
    gs.enable_shedding("static:0.6")
    subs = {name: gs.subscribe(name) for name in ("flows", "sampled")}
    gs.start()
    workload = ZipfFlowWorkload(num_flows=400, alpha=1.1,
                                seed=derive_seed(seed, "workload.zipf"))
    gs.feed(workload.packets(4000, pps=2000.0), pump_every=128)
    gs.flush()
    return snapshot_engine(gs, subs)


@scenario("e4")
def _e4_scenario(seed: int) -> Dict[str, Any]:
    """E4-style aggregation sweep step: small table, skewed flows.

    Group ejections from the direct-mapped table dominate the output,
    so any instability in slot placement is immediately visible.
    """
    from repro.core.engine import Gigascope
    from repro.workloads.flows import ZipfFlowWorkload

    gs = Gigascope(seed=seed, lfta_table_size=128)
    gs.add_query("""
        DEFINE query_name flows;
        Select tb, srcIP, srcPort, count(*), sum(len)
        From tcp
        Group by time/30 as tb, srcIP, srcPort
    """)
    subs = {"flows": gs.subscribe("flows")}
    gs.start()
    workload = ZipfFlowWorkload(num_flows=2000, alpha=0.8,
                                seed=derive_seed(seed, "workload.zipf"))
    gs.feed(workload.packets(6000, pps=2000.0))
    gs.flush()
    return snapshot_engine(gs, subs)


# -- recovery scenarios ------------------------------------------------------
#
# Each runs in two arms, selected by the GS_RECOVERY_CRASH environment
# variable: "1" arms a transient OperatorFault (raises once, then
# heals) against the named node; anything else runs clean.  Both arms
# enable the recovery supervisor with identical settings, so the
# checkpoint cadence -- and therefore everything the supervisor does on
# the clean path -- is the same; the only difference is the crash and
# the restore/replay that repairs it.  ``verify_recovery`` diffs the
# two arms: recovery is correct exactly when they are byte-identical.
# batch_size=1 keeps both arms on the scalar path (the crash arm is
# forced scalar by the armed fault anyway; the clean arm must match).

_RECOVERY_CRASH_ENV = "GS_RECOVERY_CRASH"

# The most recent recovery scenario's supervisor, kept for post-mortem
# artifact dumps (CI writes its checkpoint blobs on a verify failure).
_LAST_SUPERVISOR: Dict[str, Any] = {}


def _crash_arm() -> bool:
    return os.environ.get(_RECOVERY_CRASH_ENV) == "1"


def _arm_transient_crash(gs, node: str, at_tuple: int) -> None:
    from repro.faults.injectors import OperatorFault
    gs.inject_faults([OperatorFault(node, at_tuple=at_tuple, times=1)])


@scenario("recovery_agg")
def _recovery_agg_scenario(seed: int) -> Dict[str, Any]:
    """Aggregation crash mid-stream: HFTA group state restored+replayed."""
    from repro.core.engine import Gigascope
    from repro.workloads.flows import ZipfFlowWorkload

    gs = Gigascope(seed=seed, lfta_table_size=64, channel_capacity=256,
                   heartbeat_interval=0.5, batch_size=1)
    gs.add_query("""
        DEFINE query_name flows;
        Select tb, srcIP, srcPort, count(*), sum(len)
        From tcp
        Group by time/5 as tb, srcIP, srcPort
    """)
    subs = {"flows": gs.subscribe("flows")}
    _LAST_SUPERVISOR["supervisor"] = gs.enable_recovery(
        checkpoint_interval=0.4)
    gs.start()
    if _crash_arm():
        _arm_transient_crash(gs, "flows", at_tuple=400)
    workload = ZipfFlowWorkload(num_flows=400, alpha=1.1,
                                seed=derive_seed(seed, "workload.zipf"))
    gs.feed(workload.packets(4000, pps=2000.0), pump_every=64)
    gs.flush()
    return snapshot_engine(gs, subs)


@scenario("recovery_join")
def _recovery_join_scenario(seed: int) -> Dict[str, Any]:
    """Join crash mid-stream: window buffers restored, pairs replayed."""
    from repro.core.engine import Gigascope
    from repro.net.build import build_tcp_frame, capture

    gs = Gigascope(seed=seed, channel_capacity=512,
                   heartbeat_interval=0.5, batch_size=1)
    gs.add_query("""
        DEFINE query_name j;
        Select B.time, B.destPort From eth0.tcp B, eth1.tcp C
        Where B.time = C.time and B.destPort = C.destPort
    """)
    subs = {"j": gs.subscribe("j")}
    _LAST_SUPERVISOR["supervisor"] = gs.enable_recovery(
        checkpoint_interval=0.5)
    gs.start()
    if _crash_arm():
        _arm_transient_crash(gs, "j", at_tuple=150)
    rng = rng_for(seed, "recovery_join.workload")
    ports = (25, 80, 443, 8080)
    packets = []
    for i in range(600):
        t = i * 0.005
        packets.append(capture(build_tcp_frame(
            "10.0.0.1", "10.0.0.2", 1000 + i % 50, rng.choice(ports)),
            t, "eth0"))
        packets.append(capture(build_tcp_frame(
            "10.1.0.1", "10.1.0.2", 2000 + i % 50, rng.choice(ports)),
            t, "eth1"))
    gs.feed(packets, pump_every=32)
    gs.flush()
    return snapshot_engine(gs, subs)


@scenario("recovery_tcp")
def _recovery_tcp_scenario(seed: int) -> Dict[str, Any]:
    """TCP-reassembly crash: flow tables and out-of-order buffers survive.

    A packet consumer, so the repair replays the *global packet
    journal* -- the path exercised when the crashing node sits on the
    card side of the split rather than behind a channel.
    """
    from repro.core.engine import Gigascope
    from repro.net.build import build_tcp_frame, capture
    from repro.net.tcp import FLAG_ACK, FLAG_SYN
    from repro.operators.tcp_reassembly import TcpReassemblyNode

    gs = Gigascope(seed=seed, heartbeat_interval=0.5, batch_size=1)
    gs.add_node(TcpReassemblyNode("tcpre0"), interface="eth0")
    subs = {"tcpre0": gs.subscribe("tcpre0")}
    _LAST_SUPERVISOR["supervisor"] = gs.enable_recovery(
        checkpoint_interval=0.5)
    gs.start()
    if _crash_arm():
        _arm_transient_crash(gs, "tcpre0", at_tuple=300)
    rng = rng_for(seed, "recovery_tcp.workload")
    packets = []
    t = 0.0
    seqs = {}
    for i in range(700):
        t += 0.004
        sport = 1000 + rng.randrange(8)
        if sport not in seqs:
            packets.append(capture(build_tcp_frame(
                "10.0.0.1", "10.0.0.9", sport, 80,
                seq=100, flags=FLAG_SYN), t, "eth0"))
            seqs[sport] = 101
            continue
        payload = bytes([65 + rng.randrange(26)]) * (1 + rng.randrange(8))
        segment = capture(build_tcp_frame(
            "10.0.0.1", "10.0.0.9", sport, 80, payload=payload,
            seq=seqs[sport], flags=FLAG_ACK), t, "eth0")
        seqs[sport] += len(payload)
        # One packet in eight arrives before its predecessor: swap them
        # so the out-of-order buffer is live state at the crash.
        if packets and rng.random() < 0.125:
            packets.insert(len(packets) - 1, segment)
        else:
            packets.append(segment)
    gs.feed(packets, pump_every=32)
    gs.flush()
    return snapshot_engine(gs, subs)


# -- alert scenarios ---------------------------------------------------------
#
# The alert plane's determinism contract (DESIGN section 12): trigger
# evaluation is a pure function of journaled channel items (query rows
# and EpochTicks both travel through the trigger's input channels), so
# the emitted alert stream must be byte-identical across hash seeds
# (verify) and across a crash/restore of the trigger node itself
# (verify-recovery, crashing ``alert_<trigger>``).  batch_size=1 for
# the same reason as the recovery scenarios.

@scenario("alerts_syn_flood")
def _alerts_syn_flood_scenario(seed: int) -> Dict[str, Any]:
    """SYN-flood detection through the trigger layer, crash-restartable."""
    from repro.core.engine import Gigascope
    from repro.workloads.scenarios import syn_flood

    gs = Gigascope(seed=seed, heartbeat_interval=0.5, batch_size=1,
                   channel_capacity=512)
    gs.add_query("""
        DEFINE query_name syn_watch;
        Select tb, destIP, count(*) as syns
        From tcp Where tcpflags & 18 = 2
        Group by time/5 as tb, destIP
    """)
    # 8s between checkpoints puts the first RAISE (stream time ~25)
    # inside the journal gap of a crash at the second row (~30), so the
    # repair must re-evaluate the raising epoch and the emit gate must
    # suppress the already-delivered alert row (exactly-once).
    _LAST_SUPERVISOR["supervisor"] = gs.enable_recovery(
        checkpoint_interval=8.0)
    gs.enable_alerts([
        "synflood:on=syn_watch,key=destIP,when=sum(syns) > 400,epoch=5,"
        "raise_for=1,clear_for=2,severity=critical",
    ])
    subs = {"syn_watch": gs.subscribe("syn_watch"),
            "alerts": gs.subscribe("alerts")}
    gs.start()
    if _crash_arm():
        # The second row the trigger sees: after the first RAISE-able
        # epoch closed, with live hysteresis/raised state to restore.
        _arm_transient_crash(gs, "alert_synflood", at_tuple=2)
    attack = syn_flood(seed=derive_seed(seed, "alerts.synflood"),
                       duration_s=40.0, background_mbps=6.0, pps=800.0)
    gs.feed(attack.packets, pump_every=64)
    gs.flush()
    return snapshot_engine(gs, subs)


@scenario("alerts_port_scan")
def _alerts_port_scan_scenario(seed: int) -> Dict[str, Any]:
    """Port-scan detection through the trigger layer, crash-restartable."""
    from repro.core.engine import Gigascope
    from repro.workloads.scenarios import port_scan

    gs = Gigascope(seed=seed, heartbeat_interval=0.5, batch_size=1,
                   channel_capacity=512)
    gs.add_query("""
        DEFINE query_name scan_watch;
        Select tb, srcIP, count(*) as probes
        From tcp Where tcpflags & 18 = 2
        Group by time/5 as tb, srcIP
    """)
    _LAST_SUPERVISOR["supervisor"] = gs.enable_recovery(
        checkpoint_interval=8.0)
    gs.enable_alerts([
        "portscan:on=scan_watch,key=srcIP,when=sum(probes) > 150,epoch=5,"
        "raise_for=1,clear_for=2,severity=warning",
    ])
    subs = {"scan_watch": gs.subscribe("scan_watch"),
            "alerts": gs.subscribe("alerts")}
    gs.start()
    if _crash_arm():
        _arm_transient_crash(gs, "alert_portscan", at_tuple=2)
    attack = port_scan(seed=derive_seed(seed, "alerts.portscan"),
                       duration_s=40.0, background_mbps=6.0)
    gs.feed(attack.packets, pump_every=64)
    gs.flush()
    return snapshot_engine(gs, subs)


#: the scenarios ``verify-alerts`` gates on
ALERT_SCENARIOS = ("alerts_syn_flood", "alerts_port_scan")


# -- telemetry scenarios -----------------------------------------------------
#
# The self-telemetry contract (DESIGN section 13): ``_gs_*`` rows carry
# only deterministic values (virtual time, cumulative counters,
# per-sample deltas) and travel through the same journaled channels as
# every other stream item, so the streams -- and any GSQL meta-query or
# meta-alert computed from them -- replay byte-identically across hash
# seeds and across a crash/restore, with zero telemetry-specific
# recovery code.  Wall-clock cost lives only in the profiler report and
# the ``gs_telemetry_profile_wall*`` metric family, which
# :func:`strip_wall_clock_metrics` removes before diffing.

def strip_wall_clock_metrics(snapshot: Dict[str, Any]) -> Dict[str, Any]:
    """Drop wall-clock profiler families from a scenario snapshot.

    ``gs_telemetry_profile_wall*`` accumulates ``perf_counter`` spans
    and so differs between any two runs *by nature*; every other
    telemetry surface is virtual-time-deterministic and must not.
    """
    metrics = snapshot.get("metrics")
    if isinstance(metrics, dict) and isinstance(metrics.get("metrics"), list):
        metrics["metrics"] = [
            family for family in metrics["metrics"]
            if not str(family.get("name", "")).startswith(
                "gs_telemetry_profile_wall")
        ]
    return snapshot


def _telemetry_engine(seed: int, subscribe_streams: Tuple[str, ...]):
    """The shared telemetry-scenario topology.

    A selection query keeps per-packet pressure on its subscription
    channel (so the injected storm produces real overflow drops), a
    GSQL meta-query and a meta-alert trigger both read ``_gs_channel``
    unmodified, and the recovery supervisor runs so ``_gs_recovery``
    carries live counters.  Returns ``(gs, subs)`` ready to feed.
    """
    from repro.core.engine import Gigascope

    gs = Gigascope(seed=seed, heartbeat_interval=0.5, batch_size=1,
                   channel_capacity=256)
    gs.enable_telemetry(interval=0.5)
    gs.add_query("""
        DEFINE query_name pkts;
        Select time, len
        From tcp
    """)
    gs.add_query("""
        Select floor(time/2) as tb, sum(dropped_delta) as drops
        From _gs_channel
        Group by floor(time/2) as tb
    """, name="chan_drops")
    _LAST_SUPERVISOR["supervisor"] = gs.enable_recovery(
        checkpoint_interval=8.0)
    gs.enable_alerts([
        "chanstorm:on=_gs_channel,key=channel,when=sum(dropped_delta) > 40,"
        "epoch=2,raise_for=1,clear_for=2,severity=warning",
    ])
    subs = {name: gs.subscribe(name)
            for name in ("pkts", "chan_drops", "alerts")}
    for stream in subscribe_streams:
        subs[stream] = gs.subscribe(stream)
    gs.start()
    return gs, subs


def _feed_telemetry(gs, seed: int) -> None:
    from repro.workloads.generators import http_port80_pool, packet_stream
    pool = http_port80_pool(seed=derive_seed(seed, "telemetry.pool") & 0xFFFF)
    gs.feed(packet_stream(pool, rate_mbps=2.0, duration_s=10.0,
                          seed=derive_seed(seed, "telemetry.stream")),
            pump_every=64)
    gs.flush()


@scenario("telemetry_meta")
def _telemetry_meta_scenario(seed: int) -> Dict[str, Any]:
    """Every ``_gs_*`` stream plus meta-query and meta-alert, under an
    injected channel storm.  The hash-seed replay target: all five
    telemetry streams are subscribed and snapshotted byte-for-byte."""
    from repro.obs.telemetry import TELEMETRY_STREAMS

    gs, subs = _telemetry_engine(seed, TELEMETRY_STREAMS)
    gs.inject_faults(["channel_storm:at=3.0,duration=2.0,capacity=4"])
    _feed_telemetry(gs, seed)
    return strip_wall_clock_metrics(snapshot_engine(gs, subs))


@scenario("telemetry_crash")
def _telemetry_crash_scenario(seed: int) -> Dict[str, Any]:
    """Meta-query crash mid-stream: telemetry rows are journaled channel
    items like any other, so restore + replay must reconstruct the
    clean run.  ``_gs_recovery`` is left unsubscribed -- its rows count
    the repair itself, the one stream that differs across arms by
    design (the same exclusion :func:`strip_recovery_artifacts` makes
    for the ``gs_recovery*`` metric families)."""
    gs, subs = _telemetry_engine(
        seed, ("_gs_channel", "_gs_operator", "_gs_shed", "_gs_alert"))
    if _crash_arm():
        # Mid-run: chan_drops has seen ~half the telemetry rows and
        # holds an open epoch of drop sums at the crash.
        _arm_transient_crash(gs, "chan_drops", at_tuple=40)
    _feed_telemetry(gs, seed)
    return strip_wall_clock_metrics(snapshot_engine(gs, subs))


#: the scenarios ``verify-telemetry`` gates on
TELEMETRY_SCENARIOS = ("telemetry_meta", "telemetry_crash")


# -- sharded-runtime scenarios -----------------------------------------------
#
# Each builds the engine from the GS_SHARDS environment variable: 0 (or
# unset) runs the ordinary single-process Gigascope, N >= 1 runs the
# multi-process ShardedGigascope.  ``verify_shard`` diffs the two arms'
# sink rows -- the sharded runtime's whole contract is that flow-hash
# partitioning plus superaggregate shard-merge is *invisible* in the
# output.  Snapshots carry rows only: per-node statistics and metrics
# families differ structurally between the runtimes by construction
# (shardN/-prefixed names, gs_shard_* families), while the rows must
# not differ at all.  A worker crash is armed through GS_SHARD_CRASH
# ("SHARD:PACKET_INDEX"), which the parent runtime consumes on its own.

def _shard_engine(seed: int, **kwargs):
    shards = int(os.environ.get("GS_SHARDS", "0") or "0")
    if shards:
        from repro.shard import ShardedGigascope
        return ShardedGigascope(shards, seed=seed, metrics=False,
                                barrier_interval=0.25, **kwargs)
    from repro.core.engine import Gigascope
    return Gigascope(seed=seed, metrics=False, **kwargs)


@scenario("shard_flows")
def _shard_flows_scenario(seed: int) -> Dict[str, Any]:
    """Zipf flow aggregation, single-process vs hash-partitioned shards.

    Many groups (three-part key), several barrier crossings, skewed
    flow sizes -- the canonical workload for checking that shard-merge
    reproduces the global (window, key)-ordered output byte-for-byte.
    """
    from repro.workloads.flows import ZipfFlowWorkload

    gs = _shard_engine(seed, heartbeat_interval=0.5)
    gs.add_query("""
        DEFINE query_name flows;
        Select tb, srcIP, srcPort, count(*), sum(len)
        From tcp
        Group by time/5 as tb, srcIP, srcPort
    """)
    sub = gs.subscribe("flows")
    gs.start()
    workload = ZipfFlowWorkload(num_flows=400, alpha=1.1,
                                seed=derive_seed(seed, "workload.zipf"))
    gs.feed(list(workload.packets(4000, pps=2000.0)), pump_every=128)
    gs.flush()
    return {"rows": {"flows": [repr(row) for row in sub.poll()]}}


@scenario("shard_e2")
def _shard_e2_scenario(seed: int) -> Dict[str, Any]:
    """The E2 deployment shape: two merged links feeding an aggregation.

    Exercises the full worker pipeline -- per-interface LFTAs, the
    merge operator, then the terminal aggregation flipped to partials --
    so verify-shard gates exactly what the E16 benchmark measures.
    """
    from repro.workloads.generators import (http_port80_pool, merge_streams,
                                            packet_stream)

    gs = _shard_engine(seed, heartbeat_interval=1.0)
    gs.add_queries("""
        DEFINE query_name link0;
        Select time, destIP, len From eth0.tcp Where destPort = 80;

        DEFINE query_name link1;
        Select time, destIP, len From eth1.tcp Where destPort = 80;

        DEFINE query_name both;
        Merge link0.time : link1.time From link0, link1;

        DEFINE query_name appmon;
        Select tb, destIP, count(*), sum(len)
        From both Group by time/10 as tb, destIP
    """)
    sub = gs.subscribe("appmon")
    gs.start()
    a = packet_stream(http_port80_pool(seed=1), rate_mbps=25.0,
                      duration_s=10.0, interface="eth0",
                      seed=derive_seed(seed, "shard_e2.eth0"))
    b = packet_stream(http_port80_pool(seed=2), rate_mbps=25.0,
                      duration_s=10.0, interface="eth1",
                      seed=derive_seed(seed, "shard_e2.eth1"))
    packets = []
    for packet in merge_streams(a, b):
        packets.append(packet)
        if len(packets) >= 4000:
            break
    gs.feed(packets, pump_every=256)
    gs.flush()
    return {"rows": {"appmon": [repr(row) for row in sub.poll()]}}


SHARD_SCENARIOS = ("shard_flows", "shard_e2")


# -- failover scenarios ------------------------------------------------------
#
# The replication plane's contract (DESIGN section 16): a warm standby
# promoted after the primary dies -- at any of the crash points the
# GS_FAILOVER_CRASH grammar can name -- must produce output
# byte-identical to the uninterrupted run.  GS_FAILOVER=1 builds the
# primary+standby pair (ReplicatedGigascope); 0 (or unset) runs the
# plain single engine the crashed arm is diffed against.  Snapshots
# carry rows plus a ``failover`` metadata block (promotion flags, RPO
# counters, the frame ledger) that the verifier strips before diffing
# and then asserts on separately: the crash arms must actually have
# promoted, the clean arm must not.

_FAILOVER_ENV = "GS_FAILOVER"
_FAILOVER_CRASH_ENV = "GS_FAILOVER_CRASH"
_FAILOVER_CADENCE_ENV = "GS_FAILOVER_CADENCE"

#: the crash points ``verify-failover`` gates on: mid-delta-interval
#: (hard death between frames), at the snapshot epoch, after a delta
#: frame, and a torn write truncating a delta frame mid-stream (the
#: standby must refuse the torn frame and promote from the one before)
FAILOVER_CRASHES = ("packet:700", "frame:0", "frame:2", "frame:2:torn")

#: the most recent verify_failover reports, kept for post-mortem
#: artifact dumps (CI writes the arm snapshots on a verify failure)
_LAST_FAILOVER: List["ReplayReport"] = []


def _failover_engine(seed: int, **kwargs):
    if os.environ.get(_FAILOVER_ENV) == "1":
        from repro.replication import ReplicatedGigascope
        cadence = float(os.environ.get(_FAILOVER_CADENCE_ENV, "0.5"))
        crash = os.environ.get(_FAILOVER_CRASH_ENV) or None
        return ReplicatedGigascope(cadence=cadence, crash=crash,
                                   seed=seed, metrics=False, **kwargs)
    from repro.core.engine import Gigascope
    return Gigascope(seed=seed, metrics=False, **kwargs)


@scenario("failover_agg")
def _failover_agg_scenario(seed: int) -> Dict[str, Any]:
    """Flow aggregation plus a per-packet selection, primary vs promoted
    standby.  The aggregation carries open-group state across every
    crash point; the selection keeps per-packet pressure on the
    exactly-once skip gate (hundreds of delivered rows to suppress on
    replay)."""
    from repro.workloads.flows import ZipfFlowWorkload

    gs = _failover_engine(seed, heartbeat_interval=0.5, lfta_table_size=64)
    gs.add_query("""
        DEFINE query_name flows;
        Select tb, srcIP, srcPort, count(*), sum(len)
        From tcp
        Group by time/5 as tb, srcIP, srcPort
    """)
    gs.add_query("""
        DEFINE query_name web;
        Select time, srcIP, destPort From tcp Where destPort = 80
    """)
    subs = {name: gs.subscribe(name) for name in ("flows", "web")}
    gs.start()
    workload = ZipfFlowWorkload(num_flows=400, alpha=1.1,
                                seed=derive_seed(seed, "workload.zipf"))
    gs.feed(list(workload.packets(4000, pps=2000.0)), pump_every=128)
    gs.flush()
    snapshot: Dict[str, Any] = {
        "rows": {name: [repr(row) for row in sub.poll()]
                 for name, sub in sorted(subs.items())},
    }
    if hasattr(gs, "replication_report"):
        snapshot["failover"] = gs.replication_report()
    return snapshot


@scenario("failover_shard")
def _failover_shard_scenario(seed: int) -> Dict[str, Any]:
    """The shard_flows workload with shard 1 wired as a standby: its
    worker ships delta frames, and a GS_SHARD_CRASH kill respawns it
    from the parent's warm fold instead of a full snapshot."""
    from repro.workloads.flows import ZipfFlowWorkload

    shards = int(os.environ.get("GS_SHARDS", "0") or "0")
    if shards:
        from repro.shard import ShardedGigascope
        gs = ShardedGigascope(shards, seed=seed, metrics=False,
                              barrier_interval=0.25, standby=1,
                              heartbeat_interval=0.5)
    else:
        from repro.core.engine import Gigascope
        gs = Gigascope(seed=seed, metrics=False, heartbeat_interval=0.5)
    gs.add_query("""
        DEFINE query_name flows;
        Select tb, srcIP, srcPort, count(*), sum(len)
        From tcp
        Group by time/5 as tb, srcIP, srcPort
    """)
    sub = gs.subscribe("flows")
    gs.start()
    workload = ZipfFlowWorkload(num_flows=400, alpha=1.1,
                                seed=derive_seed(seed, "workload.zipf"))
    gs.feed(list(workload.packets(4000, pps=2000.0)), pump_every=128)
    gs.flush()
    return {"rows": {"flows": [repr(row) for row in sub.poll()]}}


def resolve_scenario(name: str) -> Callable[[int], Dict[str, Any]]:
    """A registered scenario, or a ``module:callable`` dotted path."""
    if name in SCENARIOS:
        return SCENARIOS[name]
    if ":" in name:
        module_name, _, attr = name.partition(":")
        import importlib
        module = importlib.import_module(module_name)
        return getattr(module, attr)
    raise KeyError(
        f"unknown scenario {name!r}; registered: {sorted(SCENARIOS)} "
        f"(or use a 'module:callable' path)"
    )


def run_scenario(name: str, seed: int = 0) -> Dict[str, Any]:
    """Run a scenario in this process and return its snapshot."""
    return resolve_scenario(name)(seed)


# ---------------------------------------------------------------------------
# The replay verifier
# ---------------------------------------------------------------------------

@dataclass
class ReplayReport:
    """The verdict of one :func:`verify_replay` run."""

    scenario: str
    seed: int
    hash_seeds: Tuple[str, str]
    ok: bool
    diffs: List[str] = field(default_factory=list)
    snapshots: Optional[Tuple[Dict[str, Any], Dict[str, Any]]] = None
    #: what varied between the two runs (for the report text)
    axis: str = "PYTHONHASHSEED"

    def describe(self) -> str:
        if self.ok:
            return (f"replay OK: scenario {self.scenario!r} seed "
                    f"{self.seed} identical under {self.axis} "
                    f"{self.hash_seeds[0]} and {self.hash_seeds[1]}")
        lines = [f"replay FAILED: scenario {self.scenario!r} seed "
                 f"{self.seed} diverges between {self.axis} "
                 f"{self.hash_seeds[0]} and {self.hash_seeds[1]}:"]
        lines.extend(f"  - {diff}" for diff in self.diffs)
        return "\n".join(lines)


def _subprocess_snapshot(name: str, seed: int, hash_seed: str,
                         extra_env: Optional[Dict[str, str]] = None
                         ) -> Dict[str, Any]:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    if extra_env:
        env.update(extra_env)
    src_root = str(Path(__file__).resolve().parents[1])
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [sys.executable, "-m", "repro.replay", "run",
         "--scenario", name, "--seed", str(seed)],
        env=env, capture_output=True, text=True,
    )
    if result.returncode != 0:
        raise RuntimeError(
            f"scenario {name!r} failed under PYTHONHASHSEED={hash_seed} "
            f"{extra_env or {}}:\n" + result.stderr
        )
    return json.loads(result.stdout)


def strip_batch_metrics(snapshot: Dict[str, Any]) -> Dict[str, Any]:
    """Drop ``gs_batch*`` metric families from a scenario snapshot.

    The batch-path counters (blocks fed, configured block size) differ
    between scalar and batched execution *by construction*; everything
    else in the snapshot must not.
    """
    metrics = snapshot.get("metrics")
    if isinstance(metrics, dict) and isinstance(metrics.get("metrics"), list):
        metrics["metrics"] = [
            family for family in metrics["metrics"]
            if not str(family.get("name", "")).startswith("gs_batch")
        ]
    return snapshot


def strip_recovery_artifacts(snapshot: Dict[str, Any]) -> Dict[str, Any]:
    """Drop the crash arm's instrumentation from a scenario snapshot.

    ``gs_recovery*`` metric families count checkpoints, restarts, and
    replay work -- the crash arm restarts a node and the clean arm does
    not, so they differ *by design*.  The ``faults`` entry of the drop
    ledger describes the injected crash itself (the experiment's
    instrument, absent from the clean arm).  Everything else -- rows,
    drop ledger, statistics, metrics -- must be byte-identical.
    """
    metrics = snapshot.get("metrics")
    if isinstance(metrics, dict) and isinstance(metrics.get("metrics"), list):
        metrics["metrics"] = [
            family for family in metrics["metrics"]
            if not str(family.get("name", "")).startswith("gs_recovery")
        ]
    drops = snapshot.get("drops")
    if isinstance(drops, dict):
        drops.pop("faults", None)
    return snapshot


def verify_recovery(scenario_name: str, seed: int = 0,
                    hash_seeds: Tuple[str, ...] = ("1", "2")
                    ) -> List[ReplayReport]:
    """Crash-vs-clean differential: run a recovery scenario with and
    without its transient crash (in subprocesses) and diff everything
    but the recovery instrumentation, under each ``PYTHONHASHSEED``.

    A passing report means restore + journal replay + exactly-once
    re-emission reconstructed the uninterrupted run byte-for-byte:
    same sink rows, same drop ledger, same per-node statistics, same
    channel counters, same metrics.
    """
    reports = []
    for hash_seed in hash_seeds:
        clean = strip_recovery_artifacts(
            _subprocess_snapshot(scenario_name, seed, hash_seed,
                                 {_RECOVERY_CRASH_ENV: "0"}))
        crashed = strip_recovery_artifacts(
            _subprocess_snapshot(scenario_name, seed, hash_seed,
                                 {_RECOVERY_CRASH_ENV: "1"}))
        diffs: List[str] = []
        _diff_paths(clean, crashed, "$", diffs)
        reports.append(ReplayReport(
            scenario=scenario_name, seed=seed,
            hash_seeds=(f"clean (PYTHONHASHSEED={hash_seed})",
                        f"crash+recover (PYTHONHASHSEED={hash_seed})"),
            ok=not diffs, diffs=diffs, snapshots=(clean, crashed),
            axis="crash recovery",
        ))
    return reports


def verify_batch_equivalence(scenario_name: str, seed: int = 0,
                             batch_size: Optional[int] = None,
                             columnar: Optional[bool] = None,
                             hash_seed: str = "0") -> ReplayReport:
    """Run a scenario scalar (``GS_BATCH=0``) and batched (``GS_BATCH=1``)
    in subprocesses and diff the snapshots after stripping the
    ``gs_batch*`` counters: the vectorized path must be byte-identical
    in rows, drop ledger, statistics, and every other metric.

    ``columnar`` forces the batched arm's columnar block decode on or
    off (``GS_COLUMNAR``); None leaves the engine default.  Both arms
    run under the same ``hash_seed`` so the diff isolates the
    execution path -- CI sweeps it to cross the batch differential
    with the hash-seed matrix.
    """
    scalar_env = {"GS_BATCH": "0"}
    batched_env = {"GS_BATCH": "1"}
    batched_label = "GS_BATCH=1"
    if batch_size is not None:
        batched_env["GS_BATCH_SIZE"] = str(batch_size)
    if columnar is not None:
        batched_env["GS_COLUMNAR"] = "1" if columnar else "0"
        batched_label += f" GS_COLUMNAR={batched_env['GS_COLUMNAR']}"
    scalar = strip_batch_metrics(
        _subprocess_snapshot(scenario_name, seed, hash_seed, scalar_env))
    batched = strip_batch_metrics(
        _subprocess_snapshot(scenario_name, seed, hash_seed, batched_env))
    diffs: List[str] = []
    _diff_paths(scalar, batched, "$", diffs)
    return ReplayReport(
        scenario=scenario_name, seed=seed,
        hash_seeds=("GS_BATCH=0", batched_label),
        ok=not diffs, diffs=diffs, snapshots=(scalar, batched),
        axis="execution path",
    )


def _diff_paths(a: Any, b: Any, path: str, out: List[str],
                limit: int = 20) -> None:
    """Record the paths where two JSON-shaped values differ."""
    if len(out) >= limit:
        return
    if type(a) is not type(b):
        out.append(f"{path}: type {type(a).__name__} != {type(b).__name__}")
    elif isinstance(a, dict):
        for key in sorted(set(a) | set(b)):
            if key not in a or key not in b:
                out.append(f"{path}.{key}: present in only one run")
            else:
                _diff_paths(a[key], b[key], f"{path}.{key}", out, limit)
    elif isinstance(a, list):
        if len(a) != len(b):
            out.append(f"{path}: length {len(a)} != {len(b)}")
        for index, (x, y) in enumerate(zip(a, b)):
            _diff_paths(x, y, f"{path}[{index}]", out, limit)
    elif a != b:
        out.append(f"{path}: {a!r} != {b!r}")


def verify_alerts(seed: int = 0, hash_seeds: Tuple[str, ...] = ("1", "2"),
                  scenarios: Tuple[str, ...] = ALERT_SCENARIOS
                  ) -> List[ReplayReport]:
    """The alert plane's acceptance gate.

    For each alert scenario, check the emitted alert stream (and the
    whole engine snapshot around it) is byte-identical (a) across two
    ``PYTHONHASHSEED`` values and (b) across a crash/restore of the
    trigger node under the RecoverySupervisor, per hash seed.
    """
    reports: List[ReplayReport] = []
    for name in scenarios:
        reports.append(verify_replay(name, seed, hash_seeds=hash_seeds[:2]))
        reports.extend(verify_recovery(name, seed, hash_seeds=hash_seeds))
    return reports


def verify_telemetry(seed: int = 0, hash_seeds: Tuple[str, ...] = ("1", "2")
                     ) -> List[ReplayReport]:
    """The self-telemetry plane's acceptance gate.

    (a) ``telemetry_meta``: all five ``_gs_*`` streams, the meta-query,
    and the meta-alert stream are byte-identical across two
    ``PYTHONHASHSEED`` values, storm included.  (b) ``telemetry_crash``:
    the crash-invariant telemetry streams and everything computed from
    them are byte-identical across a mid-run crash/restore of the
    meta-query node, per hash seed.
    """
    reports: List[ReplayReport] = [
        verify_replay("telemetry_meta", seed, hash_seeds=hash_seeds[:2])]
    reports.extend(verify_recovery("telemetry_crash", seed,
                                   hash_seeds=hash_seeds))
    return reports


def verify_shard(scenario_name: str, seed: int = 0, shards: int = 4,
                 hash_seeds: Tuple[str, ...] = ("1", "2"),
                 crash: Optional[str] = "1:600") -> List[ReplayReport]:
    """The sharded runtime's acceptance gate.

    Per ``PYTHONHASHSEED``: (a) the single-process run (``GS_SHARDS=0``)
    and the ``shards``-way sharded run must produce byte-identical sink
    rows, and (b) so must a sharded run whose worker ``crash`` names
    ("SHARD:PACKET_INDEX") is killed mid-stream and respawned from its
    shard snapshot.  Finally the sharded arms from the two hash seeds
    are diffed against each other, pinning the flow partitioner itself
    (not just each arm's engine) as hash-seed independent.
    """
    reports: List[ReplayReport] = []
    sharded_arms: List[Dict[str, Any]] = []
    for hash_seed in hash_seeds:
        single = _subprocess_snapshot(scenario_name, seed, hash_seed,
                                      {"GS_SHARDS": "0"})
        sharded = _subprocess_snapshot(scenario_name, seed, hash_seed,
                                       {"GS_SHARDS": str(shards)})
        sharded_arms.append(sharded)
        diffs: List[str] = []
        _diff_paths(single, sharded, "$", diffs)
        reports.append(ReplayReport(
            scenario=scenario_name, seed=seed,
            hash_seeds=(f"GS_SHARDS=0 (PYTHONHASHSEED={hash_seed})",
                        f"GS_SHARDS={shards} (PYTHONHASHSEED={hash_seed})"),
            ok=not diffs, diffs=diffs, snapshots=(single, sharded),
            axis="sharded runtime",
        ))
        if crash:
            crashed = _subprocess_snapshot(
                scenario_name, seed, hash_seed,
                {"GS_SHARDS": str(shards), "GS_SHARD_CRASH": crash})
            diffs = []
            _diff_paths(single, crashed, "$", diffs)
            reports.append(ReplayReport(
                scenario=scenario_name, seed=seed,
                hash_seeds=(
                    f"GS_SHARDS=0 (PYTHONHASHSEED={hash_seed})",
                    f"GS_SHARDS={shards} crash@{crash} "
                    f"(PYTHONHASHSEED={hash_seed})"),
                ok=not diffs, diffs=diffs, snapshots=(single, crashed),
                axis="shard crash recovery",
            ))
    if len(sharded_arms) >= 2:
        diffs = []
        _diff_paths(sharded_arms[0], sharded_arms[1], "$", diffs)
        reports.append(ReplayReport(
            scenario=scenario_name, seed=seed,
            hash_seeds=(f"GS_SHARDS={shards} "
                        f"(PYTHONHASHSEED={hash_seeds[0]})",
                        f"GS_SHARDS={shards} "
                        f"(PYTHONHASHSEED={hash_seeds[1]})"),
            ok=not diffs, diffs=diffs,
            snapshots=(sharded_arms[0], sharded_arms[1]),
        ))
    return reports


def _strip_failover(snapshot: Dict[str, Any]) -> Dict[str, Any]:
    """The diffable part of a failover snapshot: everything but the
    ``failover`` metadata block (promotion flags, RPO/RTO counters,
    wall-clock latencies -- asserted on separately, never diffed)."""
    return {key: value for key, value in snapshot.items()
            if key != "failover"}


def verify_failover(seed: int = 0,
                    hash_seeds: Tuple[str, ...] = ("1", "2"),
                    cadence: float = 0.5,
                    crashes: Tuple[str, ...] = FAILOVER_CRASHES,
                    shards: int = 4,
                    shard_crash: str = "1:600") -> List[ReplayReport]:
    """The replication plane's acceptance gate.

    Per ``PYTHONHASHSEED``: (a) the replicated pair running clean must
    match the plain single engine byte-for-byte (replication is
    invisible in steady state, and must not have promoted); (b) for
    each crash point -- mid-delta-interval, at the snapshot epoch,
    after a delta frame, and a torn mid-frame write -- the promoted
    standby's output must match the uninterrupted run byte-for-byte,
    and the metadata must show the promotion actually happened; (c) a
    sharded run whose standby shard is killed mid-stream and respawned
    from the parent's delta fold must match the single-process run.
    """
    reports: List[ReplayReport] = []
    _LAST_FAILOVER.clear()
    for hash_seed in hash_seeds:
        plain = _subprocess_snapshot("failover_agg", seed, hash_seed,
                                     {_FAILOVER_ENV: "0"})
        base_env = {_FAILOVER_ENV: "1",
                    _FAILOVER_CADENCE_ENV: str(cadence),
                    _FAILOVER_CRASH_ENV: ""}
        clean = _subprocess_snapshot("failover_agg", seed, hash_seed,
                                     base_env)
        diffs: List[str] = []
        _diff_paths(plain, _strip_failover(clean), "$", diffs)
        if clean.get("failover", {}).get("promoted"):
            diffs.append("$.failover.promoted: clean replicated arm "
                         "promoted its standby")
        reports.append(ReplayReport(
            scenario="failover_agg", seed=seed,
            hash_seeds=(f"plain (PYTHONHASHSEED={hash_seed})",
                        f"replicated cadence={cadence} "
                        f"(PYTHONHASHSEED={hash_seed})"),
            ok=not diffs, diffs=diffs, snapshots=(plain, clean),
            axis="steady-state replication",
        ))
        for crash in crashes:
            env = dict(base_env)
            env[_FAILOVER_CRASH_ENV] = crash
            crashed = _subprocess_snapshot("failover_agg", seed,
                                           hash_seed, env)
            diffs = []
            _diff_paths(plain, _strip_failover(crashed), "$", diffs)
            if not crashed.get("failover", {}).get("promoted"):
                diffs.append("$.failover.promoted: crash arm never "
                             "promoted the standby")
            reports.append(ReplayReport(
                scenario="failover_agg", seed=seed,
                hash_seeds=(f"plain (PYTHONHASHSEED={hash_seed})",
                            f"promoted standby crash@{crash} "
                            f"(PYTHONHASHSEED={hash_seed})"),
                ok=not diffs, diffs=diffs, snapshots=(plain, crashed),
                axis="warm-standby failover",
            ))
        single = _subprocess_snapshot("failover_shard", seed, hash_seed,
                                      {"GS_SHARDS": "0"})
        sharded = _subprocess_snapshot(
            "failover_shard", seed, hash_seed,
            {"GS_SHARDS": str(shards), "GS_SHARD_CRASH": shard_crash})
        diffs = []
        _diff_paths(single, sharded, "$", diffs)
        reports.append(ReplayReport(
            scenario="failover_shard", seed=seed,
            hash_seeds=(f"GS_SHARDS=0 (PYTHONHASHSEED={hash_seed})",
                        f"GS_SHARDS={shards} standby crash@{shard_crash} "
                        f"(PYTHONHASHSEED={hash_seed})"),
            ok=not diffs, diffs=diffs, snapshots=(single, sharded),
            axis="shard standby failover",
        ))
    _LAST_FAILOVER.extend(reports)
    return reports


def verify_replay(scenario_name: str, seed: int = 0,
                  hash_seeds: Tuple[str, str] = ("1", "2")) -> ReplayReport:
    """Run ``scenario_name`` twice under different ``PYTHONHASHSEED``
    values (in subprocesses) and diff everything replay must preserve:
    sink rows, drop ledger, node statistics, metrics snapshot.
    """
    first = _subprocess_snapshot(scenario_name, seed, hash_seeds[0])
    second = _subprocess_snapshot(scenario_name, seed, hash_seeds[1])
    diffs: List[str] = []
    _diff_paths(first, second, "$", diffs)
    return ReplayReport(
        scenario=scenario_name, seed=seed, hash_seeds=hash_seeds,
        ok=not diffs, diffs=diffs, snapshots=(first, second),
    )


def main(argv: Optional[List[str]] = None) -> int:
    import argparse
    parser = argparse.ArgumentParser(
        prog="python -m repro.replay",
        description="Deterministic-replay tools.",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    run_cmd = commands.add_parser(
        "run", help="run a scenario, print its snapshot as JSON")
    verify_cmd = commands.add_parser(
        "verify", help="run a scenario under two PYTHONHASHSEEDs and diff")
    batch_cmd = commands.add_parser(
        "verify-batch",
        help="run a scenario scalar (GS_BATCH=0) and batched and diff")
    recovery_cmd = commands.add_parser(
        "verify-recovery",
        help="run a recovery scenario clean and crashed+recovered and diff")
    alerts_cmd = commands.add_parser(
        "verify-alerts",
        help="verify alert streams across hash seeds and across a "
             "crash/restore of the trigger node")
    alerts_cmd.add_argument("--seed", type=int, default=0)
    alerts_cmd.add_argument("--hash-seeds", nargs=2, default=("1", "2"),
                            metavar=("A", "B"))
    alerts_cmd.add_argument("--scenarios", nargs="+",
                            default=list(ALERT_SCENARIOS),
                            help=f"alert scenarios to gate on "
                                 f"(default: {' '.join(ALERT_SCENARIOS)})")
    telemetry_cmd = commands.add_parser(
        "verify-telemetry",
        help="verify the _gs_* telemetry streams (and meta-query/"
             "meta-alert outputs) across hash seeds and across a "
             "crash/restore of the meta-query node")
    telemetry_cmd.add_argument("--seed", type=int, default=0)
    telemetry_cmd.add_argument("--hash-seeds", nargs=2, default=("1", "2"),
                               metavar=("A", "B"))
    shard_cmd = commands.add_parser(
        "verify-shard",
        help="verify the sharded runtime: single-process vs N-way "
             "hash-partitioned output (including a mid-run worker "
             "crash/restart) must be byte-identical per hash seed")
    shard_cmd.add_argument("--seed", type=int, default=0)
    shard_cmd.add_argument("--shards", type=int, default=4)
    shard_cmd.add_argument("--hash-seeds", nargs=2, default=("1", "2"),
                           metavar=("A", "B"))
    shard_cmd.add_argument("--scenarios", nargs="+",
                           default=list(SHARD_SCENARIOS),
                           help=f"shard scenarios to gate on "
                                f"(default: {' '.join(SHARD_SCENARIOS)})")
    shard_cmd.add_argument("--crash", default="1:600",
                           metavar="SHARD:PACKET_INDEX",
                           help="worker to kill mid-run in the crash arm "
                                "('none' disables; default 1:600)")
    failover_cmd = commands.add_parser(
        "verify-failover",
        help="verify warm-standby failover: the promoted standby's "
             "output must be byte-identical to the uninterrupted run, "
             "per hash seed, across snapshot/delta/torn-frame/"
             "mid-interval crash points, plus a shard-standby arm "
             "respawned from the parent's delta fold")
    failover_cmd.add_argument("--seed", type=int, default=0)
    failover_cmd.add_argument("--hash-seeds", nargs=2, default=("1", "2"),
                              metavar=("A", "B"))
    failover_cmd.add_argument("--cadence", type=float, default=0.5,
                              help="replication cadence in virtual "
                                   "seconds (default 0.5)")
    failover_cmd.add_argument("--crashes", nargs="+",
                              default=list(FAILOVER_CRASHES),
                              metavar="SPEC",
                              help="crash specs (packet:K | frame:N | "
                                   "frame:N:torn) for the failover arms "
                                   f"(default: {' '.join(FAILOVER_CRASHES)})")
    failover_cmd.add_argument("--shards", type=int, default=4)
    failover_cmd.add_argument("--shard-crash", default="1:600",
                              metavar="SHARD:PACKET_INDEX",
                              help="standby worker to kill in the "
                                   "shard arm (default 1:600)")
    for sub in (run_cmd, verify_cmd, batch_cmd, recovery_cmd):
        sub.add_argument("--scenario", default="mixed",
                         help=f"one of {sorted(SCENARIOS)} or module:callable")
        sub.add_argument("--seed", type=int, default=0)
    for sub in (verify_cmd, recovery_cmd):
        sub.add_argument("--hash-seeds", nargs=2, default=("1", "2"),
                         metavar=("A", "B"))
    recovery_cmd.set_defaults(scenario="recovery_agg")
    batch_cmd.add_argument("--batch-size", type=int, default=None,
                           help="block size for the batched run "
                                "(default: engine default)")
    batch_cmd.add_argument("--columnar", choices=("on", "off"), default=None,
                           help="force the batched arm's columnar block "
                                "decode on or off (default: engine default)")
    batch_cmd.add_argument("--hash-seed", default="0", metavar="S",
                           help="PYTHONHASHSEED for both arms (default 0)")
    args = parser.parse_args(argv)
    if args.command == "run":
        snapshot = run_scenario(args.scenario, args.seed)
        json.dump(snapshot, sys.stdout, sort_keys=True)
        sys.stdout.write("\n")
        return 0
    if args.command == "verify-recovery":
        reports = verify_recovery(args.scenario, args.seed,
                                  hash_seeds=tuple(args.hash_seeds))
        for report in reports:
            print(report.describe())
        return 0 if all(report.ok for report in reports) else 1
    if args.command == "verify-alerts":
        reports = verify_alerts(args.seed,
                                hash_seeds=tuple(args.hash_seeds),
                                scenarios=tuple(args.scenarios))
        for report in reports:
            print(report.describe())
        return 0 if all(report.ok for report in reports) else 1
    if args.command == "verify-telemetry":
        reports = verify_telemetry(args.seed,
                                   hash_seeds=tuple(args.hash_seeds))
        for report in reports:
            print(report.describe())
        return 0 if all(report.ok for report in reports) else 1
    if args.command == "verify-shard":
        reports = []
        for name in args.scenarios:
            reports.extend(verify_shard(
                name, args.seed, shards=args.shards,
                hash_seeds=tuple(args.hash_seeds),
                crash=(None if args.crash == "none" else args.crash)))
        for report in reports:
            print(report.describe())
        return 0 if all(report.ok for report in reports) else 1
    if args.command == "verify-failover":
        reports = verify_failover(
            args.seed, hash_seeds=tuple(args.hash_seeds),
            cadence=args.cadence, crashes=tuple(args.crashes),
            shards=args.shards, shard_crash=args.shard_crash)
        for report in reports:
            print(report.describe())
        return 0 if all(report.ok for report in reports) else 1
    if args.command == "verify-batch":
        report = verify_batch_equivalence(
            args.scenario, args.seed, batch_size=args.batch_size,
            columnar=(None if args.columnar is None
                      else args.columnar == "on"),
            hash_seed=args.hash_seed)
    else:
        report = verify_replay(args.scenario, args.seed,
                               hash_seeds=tuple(args.hash_seeds))
    print(report.describe())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
