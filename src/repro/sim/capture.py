"""The four capture stacks of Section 4 and the loss-knee harness.

"We tried four approaches: 1) dumping the data to disk for post-facto
analysis, 2) reading data from the ethernet card using libpcap, then
discarding the packet (best case processing), 3) running Gigascope with
the LFTAs executing in the host (i.e., reading from libpcap), and 4)
running Gigascope with the LFTAs executing on the Tigon gigabit
ethernet card.  We chose a 2% packet drop rate as the maximum
acceptable loss."

Each stack is simulated in virtual time against the
:class:`~repro.sim.cost_model.CostModel`; the workload's qualifying
decision (does the packet pass the port-80 LFTA filter, and how many
payload bytes must the HFTA regex scan) is supplied by a ``qualifier``
callable so the harness can wire in the *real* BPF/LFTA machinery.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Iterable, List, Optional, Sequence, Tuple

from repro.net.packet import CapturedPacket
from repro.sim.cost_model import CostModel
from repro.sim.disk import DiskModel
from repro.sim.host import HostModel

# qualifier(packet) -> payload bytes the HFTA must scan, or None if the
# packet does not pass the LFTA filter.
Qualifier = Callable[[CapturedPacket], Optional[int]]


class CaptureConfig(enum.Enum):
    DISK_DUMP = "disk_dump"
    LIBPCAP_DISCARD = "libpcap_discard"
    GIGASCOPE_HOST = "gigascope_host"
    GIGASCOPE_NIC = "gigascope_nic"


@dataclass
class CaptureResult:
    config: CaptureConfig
    offered_packets: int = 0
    offered_bytes: int = 0
    duration_s: float = 0.0
    lost_packets: int = 0
    qualifying_packets: int = 0
    host_interrupt_share: float = 0.0
    #: tuples lost in the shared-memory buffer to a saturated second CPU
    hfta_dropped_tuples: int = 0

    @property
    def loss_rate(self) -> float:
        if not self.offered_packets:
            return 0.0
        return self.lost_packets / self.offered_packets

    @property
    def offered_mbps(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.offered_bytes * 8 / self.duration_s / 1e6


class _NicServer:
    """Single-server queue (used for the NIC CPU and the second host CPU)."""

    def __init__(self, service_us: float, ring_slots: int) -> None:
        self.service_us = service_us
        self.ring_slots = ring_slots
        self._completions: Deque[float] = deque()
        self.dropped = 0

    def accept(self, now_us: float, service_us: Optional[float] = None) -> bool:
        if service_us is None:
            service_us = self.service_us
        completions = self._completions
        while completions and completions[0] <= now_us:
            completions.popleft()
        if len(completions) >= self.ring_slots:
            self.dropped += 1
            return False
        start = completions[-1] if completions else now_us
        completions.append(max(start, now_us) + service_us)
        return True


class CaptureSimulation:
    """Simulate one capture stack over a packet stream."""

    def __init__(self, config: CaptureConfig, costs: Optional[CostModel] = None,
                 qualifier: Optional[Qualifier] = None,
                 dual_cpu: bool = False) -> None:
        self.config = config
        self.costs = costs or CostModel()
        self.qualifier = qualifier or (lambda packet: None)
        #: GIGASCOPE_HOST only: run the HFTA on a second CPU (the
        #: deployment hardware of Section 5), so per-tuple query work
        #: does not compete with the receive path.
        self.dual_cpu = dual_cpu

    def run(self, packets: Iterable[CapturedPacket]) -> CaptureResult:
        costs = self.costs
        config = self.config
        qualifier = self.qualifier
        host = HostModel(costs.interrupt_us, costs.host_ring_slots)
        disk = DiskModel(costs.disk_packet_us, costs.disk_per_byte_us,
                         costs.disk_stall_us, costs.disk_stall_every_bytes)
        nic = _NicServer(costs.nic_lfta_us, costs.nic_ring_slots)
        # Second host CPU for the HFTA process (dual-CPU ablation).
        hfta_cpu = _NicServer(1.0, 8192) if self.dual_cpu else None
        result = CaptureResult(config=config)
        first_ts = None
        last_ts = 0.0

        for packet in packets:
            now_us = packet.timestamp * 1e6
            if first_ts is None:
                first_ts = packet.timestamp
            last_ts = packet.timestamp
            result.offered_packets += 1
            result.offered_bytes += packet.orig_len
            caplen = packet.caplen

            if config is CaptureConfig.DISK_DUMP:
                service = caplen * costs.copy_per_byte_us + disk.write_cost_us(caplen)
                if not host.arrival(now_us, service):
                    result.lost_packets += 1

            elif config is CaptureConfig.LIBPCAP_DISCARD:
                service = caplen * costs.copy_per_byte_us + costs.libpcap_read_us
                if not host.arrival(now_us, service):
                    result.lost_packets += 1

            elif config is CaptureConfig.GIGASCOPE_HOST:
                service = (
                    caplen * costs.copy_per_byte_us
                    + costs.libpcap_read_us
                    + costs.lfta_filter_us
                )
                payload = qualifier(packet)
                hfta_work = 0.0
                if payload is not None:
                    result.qualifying_packets += 1
                    service += costs.tuple_emit_us
                    hfta_work = (
                        costs.hfta_tuple_us
                        + payload * costs.regex_per_byte_us
                    )
                    if hfta_cpu is None:
                        service += hfta_work
                if not host.arrival(now_us, service):
                    result.lost_packets += 1
                elif hfta_cpu is not None and hfta_work > 0.0:
                    if not hfta_cpu.accept(now_us, hfta_work):
                        result.hfta_dropped_tuples += 1

            else:  # GIGASCOPE_NIC
                if not nic.accept(now_us):
                    result.lost_packets += 1
                    continue
                payload = qualifier(packet)
                if payload is not None:
                    result.qualifying_packets += 1
                    # Tuples DMA to the host in batches: no per-packet
                    # interrupt, just deferred per-tuple work.
                    host.work(
                        now_us,
                        costs.nic_tuple_host_us
                        + costs.hfta_tuple_us
                        + payload * costs.regex_per_byte_us,
                    )

        if first_ts is not None:
            result.duration_s = max(last_ts - first_ts, 1e-9)
            host.drain(last_ts * 1e6 + 1e6)
        total_cpu = host.stats.interrupt_us + host.stats.processing_us
        if total_cpu > 0:
            result.host_interrupt_share = host.stats.interrupt_us / total_cpu
        return result


def find_loss_knee(
    run_at: Callable[[float], float],
    low: float,
    high: float,
    threshold: float = 0.02,
    tolerance: float = 5.0,
) -> float:
    """Largest rate in [low, high] with loss <= threshold (bisection).

    ``run_at(rate_mbps)`` must return the measured loss rate.  Loss is
    assumed nondecreasing in offered load (true for all four stacks).
    """
    if run_at(low) > threshold:
        return low
    if run_at(high) <= threshold:
        return high
    while high - low > tolerance:
        mid = (low + high) / 2
        if run_at(mid) <= threshold:
            low = mid
        else:
            high = mid
    return low


def sweep(run_at: Callable[[float], float],
          rates: Sequence[float]) -> List[Tuple[float, float]]:
    """Loss rate at each offered rate; the raw series behind the figure."""
    return [(rate, run_at(rate)) for rate in rates]
