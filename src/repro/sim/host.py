"""The host CPU model: interrupt context preempts packet processing.

Every arriving packet costs interrupt service time *before* any drop
decision is made -- the kernel must take the interrupt to learn the
packet exists.  Deferred processing (libpcap read, LFTA evaluation,
disk writes) runs in whatever CPU remains.  When the arrival rate
approaches ``1 / interrupt_us`` the leftover goes to zero, the receive
queue never drains, and goodput collapses: **interrupt livelock**,
exactly the failure mode Section 4 reports at 480 Mbit/s.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque


@dataclass
class HostStats:
    arrivals: int = 0
    accepted: int = 0
    dropped: int = 0
    interrupt_us: float = 0.0
    processing_us: float = 0.0


class HostModel:
    """Two-priority CPU: interrupts first, packet processing with leftover."""

    def __init__(self, interrupt_us: float, ring_slots: int) -> None:
        self.interrupt_us = interrupt_us
        self.ring_slots = ring_slots
        self.stats = HostStats()
        self._last_us = 0.0
        self._int_backlog = 0.0
        self._queue: Deque[float] = deque()  # remaining service per queued packet
        self._queued_work = 0.0

    def _advance(self, now_us: float) -> None:
        """Spend the CPU time between the last event and ``now_us``."""
        available = now_us - self._last_us
        if available <= 0:
            return
        self._last_us = now_us
        # Interrupt context runs first.
        spent = min(available, self._int_backlog)
        self._int_backlog -= spent
        self.stats.interrupt_us += spent
        available -= spent
        # Whatever is left drains the processing queue.
        queue = self._queue
        while available > 0 and queue:
            head = queue[0]
            if head <= available:
                available -= head
                self._queued_work -= head
                self.stats.processing_us += head
                queue.popleft()
            else:
                queue[0] = head - available
                self._queued_work -= available
                self.stats.processing_us += available
                available = 0.0

    def arrival(self, now_us: float, service_us: float) -> bool:
        """One packet arrives; returns True if it entered the queue.

        The interrupt cost is charged unconditionally; the drop (if any)
        happens at the full receive queue, after the CPU already paid.
        """
        self._advance(now_us)
        self.stats.arrivals += 1
        self._int_backlog += self.interrupt_us
        if len(self._queue) >= self.ring_slots:
            self.stats.dropped += 1
            return False
        self._queue.append(service_us)
        self._queued_work += service_us
        self.stats.accepted += 1
        return True

    def work(self, now_us: float, service_us: float) -> None:
        """Queue non-interrupt work not tied to a packet arrival (tuples)."""
        self._advance(now_us)
        self._queue.append(service_us)
        self._queued_work += service_us

    def drain(self, until_us: float) -> None:
        """Let the host finish pending work up to ``until_us``."""
        self._advance(until_us)

    @property
    def backlog_us(self) -> float:
        return self._int_backlog + self._queued_work

    @property
    def loss_rate(self) -> float:
        if not self.stats.arrivals:
            return 0.0
        return self.stats.dropped / self.stats.arrivals
