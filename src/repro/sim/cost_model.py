"""Per-operation costs for the virtual-time capture simulation.

All costs are in microseconds on the modeled host (a 733 MHz PIII-class
machine, per Section 4).  The defaults are calibrated so that the four
capture configurations reproduce the paper's knees:

=====================  =======================  ==================
configuration          paper (2% loss knee)     model target
=====================  =======================  ==================
dump to disk           180 Mbit/s               ~180 Mbit/s
libpcap + discard      480 Mbit/s (livelock)    ~480 Mbit/s
Gigascope, host LFTA   480 Mbit/s (livelock)    ~480 Mbit/s
Gigascope, NIC LFTA    <2% at 610 Mbit/s        >=610 Mbit/s
=====================  =======================  ==================

The knees for options 2 and 3 coincide because the bottleneck there is
*interrupt service*, not query processing -- exactly the paper's
observation that the system died of interrupt livelock, and that an
efficient stream database adds almost nothing on top of bare libpcap.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CostModel:
    """Microsecond costs for every operation the capture paths perform."""

    # -- host interrupt path -------------------------------------------------
    #: per-packet interrupt + kernel receive work (always paid, even for
    #: packets later dropped: this is what produces livelock)
    interrupt_us: float = 6.2
    #: copying a received packet out of the kernel, per byte
    copy_per_byte_us: float = 0.0016

    # -- per-packet processing, by configuration ---------------------------
    #: libpcap read + discard (option 2 of Section 4)
    libpcap_read_us: float = 0.2
    #: host-resident LFTA: evaluate the prefilter predicates (option 3)
    lfta_filter_us: float = 0.1
    #: LFTA direct-mapped hash update, per qualifying packet
    lfta_update_us: float = 0.3
    #: handing a tuple from the LFTA to an HFTA via shared memory
    tuple_emit_us: float = 0.3
    #: HFTA regex matching, per byte of payload scanned
    regex_per_byte_us: float = 0.004
    #: HFTA per-tuple overhead (scheduling, aggregation bookkeeping)
    hfta_tuple_us: float = 0.5

    # -- dump-to-disk path (option 1) ------------------------------------------
    #: per-packet write-path overhead (filesystem, pcap record header)
    disk_packet_us: float = 4.2
    #: per byte written to the striped disk array
    disk_per_byte_us: float = 0.006
    #: the write path stalls this long ...
    disk_stall_us: float = 24_000.0
    #: ... every this many bytes (buffer cache flush); "long and
    #: unpredictable delays throughout the system"
    disk_stall_every_bytes: int = 4_000_000

    # -- NIC (option 4) ------------------------------------------------------------
    #: Tigon firmware cost per packet for BPF + snap length handling
    nic_service_us: float = 1.2
    #: Tigon firmware cost per packet when running LFTAs on the card
    nic_lfta_us: float = 5.5
    #: host-side cost per *tuple* delivered by the on-NIC LFTA (DMA'd
    #: batches; no per-packet interrupt)
    nic_tuple_host_us: float = 2.0

    # -- structure --------------------------------------------------------------------
    #: kernel receive ring, in packets
    host_ring_slots: int = 2048
    #: NIC wire-side ring, in packets (the Tigon has megabytes of SRAM)
    nic_ring_slots: int = 4096

    # -- derived signals ---------------------------------------------------------------
    def packet_cpu_us(self, caplen: float, qualifying: bool = False) -> float:
        """Host CPU microseconds to receive one packet (Gigascope host path).

        This is the virtual-time utilization signal the overload control
        plane uses: ``packet_rate * packet_cpu_us / 1e6`` approaching 1.0
        means the modeled host is saturating -- the interrupt-livelock
        regime of Section 4.  ``qualifying`` adds the per-tuple work of a
        packet that passes the LFTA filter.
        """
        us = (self.interrupt_us + self.libpcap_read_us + self.lfta_filter_us
              + caplen * self.copy_per_byte_us)
        if qualifying:
            us += self.tuple_emit_us + self.hfta_tuple_us
        return us
