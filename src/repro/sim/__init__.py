"""The virtual-time performance substrate.

The paper's Section 4 experiment ran on a 733 MHz host with a Tigon
gigabit NIC; this package replaces that testbed with a calibrated
discrete-event model so the experiment's *shape* -- who wins, where the
2% loss knee falls, where interrupt livelock sets in -- is reproducible
on any machine:

* :mod:`repro.sim.cost_model` -- per-operation costs (microseconds)
* :mod:`repro.sim.host` -- the host CPU: interrupt context preempts
  packet processing, producing livelock under overload
* :mod:`repro.sim.disk` -- the dump-to-disk path with long,
  unpredictable flush stalls
* :mod:`repro.sim.capture` -- the four capture stacks of Section 4 and
  the loss-knee search harness
"""

from repro.sim.cost_model import CostModel
from repro.sim.host import HostModel
from repro.sim.disk import DiskModel
from repro.sim.capture import (
    CaptureConfig,
    CaptureResult,
    CaptureSimulation,
    find_loss_knee,
)

__all__ = [
    "CostModel",
    "HostModel",
    "DiskModel",
    "CaptureConfig",
    "CaptureResult",
    "CaptureSimulation",
    "find_loss_knee",
]
