"""The dump-to-disk capture path (option 1 of Section 4).

"Option 1, dumping the data to disk, had by far the worst performance
[...] Touching disk kills performance not because it is slow but
because it generates long and unpredictable delays throughout the
system."

The model charges a per-packet and per-byte write cost, plus a long
stall every time the write buffer fills -- during the stall the receive
queue backs up and bursts of packets are lost.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class DiskStats:
    packets: int = 0
    bytes_written: int = 0
    stalls: int = 0


class DiskModel:
    """Per-packet service times for the pcap-dump write path."""

    def __init__(self, packet_us: float, per_byte_us: float,
                 stall_us: float, stall_every_bytes: int) -> None:
        self.packet_us = packet_us
        self.per_byte_us = per_byte_us
        self.stall_us = stall_us
        self.stall_every_bytes = stall_every_bytes
        self.stats = DiskStats()
        self._since_stall = 0

    def write_cost_us(self, nbytes: int) -> float:
        """Service time for writing one captured packet of ``nbytes``."""
        self.stats.packets += 1
        self.stats.bytes_written += nbytes
        self._since_stall += nbytes
        cost = self.packet_us + nbytes * self.per_byte_us
        if self._since_stall >= self.stall_every_bytes:
            self._since_stall -= self.stall_every_bytes
            self.stats.stalls += 1
            cost += self.stall_us
        return cost
