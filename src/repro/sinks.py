"""Sink nodes: stream query output out of the engine.

Applications usually subscribe and poll; long-running monitors instead
attach a sink node so results land on disk continuously (the deployed
Gigascope fed downstream collectors the same way).  Sinks are ordinary
query nodes: ``engine.add_node(sink)`` + ``engine.rts.connect``.

* :class:`CsvSink` -- one CSV row per tuple.
* :class:`JsonlSink` -- one JSON object per tuple, keyed by column name.
"""

from __future__ import annotations

import csv
import json
from typing import IO, Optional

from repro.core.query_node import QueryNode
from repro.gsql.schema import StreamSchema
from repro.gsql.types import IP
from repro.net.packet import int_to_ip


class _RecoverableSink(QueryNode):
    """Recovery support shared by the file sinks (DESIGN section 11).

    A sink's side effect (the written line) cannot be rolled back by a
    checkpoint restore, so recovery replay must not re-write rows that
    already reached the file.  The supervisor calls
    :meth:`begin_replay` with the counters captured at the crash; the
    sink skips exactly the rows the journal re-delivers that were
    already written, keeping output exactly-once.
    """

    def __init__(self, name: str, schema: StreamSchema) -> None:
        super().__init__(name, schema)
        self.rows_written = 0
        self._replay_skip = 0

    def _skip_replayed(self) -> bool:
        """True if this row was already written before the crash."""
        if self._replay_skip:
            self._replay_skip -= 1
            self.rows_written += 1
            return True
        return False

    def snapshot_state(self) -> dict:
        state = super().snapshot_state()
        state["rows_written"] = self.rows_written
        return state

    def restore_state(self, state: dict) -> None:
        super().restore_state(state)
        self.rows_written = state["rows_written"]
        self._replay_skip = 0

    def recovery_marks(self) -> dict:
        marks = super().recovery_marks()
        marks["rows_written"] = self.rows_written
        return marks

    def begin_replay(self, crash_marks: dict) -> None:
        self._replay_skip = crash_marks["rows_written"] - self.rows_written


class CsvSink(_RecoverableSink):
    """Write every received tuple as a CSV row (with a header)."""

    def __init__(self, name: str, schema: StreamSchema, fileobj: IO[str],
                 pretty_ip: bool = False, flush_every: int = 1000) -> None:
        super().__init__(name, schema)
        self._file = fileobj
        self._writer = csv.writer(fileobj)
        self._writer.writerow(schema.names)
        self.flush_every = flush_every
        self._formatters = []
        for attribute in schema.attributes:
            if pretty_ip and attribute.gsql_type is IP:
                self._formatters.append(int_to_ip)
            elif attribute.gsql_type.python_type is bytes:
                self._formatters.append(
                    lambda v: v.decode("latin-1", "replace")
                    if isinstance(v, bytes) else v
                )
            else:
                self._formatters.append(None)

    def on_tuple(self, row: tuple, input_index: int) -> None:
        if self._skip_replayed():
            return
        rendered = [
            fn(value) if fn is not None else value
            for fn, value in zip(self._formatters, row)
        ]
        self._writer.writerow(rendered)
        self.rows_written += 1
        if self.rows_written % self.flush_every == 0:
            self._file.flush()

    def flush(self) -> None:
        self._file.flush()


class JsonlSink(_RecoverableSink):
    """Write every received tuple as one JSON object per line."""

    def __init__(self, name: str, schema: StreamSchema, fileobj: IO[str],
                 flush_every: int = 1000) -> None:
        super().__init__(name, schema)
        self._file = fileobj
        self._names = schema.names
        self.flush_every = flush_every

    def on_tuple(self, row: tuple, input_index: int) -> None:
        if self._skip_replayed():
            return
        record = {}
        for name, value in zip(self._names, row):
            if isinstance(value, bytes):
                value = value.decode("latin-1", "replace")
            record[name] = value
        self._file.write(json.dumps(record) + "\n")
        self.rows_written += 1
        if self.rows_written % self.flush_every == 0:
            self._file.flush()

    def flush(self) -> None:
        self._file.flush()


def attach_sink(engine, query_name: str, sink_cls, fileobj: IO[str],
                **kwargs) -> QueryNode:
    """Create a sink for ``query_name``'s output and wire it in."""
    schema = engine.schema_of(query_name)
    sink = sink_cls(f"{query_name}_sink", schema, fileobj, **kwargs)
    engine.rts.register_node(sink)
    engine.rts.connect(sink, [query_name])
    return sink
