"""The order-preserving merge (union) operator (paper Section 2.2).

"The merge operator allows us to combine streams from multiple sources
into a single stream.  This operator is surprisingly important -- we
implemented it before the join operator."  Optical links are simplex:
seeing a full logical link means monitoring two interfaces and merging.

The merge emits tuples in nondecreasing order of the merge attribute.
An input with an empty buffer blocks emission until either a tuple or a
punctuation raises its low-water mark past the candidate -- this is
exactly the blocking problem of Section 3, and why the heartbeat
mechanism exists.  When a buffer grows past a threshold while another
input is silent, the node requests an on-demand heartbeat.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.core.heartbeat import Punctuation
from repro.core.query_node import QueryNode
from repro.gsql.planner import HftaPlan
from repro.gsql.semantic import AnalyzedQuery

BLOCK_SUSPECT_DEPTH = 1024


class MergeNode(QueryNode):
    """K-way merge preserving the ordering of the merge attribute."""

    def __init__(self, plan: HftaPlan, analyzed: AnalyzedQuery,
                 buffer_capacity: Optional[int] = None) -> None:
        super().__init__(plan.name, plan.output_schema)
        self.plan = plan
        self._slots = [slot for (_, slot) in plan.merge_slots]
        self._bands = []
        for position, (_, slot) in enumerate(plan.merge_slots):
            attribute = plan.input_schemas[position].attributes[slot]
            if not attribute.ordering.is_increasing:
                raise ValueError(
                    f"merge column {attribute.name} must be increasing "
                    "(decreasing merges are not implemented)"
                )
            self._bands.append(attribute.ordering.effective_band)
        count = len(plan.inputs)
        self._buffers: List[List[tuple]] = [[] for _ in range(count)]
        self._low_water = [-math.inf] * count
        self._done = [False] * count
        self.buffer_capacity = buffer_capacity
        self.dropped = 0
        # Output slot of the merge attribute (schemas match; use input 0's).
        self._out_slot = self._slots[0]

    @property
    def buffered(self) -> int:
        return sum(len(buffer) for buffer in self._buffers)

    #: Batched dispatch uses the base-class per-row loop: merge must
    #: drain after EVERY tuple -- deferring the drain to the end of a
    #: batch would re-order ties on the merge attribute (a deferred
    #: drain picks the lowest input index; arrival order is correct).
    #: The win here is only the hoisted dispatch/type checks.
    accepts_batch = True

    def on_tuple(self, row: tuple, input_index: int) -> None:
        buffer = self._buffers[input_index]
        if self.buffer_capacity is not None and len(buffer) >= self.buffer_capacity:
            # Merge buffer overflow -- the Section 3 failure mode when a
            # bursty stream outruns a quiet one and no heartbeats arrive.
            self.dropped += 1
            return
        buffer.append(row)
        value = row[self._slots[input_index]]
        advance = value - self._bands[input_index]
        if advance > self._low_water[input_index]:
            self._low_water[input_index] = advance
        if (len(buffer) > BLOCK_SUSPECT_DEPTH
                and any(not b and not d for b, d in zip(self._buffers, self._done))):
            self.request_heartbeat()
        self._drain()

    def on_punctuation(self, punctuation: Punctuation, input_index: int) -> None:
        bound = punctuation.bound_for(self._slots[input_index])
        if bound is not None and bound > self._low_water[input_index]:
            self._low_water[input_index] = bound
            self._drain()
            self._emit_floor_punctuation()

    def _min_of(self, input_index: int):
        """(value, position) of the smallest buffered tuple of one input."""
        buffer = self._buffers[input_index]
        slot = self._slots[input_index]
        if self._bands[input_index] == 0:
            # Monotone input: the head is the minimum.
            return buffer[0][slot], 0
        best_pos = 0
        best = buffer[0][slot]
        for position in range(1, len(buffer)):
            value = buffer[position][slot]
            if value < best:
                best, best_pos = value, position
        return best, best_pos

    def _drain(self) -> None:
        """Emit while the global minimum is certainly known."""
        while True:
            candidate_value = None
            candidate_input = -1
            candidate_pos = -1
            floor = math.inf  # what silent inputs might still produce
            for input_index, buffer in enumerate(self._buffers):
                if buffer:
                    value, position = self._min_of(input_index)
                    if candidate_value is None or value < candidate_value:
                        candidate_value = value
                        candidate_input = input_index
                        candidate_pos = position
                elif not self._done[input_index]:
                    floor = min(floor, self._low_water[input_index])
            if candidate_value is None or candidate_value > floor:
                return
            row = self._buffers[candidate_input].pop(candidate_pos)
            self.emit(row)
        # unreachable

    def _emit_floor_punctuation(self) -> None:
        floor = math.inf
        for input_index, buffer in enumerate(self._buffers):
            if buffer:
                value, _ = self._min_of(input_index)
                floor = min(floor, value)
            elif not self._done[input_index]:
                floor = min(floor, self._low_water[input_index])
        if not math.isinf(floor):
            self.emit_punctuation(Punctuation({self._out_slot: floor}))

    def on_flush(self, input_index: int) -> None:
        self._done[input_index] = True
        self._low_water[input_index] = math.inf
        self._drain()
        if all(self._done) and not self.flushed:
            self.flushed = True
            self.emit_flush()

    # -- checkpoint/restore (DESIGN section 11) ----------------------------
    def snapshot_state(self) -> dict:
        state = super().snapshot_state()
        state["buffers"] = [list(buffer) for buffer in self._buffers]
        state["low_water"] = list(self._low_water)
        state["done"] = list(self._done)
        state["dropped"] = self.dropped
        return state

    def restore_state(self, state: dict) -> None:
        super().restore_state(state)
        self._buffers = [list(buffer) for buffer in state["buffers"]]
        self._low_water = list(state["low_water"])
        self._done = list(state["done"])
        self.dropped = state["dropped"]

    def flush(self) -> None:
        """Force out everything buffered, in merge order."""
        for done in range(len(self._done)):
            self._done[done] = True
            self._low_water[done] = math.inf
        self._drain()
