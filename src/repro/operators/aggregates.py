"""Aggregate state machinery shared by LFTA and HFTA aggregation.

Gigascope's aggregate query splitting works like sub-/super-aggregates
in data-cube computation: the LFTA maintains *partial* states that the
HFTA later *combines*.  For each GSQL aggregate this module defines

* ``init/update`` -- per-tuple accumulation,
* ``partials`` -- the flat slot encoding emitted by an LFTA,
* ``combine`` -- folding a partial encoding into a state, and
* ``final`` -- the finished value.

COUNT combines by summing counts; SUM by summing; MIN/MAX by min/max;
AVG carries a (sum, count) pair across the split.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.gsql.ast_nodes import AggCall


def partial_layout(aggregates: Sequence[AggCall]) -> List[int]:
    """Number of partial slots each aggregate occupies (AVG needs two)."""
    return [2 if agg.name == "AVG" else 1 for agg in aggregates]


class AggregateOps:
    """Executes a list of aggregates over group state lists.

    ``arg_fns`` holds one compiled argument-extractor per aggregate
    (``None`` for COUNT(*)), each taking the input tuple.
    """

    def __init__(self, aggregates: Sequence[AggCall],
                 arg_fns: Sequence[Optional[Callable[[tuple], Any]]]) -> None:
        if len(aggregates) != len(arg_fns):
            raise ValueError("one argument function per aggregate required")
        self.aggregates = list(aggregates)
        self.arg_fns = list(arg_fns)
        self.layout = partial_layout(aggregates)
        self.partial_width = sum(self.layout)

    # -- per-tuple accumulation ------------------------------------------
    def new_state(self) -> list:
        state = []
        for agg in self.aggregates:
            if agg.name == "COUNT":
                state.append(0)
            elif agg.name == "SUM":
                state.append(0)
            elif agg.name == "AVG":
                state.append([0.0, 0])
            else:  # MIN / MAX start undefined until the first update
                state.append(None)
        return state

    def update(self, state: list, row: tuple) -> None:
        """Fold one raw input tuple into ``state``."""
        for index, agg in enumerate(self.aggregates):
            arg_fn = self.arg_fns[index]
            name = agg.name
            if name == "COUNT":
                state[index] += 1
                continue
            value = arg_fn(row)
            if name == "SUM":
                state[index] += value
            elif name == "MIN":
                if state[index] is None or value < state[index]:
                    state[index] = value
            elif name == "MAX":
                if state[index] is None or value > state[index]:
                    state[index] = value
            elif name == "AVG":
                pair = state[index]
                pair[0] += value
                pair[1] += 1

    def update_weighted(self, state: list, row: tuple, weight: float) -> None:
        """Fold one sampled tuple with a Horvitz-Thompson weight.

        Used by the overload control plane: when an LFTA keeps a packet
        with probability ``p``, the kept tuple carries ``weight = 1/p``
        so additive aggregates stay unbiased under shedding.  COUNT adds
        ``weight``, SUM adds ``value * weight``, AVG accumulates the
        weighted sum over total weight.  MIN/MAX are order statistics --
        no reweighting can correct them, so they fold unweighted (the
        sample extremum is the best available estimate).
        """
        for index, agg in enumerate(self.aggregates):
            arg_fn = self.arg_fns[index]
            name = agg.name
            if name == "COUNT":
                state[index] += weight
                continue
            value = arg_fn(row)
            if name == "SUM":
                state[index] += value * weight
            elif name == "MIN":
                if state[index] is None or value < state[index]:
                    state[index] = value
            elif name == "MAX":
                if state[index] is None or value > state[index]:
                    state[index] = value
            elif name == "AVG":
                pair = state[index]
                pair[0] += value * weight
                pair[1] += weight
            # No other aggregate names exist (the semantic layer
            # rejects unknown aggregates before planning).

    # -- the partial encoding (LFTA output slots) ---------------------------
    def partials(self, state: list) -> Tuple[Any, ...]:
        """Flatten ``state`` into the LFTA partial-slot encoding."""
        out: List[Any] = []
        for index, agg in enumerate(self.aggregates):
            if agg.name == "AVG":
                out.extend(state[index])
            else:
                out.append(state[index])
        return tuple(out)

    def combine(self, state: list, partial_slots: Sequence[Any]) -> None:
        """Fold one partial encoding (a superaggregate step) into ``state``."""
        cursor = 0
        for index, agg in enumerate(self.aggregates):
            name = agg.name
            if name == "AVG":
                pair = state[index]
                pair[0] += partial_slots[cursor]
                pair[1] += partial_slots[cursor + 1]
                cursor += 2
                continue
            value = partial_slots[cursor]
            cursor += 1
            if name in ("COUNT", "SUM"):
                state[index] += value
            elif name == "MIN":
                if state[index] is None or (value is not None and value < state[index]):
                    state[index] = value
            elif name == "MAX":
                if state[index] is None or (value is not None and value > state[index]):
                    state[index] = value

    # -- results ----------------------------------------------------------
    def final_values(self, state: list) -> Tuple[Any, ...]:
        """One finished value per aggregate, in declaration order."""
        out: List[Any] = []
        for index, agg in enumerate(self.aggregates):
            if agg.name == "AVG":
                total, count = state[index]
                out.append(total / count if count else 0.0)
            else:
                out.append(state[index])
        return tuple(out)
