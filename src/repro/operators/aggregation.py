"""The HFTA aggregation operator with ordered group flushing.

"The group key must contain at least one ordered attribute.  When a
tuple arrives for aggregation whose ordered attribute is larger than
that in any current group, we can deduce that all of the current groups
are closed and will receive no further updates in the future.  All of
the closed groups are flushed to the output."  (Section 2.1)

Banded-increasing keys keep a slack of the band width before closing.
The node either aggregates raw tuples (full mode) or combines the
partial aggregates an LFTA emits (superaggregate mode), completing the
sub/super-aggregate split of Section 3.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.heartbeat import Punctuation
from repro.core.query_node import QueryNode
from repro.gsql.codegen import ExprCompiler
from repro.gsql.planner import HftaPlan
from repro.gsql.semantic import AnalyzedQuery, KeyRef
from repro.operators.aggregates import AggregateOps
from repro.operators.base import key_bound_fn


class AggregationNode(QueryNode):
    """Group-by/aggregation over one input stream."""

    def __init__(self, plan: HftaPlan, analyzed: AnalyzedQuery,
                 compiler: ExprCompiler, seed: int = 0) -> None:
        super().__init__(plan.name, plan.output_schema)
        self.plan = plan
        slot_maps = tuple(plan.slot_maps)
        self.from_partials = plan.final_from_partials
        if plan.sample_rate is not None and not self.from_partials:
            # Seeded registry stream, not hash(name): str hash() is
            # process-randomized and breaks deterministic replay.
            from repro.determinism import rng_for
            self._sample_rate = plan.sample_rate
            self._sample_rng = rng_for(seed, "hfta.sample", plan.name)
        else:
            self._sample_rate = None
            self._sample_rng = None
        self._predicate = compiler.predicate_fn(plan.predicates, slot_maps)
        arg_fns = []
        if self.from_partials:
            self._key_width = len(analyzed.group_exprs)
            self._key_fn = None
            arg_fns = [None] * len(plan.aggregates)
        else:
            self._key_width = len(plan.group_exprs)
            self._key_fn = compiler.tuple_fn(plan.group_exprs, slot_maps)
            self._batch_key = compiler.batch_key_fn(
                plan.predicates, plan.group_exprs, slot_maps)
            arg_fns = [
                compiler.scalar_fn(agg.arg, slot_maps) if agg.arg is not None else None
                for agg in plan.aggregates
            ]
        self.aggregate_ops = AggregateOps(plan.aggregates, arg_fns)
        self._post_select = compiler.post_tuple_fn(plan.post_select_exprs)
        self._having = compiler.post_predicate_fn(plan.having)
        self._window_index = plan.window_key_index
        self._window_band = plan.window_key_band
        self._groups: Dict[tuple, list] = {}
        self._high_water = None
        if self.from_partials:
            identity = (
                (0, plan.window_key_index, lambda b: b)
                if plan.window_key_index >= 0 else None
            )
            self._key_bound = identity
        else:
            self._key_bound = key_bound_fn(
                plan.group_exprs, plan.window_key_index, analyzed, slot_maps,
                functions=compiler.functions,
            )
        # Which output slot carries the window key, for outgoing punctuation.
        self._window_out_slot = -1
        for slot, expr in enumerate(plan.post_select_exprs):
            if isinstance(expr, KeyRef) and expr.index == plan.window_key_index:
                self._window_out_slot = slot
                break
        #: shard-worker mode: emit ``key + partials(state)`` rows instead
        #: of finalized output (see :meth:`enable_partial_output`)
        self._emit_partials = False
        self.groups_emitted = 0

    def enable_partial_output(self) -> None:
        """Switch the node into superaggregate-producer mode.

        Closed groups are emitted as ``key + partials(state)`` rows --
        the same wire shape an LFTA's partial aggregates have -- with
        HAVING and the post-select deferred to whoever combines the
        partials (the shard-merge parent, see ``repro.shard``).  The
        outgoing punctuation slot moves to the window key's position
        *inside the key*, which is where a ``final_from_partials``
        combiner expects its bound.
        """
        self._emit_partials = True
        if self._window_index >= 0:
            self._window_out_slot = self._window_index

    @property
    def open_groups(self) -> int:
        return len(self._groups)

    def on_tuple(self, row: tuple, input_index: int) -> None:
        if (self._sample_rate is not None
                and self._sample_rng.random() >= self._sample_rate):
            self.stats.discarded += 1
            return
        if not self._predicate(row):
            self.stats.discarded += 1
            return
        if self.from_partials:
            key = row[: self._key_width]
            partial_slots = row[self._key_width :]
        else:
            key = self._key_fn(row)
            if key is None:
                self.stats.discarded += 1
                return
            partial_slots = None
        if self._window_index >= 0:
            window_value = key[self._window_index]
            if self._high_water is None or window_value > self._high_water:
                self._high_water = window_value
                self._flush_below(window_value - self._window_band)
        state = self._groups.get(key)
        if state is None:
            state = self.aggregate_ops.new_state()
            self._groups[key] = state
        if self.from_partials:
            self.aggregate_ops.combine(state, partial_slots)
        else:
            self.aggregate_ops.update(state, row)

    #: batched dispatch from pump() is worthwhile here (DESIGN section 10)
    accepts_batch = True

    def on_tuple_batch(self, rows, input_index: int) -> None:
        """The scalar :meth:`on_tuple` pipeline with lookups hoisted.

        Predicate/keying run through one fused generated function (or
        the per-row scalar chain in partials mode, where the key is a
        plain slice); the group-table update loop matches the scalar
        order exactly, so window flushes fire at the same rows.
        """
        if self._sample_rate is not None:
            rate = self._sample_rate
            rng = self._sample_rng.random
            kept = [row for row in rows if rng() < rate]
            self.stats.discarded += len(rows) - len(kept)
            rows = kept
        pairs = []
        if self.from_partials:
            predicate = self._predicate
            key_width = self._key_width
            append = pairs.append
            dropped = 0
            for row in rows:
                if not predicate(row):
                    dropped += 1
                    continue
                append((row[:key_width], row))
        else:
            dropped = self._batch_key(rows, pairs.append)
        if dropped:
            self.stats.discarded += dropped
        if not pairs:
            return
        window_index = self._window_index
        band = self._window_band
        groups = self._groups
        new_state = self.aggregate_ops.new_state
        combine = self.aggregate_ops.combine
        update = self.aggregate_ops.update
        from_partials = self.from_partials
        key_width = self._key_width
        for key, row in pairs:
            if window_index >= 0:
                window_value = key[window_index]
                high_water = self._high_water
                if high_water is None or window_value > high_water:
                    self._high_water = window_value
                    self._flush_below(window_value - band)
            state = groups.get(key)
            if state is None:
                state = new_state()
                groups[key] = state
            if from_partials:
                combine(state, row[key_width:])
            else:
                update(state, row)

    def _flush_below(self, low_water) -> None:
        index = self._window_index
        closed = [key for key in self._groups if key[index] < low_water]
        # Full-key order, window first: the emitted sequence becomes the
        # global (window, key) sort however arrivals were batched, so a
        # sharded run's combined output matches the single-process run
        # byte-for-byte (DESIGN section 15).  Dict insertion order --
        # the old tie-break -- differs per shard by construction.
        closed.sort(key=lambda key: (key[index], key))
        for key in closed:
            self._emit_group(key, self._groups.pop(key))
        if self._window_out_slot >= 0:
            self.emit_punctuation(Punctuation({self._window_out_slot: low_water}))

    def _emit_group(self, key: tuple, state: list) -> None:
        if self._emit_partials:
            # Superaggregate-producer mode: ship the combinable state;
            # HAVING/post-select belong to the combiner of the partials.
            self.groups_emitted += 1
            self.emit(key + self.aggregate_ops.partials(state))
            return
        values = self.aggregate_ops.final_values(state)
        if not self._having(key, values):
            self.stats.discarded += 1
            return
        out = self._post_select(key, values)
        if out is None:
            self.stats.discarded += 1
            return
        self.groups_emitted += 1
        self.emit(out)

    def on_punctuation(self, punctuation: Punctuation, input_index: int) -> None:
        if self._key_bound is None or self._window_index < 0:
            return
        _source, slot, bound_fn = self._key_bound
        bound = punctuation.bound_for(slot)
        if bound is None:
            return
        low_water = bound_fn(bound)
        if self._high_water is None or low_water > self._high_water - self._window_band:
            self._flush_below(low_water)

    # -- checkpoint/restore (DESIGN section 11) ----------------------------
    def snapshot_state(self) -> dict:
        state = super().snapshot_state()
        state["groups"] = dict(self._groups)
        state["high_water"] = self._high_water
        state["groups_emitted"] = self.groups_emitted
        state["sample_rng"] = (self._sample_rng.getstate()
                               if self._sample_rng is not None else None)
        return state

    def restore_state(self, state: dict) -> None:
        super().restore_state(state)
        self._groups = dict(state["groups"])
        self._high_water = state["high_water"]
        self.groups_emitted = state["groups_emitted"]
        if self._sample_rng is not None and state["sample_rng"] is not None:
            self._sample_rng.setstate(state["sample_rng"])

    def flush(self) -> None:
        """Emit every remaining group (explicit flush / end of stream)."""
        keys = list(self._groups)
        if self._window_index >= 0:
            index = self._window_index
            keys.sort(key=lambda key: (key[index], key))
        for key in keys:
            self._emit_group(key, self._groups.pop(key))
