"""Shared operator helpers: punctuation bound transforms.

When a punctuation token promises ``t[slot] >= b`` on an operator's
input, the operator can often promise something about its *output*
ordered attributes too -- exactly the ordering-imputation reasoning of
Section 2.1, applied to lower bounds at run time.  This module derives
the transform functions for the expression shapes whose ordering the
analyzer tracks: a bare column, ``col op const`` for monotone ops, and
integer bucketing ``col / const``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.gsql.ast_nodes import BinaryOp, Column, Expr, FuncCall, Literal
from repro.gsql.semantic import AnalyzedQuery
from repro.gsql.types import FLOAT

BoundFn = Callable[[float], float]
SlotMap = Optional[Dict[int, int]]

# key: (source_index, input_slot); value: list of (output_slot, transform)
TransformTable = Dict[Tuple[int, int], List[Tuple[int, BoundFn]]]


def _expr_bound_fn(expr: Expr, analyzed: AnalyzedQuery,
                   slot_maps: Sequence[SlotMap],
                   functions=None) -> Optional[Tuple[int, int, BoundFn]]:
    """(source, input_slot, monotone bound transform) for ``expr``, if any."""
    if isinstance(expr, Column):
        bound = analyzed.binding_of(expr)
        if bound is None:
            return None
        slot_map = (
            slot_maps[bound.source_index]
            if bound.source_index < len(slot_maps) else None
        )
        slot = bound.attr_index if slot_map is None else slot_map[bound.attr_index]
        return bound.source_index, slot, lambda b: b
    if isinstance(expr, BinaryOp) and isinstance(expr.right, Literal):
        constant = expr.right.value
        if not isinstance(constant, (int, float)) or isinstance(constant, bool):
            return None
        inner = _expr_bound_fn(expr.left, analyzed, slot_maps, functions)
        if inner is None:
            return None
        source, slot, fn = inner
        if expr.op == "+":
            return source, slot, lambda b, f=fn, c=constant: f(b) + c
        if expr.op == "-":
            return source, slot, lambda b, f=fn, c=constant: f(b) - c
        if expr.op == "*" and constant > 0:
            return source, slot, lambda b, f=fn, c=constant: f(b) * c
        if expr.op == "/" and constant > 0:
            left_type = analyzed.types.get(id(expr.left))
            if left_type is FLOAT or isinstance(constant, float):
                return source, slot, lambda b, f=fn, c=constant: f(b) / c
            return source, slot, lambda b, f=fn, c=constant: int(f(b)) // int(c)
    if isinstance(expr, FuncCall) and expr.args and functions is not None:
        # A monotone nondecreasing function maps lower bounds to lower
        # bounds: just apply it.
        try:
            spec = functions.get(expr.name)
        except Exception:
            return None
        if spec.order_preserving and not spec.handle_params:
            inner = _expr_bound_fn(expr.args[0], analyzed, slot_maps, functions)
            if inner is not None:
                source, slot, fn = inner
                impl = spec.implementation
                return source, slot, lambda b, f=fn, g=impl: g(f(b))
    return None


def output_bound_transforms(exprs: Sequence[Expr], analyzed: AnalyzedQuery,
                            output_schema, slot_maps: Sequence[SlotMap] = (None,),
                            functions=None) -> TransformTable:
    """Punctuation transforms for a projection's output expressions.

    Maps each usable (source, input slot) to the output slots that carry
    a monotone function of it, with the bound transform to apply.
    ``output_schema`` supplies the imputed orderings of the outputs
    (the LFTA projection schema differs from the query output schema).
    """
    table: TransformTable = {}
    for output_slot, expr in enumerate(exprs):
        # Only increasing output attributes make usable promises.
        if not output_schema.attributes[output_slot].ordering.is_increasing:
            continue
        derived = _expr_bound_fn(expr, analyzed, slot_maps, functions)
        if derived is None:
            continue
        source, slot, fn = derived
        table.setdefault((source, slot), []).append((output_slot, fn))
    return table


def apply_transforms(table: TransformTable, source: int,
                     bounds: Dict[int, float]) -> Dict[int, float]:
    """Translate input punctuation ``bounds`` into output bounds."""
    out: Dict[int, float] = {}
    for slot, value in bounds.items():
        for output_slot, fn in table.get((source, slot), ()):
            candidate = fn(value)
            if output_slot not in out or candidate > out[output_slot]:
                out[output_slot] = candidate
    return out


def key_bound_fn(group_exprs: Sequence[Expr], window_key_index: int,
                 analyzed: AnalyzedQuery,
                 slot_maps: Sequence[SlotMap] = (None,),
                 functions=None) -> Optional[Tuple[int, int, BoundFn]]:
    """Transform from an input-slot bound to a window-key bound.

    Used by aggregation: a promise on the raw timestamp becomes a
    promise on e.g. the ``time/60`` bucket key.
    """
    if window_key_index < 0:
        return None
    return _expr_bound_fn(group_exprs[window_key_index], analyzed, slot_maps,
                          functions)
