"""The HFTA selection/projection operator.

Stateless: evaluates the residual predicates (the ones too expensive
for the LFTA, e.g. regex matching) and builds the output tuple.
Punctuation passes through, translated onto the output attributes that
carry a monotone function of the promised input attribute.
"""

from __future__ import annotations

from repro.core.heartbeat import Punctuation
from repro.core.query_node import QueryNode
from repro.gsql.codegen import ExprCompiler
from repro.gsql.planner import HftaPlan
from repro.gsql.semantic import AnalyzedQuery
from repro.operators.base import apply_transforms, output_bound_transforms


class SelectionNode(QueryNode):
    """Selection and projection over one input stream."""

    def __init__(self, plan: HftaPlan, analyzed: AnalyzedQuery,
                 compiler: ExprCompiler) -> None:
        super().__init__(plan.name, plan.output_schema)
        self.plan = plan
        slot_maps = tuple(plan.slot_maps)
        if plan.sample_rate is not None:
            import random
            self._sample_rate = plan.sample_rate
            self._sample_rng = random.Random(hash(plan.name) & 0xFFFFFFFF)
        else:
            self._sample_rate = None
            self._sample_rng = None
        self._predicate = compiler.predicate_fn(plan.predicates, slot_maps)
        self._project = compiler.tuple_fn(plan.select_exprs, slot_maps)
        self._batch_select = compiler.batch_select_fn(
            plan.predicates, plan.select_exprs, slot_maps)
        self._transforms = output_bound_transforms(
            plan.select_exprs, analyzed, plan.output_schema, slot_maps,
            functions=compiler.functions,
        )

    #: batched dispatch from pump() is worthwhile here (DESIGN section 10)
    accepts_batch = True

    def on_tuple_batch(self, rows, input_index: int) -> None:
        if self._sample_rate is not None:
            rate = self._sample_rate
            rng = self._sample_rng.random
            kept = [row for row in rows if rng() < rate]
            self.stats.discarded += len(rows) - len(kept)
            rows = kept
        out = []
        dropped = self._batch_select(rows, out.append)
        if dropped:
            self.stats.discarded += dropped
        self.emit_many(out)

    def on_tuple(self, row: tuple, input_index: int) -> None:
        if (self._sample_rate is not None
                and self._sample_rng.random() >= self._sample_rate):
            self.stats.discarded += 1
            return
        if not self._predicate(row):
            self.stats.discarded += 1
            return
        out = self._project(row)
        if out is None:
            self.stats.discarded += 1
            return
        self.emit(out)

    def on_punctuation(self, punctuation: Punctuation, input_index: int) -> None:
        out = apply_transforms(self._transforms, 0, punctuation.bounds)
        if out:
            self.emit_punctuation(Punctuation(out))
