"""TCP stream reassembly as a user-written query node.

The paper lists reconstructing TCP sessions among the protocol
simulations network analyses require ("Many analyses require that a
network protocol be simulated, e.g. IP defragmentation or
reconstructing TCP sessions") and names subsequence extraction as
future work.  This node delivers per-flow, in-order payload chunks as a
stream downstream GSQL queries can consume.

Output schema::

    time UINT (increasing), srcIP IP, destIP IP, srcPort UINT,
    destPort UINT, offset UINT, data STRING
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.core.query_node import QueryNode
from repro.gsql.ordering import Ordering
from repro.gsql.schema import Attribute, PacketView, StreamSchema
from repro.gsql.types import IP, STRING, UINT
from repro.net.packet import CapturedPacket

FlowKey = Tuple[int, int, int, int]


@dataclass
class _FlowState:
    next_seq: int  # next expected sequence number
    base_seq: int  # ISN + 1, for computing stream offsets
    out_of_order: Dict[int, bytes] = field(default_factory=dict)
    delivered: int = 0


def reassembly_schema(name: str) -> StreamSchema:
    return StreamSchema(
        name,
        [
            Attribute("time", UINT, Ordering.increasing()),
            Attribute("srcIP", IP),
            Attribute("destIP", IP),
            Attribute("srcPort", UINT),
            Attribute("destPort", UINT),
            Attribute("offset", UINT, Ordering.in_group(
                "srcIP", "destIP", "srcPort", "destPort")),
            Attribute("data", STRING),
        ],
    )


class TcpReassemblyNode(QueryNode):
    """Deliver TCP payload bytes in order, one chunk per contiguous run."""

    def __init__(self, name: str, max_out_of_order: int = 256) -> None:
        super().__init__(name, reassembly_schema(name))
        self.max_out_of_order = max_out_of_order
        self._flows: Dict[FlowKey, _FlowState] = {}
        self.chunks_emitted = 0
        self.segments_dropped = 0

    def accept_packet(self, packet: CapturedPacket) -> None:
        view = PacketView(packet)
        tcp = view.tcp
        if tcp is None or view.ip is None:
            return
        key: FlowKey = (view.ip.src, view.ip.dst, tcp.src_port, tcp.dst_port)
        if tcp.syn and not tcp.ack_flag:
            self._flows[key] = _FlowState(
                next_seq=(tcp.seq + 1) & 0xFFFFFFFF,
                base_seq=(tcp.seq + 1) & 0xFFFFFFFF,
            )
            return
        flow = self._flows.get(key)
        if flow is None:
            payload = view.payload or b""
            # Mid-stream pickup: adopt this segment as the start.
            flow = _FlowState(next_seq=tcp.seq, base_seq=tcp.seq)
            self._flows[key] = flow
        payload = view.payload or b""
        if tcp.fin or tcp.rst:
            self._deliver(packet, key, flow, tcp.seq, payload)
            self._flows.pop(key, None)
            return
        if payload:
            self._deliver(packet, key, flow, tcp.seq, payload)

    def _deliver(self, packet: CapturedPacket, key: FlowKey, flow: _FlowState,
                 seq: int, payload: bytes) -> None:
        if not payload:
            return
        if seq == flow.next_seq:
            chunk = bytearray(payload)
            flow.next_seq = (flow.next_seq + len(payload)) & 0xFFFFFFFF
            # Stitch any buffered continuations on.
            while flow.next_seq in flow.out_of_order:
                extra = flow.out_of_order.pop(flow.next_seq)
                chunk.extend(extra)
                flow.next_seq = (flow.next_seq + len(extra)) & 0xFFFFFFFF
            self._emit_chunk(packet, key, flow, bytes(chunk))
        elif _seq_after(seq, flow.next_seq):
            if len(flow.out_of_order) >= self.max_out_of_order:
                self.segments_dropped += 1
                return
            flow.out_of_order.setdefault(seq, payload)
        else:
            self.segments_dropped += 1  # retransmission of delivered data

    def _emit_chunk(self, packet: CapturedPacket, key: FlowKey,
                    flow: _FlowState, data: bytes) -> None:
        src_ip, dst_ip, src_port, dst_port = key
        self.chunks_emitted += 1
        self.emit(
            (
                int(packet.timestamp),
                src_ip,
                dst_ip,
                src_port,
                dst_port,
                flow.delivered,
                data,
            )
        )
        flow.delivered += len(data)

    def flush(self) -> None:
        self._flows.clear()

    # -- checkpoint/restore (DESIGN section 11) ----------------------------
    def snapshot_state(self) -> dict:
        state = super().snapshot_state()
        state["flows"] = {
            key: (flow.next_seq, flow.base_seq, dict(flow.out_of_order),
                  flow.delivered)
            for key, flow in self._flows.items()
        }
        state["chunks_emitted"] = self.chunks_emitted
        state["segments_dropped"] = self.segments_dropped
        return state

    def restore_state(self, state: dict) -> None:
        super().restore_state(state)
        self._flows = {
            key: _FlowState(next_seq=next_seq, base_seq=base_seq,
                            out_of_order=dict(out_of_order),
                            delivered=delivered)
            for key, (next_seq, base_seq, out_of_order, delivered)
            in state["flows"].items()
        }
        self.chunks_emitted = state["chunks_emitted"]
        self.segments_dropped = state["segments_dropped"]

    def on_tuple(self, row: tuple, input_index: int) -> None:
        raise TypeError("TcpReassemblyNode accepts packets, not tuples")


def _seq_after(a: int, b: int) -> bool:
    """True if sequence number ``a`` is after ``b`` (mod 2**32)."""
    return ((a - b) & 0xFFFFFFFF) < 0x80000000
