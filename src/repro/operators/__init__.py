"""Gigascope operators.

LFTA-side (linked into the RTS):

* :mod:`repro.operators.lfta` -- the low-level FTA node: filtering,
  projection, and partial aggregation over a direct-mapped hash table

HFTA-side (separate query nodes):

* :mod:`repro.operators.selection` -- selection/projection
* :mod:`repro.operators.aggregation` -- ordered-flush aggregation,
  either full or combining LFTA partials
* :mod:`repro.operators.join` -- the two-stream window join
* :mod:`repro.operators.merge` -- the order-preserving union

User-written nodes (the paper's escape hatch):

* :mod:`repro.operators.defrag` -- IP defragmentation
* :mod:`repro.operators.tcp_reassembly` -- TCP stream reassembly
"""

from repro.operators.aggregates import AggregateOps, partial_layout
from repro.operators.lfta_table import DirectMappedTable
from repro.operators.lfta import LftaNode
from repro.operators.selection import SelectionNode
from repro.operators.aggregation import AggregationNode
from repro.operators.join import JoinNode
from repro.operators.merge import MergeNode
from repro.operators.defrag import DefragNode
from repro.operators.tcp_reassembly import TcpReassemblyNode

__all__ = [
    "AggregateOps",
    "partial_layout",
    "DirectMappedTable",
    "LftaNode",
    "SelectionNode",
    "AggregationNode",
    "JoinNode",
    "MergeNode",
    "DefragNode",
    "TcpReassemblyNode",
]
