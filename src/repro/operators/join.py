"""The two-stream window join (paper Sections 2.1-2.2).

"The join predicate must contain a constraint on an ordered attribute
from each table which can be used to define a join window.  For
example, B.ts = C.ts, or B.ts >= C.ts - 1 and B.ts <= C.ts + 1."

The implementation is a symmetric band join: each side buffers its
tuples, probes the other side's buffer on arrival, and purges using
low-water marks advanced by tuples and by punctuation.  The window
``left.ts - right.ts in [low, high]`` bounds the state exactly.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from typing import List, Optional

from repro.core.heartbeat import Punctuation
from repro.core.query_node import QueryNode
from repro.gsql.ast_nodes import Column
from repro.gsql.codegen import ExprCompiler
from repro.gsql.planner import HftaPlan
from repro.gsql.semantic import AnalyzedQuery

# Buffer depth at which the join suspects it is blocked on a quiet
# input and asks the manager for an on-demand heartbeat.
BLOCK_SUSPECT_DEPTH = 1024


class JoinNode(QueryNode):
    """Symmetric windowed join of exactly two streams."""

    def __init__(self, plan: HftaPlan, analyzed: AnalyzedQuery,
                 compiler: ExprCompiler) -> None:
        super().__init__(plan.name, plan.output_schema)
        if plan.join_window is None or plan.join_slots is None:
            raise ValueError("join plan is missing its window")
        self.plan = plan
        slot_maps = tuple(plan.slot_maps)
        self._predicate = compiler.predicate_fn(plan.predicates, slot_maps, arity=2)
        self._project = compiler.tuple_fn(plan.select_exprs, slot_maps, arity=2)
        self.low = plan.join_window.low
        self.high = plan.join_window.high
        (_, self._left_slot), (_, self._right_slot) = plan.join_slots
        self._buffers: List[List[tuple]] = [[], []]
        # Parallel ordered-value arrays; monotone inputs append in sorted
        # order, so probes and purges bisect instead of scanning.
        self._values: List[List] = [[], []]
        self._low_water = [-math.inf, -math.inf]
        self._done = [False, False]
        self._bands = [
            plan.input_schemas[0].attributes[self._left_slot].ordering.effective_band,
            plan.input_schemas[1].attributes[self._right_slot].ordering.effective_band,
        ]
        self._out_transforms = self._output_column_sides(analyzed, slot_maps)
        self._last_bounds: dict = {}
        self.pairs_emitted = 0
        # Sorted-output mode: pairs park in a reorder heap keyed by the
        # first window column in the output, released as the watermark
        # advances -- "monotonically increasing requires more buffer
        # space" (Section 2.1).
        self.sorted_output = plan.join_sorted_output
        self._reorder: List[tuple] = []
        self._reorder_seq = 0
        self.reorder_peak = 0
        if self.sorted_output:
            if not self._out_transforms:
                raise ValueError(
                    "sorted join output requires a window column in the "
                    "select list")
            self._sort_side, self._sort_slot = self._out_transforms[0]

    def _output_column_sides(self, analyzed: AnalyzedQuery, slot_maps):
        """Output slots that directly carry a side's ordered attribute."""
        transforms = []
        for out_slot, expr in enumerate(self.plan.select_exprs):
            if not isinstance(expr, Column):
                continue
            bound = analyzed.binding_of(expr)
            if bound is None:
                continue
            slot_map = slot_maps[bound.source_index]
            slot = bound.attr_index if slot_map is None else slot_map[bound.attr_index]
            side_slot = self._left_slot if bound.source_index == 0 else self._right_slot
            if slot == side_slot and bound.attribute.ordering.is_increasing:
                transforms.append((bound.source_index, out_slot))
        return transforms

    @property
    def buffered(self) -> int:
        return len(self._buffers[0]) + len(self._buffers[1])

    def on_tuple(self, row: tuple, input_index: int) -> None:
        side = input_index
        other = 1 - side
        slot = self._left_slot if side == 0 else self._right_slot
        other_slot = self._right_slot if side == 0 else self._left_slot
        value = row[slot]
        advance = value - self._bands[side]
        if advance > self._low_water[side]:
            self._low_water[side] = advance
            self._purge(other)
        # Probe the other side's buffer for the window of joinable values.
        # left - right in [low, high]:
        #   probing right with left value v: r in [v - high, v - low]
        #   probing left with right value v: l in [v + low, v + high]
        if side == 0:
            lo_value, hi_value = value - self.high, value - self.low
        else:
            lo_value, hi_value = value + self.low, value + self.high
        for candidate in self._window_candidates(other, other_slot,
                                                 lo_value, hi_value):
            if side == 0:
                self._try_emit(row, candidate)
            else:
                self._try_emit(candidate, row)
        if not self._done[other]:
            self._buffers[side].append(row)
            if self._bands[side] == 0:
                self._values[side].append(value)
            if (len(self._buffers[side]) > BLOCK_SUSPECT_DEPTH
                    and not self._buffers[other]):
                self.request_heartbeat()
        self._release_sorted()
        self._emit_output_punctuation()

    def _window_candidates(self, side: int, slot: int, lo_value, hi_value):
        """Buffered tuples of ``side`` with ordered value in [lo, hi].

        A monotone input keeps its buffer sorted, so the window is found
        by bisection; banded inputs fall back to a linear scan.
        """
        buffer = self._buffers[side]
        if self._bands[side] == 0:
            values = self._values[side]
            start = bisect_left(values, lo_value)
            stop = bisect_right(values, hi_value)
            return buffer[start:stop]
        return [row for row in buffer if lo_value <= row[slot] <= hi_value]

    def _try_emit(self, left: tuple, right: tuple) -> None:
        if not self._predicate(left, right):
            return
        out = self._project(left, right)
        if out is None:
            self.stats.discarded += 1
            return
        self.pairs_emitted += 1
        if self.sorted_output:
            import heapq
            heapq.heappush(
                self._reorder,
                (out[self._sort_slot], self._reorder_seq, out),
            )
            self._reorder_seq += 1
            if len(self._reorder) > self.reorder_peak:
                self.reorder_peak = len(self._reorder)
        else:
            self.emit(out)

    def _release_sorted(self, final: bool = False) -> None:
        """Emit reordered pairs whose sort key is below the watermark."""
        if not self.sorted_output or not self._reorder:
            return
        import heapq
        if final:
            bound = math.inf
        else:
            bound = self._output_bound(self._sort_side)
            if math.isinf(bound) and bound < 0:
                return
        heap = self._reorder
        while heap and heap[0][0] <= bound:
            _value, _seq, out = heapq.heappop(heap)
            self.emit(out)

    def _output_bound(self, side: int) -> float:
        """Lower bound on future output values of ``side``'s column."""
        lw0, lw1 = self._low_water
        if side == 0:
            return min(lw0, lw1 + self.low)
        return min(lw1, lw0 - self.high)

    def _purge(self, side: int) -> None:
        """Drop buffered tuples of ``side`` that can no longer join."""
        if side == 1:
            # right tuple r joins future left l >= lw0 only if r >= l - high
            threshold = self._low_water[0] - self.high
            slot = self._right_slot
        else:
            # left tuple l joins future right r >= lw1 only if l >= r + low
            threshold = self._low_water[1] + self.low
            slot = self._left_slot
        if math.isinf(threshold) and threshold < 0:
            return
        buffer = self._buffers[side]
        if self._bands[side] == 0:
            values = self._values[side]
            cut = bisect_left(values, threshold)
            if cut:
                self._buffers[side] = buffer[cut:]
                self._values[side] = values[cut:]
            return
        kept = [row for row in buffer if row[slot] >= threshold]
        if len(kept) != len(buffer):
            self._buffers[side] = kept

    def on_punctuation(self, punctuation: Punctuation, input_index: int) -> None:
        slot = self._left_slot if input_index == 0 else self._right_slot
        bound = punctuation.bound_for(slot)
        if bound is None:
            return
        if bound > self._low_water[input_index]:
            self._low_water[input_index] = bound
            self._purge(1 - input_index)
            self._release_sorted()
            self._emit_output_punctuation()

    def _emit_output_punctuation(self) -> None:
        if not self._out_transforms:
            return
        bounds = {}
        if self.sorted_output:
            # The reorder heap can hold back pairs whose *other* window
            # column is arbitrarily old, so only the sort column's
            # promise survives: everything at or below the release
            # bound has already been emitted.
            transforms = [(self._sort_side, self._sort_slot)]
        else:
            transforms = self._out_transforms
        for side, out_slot in transforms:
            # A buffered left tuple survives purging only if
            # l >= lw1 + low, and future arrivals satisfy l >= lw0
            # (and symmetrically for the right side).
            bound = self._output_bound(side)
            if not math.isinf(bound):
                bounds[out_slot] = bound
        # Only emit tokens that actually advance a bound.
        improved = {
            slot: value for slot, value in bounds.items()
            if value > self._last_bounds.get(slot, -math.inf)
        }
        if improved:
            self._last_bounds.update(improved)
            self.emit_punctuation(Punctuation(improved))

    # -- checkpoint/restore (DESIGN section 11) ----------------------------
    def snapshot_state(self) -> dict:
        state = super().snapshot_state()
        state["buffers"] = [list(self._buffers[0]), list(self._buffers[1])]
        state["values"] = [list(self._values[0]), list(self._values[1])]
        state["low_water"] = list(self._low_water)
        state["done"] = list(self._done)
        state["last_bounds"] = dict(self._last_bounds)
        state["reorder"] = list(self._reorder)
        state["reorder_seq"] = self._reorder_seq
        state["reorder_peak"] = self.reorder_peak
        state["pairs_emitted"] = self.pairs_emitted
        return state

    def restore_state(self, state: dict) -> None:
        super().restore_state(state)
        self._buffers = [list(state["buffers"][0]), list(state["buffers"][1])]
        self._values = [list(state["values"][0]), list(state["values"][1])]
        self._low_water = list(state["low_water"])
        self._done = list(state["done"])
        self._last_bounds = dict(state["last_bounds"])
        # Heap invariant survives the round trip: entries come back in
        # the same list order they were snapshotted in.
        self._reorder = list(state["reorder"])
        self._reorder_seq = state["reorder_seq"]
        self.reorder_peak = state["reorder_peak"]
        self.pairs_emitted = state["pairs_emitted"]

    def on_flush(self, input_index: int) -> None:
        self._done[input_index] = True
        self._low_water[input_index] = math.inf
        self._purge(1 - input_index)
        self._buffers[input_index] = (
            self._buffers[input_index] if not all(self._done) else []
        )
        if all(self._done) and not self.flushed:
            self.flushed = True
            self._buffers = [[], []]
            self._values = [[], []]
            self._release_sorted(final=True)
            self.emit_flush()
