"""IP defragmentation as a user-written query node.

"For example, we have implemented a special IP defragmentation operator
in this manner and have built a query tree using it.  The ability to
bypass the existing query system when necessary is a critical
flexibility in our application domain." (Section 3)

:class:`DefragNode` is a packet consumer (like an LFTA, it is linked
into the RTS and receives raw packets).  It reassembles fragmented IPv4
datagrams and interprets the completed datagram with a protocol schema,
so downstream GSQL queries can simply name it in their FROM clause.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.query_node import QueryNode
from repro.gsql.schema import Attribute, ProtocolSchema, StreamSchema
from repro.net.ethernet import EthernetHeader
from repro.net.ip import IPv4Header
from repro.net.packet import CapturedPacket

DEFAULT_TIMEOUT = 30.0


@dataclass
class _Reassembly:
    """State for one in-progress datagram."""

    first_seen: float
    header: Optional[IPv4Header] = None  # from the offset-0 fragment
    eth: Optional[EthernetHeader] = None
    chunks: Dict[int, bytes] = field(default_factory=dict)  # byte offset -> data
    total_len: int = -1  # payload length, known once the MF=0 fragment arrives

    def add(self, header: IPv4Header, eth: EthernetHeader, payload: bytes) -> None:
        offset = header.fragment_offset * 8
        self.chunks[offset] = payload
        if header.fragment_offset == 0:
            self.header = header
            self.eth = eth
        if not header.more_fragments:
            self.total_len = offset + len(payload)

    def complete_payload(self) -> Optional[bytes]:
        """The reassembled payload if every byte is covered, else None."""
        if self.total_len < 0 or self.header is None:
            return None
        data = bytearray()
        cursor = 0
        for offset in sorted(self.chunks):
            chunk = self.chunks[offset]
            if offset > cursor:
                return None  # hole
            if offset + len(chunk) > cursor:
                data.extend(chunk[cursor - offset :])
                cursor = offset + len(chunk)
        return bytes(data) if cursor == self.total_len else None


class DefragNode(QueryNode):
    """Reassemble IPv4 fragments; emit tuples of ``protocol`` over the result."""

    def __init__(self, name: str, protocol: ProtocolSchema,
                 timeout: float = DEFAULT_TIMEOUT) -> None:
        schema = StreamSchema(
            name, [Attribute(a.name, a.gsql_type, a.ordering) for a in protocol.attributes]
        )
        super().__init__(name, schema)
        self.protocol = protocol
        self.timeout = timeout
        self._pending: Dict[Tuple[int, int, int, int], _Reassembly] = {}
        self.datagrams_reassembled = 0
        self.fragments_seen = 0
        self.timed_out = 0

    def accept_packet(self, packet: CapturedPacket) -> None:
        try:
            eth = EthernetHeader.parse(packet.data, 0)
            header = IPv4Header.parse(packet.data, eth.header_len)
        except ValueError:
            return
        if not header.is_fragment:
            self._emit_datagram(packet)
            return
        self.fragments_seen += 1
        payload = packet.data[eth.header_len + header.header_len :]
        key = header.key()
        pending = self._pending.get(key)
        if pending is None:
            pending = _Reassembly(first_seen=packet.timestamp)
            self._pending[key] = pending
        pending.add(header, eth, payload)
        data = pending.complete_payload()
        if data is not None:
            del self._pending[key]
            self.datagrams_reassembled += 1
            self._emit_datagram(self._rebuild(pending, data, packet.timestamp))
        self._expire(packet.timestamp)

    def _rebuild(self, pending: _Reassembly, payload: bytes,
                 timestamp: float) -> CapturedPacket:
        """Synthesize the unfragmented packet from reassembled pieces."""
        header = IPv4Header(**{**pending.header.__dict__})
        header.flags = header.flags & ~0x1  # clear MF
        header.fragment_offset = 0
        header.total_length = 0
        frame = pending.eth.pack() + header.pack(payload_len=len(payload)) + payload
        return CapturedPacket(timestamp=timestamp, data=frame)

    def _emit_datagram(self, packet: CapturedPacket) -> None:
        for row in self.protocol.interpret(packet):
            self.emit(row)

    def _expire(self, now: float) -> None:
        stale = [
            key for key, pending in self._pending.items()
            if now - pending.first_seen > self.timeout
        ]
        for key in stale:
            del self._pending[key]
            self.timed_out += 1

    def on_heartbeat(self, stream_time: float) -> None:
        self._expire(stream_time)

    def flush(self) -> None:
        self._pending.clear()

    # -- checkpoint/restore (DESIGN section 11) ----------------------------
    # Parsed headers are snapshotted field-by-field: IPv4Header keeps a
    # plain __dict__ (the _rebuild constructor round-trip above relies
    # on it) and EthernetHeader is __slots__-only, so each side has an
    # explicit encoding here.
    _ETH_SLOTS = ("_dst", "_src", "_dst_raw", "_src_raw", "ethertype")

    def snapshot_state(self) -> dict:
        state = super().snapshot_state()
        pending = {}
        for key, reassembly in self._pending.items():
            header = reassembly.header
            eth = reassembly.eth
            pending[key] = (
                reassembly.first_seen,
                dict(vars(header)) if header is not None else None,
                (tuple(getattr(eth, slot) for slot in self._ETH_SLOTS)
                 if eth is not None else None),
                dict(reassembly.chunks),
                reassembly.total_len,
            )
        state["pending"] = pending
        state["datagrams_reassembled"] = self.datagrams_reassembled
        state["fragments_seen"] = self.fragments_seen
        state["timed_out"] = self.timed_out
        return state

    def restore_state(self, state: dict) -> None:
        super().restore_state(state)
        self._pending = {}
        for key, (first_seen, header_fields, eth_fields,
                  chunks, total_len) in state["pending"].items():
            header = (IPv4Header(**header_fields)
                      if header_fields is not None else None)
            eth = None
            if eth_fields is not None:
                eth = object.__new__(EthernetHeader)
                for slot, value in zip(self._ETH_SLOTS, eth_fields):
                    setattr(eth, slot, value)
            self._pending[key] = _Reassembly(
                first_seen=first_seen, header=header, eth=eth,
                chunks=dict(chunks), total_len=total_len,
            )
        self.datagrams_reassembled = state["datagrams_reassembled"]
        self.fragments_seen = state["fragments_seen"]
        self.timed_out = state["timed_out"]

    def on_tuple(self, row: tuple, input_index: int) -> None:
        raise TypeError("DefragNode accepts packets, not tuples")
