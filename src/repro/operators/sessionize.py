"""Sessionization: aggregate packet subsequences into flow records.

The paper defers this exact capability: "many network analysis queries
find and aggregate subsequences of the data stream (i.e., extract the
TCP/IP sessions).  We are exploring how to integrate the complex group
definition mechanisms described in [3] into GSQL."  Until the language
grows that mechanism, Gigascope's answer is a user-written query node
(Section 3's escape hatch) -- this one.

:class:`SessionizeNode` consumes raw packets, maintains per-5-tuple
session state, and emits one tuple per finished session.  A session
ends on a TCP FIN/RST, on an idle gap longer than ``idle_timeout``, or
at the ``active_timeout`` (long-lived flows are split, like Netflow's
active timeout).  Downstream GSQL queries read it like any stream;
the output end time is increasing (sessions are emitted as they close)
with a band of the timeout slack.

Output schema::

    time_end FLOAT (banded_increasing(idle_timeout)),
    time_start FLOAT, srcIP IP, destIP IP, srcPort UINT, destPort UINT,
    protocol UINT, packets UINT, octets UINT, tcpflags UINT
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.query_node import QueryNode
from repro.gsql.ordering import Ordering
from repro.gsql.schema import Attribute, PacketView, StreamSchema
from repro.gsql.types import FLOAT, IP, UINT
from repro.net.packet import CapturedPacket
from repro.net.tcp import FLAG_FIN, FLAG_RST

SessionKey = Tuple[int, int, int, int, int]


@dataclass
class _Session:
    start: float
    last: float
    packets: int = 0
    octets: int = 0
    tcpflags: int = 0


def session_schema(name: str, idle_timeout: float) -> StreamSchema:
    return StreamSchema(
        name,
        [
            # Sessions close at most idle_timeout after their last
            # packet; emission order lags stream time by that band.
            Attribute("time_end", FLOAT, Ordering.banded(idle_timeout)),
            Attribute("time_start", FLOAT),
            Attribute("srcIP", IP),
            Attribute("destIP", IP),
            Attribute("srcPort", UINT),
            Attribute("destPort", UINT),
            Attribute("protocol", UINT),
            Attribute("packets", UINT),
            Attribute("octets", UINT),
            Attribute("tcpflags", UINT),
        ],
    )


class SessionizeNode(QueryNode):
    """Turn packets into per-session summary tuples."""

    def __init__(self, name: str, idle_timeout: float = 30.0,
                 active_timeout: float = 300.0) -> None:
        super().__init__(name, session_schema(name, idle_timeout))
        self.idle_timeout = idle_timeout
        self.active_timeout = active_timeout
        self._sessions: Dict[SessionKey, _Session] = {}
        self.sessions_emitted = 0
        self._last_sweep = 0.0

    def accept_packet(self, packet: CapturedPacket) -> None:
        view = PacketView(packet)
        ip = view.ip
        if ip is None:
            return
        l4 = view.tcp or view.udp
        src_port = l4.src_port if l4 is not None else 0
        dst_port = l4.dst_port if l4 is not None else 0
        key: SessionKey = (ip.src, ip.dst, src_port, dst_port, ip.protocol)
        now = packet.timestamp
        session = self._sessions.get(key)
        if session is None:
            session = _Session(start=now, last=now)
            self._sessions[key] = session
        session.packets += 1
        session.octets += packet.orig_len
        session.last = now
        tcp = view.tcp
        if tcp is not None:
            session.tcpflags |= tcp.flags
            if tcp.flags & (FLAG_FIN | FLAG_RST):
                self._close(key, session)
        elif now - session.start >= self.active_timeout:
            self._close(key, session)
        # Periodic idle sweep, amortized to once a second of stream time.
        if now - self._last_sweep >= 1.0:
            self._last_sweep = now
            self._sweep(now)

    def _close(self, key: SessionKey, session: _Session) -> None:
        self._sessions.pop(key, None)
        self.sessions_emitted += 1
        self.emit(
            (
                session.last,
                session.start,
                key[0],
                key[1],
                key[2],
                key[3],
                key[4],
                session.packets,
                session.octets,
                session.tcpflags,
            )
        )

    def _sweep(self, now: float) -> None:
        """Close idle sessions and long-running ones (active timeout)."""
        stale = [
            (key, session)
            for key, session in self._sessions.items()
            if (now - session.last >= self.idle_timeout
                or now - session.start >= self.active_timeout)
        ]
        stale.sort(key=lambda item: item[1].last)
        for key, session in stale:
            self._close(key, session)

    def on_heartbeat(self, stream_time: float) -> None:
        from repro.core.heartbeat import Punctuation
        self._sweep(stream_time)
        # All future sessions end no earlier than the idle horizon.
        self.emit_punctuation(
            Punctuation({0: stream_time - self.idle_timeout})
        )

    def flush(self) -> None:
        remaining = sorted(self._sessions.items(),
                           key=lambda item: item[1].last)
        self._sessions = {}
        for key, session in remaining:
            self._close(key, session)

    @property
    def open_sessions(self) -> int:
        return len(self._sessions)

    # -- checkpoint/restore (DESIGN section 11) ----------------------------
    def snapshot_state(self) -> dict:
        state = super().snapshot_state()
        state["sessions"] = {
            key: (session.start, session.last, session.packets,
                  session.octets, session.tcpflags)
            for key, session in self._sessions.items()
        }
        state["sessions_emitted"] = self.sessions_emitted
        state["last_sweep"] = self._last_sweep
        return state

    def restore_state(self, state: dict) -> None:
        super().restore_state(state)
        self._sessions = {
            key: _Session(*values)
            for key, values in state["sessions"].items()
        }
        self.sessions_emitted = state["sessions_emitted"]
        self._last_sweep = state["last_sweep"]

    def on_tuple(self, row: tuple, input_index: int) -> None:
        raise TypeError("SessionizeNode accepts packets, not tuples")
