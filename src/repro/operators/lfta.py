"""The low-level FTA node (paper Section 3).

LFTAs accept only Protocol input and are linked into the run-time
system: the RTS hands each captured packet directly to every LFTA bound
to that interface, with no intermediate channel.  An LFTA performs
preliminary filtering, projection, and (optionally) partial aggregation
over a small direct-mapped hash table, greatly reducing the data
traffic to the HFTAs.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.heartbeat import Punctuation
from repro.determinism import rng_for
from repro.core.query_node import QueryNode
from repro.gsql.ast_nodes import Column
from repro.gsql.codegen import DiscardTuple, ExprCompiler
from repro.gsql.planner import LftaPlan
from repro.gsql.semantic import AnalyzedQuery
from repro.net.packet import CapturedPacket
from repro.operators.aggregates import AggregateOps
from repro.operators.base import apply_transforms, key_bound_fn, output_bound_transforms
from repro.operators.lfta_table import DirectMappedTable

DEFAULT_TABLE_SIZE = 4096


class LftaNode(QueryNode):
    """Filtering, Transformation, and Aggregation -- the low level."""

    def __init__(
        self,
        plan: LftaPlan,
        analyzed: AnalyzedQuery,
        compiler: ExprCompiler,
        table_size: int = DEFAULT_TABLE_SIZE,
        seed: int = 0,
        columnar: bool = True,
    ) -> None:
        super().__init__(plan.name, plan.output_schema)
        self.plan = plan
        self.interface = plan.interface
        self.protocol = plan.protocol
        self.packets_seen = 0
        self.sampled_out = 0
        # Every RNG on the packet path comes from the seeded registry
        # (repro.determinism): str hash() is randomized per process and
        # would make runs unreplayable.
        if plan.sample_rate is not None:
            self._sample_rate = plan.sample_rate
            self._sample_rng = rng_for(seed, "lfta.sample", plan.name)
        else:
            self._sample_rate = None
            self._sample_rng = None
        # Overload-control sampling gate (repro.control): a keep-rate the
        # controller moves at run time, distinct from the analyst's
        # ``DEFINE sample p``.  Packets shed here are accounted, and
        # additive aggregates are scaled by 1/rate at update time
        # (Horvitz-Thompson) so COUNT/SUM stay unbiased.
        self.shed_rate = 1.0
        self.shed_packets = 0
        self._shed_rng = rng_for(seed, "lfta.shed", plan.name)
        # The freshly seeded Twister state, kept so snapshots can elide
        # the ~2.5KB RNG tuple while no shedding draw has happened yet
        # (replication re-ships this node's state every delta frame).
        self._shed_rng_initial = self._shed_rng.getstate()
        self._predicate = compiler.predicate_fn(plan.predicates, (None, None))
        needed = self._needed_attr_indices(analyzed)
        self._interpret = self.protocol.sparse_interpreter(needed)
        self._clock_bounds = self.protocol.clock_bounds
        # Columnar block execution (DESIGN section 14): available only
        # for protocols with a block decoder (built-in ip/tcp/udp) and
        # compiled codegen; everything else keeps the row-based path.
        wants_columnar = columnar and self.protocol.columnar_decoder is not None
        self._columnar_decode = None
        self._columnar_select = None
        self._columnar_key = None
        self.columnar_blocks = 0

        if plan.mode == "projection":
            self._project = compiler.tuple_fn(plan.project_exprs, (None, None))
            self._batch_select = compiler.batch_select_fn(
                plan.predicates, plan.project_exprs, (None, None))
            self._transforms = output_bound_transforms(
                plan.project_exprs, analyzed, plan.output_schema, (None, None),
                functions=compiler.functions,
            )
            self.table: Optional[DirectMappedTable] = None
            if wants_columnar:
                self._columnar_select = compiler.columnar_select_fn(
                    plan.predicates, plan.project_exprs, (None, None))
                if self._columnar_select is not None:
                    self._columnar_decode = self.protocol.columnar_decoder
        elif plan.mode == "partial_aggregation":
            self._key_fn = compiler.tuple_fn(plan.group_exprs, (None, None))
            self._batch_key = compiler.batch_key_fn(
                plan.predicates, plan.group_exprs, (None, None))
            arg_fns = [
                compiler.scalar_fn(agg.arg, (None, None)) if agg.arg is not None else None
                for agg in plan.aggregates
            ]
            self.aggregate_ops = AggregateOps(plan.aggregates, arg_fns)
            self.table = DirectMappedTable(table_size)
            self._window_index = plan.window_key_index
            self._window_band = plan.window_key_band
            self._high_water = None
            self._key_bound = key_bound_fn(
                plan.group_exprs, plan.window_key_index, analyzed, (None, None),
                functions=compiler.functions,
            )
            if wants_columnar:
                arg_slots = self._column_slots(
                    analyzed,
                    [agg.arg for agg in plan.aggregates if agg.arg is not None])
                self._columnar_key = compiler.columnar_key_fn(
                    plan.predicates, plan.group_exprs, arg_slots,
                    len(self.protocol.attributes), (None, None))
                if self._columnar_key is not None:
                    self._columnar_decode = self.protocol.columnar_decoder
        else:
            raise ValueError(f"unknown LFTA mode {plan.mode!r}")
        self.mode = plan.mode
        if self._columnar_decode is not None:
            # The block decoder reads raw bytes; a shared PacketView
            # would go untouched, so tell the RTS not to build one.
            self.accepts_view = False

    def _needed_attr_indices(self, analyzed: AnalyzedQuery) -> List[int]:
        exprs = list(self.plan.predicates)
        exprs.extend(self.plan.project_exprs)
        exprs.extend(self.plan.group_exprs)
        exprs.extend(agg.arg for agg in self.plan.aggregates if agg.arg is not None)
        return self._column_slots(analyzed, exprs)

    @staticmethod
    def _column_slots(analyzed: AnalyzedQuery, exprs) -> List[int]:
        """Sorted attribute positions the expressions read."""
        indices = set()
        for expr in exprs:
            for node in expr.walk():
                if isinstance(node, Column):
                    bound = analyzed.binding_of(node)
                    if bound is not None:
                        indices.add(bound.attr_index)
        return sorted(indices)

    #: the RTS may pass a shared, pre-parsed PacketView
    accepts_view = True

    # -- overload-control hook (installed by repro.control) ----------------
    def set_shed_rate(self, rate: float) -> None:
        """Install the controller's packet-sampling gate (1.0 = off)."""
        self.shed_rate = min(1.0, max(1e-3, rate))

    # -- packet path (called by the RTS, no channel in between) -----------
    def accept_packet(self, packet: CapturedPacket, view=None) -> None:
        self.packets_seen += 1
        weight = 1.0
        if self.shed_rate < 1.0:
            if self._shed_rng.random() >= self.shed_rate:
                self.shed_packets += 1
                return
            weight = 1.0 / self.shed_rate
        for row in self._interpret(packet, view):
            self.stats.tuples_in += 1
            if (self._sample_rate is not None
                    and self._sample_rng.random() >= self._sample_rate):
                self.sampled_out += 1
                continue
            if not self._predicate(row):
                self.stats.discarded += 1
                continue
            if self.mode == "projection":
                out = self._project(row)
                if out is None:
                    self.stats.discarded += 1
                else:
                    self.emit(out)
            else:
                self._aggregate(row, weight)

    def accept_batch(self, packets, views=None) -> None:
        """Vectorized packet path (DESIGN section 10).

        Byte-identical to calling :meth:`accept_packet` per packet: the
        shed and sample gates draw from the same RNGs in the same
        per-packet / per-row order, the fused select/key function runs
        the predicate conjuncts in scalar order, and every counter is
        advanced by the same amounts.  The RTS only calls this when no
        fault is armed and no lineage trace is in flight.
        """
        if self._columnar_decode is not None:
            self._accept_batch_columnar(packets)
            return
        self.packets_seen += len(packets)
        interpret = self._interpret
        rows: List[tuple] = []
        extend = rows.extend
        weight = 1.0
        if self.shed_rate < 1.0:
            rate = self.shed_rate
            rng = self._shed_rng.random
            weight = 1.0 / rate
            shed = 0
            if views is None:
                for packet in packets:
                    if rng() >= rate:
                        shed += 1
                    else:
                        extend(interpret(packet, None))
            else:
                for packet, view in zip(packets, views):
                    if rng() >= rate:
                        shed += 1
                    else:
                        extend(interpret(packet, view))
            self.shed_packets += shed
        elif views is None:
            for packet in packets:
                extend(interpret(packet, None))
        else:
            for packet, view in zip(packets, views):
                extend(interpret(packet, view))
        self.stats.tuples_in += len(rows)
        if self._sample_rate is not None and rows:
            rate = self._sample_rate
            rng = self._sample_rng.random
            kept = [row for row in rows if rng() < rate]
            self.sampled_out += len(rows) - len(kept)
            rows = kept
        if not rows:
            return
        if self.mode == "projection":
            out: List[tuple] = []
            dropped = self._batch_select(rows, out.append)
            if dropped:
                self.stats.discarded += dropped
            self.emit_many(out)
        else:
            pairs: List[tuple] = []
            dropped = self._batch_key(rows, pairs.append)
            if dropped:
                self.stats.discarded += dropped
            if pairs:
                self._aggregate_batch(pairs, weight)

    def _accept_batch_columnar(self, packets) -> None:
        """Columnar block execution (DESIGN section 14).

        Byte-identical to :meth:`accept_batch`'s row path: the shed RNG
        draws once per packet in arrival order *before* decoding, the
        decoder keeps exactly the guard-passing packets in order (so
        ``tuples_in`` and the per-row sample RNG draws line up), and the
        fused columnar kernel preserves conjunct order and discard
        accounting.
        """
        self.packets_seen += len(packets)
        weight = 1.0
        if self.shed_rate < 1.0:
            rate = self.shed_rate
            rng = self._shed_rng.random
            weight = 1.0 / rate
            kept = []
            keep = kept.append
            shed = 0
            for packet in packets:
                if rng() >= rate:
                    shed += 1
                else:
                    keep(packet)
            self.shed_packets += shed
            packets = kept
        block = self._columnar_decode(packets)
        self.columnar_blocks += 1
        n = block.n
        self.stats.tuples_in += n
        if self._sample_rate is not None and n:
            rate = self._sample_rate
            rng = self._sample_rng.random
            rows = [i for i in range(n) if rng() < rate]
            self.sampled_out += n - len(rows)
        else:
            rows = range(n)
        if not rows:
            return
        if self.mode == "projection":
            out: List[tuple] = []
            dropped = self._columnar_select(block, rows, out.append)
            if dropped:
                self.stats.discarded += dropped
            self.emit_many(out)
        else:
            dropped, keys, srows = self._columnar_key(block, rows)
            if dropped:
                self.stats.discarded += dropped
            if keys:
                self._aggregate_columnar(keys, srows, weight)

    def _aggregate_columnar(self, keys, rows, weight: float) -> None:
        """Aggregate one decoded block's surviving rows.

        Windowed plans keep the per-row scalar-order loop: the window
        high-water check must interleave flush/eject emission exactly
        as scalar execution would.  Windowless plans upsert the whole
        key slice through :meth:`DirectMappedTable.upsert_slices`; the
        generator is consumer-driven, so each row's ejection is emitted
        and its state updated before the next key touches the table.
        """
        if self._window_index >= 0:
            self._aggregate_batch(list(zip(keys, rows)), weight)
            return
        update = self.aggregate_ops.update
        update_weighted = self.aggregate_ops.update_weighted
        weighted = weight != 1.0
        emit_group = self._emit_group
        position = 0
        for state, ejected in self.table.upsert_slices(
                keys, self.aggregate_ops.new_state):
            if ejected is not None:
                emit_group(*ejected)
            if weighted:
                update_weighted(state, rows[position], weight)
            else:
                update(state, rows[position])
            position += 1

    def _aggregate_batch(self, pairs, weight: float) -> None:
        """The scalar :meth:`_aggregate` loop with lookups hoisted."""
        window_index = self._window_index
        band = self._window_band
        upsert = self.table.upsert
        new_state = self.aggregate_ops.new_state
        update = self.aggregate_ops.update
        update_weighted = self.aggregate_ops.update_weighted
        weighted = weight != 1.0
        for key, row in pairs:
            if window_index >= 0:
                window_value = key[window_index]
                high_water = self._high_water
                if high_water is None or window_value > high_water:
                    self._high_water = window_value
                    self._flush_below(window_value - band)
            state, ejected = upsert(key, new_state)
            if ejected is not None:
                self._emit_group(*ejected)
            if weighted:
                update_weighted(state, row, weight)
            else:
                update(state, row)

    def _aggregate(self, row: tuple, weight: float = 1.0) -> None:
        key = self._key_fn(row)
        if key is None:
            self.stats.discarded += 1
            return
        if self._window_index >= 0:
            window_value = key[self._window_index]
            if self._high_water is None or window_value > self._high_water:
                self._high_water = window_value
                self._flush_below(window_value - self._window_band)
        state, ejected = self.table.upsert(key, self.aggregate_ops.new_state)
        if ejected is not None:
            self._emit_group(*ejected)
        if weight == 1.0:
            self.aggregate_ops.update(state, row)
        else:
            self.aggregate_ops.update_weighted(state, row, weight)

    def _flush_below(self, low_water) -> None:
        """Close every group whose window key is below ``low_water``."""
        index = self._window_index
        closed = self.table.evict_if(lambda key: key[index] < low_water)
        closed.sort(key=lambda entry: entry[0][index])
        for key, state in closed:
            self._emit_group(key, state)
        if closed or self._high_water is not None:
            self.emit_punctuation(Punctuation({index: low_water}))

    def _emit_group(self, key: tuple, state: list) -> None:
        self.emit(key + self.aggregate_ops.partials(state))

    # -- heartbeats from the RTS -------------------------------------------
    def on_heartbeat(self, stream_time: float) -> None:
        """Translate an interface-time heartbeat into output punctuation."""
        bounds = self._clock_bounds(stream_time)
        if not bounds:
            return
        if self.mode == "projection":
            out = apply_transforms(self._transforms, 0, bounds)
            if out:
                self.emit_punctuation(Punctuation(out))
            return
        if self._key_bound is None:
            return
        _source, slot, bound_fn = self._key_bound
        if slot in bounds:
            low_water = bound_fn(bounds[slot])
            if self._window_index >= 0:
                self._flush_below(low_water)

    # -- checkpoint/restore (DESIGN section 11) ----------------------------
    def snapshot_state(self) -> dict:
        state = super().snapshot_state()
        state["packets_seen"] = self.packets_seen
        state["sampled_out"] = self.sampled_out
        state["shed_rate"] = self.shed_rate
        state["shed_packets"] = self.shed_packets
        shed_rng = self._shed_rng.getstate()
        state["shed_rng"] = (None if shed_rng == self._shed_rng_initial
                             else shed_rng)
        state["sample_rng"] = (self._sample_rng.getstate()
                               if self._sample_rng is not None else None)
        if self.mode == "partial_aggregation":
            state["table"] = self.table.snapshot_state()
            state["high_water"] = self._high_water
        return state

    def restore_state(self, state: dict) -> None:
        super().restore_state(state)
        self.packets_seen = state["packets_seen"]
        self.sampled_out = state["sampled_out"]
        self.shed_rate = state["shed_rate"]
        self.shed_packets = state["shed_packets"]
        self._shed_rng.setstate(self._shed_rng_initial
                                if state["shed_rng"] is None
                                else state["shed_rng"])
        if self._sample_rng is not None and state["sample_rng"] is not None:
            self._sample_rng.setstate(state["sample_rng"])
        if self.mode == "partial_aggregation":
            self.table.restore_state(state["table"])
            self._high_water = state["high_water"]

    # -- end of stream --------------------------------------------------------
    def flush(self) -> None:
        if self.mode == "partial_aggregation" and self.table is not None:
            index = self._window_index
            groups = self.table.evict_all()
            if index >= 0:
                groups.sort(key=lambda entry: entry[0][index])
            for key, state in groups:
                self._emit_group(key, state)

    # LFTAs have no channel inputs; the RTS drives them directly.
    def on_tuple(self, row: tuple, input_index: int) -> None:
        raise TypeError("LFTA nodes accept packets, not tuples")
