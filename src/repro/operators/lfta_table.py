"""The LFTA's direct-mapped aggregation hash table (paper Section 3).

"An LFTA can perform aggregation, but it uses a small direct-mapped
hash table.  Hash table collisions result in a tuple computed from the
ejected group being written to the output stream.  Because of temporal
locality, aggregation even with a small hash table is effective in
early data reduction."

The table is an array of slots; each group hashes to exactly one slot
and a collision *ejects* the resident group as a partial aggregate.
Benchmark E4 sweeps the table size against workload locality.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, List, Optional, Tuple

from repro.determinism import stable_hash


class DirectMappedTable:
    """A fixed-size direct-mapped map from group keys to states.

    Slots are placed with :func:`repro.determinism.stable_hash`, not
    builtin ``hash()``: slot choice decides which groups collide and
    get ejected, so with a process-randomized hash two runs of the same
    workload emit different partials (and different E4 numbers).
    """

    __slots__ = ("size", "_slots", "occupied", "collisions", "lookups")

    def __init__(self, size: int = 4096) -> None:
        if size <= 0:
            raise ValueError("table size must be positive")
        self.size = size
        self._slots: List[Optional[Tuple[Any, Any]]] = [None] * size
        self.occupied = 0
        self.collisions = 0
        self.lookups = 0

    def find(self, key: Any) -> Optional[Any]:
        """The state for ``key`` if resident, else None."""
        self.lookups += 1
        entry = self._slots[stable_hash(key) % self.size]
        if entry is not None and entry[0] == key:
            return entry[1]
        return None

    def insert(self, key: Any, state: Any) -> Optional[Tuple[Any, Any]]:
        """Install ``key``; returns the ejected ``(key, state)`` if any."""
        self.lookups += 1
        index = stable_hash(key) % self.size
        ejected = self._slots[index]
        if ejected is not None and ejected[0] == key:
            self._slots[index] = (key, state)
            return None
        self._slots[index] = (key, state)
        if ejected is None:
            self.occupied += 1
        else:
            self.collisions += 1
        return ejected

    def upsert(self, key: Any, make_state: Callable[[], Any]
               ) -> Tuple[Any, Optional[Tuple[Any, Any]]]:
        """Find-or-create the state for ``key``.

        Returns ``(state, ejected)`` where ``ejected`` is the group the
        new key displaced (or None).
        """
        self.lookups += 1
        index = stable_hash(key) % self.size
        entry = self._slots[index]
        if entry is not None and entry[0] == key:
            return entry[1], None
        state = make_state()
        self._slots[index] = (key, state)
        if entry is None:
            self.occupied += 1
        else:
            self.collisions += 1
        return state, entry

    def upsert_slices(self, keys: Iterable[Any],
                      make_state: Callable[[], Any]
                      ) -> Iterator[Tuple[Any, Optional[Tuple[Any, Any]]]]:
        """Upsert a block of group keys -- a key slice cut from the
        columnar path's gathered key columns (DESIGN section 14).

        A generator yielding ``(state, ejected)`` per key, in order.
        Consumption drives the table mutation: each key's lookup,
        insertion, and accounting happen exactly when its result is
        pulled, so a consumer interleaving ejection emission with state
        updates observes the same table trajectory as per-row
        :meth:`upsert` calls.
        """
        size = self.size
        for key in keys:
            # self._slots is re-read per key: an evict between pulls
            # (not the columnar consumer's pattern, but legal) must not
            # leave this generator mutating a stale slot array.
            self.lookups += 1
            index = stable_hash(key) % size
            slots = self._slots
            entry = slots[index]
            if entry is not None and entry[0] == key:
                yield entry[1], None
                continue
            state = make_state()
            slots[index] = (key, state)
            if entry is None:
                self.occupied += 1
            else:
                self.collisions += 1
            yield state, entry

    def evict_all(self) -> List[Tuple[Any, Any]]:
        """Remove and return every resident group (epoch flush)."""
        groups = [entry for entry in self._slots if entry is not None]
        self._slots = [None] * self.size
        self.occupied = 0
        return groups

    def evict_if(self, should_evict: Callable[[Any], bool]) -> List[Tuple[Any, Any]]:
        """Remove and return groups whose *key* satisfies the predicate."""
        evicted = []
        for index, entry in enumerate(self._slots):
            if entry is not None and should_evict(entry[0]):
                evicted.append(entry)
                self._slots[index] = None
                self.occupied -= 1
        return evicted

    # -- checkpoint/restore (DESIGN section 11) --------------------------
    def snapshot_state(self) -> dict:
        """Table contents and accounting as snapshot primitives.

        Slots are stored sparsely (``{index: entry}``): the table is
        direct-mapped and mostly empty, and replication re-encodes it
        every delta frame, so empty slots must cost nothing on the
        wire.  The caller encodes the result immediately (slot entries
        alias live group-state lists until then).
        """
        return {
            "size": self.size,
            "slots": {index: entry
                      for index, entry in enumerate(self._slots)
                      if entry is not None},
            "occupied": self.occupied,
            "collisions": self.collisions,
            "lookups": self.lookups,
        }

    def restore_state(self, state: dict) -> None:
        if state["size"] != self.size:
            raise ValueError(
                f"snapshot is for a table of size {state['size']}, "
                f"this table has size {self.size}")
        self._slots = [None] * self.size
        for index, entry in state["slots"].items():
            self._slots[index] = entry
        self.occupied = state["occupied"]
        self.collisions = state["collisions"]
        self.lookups = state["lookups"]

    def __len__(self) -> int:
        return self.occupied

    def __iter__(self) -> Iterator[Tuple[Any, Any]]:
        return (entry for entry in self._slots if entry is not None)

    @property
    def collision_rate(self) -> float:
        """Collisions per lookup; high values mean poor early reduction."""
        return self.collisions / self.lookups if self.lookups else 0.0
