"""Sharded multi-process runtime (DESIGN section 15).

Gigascope's headline deployment split the LFTA receive path and the
HFTA query work across CPUs; this package reproduces that split with
real processes.  Packets are hash-partitioned by flow key across N
worker processes -- each running a complete single-process engine on
the columnar block path -- and the workers' superaggregate partials
travel back over pipes to the parent, where one combine operator per
subscribed aggregation merges them in a fixed, deterministic shard
order (the D4M shape: many small independent engines plus hierarchical
combine).

Public surface:

* :class:`~repro.shard.runtime.ShardedGigascope` -- the parent-side
  facade, mirroring :class:`~repro.core.engine.Gigascope`.
* :func:`~repro.shard.partition.flow_hash` /
  :func:`~repro.shard.partition.shard_of` -- the canonical,
  PYTHONHASHSEED-independent flow partitioner.
"""

from repro.shard.partition import flow_hash, shard_of
from repro.shard.runtime import ShardedGigascope

__all__ = ["ShardedGigascope", "flow_hash", "shard_of"]
