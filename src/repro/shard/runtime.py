"""The parent side of the sharded runtime: spawn, collect, merge.

:class:`ShardedGigascope` mirrors the :class:`~repro.core.engine.Gigascope`
facade (add queries, subscribe, start, feed, flush, stats) but runs the
packet path across N forked worker processes.  The parent never touches
a packet: it materializes the list, forks the workers (each filters the
inherited list down to its partition with the generated flow-hash
kernel), then sits on the pipes collecting frames.

Merging is deterministic by construction.  Partial-aggregate rows are
buffered with a ``(window value, shard index, frame seq, arrival)``
sort key and, at flush, dispatched in that total order into one
``final_from_partials`` combine operator per subscribed aggregation --
the same superaggregate combine an HFTA applies to LFTA partials, one
level up the hierarchy.  Window order makes the combine's group-closing
walk the same global (window, key) sweep the single-process engine
performs; shard-then-seq order fixes every remaining tie.  Output of
non-aggregation subscriptions is concatenated in shard order.

Failure policy (per shard): a worker that dies before its ``end`` frame
is respawned from its last ``snap`` checkpoint (deterministic frame
regeneration + parent-side seq dedup keeps delivery exactly-once); a
shard that exhausts ``max_restarts`` is quarantined with its undone
packets counted into the drop ledger, and every sibling shard keeps
running.
"""

from __future__ import annotations

import dataclasses
import os
from multiprocessing import connection, get_context
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.control.signals import ChannelSignal, PressureSample
from repro.core.channels import Channel, ChannelStats
from repro.core.engine import Gigascope, resolve_batch_size, resolve_columnar
from repro.core.heartbeat import FLUSH
from repro.core.stream_manager import RegistryError, Subscription
from repro.obs.collectors import node_snapshot
from repro.operators.aggregation import AggregationNode
from repro.shard.partition import assign_shards
from repro.recovery.wire import decode_snapshot, encode_snapshot
from repro.shard.transport import (
    DELTA,
    END,
    ROWS,
    SNAP,
    decode_frame,
    unpack_rows,
)
from repro.shard.worker import CRASH_ENV, run_worker


class _MergeSink:
    """Parent-side merge state for one subscribed stream."""

    __slots__ = ("name", "partial", "node", "channels", "pending",
                 "per_shard", "window_index")

    def __init__(self, name: str, partial: bool, node=None,
                 window_index: int = -1) -> None:
        self.name = name
        self.partial = partial
        #: the combine operator (partial mode) -- its subscriber
        #: channels are the application subscriptions
        self.node = node
        #: application channels (concat mode)
        self.channels: List[Channel] = []
        #: (window, shard, seq, arrival, row) entries awaiting the merge
        self.pending: List[tuple] = []
        #: shard -> rows, for shard-order concatenation
        self.per_shard: Dict[int, List[tuple]] = {}
        self.window_index = window_index


class _ShardState:
    """One worker process's lifecycle bookkeeping."""

    __slots__ = ("index", "process", "conn", "last_seq", "snapshot",
                 "snap_packets", "restarts", "ended", "eof", "folded")

    def __init__(self, index: int, process, conn) -> None:
        self.index = index
        self.process = process
        self.conn = conn
        self.last_seq = 0
        self.snapshot: Optional[bytes] = None
        self.snap_packets = 0
        self.restarts = 0
        self.ended = False
        self.eof = False
        #: a standby shard's warm replica: the decoded snapshot payload
        #: kept current by folding each delta frame into it
        self.folded: Optional[Dict[str, Any]] = None


def _worker_entry(recv, conn, spec, shard, packets, resume, crash_at):
    recv.close()
    run_worker(conn, spec, shard, packets,
               resume_blob=resume, crash_at=crash_at)


class ShardedGigascope:
    """N hash-partitioned worker engines under one merging parent."""

    def __init__(
        self,
        shards: int,
        mode: str = "compiled",
        heartbeat_interval: Optional[float] = 1.0,
        default_interface: str = "eth0",
        lfta_table_size: int = 4096,
        channel_capacity: Optional[int] = None,
        metrics: bool = True,
        seed: int = 0,
        batch_size: Optional[int] = None,
        columnar: Optional[bool] = None,
        barrier_interval: float = 1.0,
        max_restarts: int = 1,
        standby: Optional[int] = None,
    ) -> None:
        if shards <= 0:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if standby is not None and not 0 <= standby < shards:
            raise ValueError(f"standby names shard {standby}, but there "
                             f"are only {shards}")
        self.shards = shards
        self.seed = seed
        #: shard index replicated incrementally (DESIGN section 16):
        #: its worker ships delta frames after the first full snap, the
        #: parent keeps a warm fold, and a crash respawns from the fold
        self.standby = standby
        #: virtual-time spacing of the global barrier grid every shard
        #: cuts rows/snapshot frames at
        self.barrier_interval = barrier_interval
        #: respawn budget per shard before quarantine
        self.max_restarts = max_restarts
        # Env knobs resolve once, here, so every worker runs the exact
        # same configuration the parent validated.
        self._engine_kwargs: Dict[str, Any] = dict(
            mode=mode, heartbeat_interval=heartbeat_interval,
            default_interface=default_interface,
            lfta_table_size=lfta_table_size,
            channel_capacity=channel_capacity, seed=seed,
            batch_size=resolve_batch_size(batch_size),
            columnar=resolve_columnar(columnar),
        )
        #: plan/schema oracle and combine-node factory; never fed packets
        self.template = Gigascope(metrics=False, **self._engine_kwargs)
        self._queries: List[Tuple[str, str, Optional[dict], Optional[str]]] = []
        self._sinks: Dict[str, _MergeSink] = {}
        self._started = False
        # The fault-injection knob is consumed by the first feed() only:
        # a respawned worker must not re-crash at the same index.
        self._crash_armed = True
        # -- ledgers (the gs_shard_* metric families read these) -------
        self.generations = 0
        self.shard_packets = [0] * shards
        self.shard_rows = [0] * shards
        self.shard_restarts = [0] * shards
        self.shard_snapshots = [0] * shards
        self.shard_delta_frames = [0] * shards
        self.shard_channel_dropped = [0] * shards
        self.shard_dropped_packets = [0] * shards
        #: shard index -> reason, for shards past their restart budget
        self.quarantined: Dict[int, str] = {}
        #: "shardN/<channel>" -> absorbed worker-side overflow ledger
        self.channel_ledgers: Dict[str, ChannelStats] = {}
        self._worker_nodes: Dict[int, Dict[str, Any]] = {}
        self._worker_quarantined: Dict[int, Dict[str, str]] = {}
        #: one end-of-stream PressureSample per shard (control plane)
        self.pressure: Dict[int, PressureSample] = {}
        self.metrics = None
        if metrics:
            from repro.obs.collectors import install_shard_metrics
            from repro.obs.registry import MetricsRegistry
            self.metrics = MetricsRegistry()
            install_shard_metrics(self.metrics, self)

    # -- queries (delegated to the template, recorded for workers) --------
    def add_query(self, text: str, params: Optional[Dict[str, Any]] = None,
                  name: Optional[str] = None) -> str:
        result = self.template.add_query(text, params=params, name=name)
        self._queries.append(("single", text, params, name))
        return result

    def add_queries(self, text: str,
                    params: Optional[Dict[str, Dict[str, Any]]] = None
                    ) -> List[str]:
        results = self.template.add_queries(text, params=params)
        self._queries.append(("batch", text, params, None))
        return results

    def plan_of(self, name: str):
        return self.template.plan_of(name)

    def explain(self, name: str) -> str:
        return self.template.explain(name)

    def schema_of(self, name: str):
        return self.template.schema_of(name)

    # -- subscriptions ----------------------------------------------------
    def _make_sink(self, name: str) -> _MergeSink:
        instance = self.template._instances.get(name)
        terminal = instance.nodes[-1] if instance else None
        if isinstance(terminal, AggregationNode):
            # The workers will flip this terminal into partial mode, so
            # its stream stops carrying finalized rows inside the
            # worker; any sibling query reading it would see partials.
            produced = {node.name for node in instance.nodes}
            for other_name, other in self.template._instances.items():
                if other_name == name or other.plan.hfta is None:
                    continue
                used = produced.intersection(other.plan.hfta.inputs)
                if used:
                    raise RegistryError(
                        f"cannot shard-subscribe aggregation {name!r}: "
                        f"query {other_name!r} reads {sorted(used)} "
                        "downstream (the worker-side partial flip would "
                        "feed it superaggregates); subscribe the "
                        "downstream query instead"
                    )
            plan = dataclasses.replace(
                instance.plan.hfta, final_from_partials=True,
                predicates=[], sample_rate=None)
            node = AggregationNode(plan, instance.analyzed,
                                   instance.compiler, seed=self.seed)
            return _MergeSink(name, partial=True, node=node,
                              window_index=plan.window_key_index)
        # Canonical unknown-name error comes from the registry.
        self.template.rts.node(name)
        return _MergeSink(name, partial=False)

    def subscribe(self, name: str,
                  capacity: Optional[int] = None) -> Subscription:
        sink = self._sinks.get(name)
        if sink is None:
            sink = self._make_sink(name)
            self._sinks[name] = sink
        if sink.partial:
            channel = sink.node.subscribe(capacity=capacity,
                                          name=f"{name}->app")
        else:
            channel = Channel(capacity=capacity, name=f"{name}->app")
            sink.channels.append(channel)
        return Subscription(name, channel, manager=None)

    # -- lifecycle --------------------------------------------------------
    @property
    def started(self) -> bool:
        return self._started

    def start(self) -> None:
        self._started = True

    def stop(self) -> None:
        self._started = False

    # -- the packet path --------------------------------------------------
    def feed(self, packets: Iterable, pump_every: int = 256) -> None:
        """Partition ``packets`` across the workers and collect frames.

        Blocks until every live shard has delivered its ``end`` frame
        (restarting or quarantining the ones that die on the way).
        Merged output becomes visible to subscriptions at
        :meth:`flush`.
        """
        if not self._started:
            raise RegistryError("RTS not started; call start() first")
        if not isinstance(packets, list):
            packets = list(packets)
        if not packets:
            return
        self.generations += 1
        spec = {
            "queries": list(self._queries),
            "subscribe": [(name, sink.partial)
                          for name, sink in self._sinks.items()],
            "engine": dict(self._engine_kwargs),
            "nshards": self.shards,
            "barrier_interval": self.barrier_interval,
            "pump_every": pump_every,
            "standby": self.standby,
        }
        crash = self._parse_crash() if self._crash_armed else None
        self._crash_armed = False
        self._run(packets, spec, crash)

    def _parse_crash(self) -> Optional[Tuple[int, int]]:
        raw = os.environ.get(CRASH_ENV)
        if not raw:
            return None
        try:
            shard_text, _, at_text = raw.partition(":")
            crash = (int(shard_text), int(at_text))
        except ValueError:
            raise ValueError(
                f"{CRASH_ENV} must be 'SHARD:PACKET_INDEX', got {raw!r}"
            ) from None
        if not 0 <= crash[0] < self.shards:
            raise ValueError(
                f"{CRASH_ENV} names shard {crash[0]}, but there are "
                f"only {self.shards}")
        return crash

    def _spawn(self, ctx, shard: int, spec, packets,
               resume: Optional[bytes],
               crash_at: Optional[int]) -> _ShardState:
        recv, send = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_worker_entry,
            args=(recv, send, spec, shard, packets, resume, crash_at),
            daemon=True)
        process.start()
        # The parent keeps only the receive end; the child's copy of
        # ``send`` is then the sole writer, so worker death is visible
        # as EOF as well as through the process sentinel.
        send.close()
        return _ShardState(shard, process, recv)

    def _run(self, packets, spec, crash) -> None:
        ctx = get_context("fork")
        live: Dict[int, _ShardState] = {}
        for shard in range(self.shards):
            if shard in self.quarantined:
                # Dead shards stay dead across generations; keep the
                # drop ledger honest for the new packets too.
                self.shard_dropped_packets[shard] += (
                    assign_shards(packets, self.shards).count(shard))
                continue
            crash_at = crash[1] if crash and crash[0] == shard else None
            live[shard] = self._spawn(ctx, shard, spec, packets,
                                      None, crash_at)
        while live:
            waitables: List[Any] = []
            for state in live.values():
                waitables.append(state.conn)
                waitables.append(state.process.sentinel)
            ready = set(connection.wait(waitables))
            for shard, state in list(live.items()):
                while state.conn.poll():
                    try:
                        blob = state.conn.recv_bytes()
                    except EOFError:
                        state.eof = True
                        break
                    self._handle_frame(state, blob)
                    if state.ended:
                        break
                if state.ended:
                    state.process.join()
                    del live[shard]
                    continue
                if state.eof or state.process.sentinel in ready:
                    # eof means the drain above consumed every frame
                    # (recv only raises EOFError on an empty buffer); a
                    # dead process without eof can still have frames
                    # buffered -- or its pipe held open by a later-
                    # forked sibling -- so re-check before recovering.
                    # Never poll() after eof: at EOF it reads ready
                    # forever and the check would spin.
                    if not state.eof and state.conn.poll():
                        continue  # more frames buffered; drain next round
                    state.process.join()
                    del live[shard]
                    replacement = self._recover(ctx, state, spec, packets)
                    if replacement is not None:
                        live[shard] = replacement

    def _handle_frame(self, state: _ShardState, blob: bytes) -> None:
        kind, seq, payload = decode_frame(blob)
        if seq <= state.last_seq:
            # A respawned worker deterministically regenerates the
            # frames after its restored checkpoint; ones the parent
            # already consumed are dropped here (exactly-once).
            return
        state.last_seq = seq
        if kind == ROWS:
            for name, rows in unpack_rows(payload).items():
                if not rows:
                    continue
                sink = self._sinks[name]
                self.shard_rows[state.index] += len(rows)
                if sink.partial:
                    window = sink.window_index
                    arrival = len(sink.pending)
                    for offset, row in enumerate(rows):
                        sink.pending.append((
                            row[window] if window >= 0 else 0,
                            state.index, seq, arrival + offset, row))
                else:
                    sink.per_shard.setdefault(state.index, []).extend(rows)
        elif kind == SNAP:
            state.snapshot = payload["blob"]
            state.snap_packets = payload["packets_done"]
            self.shard_snapshots[state.index] += 1
            if state.index == self.standby:
                # The full epoch (re)primes the warm fold; any earlier
                # fold is superseded by this complete state.
                state.folded = decode_snapshot(payload["blob"])
        elif kind == DELTA:
            # Incremental standby checkpoint: fold the changed nodes
            # into the warm replica of this shard's state.  The fold
            # stays byte-equivalent to a full snap by construction --
            # unchanged nodes keep their last-shipped state.
            folded = state.folded
            if folded is None:
                raise RegistryError(
                    f"shard {state.index} shipped a delta frame before "
                    f"any full snap")
            folded["seq"] = seq
            folded["packets_done"] = payload["packets_done"]
            folded["next_barrier"] = payload["next_barrier"]
            folded["counters"] = payload["counters"]
            folded["nodes"].update(payload["nodes"])
            state.snap_packets = payload["packets_done"]
            self.shard_delta_frames[state.index] += 1
        elif kind == END:
            state.ended = True
            self.shard_packets[state.index] += payload["packets"]
            self._worker_nodes[state.index] = payload["nodes"]
            if payload["quarantined"]:
                self._worker_quarantined[state.index] = payload["quarantined"]
            self._absorb_channels(state.index, payload["channels"])

    def _absorb_channels(self, shard: int,
                         channels: Dict[str, Dict[str, Any]]) -> None:
        """Satellite 2: worker-side overflow accounting survives the pipe."""
        sample = PressureSample(stream_time=0.0, cycle=self.generations)
        for name, snapshot in channels.items():
            ledger = self.channel_ledgers.setdefault(
                f"shard{shard}/{name}", ChannelStats())
            ledger.absorb(snapshot)
            self.shard_channel_dropped[shard] += snapshot.get("dropped", 0)
            capacity = snapshot.get("capacity")
            sample.channels.append(ChannelSignal(
                name=f"shard{shard}/{name}", depth=0, capacity=capacity,
                fill=0.0, dropped_total=ledger.dropped,
                dropped_delta=snapshot.get("dropped", 0),
                max_depth=ledger.max_depth))
            sample.channel_drops_total += ledger.dropped
            sample.channel_drops_delta += snapshot.get("dropped", 0)
        self.pressure[shard] = sample

    def _recover(self, ctx, state: _ShardState, spec,
                 packets) -> Optional[_ShardState]:
        exitcode = state.process.exitcode
        reason = f"worker exited with code {exitcode} before its end frame"
        if state.restarts < self.max_restarts:
            self.shard_restarts[state.index] += 1
            # A standby shard respawns from the parent's warm fold --
            # the full epoch plus every applied delta -- re-encoded in
            # the same GSCK layout a full snap uses, so the worker's
            # resume path cannot tell the difference.
            resume = (encode_snapshot(state.folded)
                      if state.folded is not None else state.snapshot)
            replacement = self._spawn(ctx, state.index, spec, packets,
                                      resume, None)
            replacement.restarts = state.restarts + 1
            replacement.last_seq = state.last_seq
            replacement.snapshot = state.snapshot
            replacement.snap_packets = state.snap_packets
            replacement.folded = state.folded
            return replacement
        # Quarantine: siblings keep running; the undone packets are
        # counted, not silently lost (accountable loss, Section 1).
        assigned = assign_shards(packets, self.shards).count(state.index)
        self.shard_dropped_packets[state.index] += (
            assigned - state.snap_packets)
        self.quarantined[state.index] = reason
        return None

    # -- end of stream ----------------------------------------------------
    def flush(self) -> None:
        """Merge every buffered frame and end the output streams."""
        for sink in self._sinks.values():
            if sink.partial:
                # Total order: global window sweep, shard index and
                # frame sequence breaking every tie deterministically.
                sink.pending.sort(key=lambda e: (e[0], e[1], e[2], e[3]))
                node = sink.node
                for entry in sink.pending:
                    node.dispatch(entry[4], 0)
                sink.pending.clear()
                if not node.flushed:
                    node.flushed = True
                    node.flush()
                    node.emit_flush()
            else:
                for shard in range(self.shards):
                    rows = sink.per_shard.pop(shard, None)
                    if rows:
                        for channel in sink.channels:
                            channel.push_many(rows)
                for channel in sink.channels:
                    channel.push(FLUSH)

    # -- introspection ----------------------------------------------------
    def stats(self) -> Dict[str, Dict[str, Any]]:
        """Per-shard worker node snapshots plus the parent merge nodes."""
        out: Dict[str, Dict[str, Any]] = {}
        for shard in sorted(self._worker_nodes):
            for node_name, entry in self._worker_nodes[shard].items():
                out[f"shard{shard}/{node_name}"] = entry
        for name, sink in self._sinks.items():
            if sink.partial:
                out[f"merge/{name}"] = node_snapshot(sink.node)
        return out

    def overload_report(self) -> Dict[str, Any]:
        """End-to-end drop accounting across the process boundary."""
        channels: Dict[str, Dict[str, Any]] = {}
        for name, ledger in sorted(self.channel_ledgers.items()):
            channels[name] = {
                "pushed": ledger.pushed, "popped": ledger.popped,
                "dropped": ledger.dropped, "depth": 0,
                "max_depth": ledger.max_depth, "capacity": None,
            }
        return {
            "policy": "sharded",
            "shed_rate": 1.0,
            "packets_shed": 0,
            "channel_dropped": sum(self.shard_channel_dropped),
            "channels": channels,
            "shards": {
                "count": self.shards,
                "packets": list(self.shard_packets),
                "rows": list(self.shard_rows),
                "restarts": list(self.shard_restarts),
                "snapshots": list(self.shard_snapshots),
                "delta_frames": list(self.shard_delta_frames),
                "standby": self.standby,
                "channel_dropped": list(self.shard_channel_dropped),
                "dropped_packets": list(self.shard_dropped_packets),
                "quarantined": {str(shard): reason for shard, reason
                                in sorted(self.quarantined.items())},
            },
        }

    def shard_report(self) -> Dict[str, Any]:
        """The per-shard ledger on its own (what E16 and the report use)."""
        report = self.overload_report()["shards"]
        report["generations"] = self.generations
        report["worker_quarantined"] = {
            str(shard): dict(nodes) for shard, nodes
            in sorted(self._worker_quarantined.items())}
        return report
