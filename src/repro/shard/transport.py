"""Framed block transport between shard workers and the parent.

Workers ship three frame kinds over their pipe, each one GSCK-encoded
(:mod:`repro.recovery.wire` -- the snapshot format already carries
every stream primitive, is versioned, and is checksummed, so a torn or
stale frame fails loudly instead of decoding into garbage):

* ``rows`` -- one barrier's worth of subscription output, columnar-
  transposed (:func:`repro.net.columnar.rows_to_columns`) so a frame of
  N same-schema rows encodes each column once instead of N tuples.
* ``snap`` -- a shard checkpoint: the worker engine's full GSCK
  snapshot blob plus the packet cursor, cut at a barrier.  The parent
  keeps only the latest; a respawned worker restores from it.
* ``delta`` -- a standby shard's incremental checkpoint (DESIGN
  section 16): only the nodes whose encoded state changed since the
  previous frame, plus the cursor and RTS counters.  The parent folds
  each delta into a warm replica of the shard's state and respawns a
  crashed standby shard from the fold instead of a full ``snap``.
* ``end`` -- the worker's final statistics payload (per-node counters,
  per-channel overflow ledgers, packet totals).

Every frame carries a sequence number, monotone per worker run *and*
across restarts (a restored worker resumes its counter from the
snapshot), so the parent drops replayed duplicates with a single
``seq <= last_seen`` check and exactly-once delivery survives the
process boundary.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.net.columnar import columns_to_rows, rows_to_columns
from repro.recovery.wire import decode_snapshot, encode_snapshot

#: frame kinds
ROWS = "rows"
SNAP = "snap"
DELTA = "delta"
END = "end"


def encode_frame(kind: str, seq: int, payload: Dict[str, Any]) -> bytes:
    """Frame one worker->parent message as GSCK bytes."""
    return encode_snapshot({"kind": kind, "seq": seq, "payload": payload})


def decode_frame(blob: bytes) -> Tuple[str, int, Dict[str, Any]]:
    """Validate and split a frame into ``(kind, seq, payload)``."""
    frame = decode_snapshot(blob)
    return frame["kind"], frame["seq"], frame["payload"]


def pack_rows(rows_by_sub: Dict[str, List[tuple]]) -> Dict[str, Any]:
    """Columnar-transpose each subscription's rows for the wire."""
    return {name: rows_to_columns(rows)
            for name, rows in rows_by_sub.items()}


def unpack_rows(payload: Dict[str, Any]) -> Dict[str, List[tuple]]:
    """Invert :func:`pack_rows`: blocks back into row tuples."""
    return {name: columns_to_rows(block)
            for name, block in payload.items()}
