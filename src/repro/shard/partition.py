"""The canonical flow-key partitioner (DESIGN section 15).

Sharding is only sound if every process, on every run, under every
``PYTHONHASHSEED``, sends a given packet to the same shard.  Python's
builtin ``hash()`` of bytes is process-randomized, so the partitioner
is built on ``zlib.crc32`` -- the same process-stable digest behind
:func:`repro.determinism.stable_hash`.

The hash key is the IPv4 flow 5-tuple when it is cheap to find:

* IPv4, IHL=5, not fragmented, TCP or UDP -- source address, destination
  address, and both ports lie in one contiguous slice (bytes 26..38 of
  the Ethernet frame), so the key is one crc32 over that slice, mixed
  with the protocol number.
* IPv4 with options or fragments -- addresses + protocol only (ports
  may be absent or displaced).  A flow whose packets mix the two shapes
  can split across shards; that is harmless for aggregation, because
  shard partials combine per *group key*, not per flow.
* everything else -- crc32 over the whole frame, so non-IP packets
  still spread deterministically.

:func:`repro.gsql.codegen.make_partition_filter` generates the fused
hot-loop form of this function with the fast-path guard inlined; the
property test in ``tests/test_shard.py`` holds the generated kernel and
this reference implementation together.
"""

from __future__ import annotations

from typing import List, Sequence
from zlib import crc32

from repro.gsql.codegen import make_partition_filter


def flow_hash(data: bytes) -> int:
    """A process-stable 32-bit hash of one raw Ethernet frame."""
    if (len(data) >= 38 and data[12] == 8 and data[13] == 0
            and data[14] == 69 and (data[20] & 31) == 0 and data[21] == 0
            and data[23] in (6, 17)):
        # IPv4, IHL=5, non-fragment, TCP/UDP: src+dst+ports contiguous.
        return crc32(data[26:38]) ^ data[23]
    if (len(data) >= 34 and data[12] == 8 and data[13] == 0
            and (data[14] >> 4) == 4):
        # IPv4 with options or a fragment: addresses + protocol only.
        return crc32(data[26:34]) ^ data[23]
    return crc32(data)


def shard_of(data: bytes, nshards: int) -> int:
    """Which of ``nshards`` shards this frame belongs to."""
    return flow_hash(data) % nshards


def partition_filter(nshards: int, shard: int):
    """A generated ``f(packets, append)`` keeping one shard's packets.

    The fused kernel each worker runs over the fork-inherited packet
    list -- partitioning happens *inside* the parallel region, one pass,
    no parent-side scan.
    """
    return make_partition_filter(nshards, shard, flow_hash)


def assign_shards(packets: Sequence, nshards: int) -> List[int]:
    """Shard assignment per packet (reference path, for tests/accounting)."""
    return [flow_hash(packet.data) % nshards for packet in packets]
