"""The shard worker: one complete engine over one packet partition.

Forked (never spawned -- workers inherit the parent's materialized
packet list and compiled queries for free) by
:class:`~repro.shard.runtime.ShardedGigascope`.  Each worker:

1. builds a full single-process :class:`~repro.core.engine.Gigascope`
   from the same query batch as its siblings, with every *subscribed
   terminal aggregation* flipped into superaggregate-producer mode
   (:meth:`~repro.operators.aggregation.AggregationNode.enable_partial_output`),
2. filters the inherited packet list down to its own partition with a
   fused generated kernel (partitioning runs inside the parallel
   region -- there is no parent-side scan to serialize on),
3. feeds the partition in chunks cut at a *global barrier grid* --
   multiples of ``barrier_interval`` in virtual time, the same
   thresholds on every shard -- draining its subscriptions into a
   ``rows`` frame and cutting a GSCK engine snapshot into a ``snap``
   frame at each crossing,
4. flushes, ships the final rows, and ends with its statistics ledger.

Everything the worker does is a deterministic function of (queries,
partition, seed, resume point): a worker respawned from its last
``snap`` frame regenerates byte-identical frames from that barrier on,
which is what lets the parent dedup by sequence number and keep the
exactly-once contract across a worker crash.
"""

from __future__ import annotations

import math
import os
from typing import Any, Dict, List, Optional

from repro.core.engine import Gigascope
from repro.obs.collectors import channel_snapshot, engine_snapshot
from repro.recovery.wire import decode_snapshot, encode_snapshot
from repro.shard.partition import partition_filter
from repro.shard.transport import (
    DELTA,
    END,
    ROWS,
    SNAP,
    encode_frame,
    pack_rows,
)

#: env var arming a mid-run worker crash: ``"SHARD:PACKET_INDEX"``
#: (the worker dies with os._exit just before feeding that packet of
#: its partition; respawned workers never re-arm)
CRASH_ENV = "GS_SHARD_CRASH"


def _build_engine(spec: Dict[str, Any]):
    """The worker's engine + subscriptions, per the parent's spec."""
    gs = Gigascope(metrics=False, **spec["engine"])
    for kind, text, params, name in spec["queries"]:
        if kind == "batch":
            gs.add_queries(text, params=params)
        else:
            gs.add_query(text, params=params, name=name)
    subs = {}
    for name, partial in spec["subscribe"]:
        subs[name] = gs.subscribe(name)
        if partial:
            # The terminal aggregation ships combinable partials; the
            # parent's combine operator finalizes (HAVING, post-select).
            gs._instances[name].nodes[-1].enable_partial_output()
    return gs, subs


def _snapshot_worker(gs, seq: int, packets_done: int,
                     next_barrier: float) -> bytes:
    """One shard checkpoint: engine state + resume cursor, as GSCK bytes."""
    return encode_snapshot({
        "seq": seq,
        "packets_done": packets_done,
        "next_barrier": next_barrier,
        "counters": gs.rts.counters_state(),
        "nodes": {name: node.snapshot_state()
                  for name, node in gs.rts.iter_nodes()},
    })


def _cut_barrier(conn, gs, subs, seq: int, packets_done: int,
                 next_barrier: float,
                 shipped: Optional[Dict[str, bytes]] = None) -> int:
    """Drain + ship rows, then cut and ship the shard checkpoint.

    ``shipped`` (standby shards only) caches each node's last encoded
    state: once primed by a full ``snap``, later barriers ship a
    ``delta`` frame carrying only the nodes whose bytes changed, and
    the parent folds it into its warm replica of this shard.
    """
    rows = {name: sub.poll() for name, sub in subs.items()}
    seq += 1
    conn.send_bytes(encode_frame(ROWS, seq, pack_rows(rows)))
    seq += 1
    if shipped is None or not shipped:
        conn.send_bytes(encode_frame(SNAP, seq, {
            "blob": _snapshot_worker(gs, seq, packets_done, next_barrier),
            "packets_done": packets_done,
        }))
        if shipped is not None:
            for name, node in gs.rts.iter_nodes():
                shipped[name] = encode_snapshot(node.snapshot_state())
    else:
        changed: Dict[str, Any] = {}
        for name, node in gs.rts.iter_nodes():
            state = node.snapshot_state()
            blob = encode_snapshot(state)
            if shipped.get(name) != blob:
                changed[name] = state
                shipped[name] = blob
        conn.send_bytes(encode_frame(DELTA, seq, {
            "packets_done": packets_done,
            "next_barrier": next_barrier,
            "counters": gs.rts.counters_state(),
            "nodes": changed,
        }))
    return seq


def run_worker(conn, spec: Dict[str, Any], shard: int,
               packets: List, resume_blob: Optional[bytes] = None,
               crash_at: Optional[int] = None) -> None:
    """The fork target: run one shard start to finish (or to a crash)."""
    gs, subs = _build_engine(spec)
    keep = partition_filter(spec["nshards"], shard)
    kept: List = []
    keep(packets, kept.append)
    gs.start()
    seq = 0
    offset = 0
    next_barrier: Optional[float] = None
    if resume_blob is not None:
        state = decode_snapshot(resume_blob)
        for name, node_state in state["nodes"].items():
            gs.rts.node(name).restore_state(node_state)
        gs.rts.restore_counters(state["counters"])
        seq = state["seq"]
        offset = state["packets_done"]
        next_barrier = state["next_barrier"]
    interval = spec["barrier_interval"]
    pump_every = spec["pump_every"]
    # A standby shard ships incremental delta frames after its first
    # full snap; a respawned one starts cold and re-ships a full snap
    # (the parent's seq dedup drops it if it was already consumed).
    shipped: Optional[Dict[str, bytes]] = (
        {} if spec.get("standby") == shard else None)
    buffer: List = []
    for index in range(offset, len(kept)):
        packet = kept[index]
        if crash_at is not None and index == crash_at:
            # Simulated hard worker death: no teardown, no flush, the
            # pipe just goes quiet mid-stream.
            os._exit(3)
        if next_barrier is None:
            # First packet pins the position on the *global* grid
            # (multiples of the interval in absolute virtual time, the
            # same thresholds every sibling shard uses).
            next_barrier = (math.floor(packet.timestamp / interval) + 1
                            ) * interval
        elif packet.timestamp >= next_barrier:
            if buffer:
                gs.feed(buffer, pump_every=pump_every)
                buffer = []
            advanced = next_barrier
            while packet.timestamp >= advanced:
                advanced += interval
            # The stored cursor must be the *advanced* barrier: a
            # restored worker re-examines this very packet and must not
            # cut (and re-number) a second barrier here.
            seq = _cut_barrier(conn, gs, subs, seq,
                               packets_done=index, next_barrier=advanced,
                               shipped=shipped)
            next_barrier = advanced
        buffer.append(packet)
    if buffer:
        gs.feed(buffer, pump_every=pump_every)
    gs.flush()
    rows = {name: sub.poll() for name, sub in subs.items()}
    seq += 1
    conn.send_bytes(encode_frame(ROWS, seq, pack_rows(rows)))
    seq += 1
    conn.send_bytes(encode_frame(END, seq, {
        "packets": len(kept),
        "nodes": engine_snapshot(gs.rts),
        "channels": {channel.name: channel_snapshot(channel)
                     for channel in gs.rts.channels()},
        "quarantined": dict(gs.rts.quarantined),
    }))
    conn.close()
