"""Query instances and on-the-fly parameters.

"To increase the flexibility of the system queries can accept query
parameters, which are similar to constants but which are specified at
query instantiation time and which can be changed on-the-fly.  The RTS
can execute multiple instances of the same LFTA, each with different
parameters." (Section 3)

A :class:`QueryInstance` ties a plan to its compiled closures and live
parameter dict; instantiating the same GSQL text twice under different
names gives two independent instances with independent parameters.
Pass-by-handle parameters are resolved once at instantiation (the
handle registration function runs then); changing them later requires
re-instantiation, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.core.query_node import QueryNode
from repro.gsql.codegen import ExprCompiler
from repro.gsql.planner import QueryPlan
from repro.gsql.semantic import AnalyzedQuery


@dataclass
class QueryInstance:
    """One instantiated query: plan + generated code + live nodes."""

    name: str
    plan: QueryPlan
    analyzed: AnalyzedQuery
    compiler: ExprCompiler
    nodes: List[QueryNode] = field(default_factory=list)

    @property
    def params(self):
        """The live parameter dict the generated code reads."""
        return self.compiler.params
